"""Truncated multipliers — the classic manual approximation baseline.

A truncation level ``k`` discards every partial product whose column
weight is below ``2**k``; the ``k`` low product bits become constant zero.
This is the "truncated array multiplier" the paper compares against in
Fig. 3 and the bit-width-reduction strategy of TPU-style accelerators
referenced in Section II-B.
"""

from __future__ import annotations

from ..circuits.generators.multipliers import (
    partial_product_columns,
    reduce_columns,
)
from ..circuits.netlist import Netlist

__all__ = ["build_truncated_multiplier"]


def build_truncated_multiplier(
    width: int, truncation: int, signed: bool = False
) -> Netlist:
    """Multiplier with the ``truncation`` least significant columns dropped.

    Args:
        width: Operand width ``w``.
        truncation: Number of dropped LSB product columns ``k``; 0 yields
            the exact column-reduction multiplier, ``2 * width`` drops
            everything (constant-zero output).
        signed: Two's-complement semantics (Baugh-Wooley array).

    Returns:
        Netlist with the standard multiplier interface; output bits below
        ``k`` are constant zero.
    """
    if not 0 <= truncation <= 2 * width:
        raise ValueError(
            f"truncation must be in [0, {2 * width}], got {truncation}"
        )
    tag = "s" if signed else "u"
    net = Netlist(
        num_inputs=2 * width, name=f"mul{width}{tag}_trunc{truncation}"
    )
    columns = partial_product_columns(
        net, width, signed, keep=lambda i, j: i + j >= truncation
    )
    for c in range(min(truncation, 2 * width)):
        columns[c] = []
    net.set_outputs(reduce_columns(net, columns, 2 * width))
    return net
