"""Approximate adder baselines.

The WMED method is not multiplier-specific; to exercise it (and compare
it) on adders, two classic manual approximations are provided:

* **Truncated adder** — the low ``k`` result bits are constant zero and
  no carry is generated from the dropped stages.
* **Lower-part OR adder (LOA)** — the low ``k`` result bits are computed
  as ``a_i | b_i`` (a cheap carry-free estimate) and a single AND of the
  top dropped bits seeds the exact upper ripple chain's carry.
"""

from __future__ import annotations

from ..circuits.generators.adders import ripple_carry_adder
from ..circuits.netlist import Netlist

__all__ = ["build_truncated_adder", "build_lower_part_or_adder"]


def _check(width: int, approx_bits: int) -> None:
    if width <= 0:
        raise ValueError("width must be positive")
    if not 0 <= approx_bits <= width:
        raise ValueError(
            f"approx_bits must be in [0, {width}], got {approx_bits}"
        )


def build_truncated_adder(width: int, truncation: int) -> Netlist:
    """Adder ignoring the ``truncation`` low bit positions entirely.

    Inputs ``[a0..a(w-1), b0..b(w-1)]``; outputs ``w`` sum bits plus the
    carry-out (low outputs constant zero).
    """
    _check(width, truncation)
    net = Netlist(num_inputs=2 * width, name=f"add{width}_trunc{truncation}")
    zero = net.add_gate("CONST0")
    low = [zero] * truncation
    a_bits = list(range(truncation, width))
    b_bits = list(range(width + truncation, 2 * width))
    if a_bits:
        sums, cout = ripple_carry_adder(net, a_bits, b_bits)
    else:
        sums, cout = [], zero
    net.set_outputs(low + sums + [cout])
    return net


def build_lower_part_or_adder(width: int, approx_bits: int) -> Netlist:
    """LOA: OR for the low part, exact ripple chain above.

    The carry into the exact part is ``a[k-1] & b[k-1]`` (the standard
    LOA carry-guess), which keeps the worst-case error well below a
    truncated adder of the same split.
    """
    _check(width, approx_bits)
    net = Netlist(num_inputs=2 * width, name=f"add{width}_loa{approx_bits}")
    k = approx_bits
    low = [net.add_gate("OR", i, width + i) for i in range(k)]
    a_bits = list(range(k, width))
    b_bits = list(range(width + k, 2 * width))
    if not a_bits:
        cout = net.add_gate("CONST0")
        net.set_outputs(low + [cout])
        return net
    if k > 0:
        carry_guess = net.add_gate("AND", k - 1, width + k - 1)
        sums, cout = ripple_carry_adder(net, a_bits, b_bits, cin=carry_guess)
    else:
        sums, cout = ripple_carry_adder(net, a_bits, b_bits)
    net.set_outputs(low + sums + [cout])
    return net
