"""Zero-guarded approximate multipliers (Mrazek et al., ICCAD 2016 style).

These multipliers guarantee **exact multiplication by zero** — crucial in
neural networks where a large share of weights are zero, so that no error
is injected for the dominant operand value — while allowing deep
approximation everywhere else.  The construction wraps any approximate
multiplier core with operand zero-detectors that force the product bus to
zero whenever either operand is zero.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.compose import append_netlist
from ..circuits.netlist import Netlist
from .truncated import build_truncated_multiplier

__all__ = ["wrap_zero_guard", "build_zero_guard_multiplier"]


def _nonzero_detector(net: Netlist, bits) -> int:
    """OR-tree over ``bits``: 1 iff the operand is non-zero."""
    bits = list(bits)
    while len(bits) > 1:
        nxt = []
        for k in range(0, len(bits) - 1, 2):
            nxt.append(net.add_gate("OR", bits[k], bits[k + 1]))
        if len(bits) % 2:
            nxt.append(bits[-1])
        bits = nxt
    return bits[0]


def wrap_zero_guard(core: Netlist, width: int, name: str = "") -> Netlist:
    """Wrap a multiplier core so that ``x == 0`` or ``y == 0`` yields 0.

    Args:
        core: Approximate multiplier with the standard ``2 * width`` input
            / ``2 * width`` output interface.
        width: Operand width ``w``.
        name: Optional name of the wrapped netlist.

    Returns:
        New netlist computing ``0`` when either operand is zero and the
        core's product otherwise.
    """
    if core.num_inputs != 2 * width or core.num_outputs != 2 * width:
        raise ValueError("core must have the standard multiplier interface")
    net = Netlist(
        num_inputs=2 * width, name=name or f"{core.name}_zguard"
    )
    product = append_netlist(net, core, list(range(2 * width)))
    x_nonzero = _nonzero_detector(net, range(width))
    y_nonzero = _nonzero_detector(net, range(width, 2 * width))
    mask = net.add_gate("AND", x_nonzero, y_nonzero)
    net.set_outputs([net.add_gate("AND", bit, mask) for bit in product])
    return net


def build_zero_guard_multiplier(
    width: int,
    truncation: int,
    signed: bool = True,
    core: Optional[Netlist] = None,
) -> Netlist:
    """Zero-guarded multiplier around a truncated core (the common recipe).

    Args:
        width: Operand width ``w``.
        truncation: Truncation level of the default core (ignored when an
            explicit ``core`` is supplied).
        signed: Two's-complement semantics.
        core: Optional custom approximate core to wrap instead.
    """
    if core is None:
        core = build_truncated_multiplier(width, truncation, signed=signed)
    tag = "s" if signed else "u"
    return wrap_zero_guard(
        core, width, name=f"mul{width}{tag}_zg{truncation}"
    )
