"""A small pre-generated library of conventional approximate multipliers.

Plays the role of the EvoApprox8b library [Mrazek et al., DATE 2017] in
the paper's comparisons: a shelf of general-purpose approximate
multipliers spanning the error/cost plane, none of which knows anything
about the target application's data distribution.  Entries are generated
parametrically from the truncated / broken-array / zero-guarded families
(see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulator import truth_table
from .broken_array import build_broken_array_multiplier
from .truncated import build_truncated_multiplier
from .zero_guard import build_zero_guard_multiplier

__all__ = ["LibraryEntry", "conventional_multiplier_library"]


@dataclass(frozen=True)
class LibraryEntry:
    """One shelf multiplier: its netlist, family tag and truth table."""

    name: str
    family: str
    netlist: Netlist
    table: np.ndarray

    @property
    def is_exact_for_zero(self) -> bool:
        return self.family == "zero-guard"


def _entry(name: str, family: str, net: Netlist, signed: bool) -> LibraryEntry:
    return LibraryEntry(
        name=name, family=family, netlist=net,
        table=truth_table(net, signed=signed),
    )


def conventional_multiplier_library(
    width: int = 8,
    signed: bool = True,
    families: Optional[List[str]] = None,
) -> List[LibraryEntry]:
    """Generate the shelf of conventional approximate multipliers.

    Args:
        width: Operand width (8 for all paper experiments).
        signed: Two's-complement semantics.
        families: Subset of ``{"truncated", "broken-array", "zero-guard"}``
            to generate; all by default.

    Returns:
        Entries ordered family-by-family, mild to aggressive.  Includes
        the exact multiplier (truncation 0) as the reference point.
    """
    wanted = set(families or ["truncated", "broken-array", "zero-guard"])
    unknown = wanted - {"truncated", "broken-array", "zero-guard"}
    if unknown:
        raise ValueError(f"unknown families: {sorted(unknown)}")

    entries: List[LibraryEntry] = []
    if "truncated" in wanted:
        for k in range(0, width + 1):
            net = build_truncated_multiplier(width, k, signed=signed)
            entries.append(_entry(net.name, "truncated", net, signed))
    if "broken-array" in wanted:
        for vbl in range(2, width + 1, 2):
            for hbl in range(0, width // 2 + 1, 2):
                net = build_broken_array_multiplier(
                    width, vbl=vbl, hbl=hbl, signed=signed
                )
                entries.append(_entry(net.name, "broken-array", net, signed))
    if "zero-guard" in wanted:
        for k in range(1, width + 1):
            net = build_zero_guard_multiplier(width, k, signed=signed)
            entries.append(_entry(net.name, "zero-guard", net, signed))
    return entries
