"""Conventional approximate multiplier baselines."""

from .adders import build_lower_part_or_adder, build_truncated_adder
from .broken_array import build_broken_array_multiplier
from .library8b import LibraryEntry, conventional_multiplier_library
from .truncated import build_truncated_multiplier
from .zero_guard import build_zero_guard_multiplier, wrap_zero_guard

__all__ = [
    "build_lower_part_or_adder",
    "build_truncated_adder",
    "build_broken_array_multiplier",
    "LibraryEntry",
    "conventional_multiplier_library",
    "build_truncated_multiplier",
    "build_zero_guard_multiplier",
    "wrap_zero_guard",
]
