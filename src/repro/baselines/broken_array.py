"""Broken-array multiplier (BAM) baseline, after Mahdiani et al. (2010).

The BAM omits carry-save cells of an array multiplier along two break
lines:

* the **vertical break level** (VBL) removes every cell whose column
  weight is below ``vbl`` (like truncation),
* the **horizontal break level** (HBL) additionally removes cells of the
  lower partial-product rows, i.e. terms ``x_i * y_j`` with ``j < hbl``
  whose column weight is below ``hbl + width`` (the triangular region the
  break line cuts off the array).

Sweeping ``(vbl, hbl)`` yields the family of operating points plotted as
"broken-array multiplier" in the paper's Fig. 3 and Fig. 7.
"""

from __future__ import annotations

from ..circuits.generators.multipliers import (
    partial_product_columns,
    reduce_columns,
)
from ..circuits.netlist import Netlist

__all__ = ["build_broken_array_multiplier"]


def build_broken_array_multiplier(
    width: int,
    vbl: int = 0,
    hbl: int = 0,
    signed: bool = False,
) -> Netlist:
    """BAM with the given vertical/horizontal break levels.

    Args:
        width: Operand width ``w``.
        vbl: Vertical break level in ``[0, 2 * width]``; 0 disables it.
        hbl: Horizontal break level in ``[0, width]``; 0 disables it.
        signed: Two's-complement semantics (Baugh-Wooley array).

    Returns:
        Netlist with the standard multiplier interface.
    """
    if not 0 <= vbl <= 2 * width:
        raise ValueError(f"vbl must be in [0, {2 * width}], got {vbl}")
    if not 0 <= hbl <= width:
        raise ValueError(f"hbl must be in [0, {width}], got {hbl}")

    def keep(i: int, j: int) -> bool:
        if i + j < vbl:
            return False
        if j < hbl and i + j < hbl + width - 1:
            return False
        return True

    tag = "s" if signed else "u"
    net = Netlist(
        num_inputs=2 * width, name=f"mul{width}{tag}_bam_v{vbl}h{hbl}"
    )
    columns = partial_product_columns(net, width, signed, keep=keep)
    for c in range(min(vbl, 2 * width)):
        columns[c] = []
    net.set_outputs(reduce_columns(net, columns, 2 * width))
    return net
