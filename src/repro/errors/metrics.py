"""Arithmetic error metrics, including the paper's WMED.

All metrics operate on two integer truth tables in vector order (see
:mod:`repro.errors.truth_tables`): the exact function and a candidate
approximation.  The central metric is the **weighted mean error distance**:

.. math::

    \\mathrm{WMED}_D(\\tilde M) \\propto \\sum_{i,j}
        \\alpha_{i,j} \\, | i \\cdot j - \\tilde M(i, j) |,
    \\qquad \\alpha_{i,j} = D(i)

Normalization: the paper divides by :math:`2^{2w}` and reports percent.
Taken literally that constant does not bound the metric by 1, so for
percentage reporting we normalize the weighted expected error distance by
the maximum exact product magnitude, which *is* bounded by 1 and preserves
the paper's threshold semantics.  Both conventions are exposed:

* :func:`wmed` — ``E_{i~D, j~U}[|err|] / max|product|``   (used everywhere),
* :func:`wmed_paper` — the literal Eq. (WMED) value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .distributions import Distribution
from .truth_tables import max_product_magnitude, vector_weights

__all__ = [
    "MetricEstimate",
    "estimate_from_distances",
    "t_critical",
    "error_distances",
    "relative_error_distances",
    "mean_error_distance",
    "normalized_med",
    "wmed",
    "wmed_paper",
    "mean_relative_error",
    "error_rate",
    "worst_case_error",
    "error_bias",
    "ErrorMetric",
    "METRICS",
    "metric_names",
    "get_metric",
    "ErrorReport",
    "evaluate_errors",
    "evaluate_errors_against",
]


def _check(exact: np.ndarray, approx: np.ndarray) -> (np.ndarray, np.ndarray):
    exact = np.asarray(exact, dtype=np.int64).ravel()
    approx = np.asarray(approx, dtype=np.int64).ravel()
    if exact.shape != approx.shape:
        raise ValueError(
            f"truth tables differ in length: {exact.shape} vs {approx.shape}"
        )
    if exact.size == 0:
        raise ValueError("empty truth tables")
    return exact, approx


def error_distances(exact: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """Absolute error ``|exact - approx|`` per input vector."""
    exact, approx = _check(exact, approx)
    return np.abs(exact - approx)


def relative_error_distances(
    distances: np.ndarray,
    reference: np.ndarray,
    epsilon: float = 1.0,
) -> np.ndarray:
    """Per-vector relative error ``|err| / max(|reference|, epsilon)``.

    Distance-domain primitive shared by :func:`mean_relative_error` and
    the ``mred`` :class:`ErrorMetric` (objective hot path), so both
    compute the identical quantity.
    """
    distances = np.asarray(distances, dtype=np.float64)
    return distances / np.maximum(np.abs(reference), epsilon)


def mean_error_distance(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """(Weighted) mean error distance in absolute output units.

    With ``weights`` the result is ``sum(w * |err|) / sum(w)`` — the
    expected error distance under the weight distribution.  Without, all
    vectors count equally (classic MED under uniform inputs).
    """
    dist = error_distances(exact, approx).astype(np.float64)
    if weights is None:
        return float(dist.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.shape != dist.shape:
        raise ValueError("weights length must match truth tables")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive mass")
    return float(np.dot(weights, dist) / total)


def normalized_med(
    exact: np.ndarray,
    approx: np.ndarray,
    width: int,
    signed: bool,
    weights: Optional[np.ndarray] = None,
) -> float:
    """MED normalized by the maximum exact product magnitude, in [0, ~1]."""
    med = mean_error_distance(exact, approx, weights)
    return med / max_product_magnitude(width, signed)


def wmed(
    exact: np.ndarray,
    approx: np.ndarray,
    dist: Distribution,
    width: Optional[int] = None,
) -> float:
    """Weighted mean error distance, normalized to [0, ~1].

    ``wmed = E_{x ~ D, y ~ Uniform}[ |x*y - approx(x,y)| ] / max|x*y|``.
    Multiply by 100 to get the percentage figures the paper quotes
    (0.005 % ... 10 %).

    Args:
        exact: Exact product truth table, vector order.
        approx: Candidate truth table, vector order.
        dist: Distribution of the ``x`` operand (low input half).
        width: Operand width; defaults to ``dist.width``.
    """
    width = dist.width if width is None else width
    weights = vector_weights(dist, width)
    return normalized_med(exact, approx, width, dist.signed, weights)


def wmed_paper(
    exact: np.ndarray,
    approx: np.ndarray,
    dist: Distribution,
    width: Optional[int] = None,
) -> float:
    """The literal Eq. (WMED): ``(1 / 2**(2w)) * sum alpha |err|``."""
    width = dist.width if width is None else width
    weights = vector_weights(dist, width)
    dist_abs = error_distances(exact, approx).astype(np.float64)
    return float(np.dot(weights, dist_abs) / (1 << (2 * width)))


def mean_relative_error(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
    epsilon: float = 1.0,
) -> float:
    """Mean relative error ``|err| / max(|exact|, epsilon)``."""
    exact, approx = _check(exact, approx)
    rel = relative_error_distances(np.abs(exact - approx), exact, epsilon)
    if weights is None:
        return float(rel.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    return float(np.dot(weights, rel) / weights.sum())


def error_rate(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Fraction (or weighted probability) of vectors with any error."""
    exact, approx = _check(exact, approx)
    wrong = (exact != approx).astype(np.float64)
    if weights is None:
        return float(wrong.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    return float(np.dot(weights, wrong) / weights.sum())


def worst_case_error(exact: np.ndarray, approx: np.ndarray) -> int:
    """Largest absolute error over all vectors."""
    return int(error_distances(exact, approx).max())


def error_bias(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Signed mean error ``E[approx - exact]`` (accumulation bias)."""
    exact, approx = _check(exact, approx)
    signed_err = (approx - exact).astype(np.float64)
    if weights is None:
        return float(signed_err.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    return float(np.dot(weights, signed_err) / weights.sum())


# ----------------------------------------------------------------------
# Pluggable metric objects (the objective layer's error term)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorMetric:
    """A named reduction from per-vector error distances to one scalar.

    This is the pluggable error term of
    :class:`repro.core.objective.CircuitObjective`: both the interpreted
    path and the compiled engine produce the same per-vector ``float64``
    distance vector ``|reference - candidate|`` and hand it to
    :meth:`from_distances`, so a metric implemented here is automatically
    bit-identical across evaluation paths.

    Attributes
    ----------
    name : str
        Canonical registry name (``wmed``, ``med``, ``mred``,
        ``error-rate``, ``worst-case``); aliases resolve through
        :func:`get_metric`.

    Notes
    -----
    Conventions every metric function relies on: ``weights`` is already
    normalized to sum to 1 (the objective normalizes once at
    construction), and ``normalizer`` is the objective's error scale
    (max ``|reference|`` by default), so magnitude-based metrics land
    in [0, ~1] — multiply by 100 for the percent units the paper (and
    every ``max_error_percent``/``threshold_percent`` knob in this
    repo) quotes.  ``mred`` and ``error-rate`` are intrinsically
    scale-free and ignore ``normalizer``.
    """

    name: str
    #: (distances, weights, normalizer, reference) -> float
    _fn: Callable[[np.ndarray, np.ndarray, float, np.ndarray], float]

    def from_distances(
        self,
        distances: np.ndarray,
        weights: np.ndarray,
        normalizer: float,
        reference: np.ndarray,
    ) -> float:
        """Reduce a per-vector distance vector to the metric scalar.

        Parameters
        ----------
        distances : numpy.ndarray
            Per-vector ``|reference - candidate|`` in absolute output
            units, ``float64``, vector order.
        weights : numpy.ndarray
            Per-vector importance, normalized to unit mass.
        normalizer : float
            The objective's error scale (max ``|reference|``), mapping
            absolute distances into the normalized [0, ~1] range.
        reference : numpy.ndarray
            The exact truth table (needed by relative-error metrics).

        Returns
        -------
        float
            The scalar the search thresholds compare against.
        """
        return self._fn(distances, weights, normalizer, reference)


def _metric_wmed(err, weights, normalizer, reference) -> float:
    # Identical operand order to the historical MultiplierFitness.wmed
    # (BLAS dot then scalar divide) — trajectories must stay bit-stable.
    return float(np.dot(weights, err)) / normalizer


def _metric_med(err, weights, normalizer, reference) -> float:
    return float(err.mean()) / normalizer


def _metric_mred(err, weights, normalizer, reference) -> float:
    return float(np.dot(weights, relative_error_distances(err, reference)))


def _metric_error_rate(err, weights, normalizer, reference) -> float:
    return float(np.dot(weights, (err != 0).astype(np.float64)))


def _metric_worst_case(err, weights, normalizer, reference) -> float:
    return float(err.max()) / normalizer


#: Registry of the standard metrics, by canonical name.  This is the
#: closed vocabulary every ``--metric`` flag, sweep grid, library
#: group key and serving-layer query validates against; extend it here
#: and the whole stack (CLI choices, ``metric_names()``, stored
#: designs, ``/v1/best?metric=...``) picks the new metric up.
METRICS = {
    "wmed": ErrorMetric("wmed", _metric_wmed),
    "med": ErrorMetric("med", _metric_med),
    "mred": ErrorMetric("mred", _metric_mred),
    "error-rate": ErrorMetric("error-rate", _metric_error_rate),
    "worst-case": ErrorMetric("worst-case", _metric_worst_case),
}

_METRIC_ALIASES = {
    "mre": "mred",
    "er": "error-rate",
    "errorrate": "error-rate",
    "error_rate": "error-rate",
    "wce": "worst-case",
    "worstcase": "worst-case",
    "worst_case": "worst-case",
}


def metric_names() -> tuple:
    """Canonical metric names, stable order (CLI choices, sweep grids)."""
    return tuple(METRICS)


def get_metric(spec) -> ErrorMetric:
    """Resolve a metric name (or pass an :class:`ErrorMetric` through).

    Parameters
    ----------
    spec : str or ErrorMetric
        A canonical name, a registered alias (``mre`` -> ``mred``,
        ``er``/``error_rate`` -> ``error-rate``, ``wce``/``worst_case``
        -> ``worst-case``; case-insensitive), or an already-resolved
        metric object.

    Returns
    -------
    ErrorMetric

    Raises
    ------
    ValueError
        For anything outside the registry — the message lists the
        known names (surfaced verbatim as a 422 by the serving layer).
    """
    if isinstance(spec, ErrorMetric):
        return spec
    key = str(spec).strip().lower()
    key = _METRIC_ALIASES.get(key, key)
    metric = METRICS.get(key)
    if metric is None:
        raise ValueError(
            f"unknown error metric {spec!r}; known: {', '.join(METRICS)}"
        )
    return metric


# ----------------------------------------------------------------------
# Sampled estimation: metric estimates with confidence intervals
# ----------------------------------------------------------------------
#: Two-sided 95 % Student-t critical values by degrees of freedom; the
#: normal-approximation 1.96 serves dof > 30 (the error is < 2 % there).
_T_975 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def t_critical(dof: int) -> float:
    """Two-sided 95 % Student-t critical value for ``dof`` degrees.

    Exact table entries for dof 1..30, the normal approximation (1.96)
    beyond — no SciPy dependency.
    """
    if dof < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if dof <= len(_T_975):
        return _T_975[dof - 1]
    return 1.96


@dataclass(frozen=True)
class MetricEstimate:
    """A sampled metric estimate with a 95 % confidence interval.

    ``value`` is the pooled point estimate over all samples;
    ``[ci_low, ci_high]`` the 95 % interval.  For mean-type metrics the
    interval is the replicate-stream Student-t interval over the
    per-replicate estimates (``replicates >= 2``), or the per-sample
    normal approximation for a single stream.  ``worst-case`` is
    special: a sampled maximum is a *certified lower bound* on the true
    worst case but admits no distribution-free upper bound, so its
    interval is ``[value, inf)``.
    """

    value: float
    ci_low: float
    ci_high: float
    stderr: float
    replicates: int

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def covers(self, true_value: float) -> bool:
        """Whether the interval contains a (known) true metric value."""
        return self.ci_low <= true_value <= self.ci_high


def _sample_contributions(
    metric: "ErrorMetric",
    distances: np.ndarray,
    normalizer: float,
    reference: np.ndarray,
) -> np.ndarray:
    """Per-sample terms whose mean is the metric (mean-type metrics)."""
    name = metric.name
    if name in ("wmed", "med"):
        return distances / normalizer
    if name == "mred":
        return relative_error_distances(distances, reference)
    if name == "error-rate":
        return (distances != 0).astype(np.float64)
    raise ValueError(f"metric {name!r} is not a per-sample mean")


def estimate_from_distances(
    metric: "ErrorMetric",
    distances: np.ndarray,
    normalizer: float,
    reference: np.ndarray,
    replicates: int = 1,
) -> MetricEstimate:
    """Estimate a metric (with 95 % CI) from sampled error distances.

    ``distances`` and ``reference`` hold ``replicates`` consecutive
    equal-length blocks, one per independent sample stream (the layout
    :class:`repro.core.objective.SampledObjective` draws).  The point
    estimate is the pooled reduction over all samples with uniform
    weights — for samples drawn from the objective's distribution, the
    sampling itself embodies the weighting, so the plain mean *is* the
    weighted-metric estimator.

    CI construction: ``replicates >= 2`` uses the Student-t interval
    over the per-replicate estimates (each an independent stream);
    a single replicate falls back to the per-sample normal
    approximation.  ``worst-case`` returns ``[value, inf)`` — see
    :class:`MetricEstimate`.  Lower bounds are clamped at 0 (all five
    metrics are non-negative).
    """
    distances = np.asarray(distances, dtype=np.float64).ravel()
    n_total = distances.size
    if replicates < 1 or n_total % replicates:
        raise ValueError(
            f"{n_total} samples do not split into {replicates} replicates"
        )
    reference = np.asarray(reference, dtype=np.int64).ravel()
    pooled_w = np.full(n_total, 1.0 / n_total)
    value = metric.from_distances(distances, pooled_w, normalizer, reference)
    if metric.name == "worst-case":
        per_rep = distances.reshape(replicates, -1).max(axis=1) / normalizer
        stderr = (
            float(per_rep.std(ddof=1)) / math.sqrt(replicates)
            if replicates >= 2
            else float("nan")
        )
        return MetricEstimate(value, value, float("inf"), stderr, replicates)
    if replicates >= 2:
        n = n_total // replicates
        rep_w = np.full(n, 1.0 / n)
        dist_rows = distances.reshape(replicates, n)
        ref_rows = reference.reshape(replicates, n)
        per_rep = np.array(
            [
                metric.from_distances(
                    dist_rows[r], rep_w, normalizer, ref_rows[r]
                )
                for r in range(replicates)
            ]
        )
        stderr = float(per_rep.std(ddof=1)) / math.sqrt(replicates)
        half = t_critical(replicates - 1) * stderr
    else:
        contrib = _sample_contributions(
            metric, distances, normalizer, reference
        )
        stderr = float(contrib.std(ddof=1)) / math.sqrt(n_total)
        half = 1.96 * stderr
    return MetricEstimate(
        value, max(0.0, value - half), value + half, stderr, replicates
    )


@dataclass(frozen=True)
class ErrorReport:
    """Bundle of standard error figures for one candidate circuit."""

    med: float
    wmed: float
    wmed_percent: float
    mre: float
    error_rate: float
    worst_case: int
    bias: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WMED={self.wmed_percent:.4f}%  MED={self.med:.2f}  "
            f"MRE={self.mre:.4f}  ER={self.error_rate:.3f}  "
            f"WCE={self.worst_case}  bias={self.bias:+.2f}"
        )


def evaluate_errors_against(
    reference: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
    normalizer: Optional[float] = None,
) -> ErrorReport:
    """Full :class:`ErrorReport` against an arbitrary reference table.

    Component-agnostic sibling of :func:`evaluate_errors`: ``weights``
    is any per-vector importance vector (``None`` = uniform) and
    ``normalizer`` scales the weighted MED into the report's ``wmed``
    slot (``max |reference|`` when omitted).
    """
    reference = np.asarray(reference, dtype=np.int64).ravel()
    if normalizer is None:
        normalizer = float(np.abs(reference).max()) or 1.0
    w = mean_error_distance(reference, approx, weights) / normalizer
    return ErrorReport(
        med=mean_error_distance(reference, approx),
        wmed=w,
        wmed_percent=100.0 * w,
        mre=mean_relative_error(reference, approx, weights),
        error_rate=error_rate(reference, approx, weights),
        worst_case=worst_case_error(reference, approx),
        bias=error_bias(reference, approx, weights),
    )


def evaluate_errors(
    exact: np.ndarray,
    approx: np.ndarray,
    dist: Distribution,
) -> ErrorReport:
    """Compute the full :class:`ErrorReport` for a multiplier table."""
    return evaluate_errors_against(
        exact,
        approx,
        weights=vector_weights(dist, dist.width),
        normalizer=float(max_product_magnitude(dist.width, dist.signed)),
    )
