"""Arithmetic error metrics, including the paper's WMED.

All metrics operate on two integer truth tables in vector order (see
:mod:`repro.errors.truth_tables`): the exact function and a candidate
approximation.  The central metric is the **weighted mean error distance**:

.. math::

    \\mathrm{WMED}_D(\\tilde M) \\propto \\sum_{i,j}
        \\alpha_{i,j} \\, | i \\cdot j - \\tilde M(i, j) |,
    \\qquad \\alpha_{i,j} = D(i)

Normalization: the paper divides by :math:`2^{2w}` and reports percent.
Taken literally that constant does not bound the metric by 1, so for
percentage reporting we normalize the weighted expected error distance by
the maximum exact product magnitude, which *is* bounded by 1 and preserves
the paper's threshold semantics.  Both conventions are exposed:

* :func:`wmed` — ``E_{i~D, j~U}[|err|] / max|product|``   (used everywhere),
* :func:`wmed_paper` — the literal Eq. (WMED) value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .distributions import Distribution
from .truth_tables import max_product_magnitude, vector_weights

__all__ = [
    "error_distances",
    "mean_error_distance",
    "normalized_med",
    "wmed",
    "wmed_paper",
    "mean_relative_error",
    "error_rate",
    "worst_case_error",
    "error_bias",
    "ErrorReport",
    "evaluate_errors",
]


def _check(exact: np.ndarray, approx: np.ndarray) -> (np.ndarray, np.ndarray):
    exact = np.asarray(exact, dtype=np.int64).ravel()
    approx = np.asarray(approx, dtype=np.int64).ravel()
    if exact.shape != approx.shape:
        raise ValueError(
            f"truth tables differ in length: {exact.shape} vs {approx.shape}"
        )
    if exact.size == 0:
        raise ValueError("empty truth tables")
    return exact, approx


def error_distances(exact: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """Absolute error ``|exact - approx|`` per input vector."""
    exact, approx = _check(exact, approx)
    return np.abs(exact - approx)


def mean_error_distance(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """(Weighted) mean error distance in absolute output units.

    With ``weights`` the result is ``sum(w * |err|) / sum(w)`` — the
    expected error distance under the weight distribution.  Without, all
    vectors count equally (classic MED under uniform inputs).
    """
    dist = error_distances(exact, approx).astype(np.float64)
    if weights is None:
        return float(dist.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.shape != dist.shape:
        raise ValueError("weights length must match truth tables")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive mass")
    return float(np.dot(weights, dist) / total)


def normalized_med(
    exact: np.ndarray,
    approx: np.ndarray,
    width: int,
    signed: bool,
    weights: Optional[np.ndarray] = None,
) -> float:
    """MED normalized by the maximum exact product magnitude, in [0, ~1]."""
    med = mean_error_distance(exact, approx, weights)
    return med / max_product_magnitude(width, signed)


def wmed(
    exact: np.ndarray,
    approx: np.ndarray,
    dist: Distribution,
    width: Optional[int] = None,
) -> float:
    """Weighted mean error distance, normalized to [0, ~1].

    ``wmed = E_{x ~ D, y ~ Uniform}[ |x*y - approx(x,y)| ] / max|x*y|``.
    Multiply by 100 to get the percentage figures the paper quotes
    (0.005 % ... 10 %).

    Args:
        exact: Exact product truth table, vector order.
        approx: Candidate truth table, vector order.
        dist: Distribution of the ``x`` operand (low input half).
        width: Operand width; defaults to ``dist.width``.
    """
    width = dist.width if width is None else width
    weights = vector_weights(dist, width)
    return normalized_med(exact, approx, width, dist.signed, weights)


def wmed_paper(
    exact: np.ndarray,
    approx: np.ndarray,
    dist: Distribution,
    width: Optional[int] = None,
) -> float:
    """The literal Eq. (WMED): ``(1 / 2**(2w)) * sum alpha |err|``."""
    width = dist.width if width is None else width
    weights = vector_weights(dist, width)
    dist_abs = error_distances(exact, approx).astype(np.float64)
    return float(np.dot(weights, dist_abs) / (1 << (2 * width)))


def mean_relative_error(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
    epsilon: float = 1.0,
) -> float:
    """Mean relative error ``|err| / max(|exact|, epsilon)``."""
    exact, approx = _check(exact, approx)
    rel = np.abs(exact - approx) / np.maximum(np.abs(exact), epsilon)
    if weights is None:
        return float(rel.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    return float(np.dot(weights, rel) / weights.sum())


def error_rate(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Fraction (or weighted probability) of vectors with any error."""
    exact, approx = _check(exact, approx)
    wrong = (exact != approx).astype(np.float64)
    if weights is None:
        return float(wrong.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    return float(np.dot(weights, wrong) / weights.sum())


def worst_case_error(exact: np.ndarray, approx: np.ndarray) -> int:
    """Largest absolute error over all vectors."""
    return int(error_distances(exact, approx).max())


def error_bias(
    exact: np.ndarray,
    approx: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Signed mean error ``E[approx - exact]`` (accumulation bias)."""
    exact, approx = _check(exact, approx)
    signed_err = (approx - exact).astype(np.float64)
    if weights is None:
        return float(signed_err.mean())
    weights = np.asarray(weights, dtype=np.float64).ravel()
    return float(np.dot(weights, signed_err) / weights.sum())


@dataclass(frozen=True)
class ErrorReport:
    """Bundle of standard error figures for one candidate circuit."""

    med: float
    wmed: float
    wmed_percent: float
    mre: float
    error_rate: float
    worst_case: int
    bias: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WMED={self.wmed_percent:.4f}%  MED={self.med:.2f}  "
            f"MRE={self.mre:.4f}  ER={self.error_rate:.3f}  "
            f"WCE={self.worst_case}  bias={self.bias:+.2f}"
        )


def evaluate_errors(
    exact: np.ndarray,
    approx: np.ndarray,
    dist: Distribution,
) -> ErrorReport:
    """Compute the full :class:`ErrorReport` for a candidate truth table."""
    weights = vector_weights(dist, dist.width)
    w = wmed(exact, approx, dist)
    return ErrorReport(
        med=mean_error_distance(exact, approx),
        wmed=w,
        wmed_percent=100.0 * w,
        mre=mean_relative_error(exact, approx, weights),
        error_rate=error_rate(exact, approx, weights),
        worst_case=worst_case_error(exact, approx),
        bias=error_bias(exact, approx, weights),
    )
