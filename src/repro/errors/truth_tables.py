"""Helpers tying truth tables, operand values and WMED weights together.

Everything in the error package works on *vector order*: for a two-operand
``w``-bit component, input vector ``v`` encodes operand ``x`` in its low
``w`` bits and operand ``y`` in its high ``w`` bits (the layout produced by
:func:`repro.circuits.simulator.exhaustive_inputs` for the generator
circuits).  Truth tables, reference products and weight vectors are all
``2**(2w)``-long arrays in this order.
"""

from __future__ import annotations

import numpy as np

from .distributions import Distribution

__all__ = [
    "operand_values",
    "operand_index_grids",
    "exact_product_table",
    "operand_weights",
    "vector_weights",
    "vector_weights_joint",
    "weight_matrix",
    "table_as_matrix",
    "max_product_magnitude",
]


def operand_values(width: int, signed: bool) -> np.ndarray:
    """Numeric value of each raw ``width``-bit pattern, pattern order."""
    raw = np.arange(1 << width, dtype=np.int64)
    if signed:
        half = 1 << (width - 1)
        return np.where(raw >= half, raw - (1 << width), raw)
    return raw


def operand_index_grids(width: int) -> (np.ndarray, np.ndarray):
    """Raw pattern indices ``(x_idx, y_idx)`` for every input vector."""
    n = 1 << width
    x_idx = np.tile(np.arange(n, dtype=np.int64), n)
    y_idx = np.repeat(np.arange(n, dtype=np.int64), n)
    return x_idx, y_idx


def exact_product_table(width: int, signed: bool) -> np.ndarray:
    """Exact products ``x * y`` for every input vector, vector order."""
    vals = operand_values(width, signed)
    x_idx, y_idx = operand_index_grids(width)
    return vals[x_idx] * vals[y_idx]


def operand_weights(dist: Distribution, num_inputs: int) -> np.ndarray:
    """Per-vector weights ``alpha[v] = D(x(v))`` for any input count.

    The distribution applies to the ``x`` operand — the low ``dist.width``
    input bits of the standard layout — while the remaining inputs
    (second operand, accumulator bus, ...) are weighted uniformly.  Since
    ``x`` occupies the lowest bits of the vector index, its pattern
    cycles fastest and the weight vector is the PMF tiled across the
    ``2**(num_inputs - dist.width)`` settings of the other inputs.

    This generalizes :func:`vector_weights` beyond two equal-width
    operands (e.g. a MAC's ``[x, y, acc]`` input space).
    """
    if dist.width > num_inputs:
        raise ValueError(
            f"distribution width {dist.width} exceeds input count {num_inputs}"
        )
    return np.tile(dist.pmf, 1 << (num_inputs - dist.width))


def vector_weights(dist: Distribution, width: int) -> np.ndarray:
    """Per-vector WMED weights ``alpha[v] = D(x(v))``, vector order.

    The distribution applies to the ``x`` operand (the low input half),
    matching the paper's setup where one operand is an arbitrary input
    value and the other follows the application's data distribution.
    """
    if dist.width != width:
        raise ValueError(
            f"distribution width {dist.width} != component width {width}"
        )
    x_idx, _ = operand_index_grids(width)
    return dist.pmf[x_idx]


def vector_weights_joint(
    dist_x: Distribution, dist_y: Distribution
) -> np.ndarray:
    """Per-vector weights ``alpha[v] = Dx(x(v)) * Dy(y(v))``.

    The paper notes that ``alpha_{i,j} = D(i)`` is one choice and "a
    different approach can be chosen in general"; weighting *both*
    operands is the natural extension when both follow known statistics
    (e.g. weights x activations in a neural network).
    """
    if dist_x.width != dist_y.width:
        raise ValueError("operand widths differ")
    if dist_x.signed != dist_y.signed:
        raise ValueError("operand signedness differs")
    x_idx, y_idx = operand_index_grids(dist_x.width)
    return dist_x.pmf[x_idx] * dist_y.pmf[y_idx]


def weight_matrix(dist: Distribution) -> np.ndarray:
    """The full ``alpha[i, j] = D(i)`` matrix (rows = x pattern index)."""
    n = dist.size
    return np.repeat(dist.pmf[:, None], n, axis=1)


def table_as_matrix(table: np.ndarray, width: int) -> np.ndarray:
    """Reshape a vector-order truth table into an ``[x, y]`` matrix.

    ``matrix[x_idx, y_idx]`` is the circuit output for raw operand
    patterns ``x_idx`` (low input half) and ``y_idx`` (high input half).
    This is the LUT format consumed by the image-filter and NN substrates.
    """
    n = 1 << width
    table = np.asarray(table).ravel()
    if table.shape != (n * n,):
        raise ValueError(f"table must have {n * n} entries, got {table.shape}")
    return table.reshape(n, n).T.copy()


def max_product_magnitude(width: int, signed: bool) -> int:
    """Largest ``|x * y|`` attainable by a ``width``-bit multiplier."""
    if signed:
        return (1 << (width - 1)) ** 2
    return ((1 << width) - 1) ** 2
