"""Operand value distributions (probability mass functions).

A :class:`Distribution` assigns a probability to every value an operand of
a ``w``-bit component can take.  It is the object the paper's WMED metric
is parameterized by: the weight of input vector ``(x, y)`` is ``D(x)``.

Index convention
----------------
``pmf[k]`` is the probability of the operand whose *raw bit pattern* is
``k`` (``0 <= k < 2**width``).  For signed operands the numeric value of
pattern ``k`` is its two's-complement decoding; :attr:`Distribution.values`
gives the pattern -> value map.  Keeping the raw-pattern order makes the
pmf line up directly with the exhaustive-simulation vector order.

Provided constructors cover the paper's distributions:

* :func:`uniform` — Du,
* :func:`discretized_normal` — D1 (normal, arbitrary mean/std),
* :func:`discretized_half_normal` — D2 (half-normal, decaying from 0),
* :func:`empirical` — measured from application data (NN weights, filter
  coefficients), the "data-driven" path of the method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "Distribution",
    "uniform",
    "discretized_normal",
    "discretized_half_normal",
    "empirical",
    "from_pmf",
    "distribution_from_spec",
    "paper_d1",
    "paper_d2",
]


@dataclass(frozen=True)
class Distribution:
    """A PMF over the ``2**width`` bit patterns of a circuit operand.

    Attributes:
        width: Operand bit width.
        signed: Whether patterns decode as two's complement.
        pmf: Probabilities indexed by raw bit pattern; sums to 1.
        name: Label used in reports.
    """

    width: int
    signed: bool
    pmf: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        pmf = np.asarray(self.pmf, dtype=np.float64)
        if pmf.shape != (1 << self.width,):
            raise ValueError(
                f"pmf must have 2**{self.width} entries, got {pmf.shape}"
            )
        if np.any(pmf < 0):
            raise ValueError("pmf entries must be non-negative")
        total = pmf.sum()
        if not np.isfinite(total) or total <= 0:
            raise ValueError("pmf must have positive finite mass")
        object.__setattr__(self, "pmf", pmf / total)

    @property
    def size(self) -> int:
        """Number of distinct operand patterns, ``2**width``."""
        return 1 << self.width

    @property
    def values(self) -> np.ndarray:
        """Numeric operand value for each raw pattern index."""
        raw = np.arange(self.size, dtype=np.int64)
        if self.signed:
            half = self.size >> 1
            return np.where(raw >= half, raw - self.size, raw)
        return raw

    def probability_of_value(self, value: int) -> float:
        """Probability of a numeric operand value."""
        idx = int(value) & (self.size - 1)
        lo, hi = (-(self.size >> 1), (self.size >> 1) - 1) if self.signed else (
            0,
            self.size - 1,
        )
        if not lo <= value <= hi:
            raise ValueError(f"value {value} outside {self.width}-bit range")
        return float(self.pmf[idx])

    def mean(self) -> float:
        """Expected numeric operand value."""
        return float(np.dot(self.pmf, self.values))

    def entropy(self) -> float:
        """Shannon entropy in bits."""
        p = self.pmf[self.pmf > 0]
        return float(-(p * np.log2(p)).sum())

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw numeric operand values according to the PMF."""
        idx = rng.choice(self.size, size=count, p=self.pmf)
        return self.values[idx]

    def renamed(self, name: str) -> "Distribution":
        return Distribution(self.width, self.signed, self.pmf, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or ("signed" if self.signed else "unsigned")
        return f"<Distribution {label}: width={self.width}>"


def from_pmf(
    pmf: np.ndarray, width: int, signed: bool = False, name: str = ""
) -> Distribution:
    """Wrap a raw-pattern-indexed PMF array (normalizing it)."""
    return Distribution(width=width, signed=signed, pmf=pmf, name=name)


def uniform(width: int, signed: bool = False, name: str = "Du") -> Distribution:
    """Uniform distribution Du — the conventional-metric reference."""
    return Distribution(
        width=width,
        signed=signed,
        pmf=np.full(1 << width, 1.0 / (1 << width)),
        name=name,
    )


def _pmf_from_density(values: np.ndarray, density: np.ndarray) -> np.ndarray:
    pmf = np.asarray(density, dtype=np.float64)
    pmf = np.clip(pmf, 0.0, None)
    return pmf


def discretized_normal(
    width: int,
    mean: float,
    std: float,
    signed: bool = False,
    name: str = "",
) -> Distribution:
    """Normal density discretized over the operand's numeric range.

    The paper's D1 is an "arbitrarily chosen" normal over 0..255; see
    :func:`paper_d1` for that instance.
    """
    if std <= 0:
        raise ValueError("std must be positive")
    probe = Distribution(width, signed, np.full(1 << width, 1.0))
    vals = probe.values.astype(np.float64)
    density = np.exp(-0.5 * ((vals - mean) / std) ** 2)
    return Distribution(width, signed, _pmf_from_density(vals, density), name)


def discretized_half_normal(
    width: int,
    sigma: float,
    signed: bool = False,
    name: str = "",
) -> Distribution:
    """Half-normal density: mass decays from 0 with scale ``sigma``.

    For signed operands the density is symmetric in ``|value|`` — the
    natural analogue used for zero-peaked NN weight distributions.  For
    unsigned operands it decays from 0 upward (the paper's D2 shape).
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    probe = Distribution(width, signed, np.full(1 << width, 1.0))
    vals = np.abs(probe.values.astype(np.float64))
    density = np.exp(-0.5 * (vals / sigma) ** 2)
    return Distribution(width, signed, _pmf_from_density(vals, density), name)


def empirical(
    samples: np.ndarray,
    width: int,
    signed: bool = False,
    name: str = "empirical",
    smoothing: float = 0.0,
) -> Distribution:
    """PMF measured from observed operand values.

    This is the data-driven entry point: feed it the quantized weights of
    a trained network (or any signal trace) and use the result as the
    WMED weighting distribution.

    Args:
        samples: Integer operand values; must fit in ``width`` bits with
            the requested signedness.
        width: Operand bit width.
        signed: Two's-complement decoding of patterns.
        name: Report label.
        smoothing: Additive (Laplace) smoothing mass per pattern.  Zero
            keeps unobserved patterns at exactly zero weight, which lets
            CGP approximate them arbitrarily aggressively — pass a small
            value (e.g. ``1e-4``) to retain a safety floor.
    """
    samples = np.asarray(samples).astype(np.int64).ravel()
    size = 1 << width
    lo, hi = (-(size >> 1), (size >> 1) - 1) if signed else (0, size - 1)
    if samples.size and (samples.min() < lo or samples.max() > hi):
        raise ValueError(
            f"samples outside {width}-bit {'signed' if signed else 'unsigned'} range"
        )
    patterns = samples & (size - 1)
    counts = np.bincount(patterns, minlength=size).astype(np.float64)
    counts += smoothing
    if counts.sum() == 0:
        raise ValueError("no samples and no smoothing: empty distribution")
    return Distribution(width, signed, counts, name)


def distribution_from_spec(spec: str, width: int, signed: bool) -> Distribution:
    """Build a distribution from a compact command-line spec string.

    Recognized specs: ``uniform`` (or ``du``), ``d1``, ``d2``,
    ``half-normal:<sigma>`` and ``normal:<mean>:<std>``.  This is the
    parser behind the CLI's ``--dist`` option and the design-library
    builder's grid specs.
    """
    spec = spec.strip().lower()
    if spec in ("uniform", "du"):
        return uniform(width, signed=signed, name="Du")
    if spec == "d1":
        return paper_d1(width)
    if spec == "d2":
        return paper_d2(width)
    if spec.startswith("half-normal:"):
        sigma = float(spec.split(":", 1)[1])
        return discretized_half_normal(
            width, sigma=sigma, signed=signed, name=spec
        )
    if spec.startswith("normal:"):
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError("normal spec is normal:<mean>:<std>")
        return discretized_normal(
            width, mean=float(parts[1]), std=float(parts[2]),
            signed=signed, name=spec,
        )
    raise ValueError(f"unknown distribution spec {spec!r}")


def paper_d1(width: int = 8) -> Distribution:
    """The paper's D1: normal centered mid-range (peak near 127 for 8-bit)."""
    center = (1 << width) / 2 - 0.5
    return discretized_normal(
        width, mean=center, std=(1 << width) / 6.7, signed=False, name="D1"
    )


def paper_d2(width: int = 8) -> Distribution:
    """The paper's D2: half-normal decaying from 0."""
    return discretized_half_normal(
        width, sigma=(1 << width) / 3.35, signed=False, name="D2"
    )
