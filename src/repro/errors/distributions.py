"""Operand value distributions (probability mass functions).

A :class:`Distribution` assigns a probability to every value an operand of
a ``w``-bit component can take.  It is the object the paper's WMED metric
is parameterized by: the weight of input vector ``(x, y)`` is ``D(x)``.

Index convention
----------------
``pmf[k]`` is the probability of the operand whose *raw bit pattern* is
``k`` (``0 <= k < 2**width``).  For signed operands the numeric value of
pattern ``k`` is its two's-complement decoding; :attr:`Distribution.values`
gives the pattern -> value map.  Keeping the raw-pattern order makes the
pmf line up directly with the exhaustive-simulation vector order.

Provided constructors cover the paper's distributions:

* :func:`uniform` — Du,
* :func:`discretized_normal` — D1 (normal, arbitrary mean/std),
* :func:`discretized_half_normal` — D2 (half-normal, decaying from 0),
* :func:`empirical` — measured from application data (NN weights, filter
  coefficients), the "data-driven" path of the method.

Wide operands
-------------
A materialized pmf needs ``2**width`` float64 entries, which stops being
practical somewhere past 20 bits.  Above :data:`PMF_WIDTH_CUTOFF` the
constructors therefore return a :class:`WideDistribution` — the same
``width`` / ``signed`` / ``name`` surface and the same
``sample_patterns`` sampling contract, but parametric: samples are drawn
by exact rejection from the underlying continuous density (or directly,
for the uniform law) and the pmf is never materialized.  Sampling is
fully deterministic given the :class:`numpy.random.Generator`, which is
what the sampled-evaluation mode's reproducibility contract relies on.

Narrow distributions sample by inverse-CDF on the cached cumulative
mass — one uniform draw and one ``searchsorted`` per sample — so narrow
and wide distributions share one stream discipline: exactly the draws a
``Generator`` hands out, no table-dependent consumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

__all__ = [
    "PMF_WIDTH_CUTOFF",
    "Distribution",
    "WideDistribution",
    "uniform",
    "discretized_normal",
    "discretized_half_normal",
    "empirical",
    "from_pmf",
    "distribution_from_spec",
    "paper_d1",
    "paper_d2",
]

#: Widest operand for which constructors materialize a pmf (2**20 float64
#: entries = 8 MiB); above it they return a :class:`WideDistribution`.
PMF_WIDTH_CUTOFF = 20


@dataclass(frozen=True)
class Distribution:
    """A PMF over the ``2**width`` bit patterns of a circuit operand.

    Attributes:
        width: Operand bit width.
        signed: Whether patterns decode as two's complement.
        pmf: Probabilities indexed by raw bit pattern; sums to 1.
        name: Label used in reports.
    """

    width: int
    signed: bool
    pmf: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        pmf = np.asarray(self.pmf, dtype=np.float64)
        if pmf.shape != (1 << self.width,):
            raise ValueError(
                f"pmf must have 2**{self.width} entries, got {pmf.shape}"
            )
        if np.any(pmf < 0):
            raise ValueError("pmf entries must be non-negative")
        total = pmf.sum()
        if not np.isfinite(total) or total <= 0:
            raise ValueError("pmf must have positive finite mass")
        object.__setattr__(self, "pmf", pmf / total)

    @property
    def size(self) -> int:
        """Number of distinct operand patterns, ``2**width``."""
        return 1 << self.width

    @property
    def values(self) -> np.ndarray:
        """Numeric operand value for each raw pattern index."""
        raw = np.arange(self.size, dtype=np.int64)
        if self.signed:
            half = self.size >> 1
            return np.where(raw >= half, raw - self.size, raw)
        return raw

    def probability_of_value(self, value: int) -> float:
        """Probability of a numeric operand value."""
        idx = int(value) & (self.size - 1)
        lo, hi = (-(self.size >> 1), (self.size >> 1) - 1) if self.signed else (
            0,
            self.size - 1,
        )
        if not lo <= value <= hi:
            raise ValueError(f"value {value} outside {self.width}-bit range")
        return float(self.pmf[idx])

    def mean(self) -> float:
        """Expected numeric operand value."""
        return float(np.dot(self.pmf, self.values))

    def entropy(self) -> float:
        """Shannon entropy in bits."""
        p = self.pmf[self.pmf > 0]
        return float(-(p * np.log2(p)).sum())

    @property
    def _cdf(self) -> np.ndarray:
        # Lazily cached cumulative mass for inverse-CDF sampling (the
        # dataclass is frozen but still carries a __dict__).
        cdf = self.__dict__.get("_cdf_arr")
        if cdf is None:
            cdf = np.cumsum(self.pmf)
            cdf[-1] = 1.0
            object.__setattr__(self, "_cdf_arr", cdf)
        return cdf

    def sample_patterns(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw raw bit patterns by inverse-CDF (one uniform per sample).

        Zero-mass patterns are never drawn: pattern ``k`` needs
        ``cdf[k-1] <= u < cdf[k]``, an empty interval when ``pmf[k]`` is
        zero.  One ``rng.random`` call of ``count`` draws is consumed,
        independent of the pmf — the stream-discipline property the
        sampled-evaluation mode relies on.
        """
        u = rng.random(count)
        idx = np.searchsorted(self._cdf, u, side="right")
        return np.minimum(idx, self.size - 1).astype(np.uint64)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw numeric operand values according to the PMF."""
        return self.values[self.sample_patterns(count, rng).astype(np.int64)]

    def renamed(self, name: str) -> "Distribution":
        return Distribution(self.width, self.signed, self.pmf, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or ("signed" if self.signed else "unsigned")
        return f"<Distribution {label}: width={self.width}>"


class WideDistribution:
    """A parametric operand distribution that never materializes its pmf.

    The wide-width counterpart of :class:`Distribution`: same ``width`` /
    ``signed`` / ``name`` surface and the same
    :meth:`sample_patterns` contract, but the law is represented by a
    sampler (exact rejection from the continuous density, or a direct
    integer draw for the uniform law) instead of a ``2**width`` table.
    ``spec`` is the canonical parameter string (e.g.
    ``"normal:8388608:1000000"``) — the distribution's identity for
    cache keys and reports.

    Accessing :attr:`pmf` or :attr:`values` raises: both would
    materialize ``2**width`` entries, exactly what this class exists to
    avoid.
    """

    def __init__(
        self,
        width: int,
        signed: bool,
        name: str,
        spec: str,
        sampler: Callable[[int, np.random.Generator], np.ndarray],
    ) -> None:
        if width <= 0 or width > 62:
            raise ValueError("WideDistribution width must be in 1..62")
        self.width = width
        self.signed = signed
        self.name = name
        self.spec = spec
        self._sampler = sampler

    @property
    def size(self) -> int:
        return 1 << self.width

    @property
    def pmf(self) -> np.ndarray:
        raise ValueError(
            f"distribution {self.name or self.spec!r} is parametric: its "
            f"pmf would need 2**{self.width} entries; use sample_patterns "
            f"(sampled evaluation) instead of the exhaustive path"
        )

    @property
    def values(self) -> np.ndarray:
        raise ValueError(
            f"distribution {self.name or self.spec!r} is parametric: the "
            f"pattern->value table would need 2**{self.width} entries"
        )

    def decode(self, patterns: np.ndarray) -> np.ndarray:
        """Numeric value of each raw pattern (two's complement if signed)."""
        v = patterns.astype(np.int64)
        if self.signed:
            half = np.int64(1 << (self.width - 1))
            v = np.where(v >= half, v - np.int64(1 << self.width), v)
        return v

    def sample_patterns(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw raw bit patterns from the parametric law."""
        return self._sampler(count, rng)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw numeric operand values from the parametric law."""
        return self.decode(self.sample_patterns(count, rng))

    def renamed(self, name: str) -> "WideDistribution":
        return WideDistribution(
            self.width, self.signed, name, self.spec, self._sampler
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or self.spec
        return f"<WideDistribution {label}: width={self.width}>"


#: Either representation; both provide width/signed/name/sample_patterns.
AnyDistribution = Union[Distribution, WideDistribution]


def _operand_range(width: int, signed: bool) -> tuple:
    if signed:
        return -(1 << (width - 1)), (1 << (width - 1)) - 1
    return 0, (1 << width) - 1


def _normal_mass(mean: float, std: float, lo: float, hi: float) -> float:
    """Mass of ``[lo, hi]`` under ``N(mean, std)`` (for degeneracy checks)."""
    s = std * math.sqrt(2.0)
    return 0.5 * (math.erf((hi - mean) / s) - math.erf((lo - mean) / s))


def _check_density_mass(
    total: float, what: str, width: int, signed: bool
) -> None:
    """Raise a diagnosable error for densities that underflow to zero.

    A far-out-of-range mean (e.g. ``normal:100000:1`` on an 8-bit
    operand) makes every density value underflow to 0.0; without this
    check the failure surfaces later as the cryptic ``pmf must have
    positive finite mass``.
    """
    if not np.isfinite(total) or total <= 0.0:
        lo, hi = _operand_range(width, signed)
        raise ValueError(
            f"distribution {what} has no mass on the {width}-bit "
            f"{'signed' if signed else 'unsigned'} operand range "
            f"[{lo}, {hi}]: the density underflows to zero everywhere; "
            f"move the mean into range or widen the scale"
        )


def _pattern_mask(width: int) -> np.int64:
    return np.int64((1 << width) - 1)


def _rejection_normal(
    count: int,
    rng: np.random.Generator,
    mean: float,
    std: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Integers in ``[lo, hi]`` from a rounded, truncated normal.

    Exact rejection: draw from the continuous ``N(mean, std)``, keep
    draws inside ``[lo - 0.5, hi + 0.5)``, round to the nearest integer.
    Deterministic for a given generator state.
    """
    lo_c, hi_c = lo - 0.5, hi + 0.5
    out = np.empty(count, dtype=np.float64)
    have = 0
    while have < count:
        # Oversample by the inverse acceptance rate (already checked to
        # be far from zero by the constructor) to finish in ~1 round.
        draw = rng.normal(mean, std, size=2 * max(count - have, 32))
        keep = draw[(draw >= lo_c) & (draw < hi_c)]
        take = min(keep.size, count - have)
        out[have : have + take] = keep[:take]
        have += take
    return np.clip(np.rint(out).astype(np.int64), lo, hi)


def from_pmf(
    pmf: np.ndarray, width: int, signed: bool = False, name: str = ""
) -> Distribution:
    """Wrap a raw-pattern-indexed PMF array (normalizing it)."""
    return Distribution(width=width, signed=signed, pmf=pmf, name=name)


def uniform(
    width: int, signed: bool = False, name: str = "Du"
) -> AnyDistribution:
    """Uniform distribution Du — the conventional-metric reference.

    Above :data:`PMF_WIDTH_CUTOFF` the result is a parametric
    :class:`WideDistribution` (uniform values are uniform raw patterns,
    signed or not, so the sampler is a direct integer draw).
    """
    if width > PMF_WIDTH_CUTOFF:
        def _sample(count: int, rng: np.random.Generator) -> np.ndarray:
            return rng.integers(0, 1 << width, size=count, dtype=np.uint64)

        return WideDistribution(width, signed, name, "uniform", _sample)
    return Distribution(
        width=width,
        signed=signed,
        pmf=np.full(1 << width, 1.0 / (1 << width)),
        name=name,
    )


def _pmf_from_density(density: np.ndarray) -> np.ndarray:
    pmf = np.asarray(density, dtype=np.float64)
    pmf = np.clip(pmf, 0.0, None)
    return pmf


def discretized_normal(
    width: int,
    mean: float,
    std: float,
    signed: bool = False,
    name: str = "",
) -> AnyDistribution:
    """Normal density discretized over the operand's numeric range.

    The paper's D1 is an "arbitrarily chosen" normal over 0..255; see
    :func:`paper_d1` for that instance.  Above :data:`PMF_WIDTH_CUTOFF`
    the result is a parametric :class:`WideDistribution` sampling the
    rounded, range-truncated normal by exact rejection.
    """
    if std <= 0:
        raise ValueError("std must be positive")
    what = name or f"normal(mean={mean:g}, std={std:g})"
    if width > PMF_WIDTH_CUTOFF:
        lo, hi = _operand_range(width, signed)
        _check_density_mass(
            _normal_mass(mean, std, lo - 0.5, hi + 0.5), what, width, signed
        )

        def _sample(count: int, rng: np.random.Generator) -> np.ndarray:
            ints = _rejection_normal(count, rng, mean, std, lo, hi)
            return (ints & _pattern_mask(width)).astype(np.uint64)

        return WideDistribution(
            width, signed, name, f"normal:{mean:g}:{std:g}", _sample
        )
    probe = Distribution(width, signed, np.full(1 << width, 1.0))
    vals = probe.values.astype(np.float64)
    density = np.exp(-0.5 * ((vals - mean) / std) ** 2)
    _check_density_mass(float(density.sum()), what, width, signed)
    return Distribution(width, signed, _pmf_from_density(density), name)


def discretized_half_normal(
    width: int,
    sigma: float,
    signed: bool = False,
    name: str = "",
) -> AnyDistribution:
    """Half-normal density: mass decays from 0 with scale ``sigma``.

    For signed operands the density is symmetric in ``|value|`` — the
    natural analogue used for zero-peaked NN weight distributions.  For
    unsigned operands it decays from 0 upward (the paper's D2 shape).
    Above :data:`PMF_WIDTH_CUTOFF` the result is a parametric
    :class:`WideDistribution` (signed: range-truncated ``N(0, sigma)``;
    unsigned: its absolute value), sampled by exact rejection.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    what = name or f"half-normal(sigma={sigma:g})"
    if width > PMF_WIDTH_CUTOFF:
        lo, hi = _operand_range(width, signed)
        if signed:
            mass = _normal_mass(0.0, sigma, lo - 0.5, hi + 0.5)
        else:
            mass = 2.0 * _normal_mass(0.0, sigma, 0.0, hi + 0.5)
        _check_density_mass(mass, what, width, signed)

        def _sample(count: int, rng: np.random.Generator) -> np.ndarray:
            if signed:
                ints = _rejection_normal(count, rng, 0.0, sigma, lo, hi)
            else:
                # |N(0, sigma)| truncated to the unsigned range: reflect
                # before rejecting so the kept mass matches the density.
                out = np.empty(count, dtype=np.float64)
                have = 0
                hi_c = hi + 0.5
                while have < count:
                    draw = np.abs(
                        rng.normal(0.0, sigma, size=2 * max(count - have, 32))
                    )
                    keep = draw[draw < hi_c]
                    take = min(keep.size, count - have)
                    out[have : have + take] = keep[:take]
                    have += take
                ints = np.clip(np.rint(out).astype(np.int64), 0, hi)
            return (ints & _pattern_mask(width)).astype(np.uint64)

        return WideDistribution(
            width, signed, name, f"half-normal:{sigma:g}", _sample
        )
    probe = Distribution(width, signed, np.full(1 << width, 1.0))
    vals = np.abs(probe.values.astype(np.float64))
    density = np.exp(-0.5 * (vals / sigma) ** 2)
    _check_density_mass(float(density.sum()), what, width, signed)
    return Distribution(width, signed, _pmf_from_density(density), name)


def empirical(
    samples: np.ndarray,
    width: int,
    signed: bool = False,
    name: str = "empirical",
    smoothing: float = 0.0,
) -> Distribution:
    """PMF measured from observed operand values.

    This is the data-driven entry point: feed it the quantized weights of
    a trained network (or any signal trace) and use the result as the
    WMED weighting distribution.

    Args:
        samples: Integer operand values; must fit in ``width`` bits with
            the requested signedness.
        width: Operand bit width.
        signed: Two's-complement decoding of patterns.
        name: Report label.
        smoothing: Additive (Laplace) smoothing mass per pattern.  Zero
            keeps unobserved patterns at exactly zero weight, which lets
            CGP approximate them arbitrarily aggressively — pass a small
            value (e.g. ``1e-4``) to retain a safety floor.
    """
    samples = np.asarray(samples).astype(np.int64).ravel()
    size = 1 << width
    lo, hi = (-(size >> 1), (size >> 1) - 1) if signed else (0, size - 1)
    if samples.size and (samples.min() < lo or samples.max() > hi):
        raise ValueError(
            f"samples outside {width}-bit {'signed' if signed else 'unsigned'} range"
        )
    patterns = samples & (size - 1)
    counts = np.bincount(patterns, minlength=size).astype(np.float64)
    counts += smoothing
    if counts.sum() == 0:
        raise ValueError("no samples and no smoothing: empty distribution")
    return Distribution(width, signed, counts, name)


#: The accepted ``--dist`` spec grammar, quoted by every parse error.
_SPEC_FORMS = (
    "uniform (or du), d1, d2, half-normal:<sigma>, normal:<mean>:<std>"
)


def _spec_error(spec: str, why: str) -> ValueError:
    return ValueError(
        f"bad distribution spec {spec!r}: {why}; accepted forms: "
        f"{_SPEC_FORMS}"
    )


def _spec_float(spec: str, text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise _spec_error(spec, f"{what} {text!r} is not a number") from None


def distribution_from_spec(
    spec: str, width: int, signed: bool
) -> AnyDistribution:
    """Build a distribution from a compact command-line spec string.

    Recognized specs: ``uniform`` (or ``du``), ``d1``, ``d2``,
    ``half-normal:<sigma>`` and ``normal:<mean>:<std>``.  This is the
    parser behind the CLI's ``--dist`` option and the design-library
    builder's grid specs.  Malformed specs raise a :class:`ValueError`
    naming the accepted forms (surfaced as one-line CLI errors and
    422-style envelopes by the serving layer).  Above
    :data:`PMF_WIDTH_CUTOFF` the parametric :class:`WideDistribution`
    variants are returned.
    """
    spec = spec.strip().lower()
    if spec in ("uniform", "du"):
        return uniform(width, signed=signed, name="Du")
    if spec in ("d1", "d2"):
        # The paper defines D1/D2 over unsigned 8-bit patterns; their
        # generalizations here stay unsigned.  Silently returning the
        # unsigned pmf for a signed operand would weight each pattern by
        # the wrong two's-complement decoding, so refuse instead.
        if signed:
            raise ValueError(
                f"distribution {spec!r} is defined over unsigned operand "
                f"patterns; it cannot weight a signed component (use "
                f"half-normal:<sigma> / normal:<mean>:<std> for signed "
                f"operands)"
            )
        return paper_d1(width) if spec == "d1" else paper_d2(width)
    if spec.startswith("half-normal:"):
        sigma = _spec_float(spec, spec.split(":", 1)[1], "sigma")
        return discretized_half_normal(
            width, sigma=sigma, signed=signed, name=spec
        )
    if spec.startswith("normal:"):
        parts = spec.split(":")
        if len(parts) != 3:
            raise _spec_error(spec, "normal takes exactly mean and std")
        return discretized_normal(
            width,
            mean=_spec_float(spec, parts[1], "mean"),
            std=_spec_float(spec, parts[2], "std"),
            signed=signed, name=spec,
        )
    raise _spec_error(spec, "unknown distribution")


def paper_d1(width: int = 8) -> AnyDistribution:
    """The paper's D1: normal centered mid-range (peak near 127 for 8-bit)."""
    center = (1 << width) / 2 - 0.5
    return discretized_normal(
        width, mean=center, std=(1 << width) / 6.7, signed=False, name="D1"
    )


def paper_d2(width: int = 8) -> AnyDistribution:
    """The paper's D2: half-normal decaying from 0."""
    return discretized_half_normal(
        width, sigma=(1 << width) / 3.35, signed=False, name="D2"
    )
