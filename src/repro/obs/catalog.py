"""The static metric catalog: every production metric, declared once.

Everything here must be deterministic at import time — slot assignment
depends only on declaration order, and the slab's catalog digest
(:meth:`MetricsRegistry.catalog_digest`) is what lets a forked worker
attach to the supervisor's slab.  That is why this module imports
nothing from the rest of ``repro``: the serve route names are
hard-coded strings (``tests/test_obs.py`` pins them against the live
route table) rather than derived from ``serve.routes``.

Units follow Prometheus conventions: ``*_total`` counters, ``*_seconds``
histograms (raw observations are ``perf_counter_ns`` nanoseconds,
scaled by 1e-9 on exposition), gauges are plain int64.
"""

from __future__ import annotations

import os
from typing import Dict, List

from .metrics import registry

REGISTRY = registry()

#: Closed route-label vocabulary.  Must equal the serve route-table
#: names plus the "other" fallback (drift-tested in tests/test_obs.py).
ROUTE_LABELS = ("health", "best", "front", "stats", "design", "openapi",
                "metrics", "other")

# -- serve -------------------------------------------------------------
HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "Completed HTTP requests by route (wire fast path + dispatcher).",
    label="route", values=ROUTE_LABELS)
HTTP_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "Server-side request handling latency by route.",
    shift=10, buckets=24, scale=1e-9, label="route", values=ROUTE_LABELS)
HTTP_NOT_MODIFIED = REGISTRY.counter(
    "repro_http_not_modified_total",
    "Conditional requests answered 304 via ETag revalidation.")
HTTP_WIRE_HITS = REGISTRY.counter(
    "repro_http_wire_hits_total",
    "Requests served from the preserialised wire cache (no dispatch).")
HTTP_WIRE_FILLS = REGISTRY.counter(
    "repro_http_wire_fills_total",
    "Wire-cache entries memoized from dispatched responses.")
HTTP_DISPATCH = REGISTRY.counter(
    "repro_http_dispatch_total",
    "Requests that went through the full route dispatcher.")
RESPONSE_CACHE_HITS = REGISTRY.counter(
    "repro_serve_response_cache_hits_total",
    "Response-cache lookups that returned a cached body.")
RESPONSE_CACHE_MISSES = REGISTRY.counter(
    "repro_serve_response_cache_misses_total",
    "Response-cache lookups that fell through to the handler.")
SNAPSHOT_REBUILDS = REGISTRY.counter(
    "repro_serve_snapshot_rebuilds_total",
    "Immutable store snapshots rebuilt after on-disk state changes.")
SNAPSHOT_DESIGNS = REGISTRY.gauge(
    "repro_serve_snapshot_designs",
    "Designs in this worker's current store snapshot.")
SNAPSHOT_STATE_NS = REGISTRY.gauge(
    "repro_serve_snapshot_state_ns",
    "st_mtime_ns of the store file backing the current snapshot.")
WORKER_PID = REGISTRY.gauge(
    "repro_worker_pid",
    "OS pid of the serving process that owns this lane.")

# -- engine ------------------------------------------------------------
ENGINE_EVALS = REGISTRY.counter(
    "repro_engine_evals_total",
    "Candidate evaluations served (including eval-cache hits).")
ENGINE_EVAL_NS = REGISTRY.counter(
    "repro_engine_eval_ns_total",
    "Nanoseconds spent in evaluate()/evaluate_batch() bodies.")
ENGINE_COMPILE_NS = REGISTRY.counter(
    "repro_engine_compile_ns_total",
    "Nanoseconds spent compiling phenotypes into dispatch lanes.")
ENGINE_CACHE_HITS = REGISTRY.counter(
    "repro_engine_cache_hits_total",
    "Phenotype-signature eval-cache hits.")
ENGINE_CACHE_MISSES = REGISTRY.counter(
    "repro_engine_cache_misses_total",
    "Phenotype-signature eval-cache misses.")
ENGINE_BATCH_CALLS = REGISTRY.counter(
    "repro_engine_batch_calls_total",
    "Batched kernel dispatches (one C call per brood).")
ENGINE_BATCH_EVALS = REGISTRY.counter(
    "repro_engine_batch_evals_total",
    "Candidate lanes evaluated by batched kernel dispatches.")
ENGINE_BATCH_DEDUP = REGISTRY.counter(
    "repro_engine_batch_dedup_total",
    "Batch candidates answered by in-brood phenotype deduplication.")
ENGINE_BATCH_SIZE = REGISTRY.histogram(
    "repro_engine_batch_size",
    "Lanes per batched kernel dispatch.",
    shift=0, buckets=14, scale=1.0)
ENGINE_BACKEND = REGISTRY.gauge(
    "repro_engine_backend_active",
    "1 when an evaluator with this backend has been constructed.",
    label="backend", values=("native", "numpy"))

# -- library build -----------------------------------------------------
BUILD_CELLS_PLANNED = REGISTRY.gauge(
    "repro_build_cells_planned",
    "Grid cells in the currently running library build.")
BUILD_CELLS = REGISTRY.counter(
    "repro_build_cells_total",
    "Library-build cells finished, by admission status.",
    label="status", values=("added", "dominated", "duplicate", "resumed"))
BUILD_EVALUATIONS = REGISTRY.counter(
    "repro_build_evaluations_total",
    "Evolution evaluations spent by finished build cells.")
BUILD_CELL_SECONDS = REGISTRY.histogram(
    "repro_build_cell_seconds",
    "Wall time per finished build cell.",
    shift=20, buckets=24, scale=1e-9)
STORE_ADMISSIONS = REGISTRY.counter(
    "repro_store_admissions_total",
    "DesignStore.add() outcomes by Pareto admission status.",
    label="status", values=("added", "dominated", "duplicate"))
STORE_PRUNED = REGISTRY.counter(
    "repro_store_pruned_total",
    "Incumbent designs pruned after being dominated by an admission.")
BUILD_SHARD_INDEX = REGISTRY.gauge(
    "repro_build_shard_index",
    "Zero-based shard index of the currently running sharded build.")
BUILD_SHARD_COUNT = REGISTRY.gauge(
    "repro_build_shard_count",
    "Total shard count of the currently running sharded build (1 when "
    "unsharded).")
MERGE_SOURCES = REGISTRY.counter(
    "repro_merge_sources_total",
    "Input stores read by library merges.")
MERGE_ROWS = REGISTRY.counter(
    "repro_merge_rows_total",
    "Rows offered to library merges, by Pareto admission status.",
    label="status", values=("added", "dominated", "duplicate"))
MERGE_CELLS = REGISTRY.counter(
    "repro_merge_cells_total",
    "Build-cell checkpoints united into merge outputs.")

# -- tracing -----------------------------------------------------------
TRACE_SPANS = REGISTRY.counter(
    "repro_trace_spans_total",
    "Spans written to the REPRO_TRACE JSONL sink.")

#: Pre-resolved children for hot paths: one dict lookup, no Family call.
#: In disabled mode child_map() is empty, so every label maps onto the
#: shared null metric and the hot path stays a plain dict index.
HTTP_REQUESTS_BY_ROUTE = (HTTP_REQUESTS.child_map()
                          or {v: HTTP_REQUESTS for v in ROUTE_LABELS})
HTTP_LATENCY_BY_ROUTE = (HTTP_LATENCY.child_map()
                         or {v: HTTP_LATENCY for v in ROUTE_LABELS})


def route_label(name: object) -> str:
    """Map an arbitrary route name onto the closed label vocabulary."""
    return name if name in HTTP_REQUESTS_BY_ROUTE else "other"


def fleet_summary() -> Dict[str, object]:
    """Per-worker view of the shared slab for ``/healthz``.

    A lane is reported when it has recorded anything (a live worker
    always has: ``repro_worker_pid`` is set at server construction) or
    when it is this process's own lane.
    """
    if not REGISTRY.entries():
        return {"enabled": False, "lanes": 0, "workers": [],
                "requests_total": 0, "snapshot_rebuilds": 0}
    lanes = REGISTRY.lanes_view()
    workers: List[Dict[str, int]] = []
    for i in range(lanes.shape[0]):
        lane = lanes[i]
        own = i == REGISTRY.lane_index
        if not lane.any() and not own:
            continue
        pid = int(lane[WORKER_PID.slot])
        workers.append({
            "lane": i,
            "pid": pid or (os.getpid() if own else 0),
            "requests": HTTP_REQUESTS.lane_sum(lane),
            "snapshot_designs": int(lane[SNAPSHOT_DESIGNS.slot]),
            "snapshot_rebuilds": int(lane[SNAPSHOT_REBUILDS.slot]),
        })
    return {
        "enabled": True,
        "lanes": int(lanes.shape[0]),
        "workers": workers,
        "requests_total": HTTP_REQUESTS.total(),
        "snapshot_rebuilds": SNAPSHOT_REBUILDS.total(),
    }
