"""Zero-dependency observability: metrics registry, shared-memory slab
for multi-process fleets, Prometheus exposition, and span tracing.

Public surface::

    from repro import obs

    obs.catalog.ENGINE_EVALS.inc()          # hot-path counter
    with obs.span("build.cell", width=8):   # REPRO_TRACE JSONL span
        ...
    text = obs.render_prometheus()          # /metrics body

Multi-process lifecycle (``serve --procs N``): the supervisor calls
``obs.create_slab(N)`` before forking, each worker calls
``obs.attach_worker(path, lane)`` first thing, and any worker's
``/metrics`` then sums every lane.  ``REPRO_OBS=0`` turns the whole
subsystem into no-ops; ``REPRO_TRACE=<path>`` enables span tracing.
"""

from __future__ import annotations

from typing import Optional

from . import catalog, trace
from .export import CONTENT_TYPE, render_prometheus
from .metrics import MetricsRegistry, enabled, registry
from .trace import span

__all__ = [
    "CONTENT_TYPE",
    "MetricsRegistry",
    "attach_worker",
    "catalog",
    "create_slab",
    "enabled",
    "fleet_summary",
    "read_slab",
    "registry",
    "release_slab",
    "render_prometheus",
    "span",
    "trace",
]

fleet_summary = catalog.fleet_summary


def create_slab(lanes: int) -> Optional[str]:
    """Pre-fork: create a shared slab for ``lanes`` workers (or None)."""
    return registry().create_slab(lanes)


def attach_worker(path: Optional[str], lane: int) -> None:
    """Post-fork: point this worker's metrics at its slab lane."""
    if path:
        registry().attach(path, lane)


def read_slab(path: str):
    """Validated ``(lanes, capacity)`` copy of a slab, without attaching."""
    return registry().read_slab(path)


def release_slab() -> None:
    """Supervisor shutdown: unlink the slab file (workers are gone)."""
    registry().unlink_slab()
