"""Structured span tracing to a JSONL sink.

Enabled by pointing ``REPRO_TRACE`` at a file path; otherwise
``span()`` returns a shared no-op singleton and the disabled cost is
one attribute check.  Spans measure ``perf_counter_ns`` durations, and
a thread-local stack links children to parents, so a ``build.cell``
span opened in the sweep worker naturally becomes the parent of the
``evolve.run`` span opened inside it.

One JSON object per line::

    {"name": "evolve.run", "id": "1a2b.3", "parent": "1a2b.2",
     "pid": 6699, "tid": 6701, "ts": 1754650000.123456,
     "dur_ns": 18273645, "tags": {"generations": 120}}

``ts`` is the wall-clock end of the span (``time.time()``); ``dur_ns``
is monotonic.  Lines are written with a single line-buffered ``write``
to an append-mode file, so concurrent workers interleave whole lines.
The file handle is reopened after ``fork`` (pid change) so every
process appends independently.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["configure", "enabled", "read_spans", "span", "summarize"]


class _Tracer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._file = None
        self._file_pid = -1
        self._seq = 0
        self.path: Optional[str] = None
        self.enabled = False
        self.configure(os.environ.get("REPRO_TRACE") or None)

    def configure(self, path: Optional[str]) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
            self._file = None
            self._file_pid = -1
            self.path = path or None
            self.enabled = bool(self.path)

    def stack(self) -> List["Span"]:
        try:
            return self._tls.stack
        except AttributeError:
            self._tls.stack = []
            return self._tls.stack

    def next_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{os.getpid():x}.{self._seq}"

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self._file is None or self._file_pid != os.getpid():
                if self.path is None:
                    return
                self._file = open(self.path, "a", buffering=1)
                self._file_pid = os.getpid()
            self._file.write(line)


_TRACER = _Tracer()


def configure(path: Optional[str]) -> None:
    """(Re)point the tracer — ``None`` disables.  Mainly for tests."""
    _TRACER.configure(path)


def enabled() -> bool:
    return _TRACER.enabled


class Span:
    __slots__ = ("name", "tags", "id", "parent", "_t0")

    def __init__(self, name: str, tags: Dict[str, object]):
        self.name = name
        self.tags = tags
        self.id = _TRACER.next_id()
        self.parent: Optional[str] = None
        self._t0 = 0

    def tag(self, **tags: object) -> None:
        """Attach tags after entry (e.g. counts known only at the end)."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        stack = _TRACER.stack()
        if stack:
            self.parent = stack[-1].id
        stack.append(self)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._t0
        stack = _TRACER.stack()
        if stack and stack[-1] is self:
            stack.pop()
        record: Dict[str, object] = {
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "ts": round(time.time(), 6),
            "dur_ns": dur,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.tags:
            record["tags"] = self.tags
        _TRACER.write(record)
        from .catalog import TRACE_SPANS

        TRACE_SPANS.inc()
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str, **tags: object):
    """A context-manager span; the shared no-op stub when disabled."""
    if not _TRACER.enabled:
        return _NULL_SPAN
    return Span(name, tags)


# ----------------------------------------------------------------------
# Reading back: `repro obs tail` and the round-trip tests.
# ----------------------------------------------------------------------
def read_spans(path: str) -> Iterator[Dict[str, object]]:
    """Parsed span records; a torn final line (live writer) is skipped."""
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue


def summarize(spans: Iterable[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Per-name count/total/mean/max milliseconds, slowest-total first."""
    acc: Dict[str, List[int]] = {}
    for rec in spans:
        name = rec.get("name")
        dur = rec.get("dur_ns")
        if not isinstance(name, str) or not isinstance(dur, int):
            continue
        acc.setdefault(name, []).append(dur)
    out = {}
    for name, durs in acc.items():
        total = sum(durs)
        out[name] = {
            "count": len(durs),
            "total_ms": total / 1e6,
            "mean_ms": total / len(durs) / 1e6,
            "max_ms": max(durs) / 1e6,
        }
    return dict(sorted(out.items(), key=lambda kv: -kv[1]["total_ms"]))
