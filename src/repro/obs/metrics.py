"""Process-local metrics with an optional shared-memory slab behind them.

The registry hands out :class:`Counter`, :class:`Gauge` and
:class:`Histogram` objects whose hot-path mutation is a single int64
array store.  Storage is a flat ``int64`` *lane*; in single-process use
the lane is a private numpy array, and under ``repro serve --procs N``
the supervisor creates an mmap-backed slab of ``N`` lanes (one per
worker) so any worker can render fleet-wide totals by summing lanes.

Slab file layout (little-endian)::

    bytes   0-7    magic  b"ROBSLAB1"
    bytes   8-11   format version (u32)
    bytes  12-15   lane count (u32)
    bytes  16-19   lane capacity in int64 slots (u32)
    bytes  20-23   slot watermark at creation (u32)
    bytes  24-39   16-byte catalog digest
    bytes  40-63   reserved (zero)
    bytes  64-     lanes * capacity * 8 bytes of int64 data

The catalog digest folds in every registered metric's name, kind and
slot range, so a worker can only attach to a slab created by a process
with the *identical* metric catalog — slot meanings can never drift
between writer and reader.  Writers only ever touch their own lane, so
no cross-process synchronisation is needed; within a process a single
lock makes read-modify-write increments exact under the server's
thread pool.

``REPRO_OBS=0`` swaps the whole module for no-op null objects: the
disabled hot path is an attribute load and a ``pass``.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import tempfile
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "enabled",
    "registry",
]

CAPACITY = 1024
_MAGIC = b"ROBSLAB1"
_VERSION = 1
_HEADER_SIZE = 64
_HEADER = struct.Struct("<8sIIII16s")  # magic, version, lanes, capacity, watermark, digest


def enabled() -> bool:
    """True unless ``REPRO_OBS`` opts out (``0``/``off``/``false``/``no``)."""
    return os.environ.get("REPRO_OBS", "").strip().lower() not in {
        "0",
        "off",
        "false",
        "no",
    }


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


class Counter:
    """Monotonic counter: one slot, ``inc`` is a locked int64 add."""

    kind = "counter"
    __slots__ = ("name", "help", "labels_", "_reg", "_slot")

    def __init__(self, reg: "MetricsRegistry", name: str, help: str, slot: int,
                 labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.help = help
        self.labels_ = labels
        self._reg = reg
        self._slot = slot

    @property
    def slot(self) -> int:
        return self._slot

    def inc(self, n: int = 1) -> None:
        reg = self._reg
        with reg._lock:
            reg._lane[self._slot] += n

    @property
    def value(self) -> int:
        """This process's own lane value."""
        return int(self._reg._lane[self._slot])

    def total(self) -> int:
        """Sum across every lane (fleet-wide truth)."""
        return self._reg.slot_total(self._slot)

    def per_lane(self) -> List[int]:
        return [int(v) for v in self._reg.lanes_view()[:, self._slot]]


class Gauge(Counter):
    """Last-write-wins int64 gauge.  Rendered per lane, never summed."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: int) -> None:
        reg = self._reg
        with reg._lock:
            reg._lane[self._slot] = int(value)


class Histogram:
    """Fixed log2-bucket histogram over non-negative integer raw values.

    Bucket ``i`` covers raw values in ``(2**(shift+i-1), 2**(shift+i)]``
    (bucket 0 additionally absorbs everything below its edge, the last
    bucket is the ``+Inf`` overflow).  Storage is ``buckets`` count
    slots followed by one raw-sum slot.  ``scale`` converts raw units
    to exposition units (e.g. ``1e-9`` for nanoseconds -> seconds).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels_", "shift", "buckets", "scale",
                 "_reg", "_slot")

    def __init__(self, reg: "MetricsRegistry", name: str, help: str, slot: int,
                 shift: int, buckets: int, scale: float,
                 labels: Tuple[Tuple[str, str], ...] = ()):
        if buckets < 2:
            raise ValueError("histogram needs at least 2 buckets")
        self.name = name
        self.help = help
        self.labels_ = labels
        self.shift = shift
        self.buckets = buckets
        self.scale = scale
        self._reg = reg
        self._slot = slot

    @property
    def slot(self) -> int:
        return self._slot

    @property
    def n_slots(self) -> int:
        return self.buckets + 1

    def bucket_index(self, raw: int) -> int:
        """Bucket for a raw observation — pure, for tests."""
        raw = int(raw)
        if raw < 1:
            return 0
        idx = (raw - 1).bit_length() - self.shift
        if idx < 0:
            return 0
        if idx >= self.buckets:
            return self.buckets - 1
        return idx

    def finite_edges(self) -> List[int]:
        """Raw-unit upper bounds of every finite bucket (last is +Inf)."""
        return [1 << (self.shift + i) for i in range(self.buckets - 1)]

    def observe(self, raw: int) -> None:
        raw = int(raw)
        idx = self.bucket_index(raw)
        reg = self._reg
        with reg._lock:
            lane = reg._lane
            lane[self._slot + idx] += 1
            lane[self._slot + self.buckets] += max(raw, 0)

    def counts(self, totals: Optional[np.ndarray] = None) -> List[int]:
        arr = self._reg.totals() if totals is None else totals
        return [int(v) for v in arr[self._slot:self._slot + self.buckets]]

    def raw_sum(self, totals: Optional[np.ndarray] = None) -> int:
        arr = self._reg.totals() if totals is None else totals
        return int(arr[self._slot + self.buckets])


class Family:
    """A labelled metric: one child per value of a closed vocabulary."""

    __slots__ = ("name", "help", "kind", "label", "_children", "base_slot",
                 "n_slots")

    def __init__(self, name: str, help: str, kind: str, label: str,
                 children: Dict[str, object], base_slot: int, n_slots: int):
        self.name = name
        self.help = help
        self.kind = kind
        self.label = label
        self._children = children
        self.base_slot = base_slot
        self.n_slots = n_slots

    def labels(self, value: str):
        return self._children[value]

    def children(self) -> Iterable[Tuple[str, object]]:
        return self._children.items()

    def child_map(self) -> Dict[str, object]:
        return dict(self._children)

    def total(self) -> int:
        return sum(c.total() for c in self._children.values()
                   if isinstance(c, Counter))

    def lane_sum(self, lane: np.ndarray) -> int:
        """Sum of this family's counter slots within one lane row."""
        return int(lane[self.base_slot:self.base_slot + self.n_slots].sum())


class MetricsRegistry:
    """Allocates slots in a lane and (optionally) shares lanes via mmap."""

    def __init__(self, capacity: int = CAPACITY):
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: List[object] = []  # Counter | Gauge | Histogram | Family
        self._by_name: Dict[str, object] = {}
        self._next_slot = 0
        self._local = np.zeros(capacity, dtype=np.int64)
        self._lane = self._local
        self._shared: Optional[np.ndarray] = None
        self._mmap: Optional[mmap.mmap] = None
        self.lane_index = 0
        self.slab_path: Optional[str] = None

    # -- registration ---------------------------------------------------
    def _alloc(self, n: int) -> int:
        if self._next_slot + n > self.capacity:
            raise RuntimeError(f"metrics slab capacity {self.capacity} exhausted")
        slot = self._next_slot
        self._next_slot += n
        return slot

    def _register(self, name: str, factory, n_per_child: int,
                  label: Optional[str], values: Sequence[str]):
        with self._lock:
            if name in self._by_name:
                return self._by_name[name]
            if label is None:
                slot = self._alloc(n_per_child)
                metric = factory(slot, ())
                entry = metric
            else:
                base = self._alloc(n_per_child * len(values))
                children = {}
                for i, v in enumerate(values):
                    children[v] = factory(base + i * n_per_child, ((label, v),))
                kind = next(iter(children.values())).kind
                entry = Family(name, children[values[0]].help, kind, label,
                               children, base, n_per_child * len(values))
            self._entries.append(entry)
            self._by_name[name] = entry
            return entry

    def counter(self, name: str, help: str, label: Optional[str] = None,
                values: Sequence[str] = ()):
        return self._register(
            name, lambda s, lb: Counter(self, name, help, s, lb), 1, label, values)

    def gauge(self, name: str, help: str, label: Optional[str] = None,
              values: Sequence[str] = ()):
        return self._register(
            name, lambda s, lb: Gauge(self, name, help, s, lb), 1, label, values)

    def histogram(self, name: str, help: str, *, shift: int, buckets: int,
                  scale: float = 1.0, label: Optional[str] = None,
                  values: Sequence[str] = ()):
        return self._register(
            name,
            lambda s, lb: Histogram(self, name, help, s, shift, buckets, scale, lb),
            buckets + 1, label, values)

    def entries(self) -> List[object]:
        return list(self._entries)

    def get(self, name: str):
        return self._by_name.get(name)

    # -- storage views ---------------------------------------------------
    def lanes_view(self) -> np.ndarray:
        """``(n_lanes, capacity)`` view — one row when not shared."""
        if self._shared is not None:
            return self._shared
        return self._local.reshape(1, -1)

    def totals(self) -> np.ndarray:
        return self.lanes_view().sum(axis=0)

    def slot_total(self, slot: int) -> int:
        return int(self.lanes_view()[:, slot].sum())

    @property
    def shared(self) -> bool:
        return self._shared is not None

    # -- slab lifecycle ---------------------------------------------------
    def catalog_digest(self) -> bytes:
        spec = [(e.name, e.kind,
                 getattr(e, "base_slot", getattr(e, "slot", -1)),
                 getattr(e, "n_slots", 1))
                for e in self._entries]
        payload = repr((self.capacity, spec)).encode()
        return hashlib.blake2b(payload, digest_size=16).digest()

    def create_slab(self, lanes: int, dir: Optional[str] = None) -> str:
        """Write a zeroed slab file for ``lanes`` workers; returns its path.

        The creator does not attach — workers call :meth:`attach` with
        their lane index after fork.
        """
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        fd, path = tempfile.mkstemp(prefix="repro-obs-", suffix=".slab", dir=dir)
        try:
            header = _HEADER.pack(_MAGIC, _VERSION, lanes, self.capacity,
                                  self._next_slot, self.catalog_digest())
            os.write(fd, header.ljust(_HEADER_SIZE, b"\0"))
            os.ftruncate(fd, _HEADER_SIZE + lanes * self.capacity * 8)
        finally:
            os.close(fd)
        self.slab_path = path
        return path

    def _validate_header(self, raw: bytes) -> int:
        magic, version, lanes, capacity, watermark, digest = _HEADER.unpack(
            raw[:_HEADER.size])
        if magic != _MAGIC:
            raise ValueError("not a repro obs slab (bad magic)")
        if version != _VERSION:
            raise ValueError(f"slab version {version} != {_VERSION}")
        if capacity != self.capacity:
            raise ValueError(f"slab capacity {capacity} != {self.capacity}")
        if digest != self.catalog_digest():
            raise ValueError("slab catalog digest mismatch — writer and "
                             "reader have different metric catalogs")
        return lanes

    def attach(self, path: str, lane: int) -> None:
        """Point this process's lane at row ``lane`` of a shared slab.

        The lane is left exactly as found (a respawned worker resumes
        its dead predecessor's counts); private pre-attach counts are
        deliberately *not* copied in — a forked worker inherits the
        supervisor's registry, and copying would duplicate the same
        inherited counts into every lane.
        """
        f = open(path, "r+b")
        try:
            lanes = self._validate_header(f.read(_HEADER_SIZE))
            if not 0 <= lane < lanes:
                raise ValueError(f"lane {lane} out of range 0..{lanes - 1}")
            mm = mmap.mmap(f.fileno(), _HEADER_SIZE + lanes * self.capacity * 8)
        finally:
            f.close()
        shared = np.frombuffer(mm, dtype=np.int64, offset=_HEADER_SIZE)
        shared = shared.reshape(lanes, self.capacity)
        with self._lock:
            self._mmap = mm
            self._shared = shared
            self.lane_index = lane
            self.slab_path = path
            self._local[:] = 0
            self._lane = shared[lane]

    def detach(self) -> None:
        """Back to private storage (the mmap stays open until exit)."""
        with self._lock:
            self._lane = self._local
            self._shared = None
            self._mmap = None  # keep mapping alive via views held elsewhere
            self.lane_index = 0
            self.slab_path = None

    def read_slab(self, path: str) -> np.ndarray:
        """Validated copy of a slab's lanes, without attaching to it."""
        with open(path, "rb") as f:
            lanes = self._validate_header(f.read(_HEADER_SIZE))
            data = f.read(lanes * self.capacity * 8)
        arr = np.frombuffer(data, dtype=np.int64).reshape(lanes, self.capacity)
        return arr.copy()

    def unlink_slab(self) -> None:
        if self.slab_path:
            try:
                os.unlink(self.slab_path)
            except OSError:
                pass
            self.slab_path = None


# ----------------------------------------------------------------------
# Disabled mode: every operation is a no-op on shared null singletons.
# ----------------------------------------------------------------------
class _NullMetric:
    __slots__ = ()
    name = help = ""
    kind = "null"
    value = 0
    shift = 0
    buckets = 2
    scale = 1.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: int) -> None:
        pass

    def observe(self, raw: int) -> None:
        pass

    def labels(self, value: str) -> "_NullMetric":
        return self

    def child_map(self) -> Dict[str, "_NullMetric"]:
        return {}

    def total(self) -> int:
        return 0

    def per_lane(self) -> List[int]:
        return []

    def bucket_index(self, raw: int) -> int:
        return 0

    def finite_edges(self) -> List[int]:
        return []


NULL_METRIC = _NullMetric()


class NullRegistry:
    """Stand-in registry when ``REPRO_OBS=0``: all methods are no-ops."""

    capacity = 0
    shared = False
    lane_index = 0
    slab_path = None

    def counter(self, *a, **kw) -> _NullMetric:
        return NULL_METRIC

    gauge = counter
    histogram = counter

    def entries(self) -> List[object]:
        return []

    def get(self, name: str):
        return None

    def lanes_view(self) -> np.ndarray:
        return np.zeros((0, 0), dtype=np.int64)

    def totals(self) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)

    def slot_total(self, slot: int) -> int:
        return 0

    def create_slab(self, lanes: int, dir: Optional[str] = None) -> None:
        return None

    def attach(self, path: str, lane: int) -> None:
        pass

    def detach(self) -> None:
        pass

    def read_slab(self, path: str) -> np.ndarray:
        return np.zeros((0, 0), dtype=np.int64)

    def unlink_slab(self) -> None:
        pass


_REGISTRY: Optional[object] = None
_REGISTRY_LOCK = threading.Lock()


def registry():
    """The process-wide registry (a :class:`NullRegistry` when disabled)."""
    global _REGISTRY
    if _REGISTRY is None:
        with _REGISTRY_LOCK:
            if _REGISTRY is None:
                _REGISTRY = MetricsRegistry() if enabled() else NullRegistry()
    return _REGISTRY
