"""Prometheus text-format (0.0.4) exposition of the metric registry.

Counters and histograms are rendered as lane *sums* — the fleet-wide
truth when attached to a shared slab.  Gauges describe one process, so
they are rendered per touched lane with a ``worker`` label when the
slab is shared, and unlabelled in single-process mode.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .metrics import (Counter, Family, Gauge, Histogram, format_labels,
                      registry)

__all__ = ["CONTENT_TYPE", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def _histogram_lines(hist: Histogram, totals: np.ndarray,
                     extra: Sequence[Tuple[str, str]]) -> List[str]:
    lines = []
    counts = hist.counts(totals)
    cumulative = 0
    edges = hist.finite_edges()
    for i, count in enumerate(counts):
        cumulative += count
        le = "+Inf" if i == len(counts) - 1 else _num(edges[i] * hist.scale)
        labels = format_labels(tuple(hist.labels_) + tuple(extra) + (("le", le),))
        lines.append(f"{hist.name}_bucket{labels} {cumulative}")
    base = format_labels(tuple(hist.labels_) + tuple(extra))
    lines.append(f"{hist.name}_sum{base} {_num(hist.raw_sum(totals) * hist.scale)}")
    lines.append(f"{hist.name}_count{base} {cumulative}")
    return lines


def render_prometheus(reg=None, lanes: Optional[np.ndarray] = None) -> str:
    """Render the registry (or an explicit slab ``lanes`` array) as text."""
    reg = reg if reg is not None else registry()
    entries = reg.entries()
    if not entries:
        return "# repro observability disabled (REPRO_OBS=0)\n"
    lanes = lanes if lanes is not None else reg.lanes_view()
    totals = lanes.sum(axis=0)
    shared = lanes.shape[0] > 1
    touched = [bool(lanes[i].any()) or (not shared and i == reg.lane_index)
               for i in range(lanes.shape[0])]

    out: List[str] = []
    for entry in entries:
        kind = entry.kind
        out.append(f"# HELP {entry.name} {entry.help}")
        out.append(f"# TYPE {entry.name} {kind}")
        children = ([m for _, m in entry.children()]
                    if isinstance(entry, Family) else [entry])
        for metric in children:
            if kind == "counter":
                labels = format_labels(metric.labels_)
                out.append(f"{metric.name}{labels} {int(totals[metric.slot])}")
            elif kind == "gauge":
                for i in range(lanes.shape[0]):
                    if not touched[i]:
                        continue
                    pairs = tuple(metric.labels_)
                    if shared:
                        pairs += (("worker", str(i)),)
                    labels = format_labels(pairs)
                    out.append(f"{metric.name}{labels} {int(lanes[i][metric.slot])}")
            elif kind == "histogram":
                out.extend(_histogram_lines(metric, totals, ()))
    return "\n".join(out) + "\n"
