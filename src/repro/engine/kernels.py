"""Pure-numpy execution backend: kernel loop, decode and reductions.

This is the portable fallback behind the native C backend of
:mod:`repro.engine.native`; both consume the same compiled programs and
produce bit-identical results.  Speed comes from three things:

* the kernel loop runs over prebuilt arena row views with in-place
  (``out=``) ufunc kernels — no dict lookups, no per-gate allocation;
* decode unpacks *all* output planes with one stacked ``unpackbits`` and
  combines them with per-byte-group ``einsum`` (a bit transpose), instead
  of one unpack + shift + or round-trip per plane;
* the WMED reduction subtracts the precomputed exact table directly into
  a preallocated ``float64`` buffer and finishes with one BLAS dot.
"""

from __future__ import annotations

import numpy as np

from .arena import BufferArena
from .opcodes import NUMPY_KERNELS

__all__ = [
    "run_program",
    "run_program_batch",
    "decode_values",
    "decode_error",
    "decode_error_batch",
]

#: Per-bit weights for one byte group of the stacked bit-transpose.
_POW2_8 = (np.uint16(1) << np.arange(8, dtype=np.uint16)).astype(np.uint16)


def run_program(arena: BufferArena, n_ops: int) -> None:
    """Execute ``n_ops`` compiled operations over the arena rows.

    The compiler guarantees a destination never aliases its operands, so
    the two-step in-place kernels (NAND, ANDN, ...) are safe.
    """
    rows = arena.rows
    kernels = NUMPY_KERNELS
    ops = arena.ops[:n_ops].tolist()
    src_a = arena.src_a[:n_ops].tolist()
    src_b = arena.src_b[:n_ops].tolist()
    dst = arena.dst[:n_ops].tolist()
    for op, a, b, d in zip(ops, src_a, src_b, dst):
        kernels[op](rows[a], rows[b], rows[d])


def run_program_batch(arena: BufferArena, cand: int, n_ops: int) -> None:
    """Execute batch candidate ``cand``'s compiled slab into its lane.

    Identical op-by-op arithmetic to :func:`run_program`, but sources
    resolve against the shared stimulus rows plus the candidate's
    private lane (see :meth:`BufferArena.batch_rows`), and all stores
    land in the lane — candidates never alias each other.
    """
    rows = arena.batch_rows(cand)
    kernels = NUMPY_KERNELS
    ops = arena.batch_ops[cand, :n_ops].tolist()
    src_a = arena.batch_src_a[cand, :n_ops].tolist()
    src_b = arena.batch_src_b[cand, :n_ops].tolist()
    dst = arena.batch_dst[cand, :n_ops].tolist()
    for op, a, b, d in zip(ops, src_a, src_b, dst):
        kernels[op](rows[a], rows[b], rows[d])


def _gather_planes(arena: BufferArena, n_bits: int) -> np.ndarray:
    planes = arena.planes[:n_bits]
    np.take(arena.buf, arena.out_slots[:n_bits], axis=0, out=planes)
    return planes


def _decode_planes(
    planes: np.ndarray,
    num_vectors: int,
    n_bits: int,
    signed: bool,
    values: np.ndarray,
) -> np.ndarray:
    """Bit-transpose ``planes`` into per-vector integers in ``values``."""
    bits = np.unpackbits(
        planes.view(np.uint8), axis=1, bitorder="little"
    )[:, :num_vectors]
    np.copyto(
        values,
        np.einsum("jn,j->n", bits[:8], _POW2_8[: min(8, n_bits)]),
        casting="same_kind",
    )
    for group_start in range(8, n_bits, 8):
        k = min(8, n_bits - group_start)
        part = np.einsum(
            "jn,j->n", bits[group_start:group_start + k], _POW2_8[:k]
        )
        values |= part.astype(np.int32) << group_start
    if signed:
        half = np.int32(1) << np.int32(n_bits - 1)
        values[values >= half] -= half << np.int32(1)
    return values


def decode_values(
    arena: BufferArena, n_bits: int, signed: bool
) -> np.ndarray:
    """Decode the output planes into per-vector integers (arena.values).

    Equivalent to per-plane ``unpackbits`` + shift-accumulate but does a
    single stacked bit-transpose over all planes.
    """
    values = arena.values
    if n_bits == 0:
        values.fill(0)
        return values
    planes = _gather_planes(arena, n_bits)
    return _decode_planes(planes, arena.num_vectors, n_bits, signed, values)


def decode_error(
    arena: BufferArena, n_bits: int, signed: bool, exact: np.ndarray
) -> np.ndarray:
    """Fused decode + ``|exact - value|`` into the float64 error buffer."""
    values = decode_values(arena, n_bits, signed)
    err = arena.err
    np.subtract(exact, values, out=err)
    np.absolute(err, out=err)
    return err


def decode_error_batch(
    arena: BufferArena,
    cand: int,
    n_bits: int,
    signed: bool,
    exact: np.ndarray,
) -> np.ndarray:
    """Batch-candidate decode + error into ``arena.batch_err[cand]``.

    Bit-identical to :func:`decode_error` run after the same program:
    the same stacked transpose and the same ``exact - value`` operand
    order, just gathering planes from the candidate's lane (or the
    shared stimulus, for outputs wired straight to a primary input).
    """
    err = arena.batch_err[cand]
    if n_bits == 0:
        values = arena.values
        values.fill(0)
    else:
        rows = arena.batch_rows(cand)
        planes = arena.planes[:n_bits]
        for j, s in enumerate(arena.batch_out_slots[cand, :n_bits].tolist()):
            planes[j] = rows[s]
        values = _decode_planes(
            planes, arena.num_vectors, n_bits, signed, arena.values
        )
    np.subtract(exact, values, out=err)
    np.absolute(err, out=err)
    return err
