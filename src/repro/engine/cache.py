"""Phenotype-keyed evaluation cache.

CGP's neutral drift means the search constantly re-creates genotypes
whose *phenotype* — the compiled active cone — it has already evaluated:
mutations that only touch inactive genes, or that rewire inactive nodes,
produce byte-identical compiled programs.  The evolution loop already
skips offspring whose mutations touch no active gene, but it cannot see
convergent cases (e.g. a mutation undoing a previous one, or two parents
drifting onto the same cone).  Caching the measure tuple — ``(wmed,
area)`` exhaustively, ``(wmed, area, ci_low, ci_high)`` for sampled
objectives — by compiled-program signature turns all of those into
dictionary hits.

Entries are threshold-independent: Eq. (1) fitness is re-derived from
the cached measure at lookup time, so one cache serves a whole
multi-target sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..obs.catalog import ENGINE_CACHE_HITS, ENGINE_CACHE_MISSES

__all__ = ["EvalCache"]


class EvalCache:
    """Bounded LRU map: phenotype signature -> measure tuple.

    The measure is whatever the evaluator derives per phenotype:
    ``(wmed, area)`` for exhaustive objectives, ``(wmed, area, ci_low,
    ci_high)`` for sampled ones.  One cache never mixes the two — the
    signature salt folds in the objective (and sample-spec) identity.

    Args:
        max_entries: Capacity; 0 disables caching entirely.
    """

    def __init__(self, max_entries: int = 1 << 16) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self._entries: "OrderedDict[bytes, Tuple[float, ...]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes) -> Optional[Tuple[float, ...]]:
        # The per-instance ints are the source of truth for stats();
        # the global obs counters are fleet aggregates of the same
        # events (never reset by clear()).
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            ENGINE_CACHE_MISSES.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        ENGINE_CACHE_HITS.inc()
        return entry

    def put(self, key: bytes, *measure: float) -> None:
        if self.max_entries == 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = measure
        while len(entries) > self.max_entries:
            entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }
