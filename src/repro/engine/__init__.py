"""Compiled evaluation engine — the search's performance subsystem.

Candidate evaluation is the CGP loop's entire cost profile: one
exhaustive packed simulation plus a truth-table decode per offspring.
This package turns that from an interpreted walk over genotype dicts
into a compiled pipeline:

``compiler`` -> ``arena`` -> (``native`` | ``kernels``) -> ``cache``

* :mod:`repro.engine.compiler` lowers a chromosome's (or netlist's)
  active cone to flat, topologically ordered ``(opcode, src_a, src_b)``
  arrays with densely renumbered slots — a canonical program that is
  byte-identical for phenotype-equivalent genotypes.
* :mod:`repro.engine.arena` preallocates every evaluation buffer (packed
  signal matrix, program slabs, decode scratch, error vector) once per
  run.
* :mod:`repro.engine.native` executes programs in C (built on demand via
  the system compiler, loaded through ctypes); :mod:`repro.engine
  .kernels` is the bit-identical pure-numpy fallback with a stacked
  bit-transpose decode and fused WMED reduction.
* :mod:`repro.engine.cache` memoizes ``(wmed, area)`` by compiled-program
  signature, exploiting CGP neutral drift.

:class:`~repro.engine.evaluator.CompiledObjective` packages the pipeline
behind the component-agnostic objective layer: it wraps *any*
:class:`~repro.core.objective.CircuitObjective` — multiplier, adder,
MAC, custom netlist, under any error metric — and produces bit-identical
results, so evolved trajectories do not change.
:class:`~repro.engine.evaluator.CompiledMultiplierFitness` remains the
drop-in replacement for the legacy
:class:`~repro.core.fitness.MultiplierFitness`.  Select the backend with
the ``REPRO_ENGINE`` environment variable (``numpy`` forces the
fallback).
"""

from .arena import BufferArena
from .cache import EvalCache
from .compiler import CompiledPhenotype, compile_netlist, compile_phenotype
from .evaluator import (
    CompiledMultiplierFitness,
    CompiledObjective,
    CompiledSampledObjective,
)
from .native import native_available
from .opcodes import OP_ARITY, OP_NAMES

__all__ = [
    "BufferArena",
    "EvalCache",
    "CompiledPhenotype",
    "compile_netlist",
    "compile_phenotype",
    "CompiledMultiplierFitness",
    "CompiledObjective",
    "CompiledSampledObjective",
    "native_available",
    "OP_ARITY",
    "OP_NAMES",
]
