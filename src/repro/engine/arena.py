"""Preallocated evaluation buffers reused across a whole search run.

Candidate evaluation is called millions of times per CGP run; the arena
owns every buffer the hot path needs — the packed signal matrix, the
compiled-program slabs, the decode scratch and the error vector — so a
single evaluation performs no heap allocation beyond tiny Python objects.

Layout of the signal matrix ``buf`` (``slots x words`` of ``uint64``):

* rows ``0 .. num_inputs-1``: the packed stimulus, written once at
  construction (the stimulus of an exhaustive evaluator never changes);
* remaining rows: operation destinations, assigned by the compiler's
  liveness allocator (so the hot region is the circuit's live width,
  typically far smaller than its gate count, and stays cache-resident).

Batched evaluation adds *per-candidate* buffers on demand
(:meth:`BufferArena.ensure_batch`): every candidate of a brood gets a
private scratch lane, program-slab row, transpose-scratch row and error
row, all contiguous 2-D arrays so one native call
(``cgp_eval_batch``) can walk them by stride.  The packed stimulus stays
shared — slot ``s < num_inputs`` resolves into ``buf``, slot
``s >= num_inputs`` into row ``s - num_inputs`` of the candidate's lane.

The arena is sized for the *worst case* (all nodes active, no slot
reuse), so any phenotype of the associated
:class:`~repro.core.chromosome.CGPParams` fits without reallocation.

Arenas are **single-owner**: buffers are mutated in place with no
locking, so an instance must only ever be used by the thread that
created it (one evaluator per worker).  :meth:`assert_owner` enforces
this, turning silent cross-thread data races into an immediate error.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """Evaluation workspace for one (params-shape, stimulus) pair.

    Args:
        num_inputs: Primary input count (stimulus rows).
        num_nodes: Maximum number of compiled operations.
        num_outputs: Output bus width in bits.
        stimulus: Packed input words, shape ``(num_inputs, words)``.
        num_vectors: Number of valid test vectors in the stimulus.
    """

    def __init__(
        self,
        num_inputs: int,
        num_nodes: int,
        num_outputs: int,
        stimulus: np.ndarray,
        num_vectors: int,
    ) -> None:
        if stimulus.shape[0] != num_inputs:
            raise ValueError(
                f"stimulus has {stimulus.shape[0]} rows, expected {num_inputs}"
            )
        if num_outputs > 31:
            # Decode accumulates into int32; 32 unsigned bits would wrap.
            raise ValueError("engine decodes at most 31 output bits")
        self.num_inputs = num_inputs
        self.num_nodes = num_nodes
        self.num_outputs = num_outputs
        self.num_vectors = int(num_vectors)
        self.words = int(stimulus.shape[1])
        self._owner_thread = threading.get_ident()

        slots = num_inputs + num_nodes
        self.buf = np.empty((slots, self.words), dtype=np.uint64)
        self.buf[:num_inputs] = stimulus
        #: Row views, prebuilt so the numpy kernel loop does no slicing.
        self.rows: List[np.ndarray] = list(self.buf)

        # Compiled-program slabs (the in-place compile target).
        self.ops = np.empty(num_nodes, dtype=np.int32)
        self.src_a = np.empty(num_nodes, dtype=np.int32)
        self.src_b = np.empty(num_nodes, dtype=np.int32)
        self.dst = np.empty(num_nodes, dtype=np.int32)
        self.out_slots = np.empty(num_outputs, dtype=np.int32)

        # Decode / reduction scratch.
        ngroups = (self.num_vectors + 7) // 8
        self.decode_scratch = np.empty(4 * max(ngroups, 1), dtype=np.uint64)
        self.planes = np.empty((num_outputs, self.words), dtype=np.uint64)
        self.values = np.empty(self.num_vectors, dtype=np.int32)
        self.err = np.empty(self.num_vectors, dtype=np.float64)

        # Batch lanes, allocated lazily by ensure_batch().
        self.batch_capacity = 0
        #: Incremented on every batch (re)allocation so callers caching
        #: raw buffer addresses know when to refresh them.
        self.batch_epoch = 0
        self.batch_lanes: Optional[np.ndarray] = None
        self.batch_ops: Optional[np.ndarray] = None
        self.batch_src_a: Optional[np.ndarray] = None
        self.batch_src_b: Optional[np.ndarray] = None
        self.batch_dst: Optional[np.ndarray] = None
        self.batch_out_slots: Optional[np.ndarray] = None
        self.batch_n_ops: Optional[np.ndarray] = None
        self.batch_scratch: Optional[np.ndarray] = None
        self.batch_err: Optional[np.ndarray] = None
        self.batch_stats: Optional[np.ndarray] = None
        self._batch_rows: List[List[np.ndarray]] = []

    # ------------------------------------------------------------------
    def assert_owner(self) -> None:
        """Raise if called from a thread other than the creator.

        The arena's buffers (and the compiled-program slabs inside them)
        are reused mutably across evaluations with no synchronization;
        sharing one instance between threads would corrupt results
        silently.  Matches the "one evaluator per worker" contract.
        """
        if threading.get_ident() != self._owner_thread:
            raise RuntimeError(
                "BufferArena is single-owner: it was created on thread "
                f"{self._owner_thread} but used from thread "
                f"{threading.get_ident()}; create one evaluator per worker"
            )

    # ------------------------------------------------------------------
    def ensure_batch(self, n_cand: int) -> None:
        """Grow the per-candidate batch buffers to hold ``n_cand``.

        No-op when capacity already suffices.  Growth reallocates (old
        batch contents are not preserved — every batch dispatch fills
        its slabs from scratch) and bumps :attr:`batch_epoch`.
        """
        if n_cand <= self.batch_capacity:
            return
        ni, nn, no = self.num_inputs, self.num_nodes, self.num_outputs
        ngroups = (self.num_vectors + 7) // 8
        # Private scratch lane per candidate: slot s >= ni lives in lane
        # row s - ni; worst case (no slot reuse) needs nn rows.
        self.batch_lanes = np.empty((n_cand, nn, self.words), dtype=np.uint64)
        self.batch_ops = np.empty((n_cand, nn), dtype=np.int32)
        self.batch_src_a = np.empty((n_cand, nn), dtype=np.int32)
        self.batch_src_b = np.empty((n_cand, nn), dtype=np.int32)
        self.batch_dst = np.empty((n_cand, nn), dtype=np.int32)
        self.batch_out_slots = np.empty((n_cand, max(no, 1)), dtype=np.int32)
        self.batch_n_ops = np.zeros(n_cand, dtype=np.int32)
        self.batch_scratch = np.empty(
            (n_cand, 4 * max(ngroups, 1)), dtype=np.uint64
        )
        self.batch_err = np.empty(
            (n_cand, self.num_vectors), dtype=np.float64
        )
        # Per-candidate (sum |d|, count != 0, max |d|) for the native
        # exact-reduction path; rows stay untouched on the err path.
        self.batch_stats = np.zeros((n_cand, 3), dtype=np.int64)
        # Slot-indexed row views per candidate for the numpy backend:
        # rows[s] is stimulus row s for s < ni, lane row s - ni above.
        self._batch_rows = [
            self.rows[:ni] + list(self.batch_lanes[c])
            for c in range(n_cand)
        ]
        self.batch_capacity = n_cand
        self.batch_epoch += 1

    def batch_rows(self, cand: int) -> List[np.ndarray]:
        """Slot-indexed row views for batch candidate ``cand``."""
        return self._batch_rows[cand]
