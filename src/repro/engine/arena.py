"""Preallocated evaluation buffers reused across a whole search run.

Candidate evaluation is called millions of times per CGP run; the arena
owns every buffer the hot path needs — the packed signal matrix, the
compiled-program slabs, the decode scratch and the error vector — so a
single evaluation performs no heap allocation beyond tiny Python objects.

Layout of the signal matrix ``buf`` (``slots x words`` of ``uint64``):

* rows ``0 .. num_inputs-1``: the packed stimulus, written once at
  construction (the stimulus of an exhaustive evaluator never changes);
* remaining rows: operation destinations, assigned by the compiler's
  liveness allocator (so the hot region is the circuit's live width,
  typically far smaller than its gate count, and stays cache-resident).

The arena is sized for the *worst case* (all nodes active, no slot
reuse), so any phenotype of the associated
:class:`~repro.core.chromosome.CGPParams` fits without reallocation.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """Evaluation workspace for one (params-shape, stimulus) pair.

    Args:
        num_inputs: Primary input count (stimulus rows).
        num_nodes: Maximum number of compiled operations.
        num_outputs: Output bus width in bits.
        stimulus: Packed input words, shape ``(num_inputs, words)``.
        num_vectors: Number of valid test vectors in the stimulus.
    """

    def __init__(
        self,
        num_inputs: int,
        num_nodes: int,
        num_outputs: int,
        stimulus: np.ndarray,
        num_vectors: int,
    ) -> None:
        if stimulus.shape[0] != num_inputs:
            raise ValueError(
                f"stimulus has {stimulus.shape[0]} rows, expected {num_inputs}"
            )
        if num_outputs > 31:
            # Decode accumulates into int32; 32 unsigned bits would wrap.
            raise ValueError("engine decodes at most 31 output bits")
        self.num_inputs = num_inputs
        self.num_nodes = num_nodes
        self.num_outputs = num_outputs
        self.num_vectors = int(num_vectors)
        self.words = int(stimulus.shape[1])

        slots = num_inputs + num_nodes
        self.buf = np.empty((slots, self.words), dtype=np.uint64)
        self.buf[:num_inputs] = stimulus
        #: Row views, prebuilt so the numpy kernel loop does no slicing.
        self.rows: List[np.ndarray] = list(self.buf)

        # Compiled-program slabs (the in-place compile target).
        self.ops = np.empty(num_nodes, dtype=np.int32)
        self.src_a = np.empty(num_nodes, dtype=np.int32)
        self.src_b = np.empty(num_nodes, dtype=np.int32)
        self.dst = np.empty(num_nodes, dtype=np.int32)
        self.out_slots = np.empty(num_outputs, dtype=np.int32)

        # Decode / reduction scratch.
        ngroups = (self.num_vectors + 7) // 8
        self.decode_scratch = np.empty(4 * max(ngroups, 1), dtype=np.uint64)
        self.planes = np.empty((num_outputs, self.words), dtype=np.uint64)
        self.values = np.empty(self.num_vectors, dtype=np.int32)
        self.err = np.empty(self.num_vectors, dtype=np.float64)
