"""The engine's fixed opcode set and its numpy kernel implementations.

The phenotype compiler lowers every gate function to a small integer
opcode so the execution backends (the ctypes C kernel and the numpy
fallback) can dispatch without string or dict lookups.  The opcode order
is part of the engine ABI: the embedded C source in
:mod:`repro.engine.native` switches on the same numbers, and cached
evaluation results are keyed by opcode arrays, so it must never be
reordered — only appended to.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..circuits.gates import ALL_ONES

__all__ = [
    "OP_NAMES",
    "OP_ARITY",
    "NUMPY_KERNELS",
    "opcode_of",
    "function_opcode_table",
]

#: Canonical opcode order (engine ABI; append-only).
OP_NAMES: Tuple[str, ...] = (
    "CONST0",
    "CONST1",
    "BUF",
    "NOT",
    "AND",
    "OR",
    "XOR",
    "NAND",
    "NOR",
    "XNOR",
    "ANDN",
    "ORN",
)

#: Operand count actually read by each opcode, opcode order.
OP_ARITY: np.ndarray = np.array(
    [0, 0, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2], dtype=np.int32
)

_OP_INDEX = {name: op for op, name in enumerate(OP_NAMES)}

_ONES = ALL_ONES


def _k_const0(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    o.fill(0)


def _k_const1(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    o.fill(_ONES)


def _k_buf(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    o[:] = a


def _k_not(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_xor(a, _ONES, out=o)


def _k_and(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_and(a, b, out=o)


def _k_or(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_or(a, b, out=o)


def _k_xor(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_xor(a, b, out=o)


def _k_nand(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_and(a, b, out=o)
    np.bitwise_xor(o, _ONES, out=o)


def _k_nor(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_or(a, b, out=o)
    np.bitwise_xor(o, _ONES, out=o)


def _k_xnor(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_xor(a, b, out=o)
    np.bitwise_xor(o, _ONES, out=o)


def _k_andn(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_xor(b, _ONES, out=o)
    np.bitwise_and(a, o, out=o)


def _k_orn(a: np.ndarray, b: np.ndarray, o: np.ndarray) -> None:
    np.bitwise_xor(b, _ONES, out=o)
    np.bitwise_or(a, o, out=o)


#: In-place packed-word kernels, opcode order.  Each writes its result
#: into the preallocated output row ``o`` (no per-eval allocations).
NUMPY_KERNELS: List[Callable[[np.ndarray, np.ndarray, np.ndarray], None]] = [
    _k_const0,
    _k_const1,
    _k_buf,
    _k_not,
    _k_and,
    _k_or,
    _k_xor,
    _k_nand,
    _k_nor,
    _k_xnor,
    _k_andn,
    _k_orn,
]


def opcode_of(name: str) -> Optional[int]:
    """Opcode of a gate-function name, or ``None`` if unsupported."""
    return _OP_INDEX.get(name)


def function_opcode_table(functions: Tuple[str, ...]) -> np.ndarray:
    """Map a CGP function tuple to per-function-gene opcodes.

    Raises:
        KeyError: if any function has no engine opcode (callers should
            fall back to the interpreted simulator in that case).
    """
    table = np.empty(len(functions), dtype=np.int32)
    for idx, name in enumerate(functions):
        op = _OP_INDEX.get(name)
        if op is None:
            raise KeyError(
                f"gate function {name!r} has no engine opcode; "
                f"supported: {OP_NAMES}"
            )
        table[idx] = op
    return table
