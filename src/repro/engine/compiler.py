"""Phenotype compiler: active cones lowered to flat opcode programs.

A CGP chromosome (or a netlist) is *compiled* to the engine's executable
form: topologically ordered ``(opcode, src_a, src_b, dst)`` quadruples
over a dense slot space, plus per-output-bit source slots.  Slot
``k < num_inputs`` is primary input ``k``; remaining slots are assigned
by a liveness-driven allocator (LIFO free list) that reuses a slot as
soon as its value's last consumer has executed, so the kernel's working
set is the *live width* of the circuit DAG, not its gate count — the
difference between streaming megabytes per candidate and staying
cache-resident.  Output values and primary inputs are never recycled.

Unread operand fields are canonicalized to 0 and the allocator is
deterministic, so two genotypes with the same phenotype — the situation
CGP's neutral drift produces constantly — compile to byte-identical
programs.  That makes the compiled form double as the key of the
phenotype eval cache.  The native backend
(:mod:`repro.engine.native`) runs the same algorithm in C; both produce
identical arrays.

The Python compiler works over ``genes.tolist()``: per-element access on
small int lists beats numpy scalar indexing on the ~2000-gene genomes
the paper uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

import numpy as np

from ..circuits.netlist import Netlist
from ..core.chromosome import CGPParams, Chromosome
from .opcodes import OP_ARITY, function_opcode_table

__all__ = [
    "CompiledPhenotype",
    "compile_genes_into",
    "compile_genes_batch_into",
    "compile_phenotype",
    "compile_netlist",
    "phenotype_signature",
]

_ARITY_LIST: List[int] = [int(a) for a in OP_ARITY]


@dataclass(frozen=True)
class CompiledPhenotype:
    """An owned, immutable compiled program (see module docstring).

    Attributes:
        num_inputs: Slots ``0 .. num_inputs-1`` hold the primary inputs.
        ops: Opcodes, execution order, shape ``(n_ops,)``.
        src_a: First-operand slot per operation (0 when unread).
        src_b: Second-operand slot per operation (0 when unread).
        dst: Destination slot per operation (never aliases its operands).
        out_slots: Slot of each output bit, LSB first.
    """

    num_inputs: int
    ops: np.ndarray
    src_a: np.ndarray
    src_b: np.ndarray
    dst: np.ndarray
    out_slots: np.ndarray

    @property
    def n_ops(self) -> int:
        return int(self.ops.shape[0])

    @property
    def num_slots(self) -> int:
        """Arena rows the program needs (inputs + peak live values)."""
        upper = int(self.dst.max()) + 1 if self.n_ops else 0
        return max(self.num_inputs, upper)

    def signature(self) -> bytes:
        return phenotype_signature(
            self.ops, self.src_a, self.src_b, self.dst, self.out_slots
        )


def phenotype_signature(
    ops: np.ndarray,
    src_a: np.ndarray,
    src_b: np.ndarray,
    dst: np.ndarray,
    out_slots: np.ndarray,
    salt: bytes = b"",
) -> bytes:
    """16-byte blake2b digest identifying a compiled program.

    The arrays are hashed through the buffer protocol (same bytes as
    ``tobytes()`` for the C-contiguous slices every caller passes,
    without the copy).
    """
    h = hashlib.blake2b(salt, digest_size=16)
    h.update(ops)
    h.update(src_a)
    h.update(src_b)
    h.update(dst)
    h.update(out_slots)
    return h.digest()


def compile_genes_into(
    genes: np.ndarray,
    params: CGPParams,
    fn2op: List[int],
    ops: np.ndarray,
    src_a: np.ndarray,
    src_b: np.ndarray,
    dst: np.ndarray,
    out_slots: np.ndarray,
) -> int:
    """Compile a genome into caller-provided buffers; return ``n_ops``.

    This is the Python reference of the compile algorithm (the native
    backend runs the same passes in C).  ``ops``, ``src_a``, ``src_b``,
    ``dst`` must have room for ``params.num_nodes`` entries and
    ``out_slots`` for ``params.num_outputs``.
    """
    p = params
    ni = p.num_inputs
    nn = p.num_nodes
    gpn = p.genes_per_node
    g = genes.tolist()
    node_end = nn * gpn
    arity_of = _ARITY_LIST
    fn2op_l = fn2op

    # Pass 1: transitive fan-in of the outputs.  Sources always precede
    # their node (rows = 1, feed-forward), so one reverse sweep settles it.
    needed = bytearray(nn)
    for out in g[node_end:]:
        if out >= ni:
            needed[out - ni] = 1
    for node in range(nn - 1, -1, -1):
        if not needed[node]:
            continue
        base = node * gpn
        ar = arity_of[fn2op_l[g[base + 2]]]
        if ar >= 1 and g[base] >= ni:
            needed[g[base] - ni] = 1
        if ar >= 2 and g[base + 1] >= ni:
            needed[g[base + 1] - ni] = 1

    # Pass 2: per-node last consumer (emit index); outputs never die.
    last_use = [0] * nn
    e = 0
    for node in range(nn):
        if not needed[node]:
            continue
        base = node * gpn
        ar = arity_of[fn2op_l[g[base + 2]]]
        if ar >= 1 and g[base] >= ni:
            last_use[g[base] - ni] = e
        if ar >= 2 and g[base + 1] >= ni:
            last_use[g[base + 1] - ni] = e
        e += 1
    n_total = e
    for out in g[node_end:]:
        if out >= ni:
            last_use[out - ni] = n_total

    # Pass 3: emission with LIFO slot recycling.  A dead operand's slot
    # is released only *after* the op's destination is allocated, so a
    # destination never aliases its own operands.
    slot = list(range(ni)) + [0] * nn
    free: List[int] = []
    next_new = ni
    e = 0
    for node in range(nn):
        if not needed[node]:
            continue
        base = node * gpn
        opc = fn2op_l[g[base + 2]]
        ar = arity_of[opc]
        ga = g[base]
        gb = g[base + 1]
        ops[e] = opc
        src_a[e] = slot[ga] if ar >= 1 else 0
        src_b[e] = slot[gb] if ar >= 2 else 0
        if free:
            d = free.pop()
        else:
            d = next_new
            next_new += 1
        dst[e] = d
        slot[ni + node] = d
        if ar >= 1 and ga >= ni and last_use[ga - ni] == e:
            free.append(slot[ga])
        if ar >= 2 and gb >= ni and gb != ga and last_use[gb - ni] == e:
            free.append(slot[gb])
        e += 1
    for j, out in enumerate(g[node_end:]):
        out_slots[j] = slot[out]
    return n_total


def compile_genes_batch_into(
    genes_seq,
    params: CGPParams,
    fn2op: List[int],
    ops: np.ndarray,
    src_a: np.ndarray,
    src_b: np.ndarray,
    dst: np.ndarray,
    out_slots: np.ndarray,
    n_ops_out: np.ndarray,
) -> None:
    """Compile a sequence of genomes into contiguous per-candidate slabs.

    Row ``k`` of each 2-D buffer receives candidate ``k``'s program
    (``ops``/``src_a``/``src_b``/``dst`` shaped ``(n, num_nodes)``,
    ``out_slots`` shaped ``(n, num_outputs)``); ``n_ops_out[k]`` gets its
    emitted op count.  Each row is exactly what
    :func:`compile_genes_into` would produce, so per-row signatures and
    execution results match the single-candidate path bit-for-bit.
    """
    for k, genes in enumerate(genes_seq):
        n_ops_out[k] = compile_genes_into(
            genes, params, fn2op,
            ops[k], src_a[k], src_b[k], dst[k], out_slots[k],
        )


def compile_phenotype(chromosome: Chromosome) -> CompiledPhenotype:
    """Compile a chromosome's active cone into an owned program."""
    p = chromosome.params
    fn2op = [int(x) for x in function_opcode_table(p.functions)]
    ops = np.empty(p.num_nodes, dtype=np.int32)
    src_a = np.empty(p.num_nodes, dtype=np.int32)
    src_b = np.empty(p.num_nodes, dtype=np.int32)
    dst = np.empty(p.num_nodes, dtype=np.int32)
    out_slots = np.empty(p.num_outputs, dtype=np.int32)
    n = compile_genes_into(
        chromosome.genes, p, fn2op, ops, src_a, src_b, dst, out_slots
    )
    return CompiledPhenotype(
        num_inputs=p.num_inputs,
        ops=ops[:n].copy(),
        src_a=src_a[:n].copy(),
        src_b=src_b[:n].copy(),
        dst=dst[:n].copy(),
        out_slots=out_slots.copy(),
    )


def compile_netlist(netlist: Netlist) -> CompiledPhenotype:
    """Compile a netlist's output cone into an owned program.

    Uses the same canonical passes as :func:`compile_phenotype`, so a
    netlist and the chromosome seeded from it compile identically.
    """
    from ..circuits.gates import gate_function
    from .opcodes import opcode_of

    ni = netlist.num_inputs
    active = netlist.active_gate_indices()
    arities: List[int] = []
    opcodes: List[int] = []
    for k in active:
        fn = netlist.gates[k].fn
        op = opcode_of(fn)
        if op is None:
            raise KeyError(f"gate function {fn!r} has no engine opcode")
        opcodes.append(op)
        arities.append(gate_function(fn).arity)

    n_total = len(active)
    last_use = [0] * len(netlist.gates)
    for e, k in enumerate(active):
        gate = netlist.gates[k]
        ar = arities[e]
        if ar >= 1 and gate.inputs[0] >= ni:
            last_use[gate.inputs[0] - ni] = e
        if ar >= 2 and gate.inputs[1] >= ni:
            last_use[gate.inputs[1] - ni] = e
    for out in netlist.outputs:
        if out >= ni:
            last_use[out - ni] = n_total

    slot = list(range(ni)) + [0] * len(netlist.gates)
    free: List[int] = []
    next_new = ni
    ops_l: List[int] = []
    sa_l: List[int] = []
    sb_l: List[int] = []
    dst_l: List[int] = []
    for e, k in enumerate(active):
        gate = netlist.gates[k]
        ar = arities[e]
        ga, gb = gate.inputs[0], gate.inputs[1]
        ops_l.append(opcodes[e])
        sa_l.append(slot[ga] if ar >= 1 else 0)
        sb_l.append(slot[gb] if ar >= 2 else 0)
        d = free.pop() if free else next_new
        if d == next_new:
            next_new += 1
        dst_l.append(d)
        slot[ni + k] = d
        if ar >= 1 and ga >= ni and last_use[ga - ni] == e:
            free.append(slot[ga])
        if ar >= 2 and gb >= ni and gb != ga and last_use[gb - ni] == e:
            free.append(slot[gb])
    out_slots = np.array([slot[o] for o in netlist.outputs], dtype=np.int32)
    return CompiledPhenotype(
        num_inputs=ni,
        ops=np.array(ops_l, dtype=np.int32),
        src_a=np.array(sa_l, dtype=np.int32),
        src_b=np.array(sb_l, dtype=np.int32),
        dst=np.array(dst_l, dtype=np.int32),
        out_slots=out_slots,
    )
