"""Native (C, via ctypes) execution backend for the evaluation engine.

The exhaustive packed simulation is numpy-shaped but ufunc-call-bound: a
width-8 multiplier phenotype is ~300 gates of 1024-word bitwise ops, so
per-call dispatch overhead dominates the arithmetic.  This module embeds
a ~150-line C implementation of the compile/execute/decode pipeline,
builds it once with the system C compiler into a cached shared object,
and drives it through ``ctypes`` over the same
:class:`~repro.engine.arena.BufferArena` buffers the numpy backend uses.

Everything stays optional: if no compiler is available (or compilation
fails, or ``REPRO_ENGINE=numpy`` is set) callers fall back to the
bit-identical numpy backend.  All arithmetic in C is integer, so results
match numpy exactly regardless of optimization flags.

The shared object is cached under ``$REPRO_ENGINE_CACHE`` (default
``~/.cache/repro-engine``) keyed by a digest of the source and compile
flags; concurrent builds (e.g. a process-pool sweep) are safe because
the compiled artifact is moved into place atomically.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

__all__ = ["NativeLib", "native_lib", "native_available", "omp_threads"]

#: Bump when C_SOURCE changes incompatibly (part of the .so cache key).
_ABI_VERSION = 4

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#ifdef __AVX2__
#include <immintrin.h>
#endif

/* Words per execution tile: the interpreter runs every op over one tile
   before advancing, so the program's live slot set (live_width * 8 *
   TILE bytes) stays L1-resident across the whole program instead of
   streaming each full-width row through cache once per op.  Tiling only
   reorders independent per-word integer ops, so results are identical
   for any tile size. */
#define ENGINE_TILE_WORDS 128

/* Opcodes: must match repro.engine.opcodes.OP_NAMES. */

static uint64_t SPREAD[256];

void cgp_init(void) {
    for (int b = 0; b < 256; ++b) {
        uint64_t x = 0;
        for (int k = 0; k < 8; ++k)
            if ((b >> k) & 1) x |= 1ULL << (8 * k);
        SPREAD[b] = x;
    }
}

/* Active-cone sweep + liveness-allocated lowering; mirrors
   compiler.compile_genes_into (both must stay byte-identical).
   scratch_i32 needs ni + 3*nn entries; returns the emitted op count. */
int32_t cgp_compile(const int64_t* genes, int32_t nn, int32_t ni, int32_t no,
                    const int32_t* fn2op, const int32_t* op_arity,
                    int32_t* ops, int32_t* sa, int32_t* sb, int32_t* dst,
                    int32_t* out_slots, uint8_t* needed, int32_t* scratch_i32)
{
    const int64_t* outg = genes + (int64_t)nn * 3;
    int32_t* slot = scratch_i32;            /* ni + nn */
    int32_t* last_use = slot + ni + nn;     /* nn */
    int32_t* free_stack = last_use + nn;    /* nn */

    /* Pass 1: transitive fan-in of the outputs (reverse sweep). */
    memset(needed, 0, (size_t)nn);
    for (int32_t j = 0; j < no; ++j) {
        int64_t o = outg[j];
        if (o >= ni) needed[o - ni] = 1;
    }
    for (int32_t node = nn - 1; node >= 0; --node) {
        if (!needed[node]) continue;
        const int64_t* g = genes + (int64_t)node * 3;
        int32_t ar = op_arity[fn2op[g[2]]];
        if (ar >= 1 && g[0] >= ni) needed[g[0] - ni] = 1;
        if (ar >= 2 && g[1] >= ni) needed[g[1] - ni] = 1;
    }

    /* Pass 2: last consumer (emit index) per node; outputs never die. */
    memset(last_use, 0, (size_t)nn * 4);
    int32_t e = 0;
    for (int32_t node = 0; node < nn; ++node) {
        if (!needed[node]) continue;
        const int64_t* g = genes + (int64_t)node * 3;
        int32_t ar = op_arity[fn2op[g[2]]];
        if (ar >= 1 && g[0] >= ni) last_use[g[0] - ni] = e;
        if (ar >= 2 && g[1] >= ni) last_use[g[1] - ni] = e;
        ++e;
    }
    int32_t n_total = e;
    for (int32_t j = 0; j < no; ++j) {
        int64_t o = outg[j];
        if (o >= ni) last_use[o - ni] = n_total;
    }

    /* Pass 3: emission with LIFO slot recycling.  Dead operand slots are
       released only after the destination is allocated, so a destination
       never aliases its own operands. */
    for (int32_t k = 0; k < ni; ++k) slot[k] = k;
    int32_t n_free = 0, next_new = ni;
    e = 0;
    for (int32_t node = 0; node < nn; ++node) {
        if (!needed[node]) continue;
        const int64_t* g = genes + (int64_t)node * 3;
        int32_t opc = fn2op[g[2]];
        int32_t ar = op_arity[opc];
        int64_t ga = g[0], gb = g[1];
        ops[e] = opc;
        sa[e] = ar >= 1 ? slot[ga] : 0;
        sb[e] = ar >= 2 ? slot[gb] : 0;
        int32_t d = n_free ? free_stack[--n_free] : next_new++;
        dst[e] = d;
        slot[ni + node] = d;
        if (ar >= 1 && ga >= ni && last_use[ga - ni] == e)
            free_stack[n_free++] = slot[ga];
        if (ar >= 2 && gb >= ni && gb != ga && last_use[gb - ni] == e)
            free_stack[n_free++] = slot[gb];
        ++e;
    }
    for (int32_t j = 0; j < no; ++j) out_slots[j] = slot[outg[j]];
    return n_total;
}

/* Slot -> row resolution shared by the single and batched entry points.
   Slots below ni are the shared packed stimulus; slot s >= ni is row
   s - ni of the candidate's private scratch lane.  The single-candidate
   arena is the degenerate case lane == arena + ni*W (one contiguous
   buffer), so both paths execute byte-identically. */
static inline const uint64_t* src_row(const uint64_t* inputs,
                                      const uint64_t* lane,
                                      int32_t ni, int32_t W, int32_t s)
{
    return s < ni ? inputs + (size_t)s * W : lane + (size_t)(s - ni) * W;
}

/* Tiled interpreter over one compiled program (see ENGINE_TILE_WORDS).
   Destinations are always >= ni (primary inputs are never recycled), so
   all stores land in the candidate's lane. */
static void exec_program(const uint64_t* inputs, uint64_t* lane,
                         int32_t ni, int32_t W, int32_t n_ops,
                         const int32_t* ops, const int32_t* sa,
                         const int32_t* sb, const int32_t* dst)
{
    for (int32_t t = 0; t < W; t += ENGINE_TILE_WORDS) {
        int32_t tw = W - t;
        if (tw > ENGINE_TILE_WORDS) tw = ENGINE_TILE_WORDS;
        size_t t8 = (size_t)tw * 8;
        for (int32_t i = 0; i < n_ops; ++i) {
            const uint64_t* restrict a =
                src_row(inputs, lane, ni, W, sa[i]) + t;
            const uint64_t* restrict b =
                src_row(inputs, lane, ni, W, sb[i]) + t;
            uint64_t* restrict o = lane + (size_t)(dst[i] - ni) * W + t;
            switch (ops[i]) {
            case 0: memset(o, 0, t8); break;
            case 1: memset(o, 0xFF, t8); break;
            case 2: memcpy(o, a, t8); break;
            case 3: for (int32_t w = 0; w < tw; ++w) o[w] = ~a[w]; break;
            case 4: for (int32_t w = 0; w < tw; ++w) o[w] = a[w] & b[w]; break;
            case 5: for (int32_t w = 0; w < tw; ++w) o[w] = a[w] | b[w]; break;
            case 6: for (int32_t w = 0; w < tw; ++w) o[w] = a[w] ^ b[w]; break;
            case 7: for (int32_t w = 0; w < tw; ++w) o[w] = ~(a[w] & b[w]); break;
            case 8: for (int32_t w = 0; w < tw; ++w) o[w] = ~(a[w] | b[w]); break;
            case 9: for (int32_t w = 0; w < tw; ++w) o[w] = ~(a[w] ^ b[w]); break;
            case 10: for (int32_t w = 0; w < tw; ++w) o[w] = a[w] & ~b[w]; break;
            case 11: for (int32_t w = 0; w < tw; ++w) o[w] = a[w] | ~b[w]; break;
            }
        }
    }
}

/* Single-candidate entry point over one contiguous arena. */
void cgp_kernel(uint64_t* arena, int32_t ni, int32_t W, int32_t n_ops,
                const int32_t* ops, const int32_t* sa, const int32_t* sb,
                const int32_t* dst)
{
    exec_program(arena, arena + (size_t)ni * W, ni, W, n_ops,
                 ops, sa, sb, dst);
}

/* Bit-transpose the output planes into per-vector byte groups.
   scratch needs (n_bits+7)/8 * ceil(num_vectors/8) uint64 entries.
   All (up to) 8 planes of a byte group are combined in one pass, so
   each accumulator word is stored exactly once.  Takes one pointer per
   plane (rather than slot indices) so callers can resolve slots against
   either a contiguous arena or a split inputs/lane pair. */
static int64_t transpose_planes(const uint64_t* const* planes,
                                int32_t n_bits, int64_t num_vectors,
                                uint64_t* scratch)
{
    int64_t ngroups = (num_vectors + 7) >> 3;
    int32_t n_acc = (n_bits + 7) >> 3;
    for (int32_t gi = 0; gi < n_acc; ++gi) {
        uint64_t* restrict acc = scratch + (size_t)gi * ngroups;
        int32_t j0 = gi * 8;
        int32_t k = n_bits - j0;
        if (k > 8) k = 8;
        const uint8_t* pb[8];
        for (int32_t j = 0; j < k; ++j)
            pb[j] = (const uint8_t*)planes[j0 + j];
        int64_t m0 = 0;
        if (k == 8) {
#ifdef __AVX2__
            /* 32 vectors (= 4 bytes of each plane) per iteration: spread
               a broadcast 32-bit chunk to bytes with a shuffle, pick each
               byte's bit with cmpeq against a bit mask, OR the planes. */
            const __m256i repl = _mm256_setr_epi8(
                0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,
                2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
            const __m256i bits = _mm256_setr_epi8(
                1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
                1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128);
            int64_t chunks = ngroups / 4;   /* 4 acc words = 32 vectors */
            uint8_t* accb = (uint8_t*)acc;
            for (int64_t c = 0; c < chunks; ++c) {
                __m256i a = _mm256_setzero_si256();
                for (int32_t j = 0; j < 8; ++j) {
                    uint32_t chunk;
                    memcpy(&chunk, pb[j] + 4 * c, 4);
                    __m256i x = _mm256_set1_epi32((int32_t)chunk);
                    x = _mm256_shuffle_epi8(x, repl);
                    x = _mm256_cmpeq_epi8(_mm256_and_si256(x, bits), bits);
                    x = _mm256_and_si256(x, _mm256_set1_epi8((char)(1 << j)));
                    a = _mm256_or_si256(a, x);
                }
                _mm256_storeu_si256((__m256i*)(accb + 32 * c), a);
            }
            m0 = chunks * 4;
#endif
            for (int64_t m = m0; m < ngroups; ++m)
                acc[m] = SPREAD[pb[0][m]]
                       | (SPREAD[pb[1][m]] << 1)
                       | (SPREAD[pb[2][m]] << 2)
                       | (SPREAD[pb[3][m]] << 3)
                       | (SPREAD[pb[4][m]] << 4)
                       | (SPREAD[pb[5][m]] << 5)
                       | (SPREAD[pb[6][m]] << 6)
                       | (SPREAD[pb[7][m]] << 7);
        } else {
            (void)m0;
            for (int64_t m = 0; m < ngroups; ++m) {
                uint64_t x = 0;
                for (int32_t j = 0; j < k; ++j)
                    x |= SPREAD[pb[j][m]] << j;
                acc[m] = x;
            }
        }
    }
    return ngroups;
}

void cgp_decode(const uint64_t* arena, int32_t W, const int32_t* out_slots,
                int32_t n_bits, int64_t num_vectors, int32_t do_sign,
                uint64_t* scratch, int32_t* restrict values)
{
    const uint64_t* planes[32];
    for (int32_t j = 0; j < n_bits; ++j)
        planes[j] = arena + (size_t)out_slots[j] * W;
    int64_t ngroups =
        transpose_planes(planes, n_bits, num_vectors, scratch);
    int32_t n_acc = (n_bits + 7) >> 3;
    const uint8_t* a0 = (const uint8_t*)scratch;
    const uint8_t* a1 = (const uint8_t*)(scratch + ngroups);
    const uint8_t* a2 = (const uint8_t*)(scratch + 2 * ngroups);
    const uint8_t* a3 = (const uint8_t*)(scratch + 3 * ngroups);
    int32_t half = (do_sign && n_bits > 0 && n_bits < 32)
                       ? (int32_t)(1U << (n_bits - 1)) : 0;
    for (int64_t v = 0; v < num_vectors; ++v) {
        int32_t val = a0[v];
        if (n_acc > 1) val |= (int32_t)a1[v] << 8;
        if (n_acc > 2) val |= (int32_t)a2[v] << 16;
        if (n_acc > 3) val |= (int32_t)a3[v] << 24;
        if (do_sign && val >= half) val -= half << 1;
        values[v] = val;
    }
}

/* Fused decode + |exact - value| (the WMED error vector).  The
   n_bits <= 16 case — every paper width — is a single lane-wise loop
   (byte interleave, sign-extend shifts, subtract, absolute value,
   int->double): hand-vectorized 8 vectors per iteration under AVX2,
   with a scalar tail (and non-AVX2 fallback) built from the identical
   integer expressions, so every path produces the same doubles. */
static void err_loop_16(const uint8_t* restrict a0,
                        const uint8_t* restrict a1, int32_t two_acc,
                        int32_t do_sign, int32_t ext,
                        const int32_t* restrict exact,
                        double* restrict err, int64_t n)
{
    int64_t v = 0;
#ifdef __AVX2__
    for (; v + 8 <= n; v += 8) {
        __m256i x = _mm256_cvtepu8_epi32(
            _mm_loadl_epi64((const __m128i*)(a0 + v)));
        if (two_acc) {
            __m256i hi = _mm256_cvtepu8_epi32(
                _mm_loadl_epi64((const __m128i*)(a1 + v)));
            x = _mm256_or_si256(x, _mm256_slli_epi32(hi, 8));
        }
        if (do_sign)
            x = _mm256_srai_epi32(
                _mm256_slli_epi32(x, ext), ext);
        __m256i d = _mm256_abs_epi32(_mm256_sub_epi32(
            _mm256_loadu_si256((const __m256i*)(exact + v)), x));
        _mm256_storeu_pd(err + v,
            _mm256_cvtepi32_pd(_mm256_castsi256_si128(d)));
        _mm256_storeu_pd(err + v + 4,
            _mm256_cvtepi32_pd(_mm256_extracti128_si256(d, 1)));
    }
#endif
    for (; v < n; ++v) {
        int32_t val = a0[v];
        if (two_acc) val |= (int32_t)a1[v] << 8;
        if (do_sign) val = (int32_t)((uint32_t)val << ext) >> ext;
        int32_t d = exact[v] - val;
        err[v] = (double)(d < 0 ? -d : d);
    }
}

/* Reduced decode: the same decoded values and |exact - value| integer
   distances as err_loop_16, folded on the fly into three integer
   statistics — sum, nonzero count, max — instead of a float64 row.
   Integer addition is associative, so any accumulation order gives the
   exact sum; callers only use this when the downstream float metric is
   provably bit-equal to the one computed from the materialized row
   (see CompiledObjective._init_engine). */
static void reduce_loop_16(const uint8_t* restrict a0,
                           const uint8_t* restrict a1, int32_t two_acc,
                           int32_t do_sign, int32_t ext,
                           const int32_t* restrict exact, int64_t n,
                           int64_t* restrict stats)
{
    int64_t sum = 0, nz = 0, mx = 0;
    int64_t v = 0;
#ifdef __AVX2__
    __m256i vsum = _mm256_setzero_si256();
    __m256i vnz = _mm256_setzero_si256();
    __m256i vmx = _mm256_setzero_si256();
    for (; v + 8 <= n; v += 8) {
        __m256i x = _mm256_cvtepu8_epi32(
            _mm_loadl_epi64((const __m128i*)(a0 + v)));
        if (two_acc) {
            __m256i hi = _mm256_cvtepu8_epi32(
                _mm_loadl_epi64((const __m128i*)(a1 + v)));
            x = _mm256_or_si256(x, _mm256_slli_epi32(hi, 8));
        }
        if (do_sign)
            x = _mm256_srai_epi32(
                _mm256_slli_epi32(x, ext), ext);
        __m256i d = _mm256_abs_epi32(_mm256_sub_epi32(
            _mm256_loadu_si256((const __m256i*)(exact + v)), x));
        vsum = _mm256_add_epi64(vsum,
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(d)));
        vsum = _mm256_add_epi64(vsum,
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(d, 1)));
        vnz = _mm256_sub_epi32(vnz,
            _mm256_cmpgt_epi32(d, _mm256_setzero_si256()));
        vmx = _mm256_max_epi32(vmx, d);
    }
    int64_t s4[4];
    int32_t l8[8];
    _mm256_storeu_si256((__m256i*)s4, vsum);
    sum = s4[0] + s4[1] + s4[2] + s4[3];
    _mm256_storeu_si256((__m256i*)l8, vnz);
    for (int32_t j = 0; j < 8; ++j) nz += l8[j];
    _mm256_storeu_si256((__m256i*)l8, vmx);
    for (int32_t j = 0; j < 8; ++j) if (l8[j] > mx) mx = l8[j];
#endif
    for (; v < n; ++v) {
        int32_t val = a0[v];
        if (two_acc) val |= (int32_t)a1[v] << 8;
        if (do_sign) val = (int32_t)((uint32_t)val << ext) >> ext;
        int32_t d = exact[v] - val;
        if (d < 0) d = -d;
        sum += d;
        nz += (d != 0);
        if (d > mx) mx = d;
    }
    stats[0] = sum;
    stats[1] = nz;
    stats[2] = mx;
}

static void decode_err_planes(const uint64_t* const* planes, int32_t n_bits,
                              int64_t num_vectors, int32_t do_sign,
                              uint64_t* scratch, const int32_t* exact,
                              double* restrict err)
{
    int64_t ngroups =
        transpose_planes(planes, n_bits, num_vectors, scratch);
    int32_t n_acc = (n_bits + 7) >> 3;
    const uint8_t* restrict a0 = (const uint8_t*)scratch;
    const uint8_t* restrict a1 = (const uint8_t*)(scratch + ngroups);
    const uint8_t* a2 = (const uint8_t*)(scratch + 2 * ngroups);
    const uint8_t* a3 = (const uint8_t*)(scratch + 3 * ngroups);
    if (n_bits <= 16) {
        err_loop_16(a0, a1, n_acc > 1, do_sign && n_bits > 0,
                    32 - n_bits, exact, err, num_vectors);
        return;
    }
    int32_t half = (do_sign && n_bits < 32)
                       ? (int32_t)(1U << (n_bits - 1)) : 0;
    for (int64_t v = 0; v < num_vectors; ++v) {
        int32_t val = a0[v] | ((int32_t)a1[v] << 8);
        if (n_acc > 2) val |= (int32_t)a2[v] << 16;
        if (n_acc > 3) val |= (int32_t)a3[v] << 24;
        if (do_sign && val >= half) val -= half << 1;
        int64_t d = (int64_t)exact[v] - (int64_t)val;
        err[v] = (double)(d < 0 ? -d : d);
    }
}

/* Integer-statistics twin of decode_err_planes: identical decode and
   distance expressions, but the distances are reduced on the fly into
   stats = {sum |d|, count(d != 0), max |d|} with no float64 row ever
   written.  Exact for any feasible circuit: |d| < 2^32 and callers
   bound num_vectors so the running sum stays below 2^63. */
static void decode_reduce_planes(const uint64_t* const* planes,
                                 int32_t n_bits, int64_t num_vectors,
                                 int32_t do_sign, uint64_t* scratch,
                                 const int32_t* exact,
                                 int64_t* restrict stats)
{
    int64_t ngroups =
        transpose_planes(planes, n_bits, num_vectors, scratch);
    int32_t n_acc = (n_bits + 7) >> 3;
    const uint8_t* restrict a0 = (const uint8_t*)scratch;
    const uint8_t* restrict a1 = (const uint8_t*)(scratch + ngroups);
    const uint8_t* a2 = (const uint8_t*)(scratch + 2 * ngroups);
    const uint8_t* a3 = (const uint8_t*)(scratch + 3 * ngroups);
    if (n_bits <= 16) {
        reduce_loop_16(a0, a1, n_acc > 1, do_sign && n_bits > 0,
                       32 - n_bits, exact, num_vectors, stats);
        return;
    }
    int32_t half = (do_sign && n_bits < 32)
                       ? (int32_t)(1U << (n_bits - 1)) : 0;
    int64_t sum = 0, nz = 0, mx = 0;
    for (int64_t v = 0; v < num_vectors; ++v) {
        int32_t val = a0[v] | ((int32_t)a1[v] << 8);
        if (n_acc > 2) val |= (int32_t)a2[v] << 16;
        if (n_acc > 3) val |= (int32_t)a3[v] << 24;
        if (do_sign && val >= half) val -= half << 1;
        int64_t d = (int64_t)exact[v] - (int64_t)val;
        if (d < 0) d = -d;
        sum += d;
        nz += (d != 0);
        if (d > mx) mx = d;
    }
    stats[0] = sum;
    stats[1] = nz;
    stats[2] = mx;
}

void cgp_decode_err(const uint64_t* arena, int32_t W,
                    const int32_t* out_slots, int32_t n_bits,
                    int64_t num_vectors, int32_t do_sign, uint64_t* scratch,
                    const int32_t* exact, double* restrict err)
{
    const uint64_t* planes[32];
    for (int32_t j = 0; j < n_bits; ++j)
        planes[j] = arena + (size_t)out_slots[j] * W;
    decode_err_planes(planes, n_bits, num_vectors, do_sign, scratch,
                      exact, err);
}

void cgp_decode_reduce(const uint64_t* arena, int32_t W,
                       const int32_t* out_slots, int32_t n_bits,
                       int64_t num_vectors, int32_t do_sign,
                       uint64_t* scratch, const int32_t* exact,
                       int64_t* restrict stats)
{
    const uint64_t* planes[32];
    for (int32_t j = 0; j < n_bits; ++j)
        planes[j] = arena + (size_t)out_slots[j] * W;
    decode_reduce_planes(planes, n_bits, num_vectors, do_sign, scratch,
                         exact, stats);
}

/* One candidate of a batch: execute its program into its lane, then
   decode + error straight from the lane (or the shared inputs, for
   outputs wired directly to a primary input).  With stats non-NULL the
   error row is never touched: the distances are folded into the
   three-integer summary instead (see decode_reduce_planes). */
static void eval_candidate(const uint64_t* inputs, uint64_t* lane,
                           int32_t ni, int32_t W, int32_t n_ops,
                           const int32_t* ops, const int32_t* sa,
                           const int32_t* sb, const int32_t* dst,
                           const int32_t* osl, int32_t n_bits,
                           int64_t num_vectors, int32_t do_sign,
                           uint64_t* scratch, const int32_t* exact,
                           double* err, int64_t* stats)
{
    exec_program(inputs, lane, ni, W, n_ops, ops, sa, sb, dst);
    const uint64_t* planes[32];
    for (int32_t j = 0; j < n_bits; ++j)
        planes[j] = src_row(inputs, lane, ni, W, osl[j]);
    if (stats)
        decode_reduce_planes(planes, n_bits, num_vectors, do_sign,
                             scratch, exact, stats);
    else
        decode_err_planes(planes, n_bits, num_vectors, do_sign, scratch,
                          exact, err);
}

/* Batched evaluation: one call runs n_cand compiled programs over the
   shared packed stimulus.  Every candidate owns a program slab row and
   an error row; lane and transpose-scratch rows are per candidate too
   unless their stride is 0.  A compiled program writes every non-input
   slot before reading it (slots map to inputs or earlier destinations
   of the same program), so with stride 0 the serial loop soundly reuses
   one lane for all candidates — a much smaller, cache-resident working
   set.  With OpenMP compiled in and nthreads > 1 the candidates are
   split across a thread team (callers must then pass full strides).
   Each candidate's arithmetic is identical either way (pure integer
   ops, no cross-candidate reads), so serial and parallel results match
   bit-for-bit.  Strides are in elements of the respective arrays.
   With stats non-NULL, candidate c's distances reduce into
   stats[3c .. 3c+2] and the err rows are never written. */
void cgp_eval_batch(const uint64_t* inputs, uint64_t* lanes, int32_t ni,
                    int32_t lane_stride_rows, int32_t W, int32_t n_cand,
                    const int32_t* n_ops_arr, const int32_t* ops,
                    const int32_t* sa, const int32_t* sb,
                    const int32_t* dst, int64_t prog_stride,
                    const int32_t* out_slots, int32_t n_bits,
                    int64_t out_stride, int64_t num_vectors,
                    int32_t do_sign, uint64_t* scratch,
                    int64_t scratch_stride, const int32_t* exact,
                    double* err, int64_t err_stride, int64_t* stats,
                    int32_t nthreads)
{
    int32_t nt = 1;
#ifdef _OPENMP
    nt = nthreads > 0 ? nthreads : omp_get_max_threads();
#else
    (void)nthreads;
#endif
    if (nt > 1 && n_cand > 1) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nt)
        for (int32_t c = 0; c < n_cand; ++c)
            eval_candidate(inputs,
                           lanes + (size_t)c * lane_stride_rows * W, ni, W,
                           n_ops_arr[c], ops + c * prog_stride,
                           sa + c * prog_stride, sb + c * prog_stride,
                           dst + c * prog_stride,
                           out_slots + c * out_stride, n_bits,
                           num_vectors, do_sign,
                           scratch + c * scratch_stride, exact,
                           err + c * err_stride,
                           stats ? stats + 3 * (int64_t)c : 0);
#endif
    } else {
        for (int32_t c = 0; c < n_cand; ++c)
            eval_candidate(inputs,
                           lanes + (size_t)c * lane_stride_rows * W, ni, W,
                           n_ops_arr[c], ops + c * prog_stride,
                           sa + c * prog_stride, sb + c * prog_stride,
                           dst + c * prog_stride,
                           out_slots + c * out_stride, n_bits,
                           num_vectors, do_sign,
                           scratch + c * scratch_stride, exact,
                           err + c * err_stride,
                           stats ? stats + 3 * (int64_t)c : 0);
    }
}

int32_t cgp_omp_compiled(void)
{
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

int32_t cgp_omp_max_threads(void)
{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}
"""

_I32 = ctypes.c_int32
_I64 = ctypes.c_int64
_P = ctypes.c_void_p


def _cache_dir() -> str:
    override = os.environ.get("REPRO_ENGINE_CACHE")
    if override:
        return override
    home = os.path.expanduser("~")
    if home and home != "~" and os.path.isdir(home):
        return os.path.join(home, ".cache", "repro-engine")
    return os.path.join(
        tempfile.gettempdir(), f"repro-engine-{os.getuid()}"
    )


def _find_compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _host_tag() -> str:
    """Identifies the host ISA for the .so cache key.

    ``-march=native`` bakes the build host's instruction set into the
    binary, so a cached artifact must never be reused on a different
    CPU (e.g. a shared NFS home across heterogeneous cluster nodes —
    loading an AVX-512 build on an older node would SIGILL).  The CPU
    feature flags are the discriminator; fall back to coarse platform
    identity where /proc/cpuinfo is unavailable.
    """
    ident = [platform.system(), platform.machine()]
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("flags", "features")):
                    ident.append(line.strip())
                    break
    except OSError:
        ident.append(platform.processor())
    return "|".join(ident)


def _build_shared_object() -> Optional[str]:
    """Compile C_SOURCE into a cached .so; return its path or None."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    # Prefer OpenMP-enabled builds (for the batched entry point); fall
    # back to plain builds when the toolchain lacks -fopenmp.  Either
    # way results are bit-identical — OpenMP only splits the candidate
    # loop of cgp_eval_batch across threads.
    flag_sets = (
        ["-O3", "-march=native", "-fopenmp", "-shared", "-fPIC"],
        ["-O3", "-march=native", "-shared", "-fPIC"],
        ["-O3", "-fopenmp", "-shared", "-fPIC"],
        ["-O3", "-shared", "-fPIC"],
    )
    cache = _cache_dir()
    for flags in flag_sets:
        tag = hashlib.blake2b(
            (
                C_SOURCE + repr(flags) + str(_ABI_VERSION) + _host_tag()
            ).encode(),
            digest_size=8,
        ).hexdigest()
        so_path = os.path.join(cache, f"engine_{tag}.so")
        if os.path.exists(so_path):
            return so_path
        try:
            os.makedirs(cache, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache) as tmp:
                src = os.path.join(tmp, "engine.c")
                out = os.path.join(tmp, "engine.so")
                with open(src, "w") as fh:
                    fh.write(C_SOURCE)
                proc = subprocess.run(
                    [compiler, *flags, "-o", out, src],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    continue
                os.replace(out, so_path)  # atomic: safe under races
            return so_path
        except (OSError, subprocess.SubprocessError):
            continue
    return None


class NativeLib:
    """ctypes facade over the compiled engine library."""

    def __init__(self, path: str) -> None:
        self.path = path
        lib = ctypes.CDLL(path)
        lib.cgp_init.restype = None
        lib.cgp_compile.restype = _I32
        lib.cgp_compile.argtypes = [
            _P, _I32, _I32, _I32, _P, _P, _P, _P, _P, _P, _P, _P, _P
        ]
        lib.cgp_kernel.restype = None
        lib.cgp_kernel.argtypes = [_P, _I32, _I32, _I32, _P, _P, _P, _P]
        lib.cgp_decode.restype = None
        lib.cgp_decode.argtypes = [_P, _I32, _P, _I32, _I64, _I32, _P, _P]
        lib.cgp_decode_err.restype = None
        lib.cgp_decode_err.argtypes = [
            _P, _I32, _P, _I32, _I64, _I32, _P, _P, _P
        ]
        lib.cgp_decode_reduce.restype = None
        lib.cgp_decode_reduce.argtypes = [
            _P, _I32, _P, _I32, _I64, _I32, _P, _P, _P
        ]
        lib.cgp_eval_batch.restype = None
        lib.cgp_eval_batch.argtypes = [
            _P, _P, _I32, _I32, _I32, _I32,      # inputs..n_cand
            _P, _P, _P, _P, _P, _I64,            # n_ops, slabs, prog_stride
            _P, _I32, _I64,                      # out_slots, n_bits, stride
            _I64, _I32, _P, _I64,                # nvec, sign, scratch+stride
            _P, _P, _I64, _P, _I32,              # exact, err+stride, stats, nt
        ]
        lib.cgp_omp_compiled.restype = _I32
        lib.cgp_omp_compiled.argtypes = []
        lib.cgp_omp_max_threads.restype = _I32
        lib.cgp_omp_max_threads.argtypes = []
        lib.cgp_init()
        self._lib = lib
        #: Threads an ``nthreads=-1`` dispatch resolves to in C.
        self._omp_default = (
            int(lib.cgp_omp_max_threads())
            if lib.cgp_omp_compiled()
            else 1
        )

    @staticmethod
    def _ptr(arr) -> int:
        # Accepts a precomputed raw address (int) so hot callers can
        # amortize the ~µs-scale ``ndarray.ctypes`` accessor per call.
        return arr if type(arr) is int else arr.ctypes.data

    def compile(
        self,
        genes: np.ndarray,
        num_nodes: int,
        num_inputs: int,
        num_outputs: int,
        fn2op: np.ndarray,
        op_arity: np.ndarray,
        ops: np.ndarray,
        src_a: np.ndarray,
        src_b: np.ndarray,
        dst: np.ndarray,
        out_slots: np.ndarray,
        needed: np.ndarray,
        scratch_i32: np.ndarray,
    ) -> int:
        return int(
            self._lib.cgp_compile(
                self._ptr(genes), num_nodes, num_inputs, num_outputs,
                self._ptr(fn2op), self._ptr(op_arity), self._ptr(ops),
                self._ptr(src_a), self._ptr(src_b), self._ptr(dst),
                self._ptr(out_slots), self._ptr(needed),
                self._ptr(scratch_i32),
            )
        )

    def kernel(
        self,
        buf: np.ndarray,
        num_inputs: int,
        words: int,
        n_ops: int,
        ops: np.ndarray,
        src_a: np.ndarray,
        src_b: np.ndarray,
        dst: np.ndarray,
    ) -> None:
        self._lib.cgp_kernel(
            self._ptr(buf), num_inputs, words, n_ops,
            self._ptr(ops), self._ptr(src_a), self._ptr(src_b),
            self._ptr(dst),
        )

    def decode(
        self,
        buf: np.ndarray,
        words: int,
        out_slots: np.ndarray,
        n_bits: int,
        num_vectors: int,
        signed: bool,
        scratch: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self._lib.cgp_decode(
            self._ptr(buf), words, self._ptr(out_slots), n_bits,
            num_vectors, int(signed), self._ptr(scratch), self._ptr(values),
        )

    def decode_err(
        self,
        buf: np.ndarray,
        words: int,
        out_slots: np.ndarray,
        n_bits: int,
        num_vectors: int,
        signed: bool,
        scratch: np.ndarray,
        exact: np.ndarray,
        err: np.ndarray,
    ) -> None:
        self._lib.cgp_decode_err(
            self._ptr(buf), words, self._ptr(out_slots), n_bits,
            num_vectors, int(signed), self._ptr(scratch),
            self._ptr(exact), self._ptr(err),
        )

    def decode_reduce(
        self,
        buf: np.ndarray,
        words: int,
        out_slots: np.ndarray,
        n_bits: int,
        num_vectors: int,
        signed: bool,
        scratch: np.ndarray,
        exact: np.ndarray,
        stats: np.ndarray,
    ) -> None:
        """Decode + reduce into ``stats = (sum |d|, count != 0, max)``."""
        self._lib.cgp_decode_reduce(
            self._ptr(buf), words, self._ptr(out_slots), n_bits,
            num_vectors, int(signed), self._ptr(scratch),
            self._ptr(exact), self._ptr(stats),
        )

    def eval_batch(
        self,
        inputs,
        lanes,
        num_inputs: int,
        lane_stride_rows: int,
        words: int,
        n_cand: int,
        n_ops_arr,
        ops,
        src_a,
        src_b,
        dst,
        prog_stride: int,
        out_slots,
        n_bits: int,
        out_stride: int,
        num_vectors: int,
        signed: bool,
        scratch,
        scratch_stride: int,
        exact,
        err,
        err_stride: int,
        nthreads: int,
        stats=0,
    ) -> None:
        """Evaluate ``n_cand`` compiled programs in one native call.

        Array arguments may be ndarrays or precomputed raw addresses;
        strides are in elements.  ``nthreads`` follows the C contract:
        1 forces the serial loop, N > 1 requests an OpenMP team of N,
        and -1 defers to the library default.  ``lane_stride_rows`` (and
        ``scratch_stride``) may be 0 only on the serial path, where all
        candidates soundly reuse one lane.  A non-zero ``stats`` points
        at an ``(n_cand, 3)`` int64 buffer receiving each candidate's
        ``(sum |d|, nonzero count, max |d|)``; the err rows then stay
        untouched (exact-reduction fast path, see the C comments).
        """
        effective = self._omp_default if nthreads < 0 else nthreads
        if effective > 1 and n_cand > 1:
            _mark_omp_team_used()
        self._lib.cgp_eval_batch(
            self._ptr(inputs), self._ptr(lanes), num_inputs,
            lane_stride_rows,
            words, n_cand, self._ptr(n_ops_arr), self._ptr(ops),
            self._ptr(src_a), self._ptr(src_b), self._ptr(dst),
            prog_stride, self._ptr(out_slots), n_bits, out_stride,
            num_vectors, int(signed), self._ptr(scratch), scratch_stride,
            self._ptr(exact), self._ptr(err), err_stride,
            self._ptr(stats), nthreads,
        )

    def omp_compiled(self) -> bool:
        """Whether the loaded .so was built with ``-fopenmp``."""
        return bool(self._lib.cgp_omp_compiled())

    def omp_max_threads(self) -> int:
        return int(self._lib.cgp_omp_max_threads())


_lock = threading.Lock()
_cached: Optional[NativeLib] = None
_build_attempted = False


def native_lib() -> Optional[NativeLib]:
    """The loaded native library, or ``None`` when unavailable.

    Build + load happen once per process; failures are remembered so a
    missing compiler costs one probe, not one per evaluator.
    """
    global _cached, _build_attempted
    if os.environ.get("REPRO_ENGINE", "").lower() in ("numpy", "py", "off"):
        return None
    with _lock:
        if _cached is not None or _build_attempted:
            return _cached
        _build_attempted = True
        path = _build_shared_object()
        if path is None:
            return None
        try:
            _cached = NativeLib(path)
        except OSError:
            _cached = None
        return _cached


def native_available() -> bool:
    """Whether the C backend can be (or has been) built and loaded."""
    return native_lib() is not None


#: Pid of the process that last ran an OpenMP team (> 1 threads).
#: libgomp's worker threads do not survive fork(); a forked child of a
#: process that has already spun up a team (e.g. a ProcessPoolExecutor
#: sweep worker) would deadlock on the next parallel region, so such
#: children are forced onto the bit-identical serial loop.
_omp_team_pid: Optional[int] = None


def _mark_omp_team_used() -> None:
    global _omp_team_pid
    _omp_team_pid = os.getpid()


def omp_threads() -> int:
    """Effective thread request for batched native dispatch.

    Resolves the ``REPRO_OMP`` environment knob against the loaded
    library's capabilities:

    - ``0`` / ``off`` / ``false`` / ``no``: force the serial loop (1).
    - a positive integer ``N``: request exactly ``N`` threads.
    - unset / ``auto`` / ``on``: the OpenMP library default
      (``omp_get_max_threads`` of the loaded .so).

    Always returns a concrete count (>= 1) so callers can pick buffer
    strides up front; 1 whenever the .so lacks OpenMP or this process
    is a forked child of one that already ran a team (see
    ``_omp_team_pid``).  The serial and threaded paths are bit-identical
    by construction, so this only ever affects wall-clock.
    """
    raw = os.environ.get("REPRO_OMP", "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return 1
    lib = native_lib()
    if lib is None or not lib.omp_compiled():
        return 1
    if _omp_team_pid is not None and _omp_team_pid != os.getpid():
        return 1
    if raw in ("", "auto", "on"):
        return lib._omp_default
    try:
        n = int(raw)
    except ValueError:
        return 1
    return max(1, n)
