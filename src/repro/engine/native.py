"""Native (C, via ctypes) execution backend for the evaluation engine.

The exhaustive packed simulation is numpy-shaped but ufunc-call-bound: a
width-8 multiplier phenotype is ~300 gates of 1024-word bitwise ops, so
per-call dispatch overhead dominates the arithmetic.  This module embeds
a ~150-line C implementation of the compile/execute/decode pipeline,
builds it once with the system C compiler into a cached shared object,
and drives it through ``ctypes`` over the same
:class:`~repro.engine.arena.BufferArena` buffers the numpy backend uses.

Everything stays optional: if no compiler is available (or compilation
fails, or ``REPRO_ENGINE=numpy`` is set) callers fall back to the
bit-identical numpy backend.  All arithmetic in C is integer, so results
match numpy exactly regardless of optimization flags.

The shared object is cached under ``$REPRO_ENGINE_CACHE`` (default
``~/.cache/repro-engine``) keyed by a digest of the source and compile
flags; concurrent builds (e.g. a process-pool sweep) are safe because
the compiled artifact is moved into place atomically.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

__all__ = ["NativeLib", "native_lib", "native_available"]

#: Bump when C_SOURCE changes incompatibly (part of the .so cache key).
_ABI_VERSION = 2

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#ifdef __AVX2__
#include <immintrin.h>
#endif

/* Opcodes: must match repro.engine.opcodes.OP_NAMES. */

static uint64_t SPREAD[256];

void cgp_init(void) {
    for (int b = 0; b < 256; ++b) {
        uint64_t x = 0;
        for (int k = 0; k < 8; ++k)
            if ((b >> k) & 1) x |= 1ULL << (8 * k);
        SPREAD[b] = x;
    }
}

/* Active-cone sweep + liveness-allocated lowering; mirrors
   compiler.compile_genes_into (both must stay byte-identical).
   scratch_i32 needs ni + 3*nn entries; returns the emitted op count. */
int32_t cgp_compile(const int64_t* genes, int32_t nn, int32_t ni, int32_t no,
                    const int32_t* fn2op, const int32_t* op_arity,
                    int32_t* ops, int32_t* sa, int32_t* sb, int32_t* dst,
                    int32_t* out_slots, uint8_t* needed, int32_t* scratch_i32)
{
    const int64_t* outg = genes + (int64_t)nn * 3;
    int32_t* slot = scratch_i32;            /* ni + nn */
    int32_t* last_use = slot + ni + nn;     /* nn */
    int32_t* free_stack = last_use + nn;    /* nn */

    /* Pass 1: transitive fan-in of the outputs (reverse sweep). */
    memset(needed, 0, (size_t)nn);
    for (int32_t j = 0; j < no; ++j) {
        int64_t o = outg[j];
        if (o >= ni) needed[o - ni] = 1;
    }
    for (int32_t node = nn - 1; node >= 0; --node) {
        if (!needed[node]) continue;
        const int64_t* g = genes + (int64_t)node * 3;
        int32_t ar = op_arity[fn2op[g[2]]];
        if (ar >= 1 && g[0] >= ni) needed[g[0] - ni] = 1;
        if (ar >= 2 && g[1] >= ni) needed[g[1] - ni] = 1;
    }

    /* Pass 2: last consumer (emit index) per node; outputs never die. */
    memset(last_use, 0, (size_t)nn * 4);
    int32_t e = 0;
    for (int32_t node = 0; node < nn; ++node) {
        if (!needed[node]) continue;
        const int64_t* g = genes + (int64_t)node * 3;
        int32_t ar = op_arity[fn2op[g[2]]];
        if (ar >= 1 && g[0] >= ni) last_use[g[0] - ni] = e;
        if (ar >= 2 && g[1] >= ni) last_use[g[1] - ni] = e;
        ++e;
    }
    int32_t n_total = e;
    for (int32_t j = 0; j < no; ++j) {
        int64_t o = outg[j];
        if (o >= ni) last_use[o - ni] = n_total;
    }

    /* Pass 3: emission with LIFO slot recycling.  Dead operand slots are
       released only after the destination is allocated, so a destination
       never aliases its own operands. */
    for (int32_t k = 0; k < ni; ++k) slot[k] = k;
    int32_t n_free = 0, next_new = ni;
    e = 0;
    for (int32_t node = 0; node < nn; ++node) {
        if (!needed[node]) continue;
        const int64_t* g = genes + (int64_t)node * 3;
        int32_t opc = fn2op[g[2]];
        int32_t ar = op_arity[opc];
        int64_t ga = g[0], gb = g[1];
        ops[e] = opc;
        sa[e] = ar >= 1 ? slot[ga] : 0;
        sb[e] = ar >= 2 ? slot[gb] : 0;
        int32_t d = n_free ? free_stack[--n_free] : next_new++;
        dst[e] = d;
        slot[ni + node] = d;
        if (ar >= 1 && ga >= ni && last_use[ga - ni] == e)
            free_stack[n_free++] = slot[ga];
        if (ar >= 2 && gb >= ni && gb != ga && last_use[gb - ni] == e)
            free_stack[n_free++] = slot[gb];
        ++e;
    }
    for (int32_t j = 0; j < no; ++j) out_slots[j] = slot[outg[j]];
    return n_total;
}

/* Tight interpreter over the compiled program and the word arena. */
void cgp_kernel(uint64_t* arena, int32_t W, int32_t n_ops,
                const int32_t* ops, const int32_t* sa, const int32_t* sb,
                const int32_t* dst)
{
    size_t w8 = (size_t)W * 8;
    for (int32_t i = 0; i < n_ops; ++i) {
        const uint64_t* restrict a = arena + (size_t)sa[i] * W;
        const uint64_t* restrict b = arena + (size_t)sb[i] * W;
        uint64_t* restrict o = arena + (size_t)dst[i] * W;
        switch (ops[i]) {
        case 0: memset(o, 0, w8); break;
        case 1: memset(o, 0xFF, w8); break;
        case 2: memcpy(o, a, w8); break;
        case 3: for (int32_t w = 0; w < W; ++w) o[w] = ~a[w]; break;
        case 4: for (int32_t w = 0; w < W; ++w) o[w] = a[w] & b[w]; break;
        case 5: for (int32_t w = 0; w < W; ++w) o[w] = a[w] | b[w]; break;
        case 6: for (int32_t w = 0; w < W; ++w) o[w] = a[w] ^ b[w]; break;
        case 7: for (int32_t w = 0; w < W; ++w) o[w] = ~(a[w] & b[w]); break;
        case 8: for (int32_t w = 0; w < W; ++w) o[w] = ~(a[w] | b[w]); break;
        case 9: for (int32_t w = 0; w < W; ++w) o[w] = ~(a[w] ^ b[w]); break;
        case 10: for (int32_t w = 0; w < W; ++w) o[w] = a[w] & ~b[w]; break;
        case 11: for (int32_t w = 0; w < W; ++w) o[w] = a[w] | ~b[w]; break;
        }
    }
}

/* Bit-transpose the output planes into per-vector byte groups.
   scratch needs (n_bits+7)/8 * ceil(num_vectors/8) uint64 entries.
   All (up to) 8 planes of a byte group are combined in one pass, so
   each accumulator word is stored exactly once. */
static int64_t transpose_planes(const uint64_t* arena, int32_t W,
                                const int32_t* out_slots, int32_t n_bits,
                                int64_t num_vectors, uint64_t* scratch)
{
    int64_t ngroups = (num_vectors + 7) >> 3;
    int32_t n_acc = (n_bits + 7) >> 3;
    for (int32_t gi = 0; gi < n_acc; ++gi) {
        uint64_t* restrict acc = scratch + (size_t)gi * ngroups;
        int32_t j0 = gi * 8;
        int32_t k = n_bits - j0;
        if (k > 8) k = 8;
        const uint8_t* pb[8];
        for (int32_t j = 0; j < k; ++j)
            pb[j] = (const uint8_t*)(arena + (size_t)out_slots[j0 + j] * W);
        int64_t m0 = 0;
        if (k == 8) {
#ifdef __AVX2__
            /* 32 vectors (= 4 bytes of each plane) per iteration: spread
               a broadcast 32-bit chunk to bytes with a shuffle, pick each
               byte's bit with cmpeq against a bit mask, OR the planes. */
            const __m256i repl = _mm256_setr_epi8(
                0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,
                2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
            const __m256i bits = _mm256_setr_epi8(
                1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
                1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128);
            int64_t chunks = ngroups / 4;   /* 4 acc words = 32 vectors */
            uint8_t* accb = (uint8_t*)acc;
            for (int64_t c = 0; c < chunks; ++c) {
                __m256i a = _mm256_setzero_si256();
                for (int32_t j = 0; j < 8; ++j) {
                    uint32_t chunk;
                    memcpy(&chunk, pb[j] + 4 * c, 4);
                    __m256i x = _mm256_set1_epi32((int32_t)chunk);
                    x = _mm256_shuffle_epi8(x, repl);
                    x = _mm256_cmpeq_epi8(_mm256_and_si256(x, bits), bits);
                    x = _mm256_and_si256(x, _mm256_set1_epi8((char)(1 << j)));
                    a = _mm256_or_si256(a, x);
                }
                _mm256_storeu_si256((__m256i*)(accb + 32 * c), a);
            }
            m0 = chunks * 4;
#endif
            for (int64_t m = m0; m < ngroups; ++m)
                acc[m] = SPREAD[pb[0][m]]
                       | (SPREAD[pb[1][m]] << 1)
                       | (SPREAD[pb[2][m]] << 2)
                       | (SPREAD[pb[3][m]] << 3)
                       | (SPREAD[pb[4][m]] << 4)
                       | (SPREAD[pb[5][m]] << 5)
                       | (SPREAD[pb[6][m]] << 6)
                       | (SPREAD[pb[7][m]] << 7);
        } else {
            (void)m0;
            for (int64_t m = 0; m < ngroups; ++m) {
                uint64_t x = 0;
                for (int32_t j = 0; j < k; ++j)
                    x |= SPREAD[pb[j][m]] << j;
                acc[m] = x;
            }
        }
    }
    return ngroups;
}

void cgp_decode(const uint64_t* arena, int32_t W, const int32_t* out_slots,
                int32_t n_bits, int64_t num_vectors, int32_t do_sign,
                uint64_t* scratch, int32_t* restrict values)
{
    int64_t ngroups =
        transpose_planes(arena, W, out_slots, n_bits, num_vectors, scratch);
    int32_t n_acc = (n_bits + 7) >> 3;
    const uint8_t* a0 = (const uint8_t*)scratch;
    const uint8_t* a1 = (const uint8_t*)(scratch + ngroups);
    const uint8_t* a2 = (const uint8_t*)(scratch + 2 * ngroups);
    const uint8_t* a3 = (const uint8_t*)(scratch + 3 * ngroups);
    int32_t half = (do_sign && n_bits > 0 && n_bits < 32)
                       ? (int32_t)(1U << (n_bits - 1)) : 0;
    for (int64_t v = 0; v < num_vectors; ++v) {
        int32_t val = a0[v];
        if (n_acc > 1) val |= (int32_t)a1[v] << 8;
        if (n_acc > 2) val |= (int32_t)a2[v] << 16;
        if (n_acc > 3) val |= (int32_t)a3[v] << 24;
        if (do_sign && val >= half) val -= half << 1;
        values[v] = val;
    }
}

/* Fused decode + |exact - value| (the WMED error vector).  The
   n_bits <= 16 case — every paper width — is a separate loop of purely
   lane-wise ops (byte interleave, sign-extend shifts, subtract,
   absolute value, int->double) that compilers auto-vectorize. */
void cgp_decode_err(const uint64_t* arena, int32_t W,
                    const int32_t* out_slots, int32_t n_bits,
                    int64_t num_vectors, int32_t do_sign, uint64_t* scratch,
                    const int32_t* exact, double* restrict err)
{
    int64_t ngroups =
        transpose_planes(arena, W, out_slots, n_bits, num_vectors, scratch);
    int32_t n_acc = (n_bits + 7) >> 3;
    const uint8_t* restrict a0 = (const uint8_t*)scratch;
    const uint8_t* restrict a1 = (const uint8_t*)(scratch + ngroups);
    const uint8_t* a2 = (const uint8_t*)(scratch + 2 * ngroups);
    const uint8_t* a3 = (const uint8_t*)(scratch + 3 * ngroups);
    if (n_bits <= 16) {
        int32_t ext = 32 - n_bits;
        if (n_acc > 1 && do_sign && n_bits > 0) {
            for (int64_t v = 0; v < num_vectors; ++v) {
                int32_t val = a0[v] | ((int32_t)a1[v] << 8);
                val = (int32_t)((uint32_t)val << ext) >> ext;
                int32_t d = exact[v] - val;
                err[v] = (double)(d < 0 ? -d : d);
            }
        } else if (n_acc > 1) {
            for (int64_t v = 0; v < num_vectors; ++v) {
                int32_t d = exact[v] - (a0[v] | ((int32_t)a1[v] << 8));
                err[v] = (double)(d < 0 ? -d : d);
            }
        } else if (do_sign && n_bits > 0) {
            for (int64_t v = 0; v < num_vectors; ++v) {
                int32_t val = (int32_t)((uint32_t)a0[v] << ext) >> ext;
                int32_t d = exact[v] - val;
                err[v] = (double)(d < 0 ? -d : d);
            }
        } else {
            for (int64_t v = 0; v < num_vectors; ++v) {
                int32_t d = exact[v] - a0[v];
                err[v] = (double)(d < 0 ? -d : d);
            }
        }
        return;
    }
    int32_t half = (do_sign && n_bits < 32)
                       ? (int32_t)(1U << (n_bits - 1)) : 0;
    for (int64_t v = 0; v < num_vectors; ++v) {
        int32_t val = a0[v] | ((int32_t)a1[v] << 8);
        if (n_acc > 2) val |= (int32_t)a2[v] << 16;
        if (n_acc > 3) val |= (int32_t)a3[v] << 24;
        if (do_sign && val >= half) val -= half << 1;
        int64_t d = (int64_t)exact[v] - (int64_t)val;
        err[v] = (double)(d < 0 ? -d : d);
    }
}
"""

_I32 = ctypes.c_int32
_I64 = ctypes.c_int64
_P = ctypes.c_void_p


def _cache_dir() -> str:
    override = os.environ.get("REPRO_ENGINE_CACHE")
    if override:
        return override
    home = os.path.expanduser("~")
    if home and home != "~" and os.path.isdir(home):
        return os.path.join(home, ".cache", "repro-engine")
    return os.path.join(
        tempfile.gettempdir(), f"repro-engine-{os.getuid()}"
    )


def _find_compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _host_tag() -> str:
    """Identifies the host ISA for the .so cache key.

    ``-march=native`` bakes the build host's instruction set into the
    binary, so a cached artifact must never be reused on a different
    CPU (e.g. a shared NFS home across heterogeneous cluster nodes —
    loading an AVX-512 build on an older node would SIGILL).  The CPU
    feature flags are the discriminator; fall back to coarse platform
    identity where /proc/cpuinfo is unavailable.
    """
    ident = [platform.system(), platform.machine()]
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith(("flags", "features")):
                    ident.append(line.strip())
                    break
    except OSError:
        ident.append(platform.processor())
    return "|".join(ident)


def _build_shared_object() -> Optional[str]:
    """Compile C_SOURCE into a cached .so; return its path or None."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    flag_sets = (
        ["-O3", "-march=native", "-shared", "-fPIC"],
        ["-O3", "-shared", "-fPIC"],
    )
    cache = _cache_dir()
    for flags in flag_sets:
        tag = hashlib.blake2b(
            (
                C_SOURCE + repr(flags) + str(_ABI_VERSION) + _host_tag()
            ).encode(),
            digest_size=8,
        ).hexdigest()
        so_path = os.path.join(cache, f"engine_{tag}.so")
        if os.path.exists(so_path):
            return so_path
        try:
            os.makedirs(cache, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache) as tmp:
                src = os.path.join(tmp, "engine.c")
                out = os.path.join(tmp, "engine.so")
                with open(src, "w") as fh:
                    fh.write(C_SOURCE)
                proc = subprocess.run(
                    [compiler, *flags, "-o", out, src],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    continue
                os.replace(out, so_path)  # atomic: safe under races
            return so_path
        except (OSError, subprocess.SubprocessError):
            continue
    return None


class NativeLib:
    """ctypes facade over the compiled engine library."""

    def __init__(self, path: str) -> None:
        self.path = path
        lib = ctypes.CDLL(path)
        lib.cgp_init.restype = None
        lib.cgp_compile.restype = _I32
        lib.cgp_compile.argtypes = [
            _P, _I32, _I32, _I32, _P, _P, _P, _P, _P, _P, _P, _P, _P
        ]
        lib.cgp_kernel.restype = None
        lib.cgp_kernel.argtypes = [_P, _I32, _I32, _P, _P, _P, _P]
        lib.cgp_decode.restype = None
        lib.cgp_decode.argtypes = [_P, _I32, _P, _I32, _I64, _I32, _P, _P]
        lib.cgp_decode_err.restype = None
        lib.cgp_decode_err.argtypes = [
            _P, _I32, _P, _I32, _I64, _I32, _P, _P, _P
        ]
        lib.cgp_init()
        self._lib = lib

    @staticmethod
    def _ptr(arr: np.ndarray) -> int:
        return arr.ctypes.data

    def compile(
        self,
        genes: np.ndarray,
        num_nodes: int,
        num_inputs: int,
        num_outputs: int,
        fn2op: np.ndarray,
        op_arity: np.ndarray,
        ops: np.ndarray,
        src_a: np.ndarray,
        src_b: np.ndarray,
        dst: np.ndarray,
        out_slots: np.ndarray,
        needed: np.ndarray,
        scratch_i32: np.ndarray,
    ) -> int:
        return int(
            self._lib.cgp_compile(
                self._ptr(genes), num_nodes, num_inputs, num_outputs,
                self._ptr(fn2op), self._ptr(op_arity), self._ptr(ops),
                self._ptr(src_a), self._ptr(src_b), self._ptr(dst),
                self._ptr(out_slots), self._ptr(needed),
                self._ptr(scratch_i32),
            )
        )

    def kernel(
        self,
        buf: np.ndarray,
        words: int,
        n_ops: int,
        ops: np.ndarray,
        src_a: np.ndarray,
        src_b: np.ndarray,
        dst: np.ndarray,
    ) -> None:
        self._lib.cgp_kernel(
            self._ptr(buf), words, n_ops,
            self._ptr(ops), self._ptr(src_a), self._ptr(src_b),
            self._ptr(dst),
        )

    def decode(
        self,
        buf: np.ndarray,
        words: int,
        out_slots: np.ndarray,
        n_bits: int,
        num_vectors: int,
        signed: bool,
        scratch: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self._lib.cgp_decode(
            self._ptr(buf), words, self._ptr(out_slots), n_bits,
            num_vectors, int(signed), self._ptr(scratch), self._ptr(values),
        )

    def decode_err(
        self,
        buf: np.ndarray,
        words: int,
        out_slots: np.ndarray,
        n_bits: int,
        num_vectors: int,
        signed: bool,
        scratch: np.ndarray,
        exact: np.ndarray,
        err: np.ndarray,
    ) -> None:
        self._lib.cgp_decode_err(
            self._ptr(buf), words, self._ptr(out_slots), n_bits,
            num_vectors, int(signed), self._ptr(scratch),
            self._ptr(exact), self._ptr(err),
        )


_lock = threading.Lock()
_cached: Optional[NativeLib] = None
_build_attempted = False


def native_lib() -> Optional[NativeLib]:
    """The loaded native library, or ``None`` when unavailable.

    Build + load happen once per process; failures are remembered so a
    missing compiler costs one probe, not one per evaluator.
    """
    global _cached, _build_attempted
    if os.environ.get("REPRO_ENGINE", "").lower() in ("numpy", "py", "off"):
        return None
    with _lock:
        if _cached is not None or _build_attempted:
            return _cached
        _build_attempted = True
        path = _build_shared_object()
        if path is None:
            return None
        try:
            _cached = NativeLib(path)
        except OSError:
            _cached = None
        return _cached


def native_available() -> bool:
    """Whether the C backend can be (or has been) built and loaded."""
    return native_lib() is not None
