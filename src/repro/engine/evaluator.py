"""Engine-backed evaluation of any circuit objective.

:class:`CompiledObjective` wraps a
:class:`~repro.core.objective.CircuitObjective` — any component
(multiplier, adder, MAC, custom netlist), any
:class:`~repro.errors.metrics.ErrorMetric` — so its hot path runs
through the evaluation engine:

1. the phenotype compiler lowers the candidate's active cone to a flat
   opcode program (:mod:`repro.engine.compiler`),
2. the program's signature is looked up in the phenotype cache
   (:mod:`repro.engine.cache`) — CGP neutral drift makes hits frequent,
3. on a miss, the program runs over the preallocated buffer arena on the
   native C backend (:mod:`repro.engine.native`) or the numpy fallback
   (:mod:`repro.engine.kernels`), followed by the fused decode/error
   reduction and the objective's metric.

Results are bit-identical to the interpreted objective: all simulation
and decode arithmetic is integer-exact, both paths produce the same
``float64`` per-vector distance vector, and the metric reduction is the
same code (:meth:`ErrorMetric.from_distances`) over the same operand
order.  The cache key folds in the objective's identity (reference,
weights, metric, signedness), so caches never alias across objectives.
Evaluators are not thread-safe (each owns one arena); use one instance
per worker.

:class:`CompiledMultiplierFitness` remains the drop-in
``MultiplierFitness`` subclass from the original engine PR.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.chromosome import CGPParams, Chromosome
from ..core.fitness import MultiplierFitness
from ..core.objective import CircuitObjective, EvalResult
from ..errors.distributions import Distribution
from ..tech.library import TechLibrary
from . import kernels
from .arena import BufferArena
from .cache import EvalCache
from .compiler import compile_genes_into, phenotype_signature
from .native import NativeLib, native_lib
from .opcodes import OP_ARITY, OP_NAMES, function_opcode_table

__all__ = ["CompiledObjective", "CompiledMultiplierFitness"]


class _Runtime:
    """Per-:class:`CGPParams` compiled state: arena, tables, backend."""

    def __init__(
        self,
        params: CGPParams,
        stimulus: np.ndarray,
        num_vectors: int,
        library: TechLibrary,
        native: Optional[NativeLib],
        salt_extra: bytes = b"",
    ) -> None:
        self.params = params
        fn2op = function_opcode_table(params.functions)  # may raise KeyError
        self.fn2op = fn2op
        self.fn2op_list = [int(x) for x in fn2op]
        # May raise ValueError (e.g. an output bus wider than the decoder
        # supports) — the evaluator then serves this params interpreted.
        self.arena = BufferArena(
            params.num_inputs,
            params.num_nodes,
            params.num_outputs,
            stimulus,
            num_vectors,
        )
        self.native = native
        # Scratch used only by the C compile entry point.
        self.needed = np.empty(params.num_nodes, dtype=np.uint8)
        self.scratch_i32 = np.empty(
            params.num_inputs + 3 * params.num_nodes, dtype=np.int32
        )
        # Area per opcode; equals the baseline's per-function-gene areas
        # element-for-element, so the float sum is bit-identical.
        self.area_by_op = np.zeros(len(OP_NAMES), dtype=np.float64)
        for name, op in zip(params.functions, self.fn2op_list):
            self.area_by_op[op] = library.cell(name).area
        # Distinguishes phenotypes of structurally different evaluators
        # and of different objectives (reference / weights / metric) in
        # the cache (columns don't matter: equal programs are equal
        # circuits regardless of grid size).
        self.salt = (
            repr(
                (params.num_inputs, params.num_outputs, params.functions)
            ).encode()
            + salt_extra
        )

    def compile(self, genes: np.ndarray) -> int:
        """Lower ``genes`` into the arena slabs; return ``n_ops``."""
        genes = np.ascontiguousarray(genes, dtype=np.int64)
        a = self.arena
        p = self.params
        if self.native is not None:
            return self.native.compile(
                genes, p.num_nodes, p.num_inputs, p.num_outputs,
                self.fn2op, OP_ARITY, a.ops, a.src_a, a.src_b, a.dst,
                a.out_slots, self.needed, self.scratch_i32,
            )
        return compile_genes_into(
            genes, p, self.fn2op_list,
            a.ops, a.src_a, a.src_b, a.dst, a.out_slots,
        )

    def signature(self, n_ops: int) -> bytes:
        a = self.arena
        return phenotype_signature(
            a.ops[:n_ops], a.src_a[:n_ops], a.src_b[:n_ops], a.dst[:n_ops],
            a.out_slots, salt=self.salt,
        )

    def execute(self, n_ops: int) -> None:
        a = self.arena
        if self.native is not None:
            self.native.kernel(
                a.buf, a.words, n_ops, a.ops, a.src_a, a.src_b, a.dst
            )
        else:
            kernels.run_program(a, n_ops)

    def error(self, signed: bool, exact32: np.ndarray) -> np.ndarray:
        a = self.arena
        if self.native is not None:
            self.native.decode_err(
                a.buf, a.words, a.out_slots, a.num_outputs, a.num_vectors,
                signed, a.decode_scratch, exact32, a.err,
            )
            return a.err
        return kernels.decode_error(a, a.num_outputs, signed, exact32)

    def values(self, signed: bool) -> np.ndarray:
        a = self.arena
        if self.native is not None:
            self.native.decode(
                a.buf, a.words, a.out_slots, a.num_outputs, a.num_vectors,
                signed, a.decode_scratch, a.values,
            )
            return a.values
        return kernels.decode_values(a, a.num_outputs, signed)


class _EngineEvalMixin:
    """Engine-backed hot path over :class:`CircuitObjective` state.

    Mixed into a concrete objective class (``CompiledObjective``,
    ``CompiledMultiplierFitness``); expects the base objective's
    attributes (``num_inputs``, ``num_vectors``, ``stimulus``,
    ``reference``, ``weights``, ``normalizer``, ``signed``, ``metric``,
    ``library``) to be initialized before :meth:`_init_engine` runs.
    """

    def _init_engine(self, backend: str, cache_entries: int) -> None:
        if backend not in ("auto", "native", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        native = None if backend == "numpy" else native_lib()
        if backend == "native" and native is None:
            raise RuntimeError(
                "native engine backend requested but unavailable "
                "(no C compiler, or REPRO_ENGINE forces numpy)"
            )
        self._native = native
        # The engine decodes into int32 and (for <= 16 output bits) forms
        # `exact - value` in int32 too, so the reference must leave
        # headroom for the largest decodable output magnitude (2**16) or
        # the native subtraction could overflow.  Wider references
        # (possible for a custom netlist objective) are served via the
        # interpreted path instead.
        self._engine_decodable = bool(
            np.abs(self.reference).max(initial=0) < (1 << 31) - (1 << 17)
        )
        self._exact32 = (
            self.reference.astype(np.int32) if self._engine_decodable else None
        )
        self._runtimes: Dict[CGPParams, Optional[_Runtime]] = {}
        # Objective identity folded into every phenotype signature: the
        # same compiled program scores differently under a different
        # reference, weight vector or metric.
        h = hashlib.blake2b(digest_size=8)
        h.update(self.metric.name.encode())
        h.update(b"s" if self.signed else b"u")
        h.update(repr(self.normalizer).encode())
        h.update(self.reference.tobytes())
        h.update(self.weights.tobytes())
        self._objective_salt = h.digest()
        self.cache = EvalCache(cache_entries)

    @property
    def backend(self) -> str:
        """Name of the execution backend actually in use."""
        return "native" if self._native is not None else "numpy"

    def _runtime(self, params: CGPParams) -> Optional[_Runtime]:
        rt = self._runtimes.get(params)
        if rt is None and params not in self._runtimes:
            try:
                if not self._engine_decodable:
                    raise ValueError("reference exceeds int32 decode range")
                rt = _Runtime(
                    params,
                    self.stimulus,
                    self.num_vectors,
                    self.library,
                    self._native,
                    salt_extra=self._objective_salt,
                )
            except (KeyError, ValueError):
                # A gate function without an engine opcode, or a shape
                # the engine cannot decode: remember the miss and serve
                # this params via the interpreted path.
                rt = None
            self._runtimes[params] = rt
        return rt

    def _check_params(self, params: CGPParams) -> None:
        if params.num_inputs != self.num_inputs:
            raise ValueError(
                f"chromosome has {params.num_inputs} inputs, evaluator "
                f"expects {self.num_inputs}"
            )

    # ------------------------------------------------------------------
    def _measure(self, chromosome: Chromosome) -> tuple:
        """(error, area) of a candidate, via cache or fresh execution."""
        rt = self._runtime(chromosome.params)
        if rt is None:
            return (
                CircuitObjective.error(self, chromosome),
                CircuitObjective.area(self, chromosome),
            )
        n_ops = rt.compile(chromosome.genes)
        caching = self.cache.max_entries > 0
        if caching:
            sig = rt.signature(n_ops)
            cached = self.cache.get(sig)
            if cached is not None:
                return cached
        rt.execute(n_ops)
        err = rt.error(self.signed, self._exact32)
        error = self.metric.from_distances(
            err, self.weights, self.normalizer, self.reference
        )
        area = float(rt.area_by_op[rt.arena.ops[:n_ops]].sum())
        if caching:
            self.cache.put(sig, error, area)
        return error, area

    def truth_table(self, chromosome: Chromosome) -> np.ndarray:
        self._check_params(chromosome.params)
        rt = self._runtime(chromosome.params)
        if rt is None:
            return CircuitObjective.truth_table(self, chromosome)
        n_ops = rt.compile(chromosome.genes)
        rt.execute(n_ops)
        return rt.values(self.signed).astype(np.int64)

    def error(self, chromosome: Chromosome) -> float:
        self._check_params(chromosome.params)
        return self._measure(chromosome)[0]

    def wmed(self, chromosome: Chromosome) -> float:
        return self.error(chromosome)

    def evaluate(self, chromosome: Chromosome, threshold: float) -> EvalResult:
        self._check_params(chromosome.params)
        error, area = self._measure(chromosome)
        fitness = area if error <= threshold else float("inf")
        return EvalResult(fitness=fitness, wmed=error, area=area)

    def evaluate_batch(
        self, chromosomes: Sequence[Chromosome], threshold: float
    ) -> List[EvalResult]:
        """Evaluate a population slice.

        Currently sequential — the arena is reused candidate to candidate
        and the phenotype cache deduplicates within the batch; the method
        exists so batching callers (the evolution loop, future sharded
        runners) have a stable entry point.
        """
        return [self.evaluate(c, threshold) for c in chromosomes]

    def stats(self) -> dict:
        """Engine counters for logging and benchmarks."""
        return {
            "backend": self.backend,
            "cache": self.cache.stats(),
            "runtimes": len(self._runtimes),
        }


class CompiledObjective(_EngineEvalMixin, CircuitObjective):
    """Engine-backed evaluator for *any* circuit objective.

    Wraps an existing :class:`~repro.core.objective.CircuitObjective`
    (sharing its precomputed reference / weights / stimulus arrays) and
    routes every evaluation through the compiled pipeline; see the
    module docstring.

    Args:
        objective: The interpreted objective to accelerate — anything
            built by :mod:`repro.core.components` (or a legacy
            ``MultiplierFitness`` / ``CircuitFitness``).
        backend: ``"auto"`` (native when buildable, else numpy),
            ``"native"`` (require the C backend) or ``"numpy"``.
        cache_entries: Phenotype-cache capacity; 0 disables caching.
    """

    def __init__(
        self,
        objective: CircuitObjective,
        backend: str = "auto",
        cache_entries: int = 1 << 16,
    ) -> None:
        if not isinstance(objective, CircuitObjective):
            raise TypeError(
                f"expected a CircuitObjective, got {type(objective).__name__}"
            )
        # Adopt the objective's precomputed state wholesale (reference,
        # weights, stimulus, area cache...); arrays are shared, not
        # copied — the wrapper only adds engine state on top.
        self.__dict__.update(objective.__dict__)
        self._init_engine(backend, cache_entries)


class CompiledMultiplierFitness(_EngineEvalMixin, MultiplierFitness):
    """Engine-backed drop-in for the legacy ``MultiplierFitness``.

    Equivalent to ``CompiledObjective(MultiplierFitness(...))`` but keeps
    the historical class identity and constructor.

    Args:
        width: Operand bit width.
        dist: Operand-``x`` distribution defining the WMED weights.
        library: Technology library for the area term.
        backend: ``"auto"`` (native when buildable, else numpy),
            ``"native"`` (require the C backend) or ``"numpy"``.
        cache_entries: Phenotype-cache capacity; 0 disables caching.
        metric: Error metric; the paper's ``"wmed"`` by default.
    """

    def __init__(
        self,
        width: int,
        dist: Distribution,
        library: Optional[TechLibrary] = None,
        backend: str = "auto",
        cache_entries: int = 1 << 16,
        metric: object = "wmed",
    ) -> None:
        MultiplierFitness.__init__(
            self, width, dist, library=library, metric=metric
        )
        self._init_engine(backend, cache_entries)
