"""Engine-backed evaluation of any circuit objective.

:class:`CompiledObjective` wraps a
:class:`~repro.core.objective.CircuitObjective` — any component
(multiplier, adder, MAC, custom netlist), any
:class:`~repro.errors.metrics.ErrorMetric` — so its hot path runs
through the evaluation engine:

1. the phenotype compiler lowers the candidate's active cone to a flat
   opcode program (:mod:`repro.engine.compiler`),
2. the program's signature is looked up in the phenotype cache
   (:mod:`repro.engine.cache`) — CGP neutral drift makes hits frequent,
3. on a miss, the program runs over the preallocated buffer arena on the
   native C backend (:mod:`repro.engine.native`) or the numpy fallback
   (:mod:`repro.engine.kernels`), followed by the fused decode/error
   reduction and the objective's metric.

Results are bit-identical to the interpreted objective: all simulation
and decode arithmetic is integer-exact, both paths produce the same
``float64`` per-vector distance vector, and the metric reduction is the
same code (:meth:`ErrorMetric.from_distances`) over the same operand
order.  The cache key folds in the objective's identity (reference,
weights, metric, signedness), so caches never alias across objectives.
Evaluators are not thread-safe (each owns one arena); use one instance
per worker.

:class:`CompiledMultiplierFitness` remains the drop-in
``MultiplierFitness`` subclass from the original engine PR.
"""

from __future__ import annotations

import hashlib
import math
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.chromosome import CGPParams, Chromosome
from ..obs import catalog as _obs
from ..core.fitness import MultiplierFitness
from ..core.objective import (
    CircuitObjective,
    EvalResult,
    SampledEvalResult,
    SampledObjective,
)
from ..errors.distributions import Distribution
from ..tech.library import TechLibrary
from . import kernels
from .arena import BufferArena
from .cache import EvalCache
from .compiler import compile_genes_into, phenotype_signature
from .native import NativeLib, native_lib, omp_threads
from .opcodes import OP_ARITY, OP_NAMES, function_opcode_table

__all__ = [
    "CompiledObjective",
    "CompiledSampledObjective",
    "CompiledMultiplierFitness",
]


class _Runtime:
    """Per-:class:`CGPParams` compiled state: arena, tables, backend."""

    def __init__(
        self,
        params: CGPParams,
        stimulus: np.ndarray,
        num_vectors: int,
        library: TechLibrary,
        native: Optional[NativeLib],
        salt_extra: bytes = b"",
        exact32: Optional[np.ndarray] = None,
    ) -> None:
        self.params = params
        fn2op = function_opcode_table(params.functions)  # may raise KeyError
        self.fn2op = fn2op
        self.fn2op_list = [int(x) for x in fn2op]
        # May raise ValueError (e.g. an output bus wider than the decoder
        # supports) — the evaluator then serves this params interpreted.
        self.arena = BufferArena(
            params.num_inputs,
            params.num_nodes,
            params.num_outputs,
            stimulus,
            num_vectors,
        )
        self.native = native
        # Scratch used only by the C compile entry point.
        self.needed = np.empty(params.num_nodes, dtype=np.uint8)
        self.scratch_i32 = np.empty(
            params.num_inputs + 3 * params.num_nodes, dtype=np.int32
        )
        # Area per opcode; equals the baseline's per-function-gene areas
        # element-for-element, so the float sum is bit-identical.
        self.area_by_op = np.zeros(len(OP_NAMES), dtype=np.float64)
        for name, op in zip(params.functions, self.fn2op_list):
            self.area_by_op[op] = library.cell(name).area
        # Distinguishes phenotypes of structurally different evaluators
        # and of different objectives (reference / weights / metric) in
        # the cache (columns don't matter: equal programs are equal
        # circuits regardless of grid size).
        self.salt = (
            repr(
                (params.num_inputs, params.num_outputs, params.functions)
            ).encode()
            + salt_extra
        )
        self.exact32 = exact32
        # Raw buffer addresses, computed once: every arena/table array
        # is allocated for the runtime's lifetime, and the ndarray
        # ``.ctypes`` accessor costs ~µs — comparable to a small kernel
        # call — so the hot path must not pay it per evaluation.  Batch
        # arrays are (re)captured in ensure_batch() on epoch change.
        self._batch_epoch_seen = -1
        self._lane_compile_args: List[tuple] = []
        self._lane_eval_args: List[tuple] = []
        self._lane_stats_args: List[tuple] = []
        if native is not None:
            a = self.arena
            # Single-path exact-reduction target (sum, count, max).
            self.stats3 = np.zeros(3, dtype=np.int64)
            self.p_stats3 = self.stats3.ctypes.data
            self.p_buf = a.buf.ctypes.data
            self.p_ops = a.ops.ctypes.data
            self.p_src_a = a.src_a.ctypes.data
            self.p_src_b = a.src_b.ctypes.data
            self.p_dst = a.dst.ctypes.data
            self.p_out_slots = a.out_slots.ctypes.data
            self.p_decode_scratch = a.decode_scratch.ctypes.data
            self.p_values = a.values.ctypes.data
            self.p_err = a.err.ctypes.data
            self.p_fn2op = fn2op.ctypes.data
            self.p_arity = OP_ARITY.ctypes.data
            self.p_needed = self.needed.ctypes.data
            self.p_scratch_i32 = self.scratch_i32.ctypes.data
            self.p_exact = (
                exact32.ctypes.data if exact32 is not None else 0
            )

    def compile(self, genes: np.ndarray) -> int:
        """Lower ``genes`` into the arena slabs; return ``n_ops``."""
        genes = np.ascontiguousarray(genes, dtype=np.int64)
        a = self.arena
        p = self.params
        if self.native is not None:
            return self.native.compile(
                genes, p.num_nodes, p.num_inputs, p.num_outputs,
                self.p_fn2op, self.p_arity, self.p_ops, self.p_src_a,
                self.p_src_b, self.p_dst, self.p_out_slots, self.p_needed,
                self.p_scratch_i32,
            )
        return compile_genes_into(
            genes, p, self.fn2op_list,
            a.ops, a.src_a, a.src_b, a.dst, a.out_slots,
        )

    def signature(self, n_ops: int) -> bytes:
        a = self.arena
        return phenotype_signature(
            a.ops[:n_ops], a.src_a[:n_ops], a.src_b[:n_ops], a.dst[:n_ops],
            a.out_slots, salt=self.salt,
        )

    def execute(self, n_ops: int) -> None:
        a = self.arena
        if self.native is not None:
            self.native.kernel(
                self.p_buf, a.num_inputs, a.words, n_ops,
                self.p_ops, self.p_src_a, self.p_src_b, self.p_dst,
            )
        else:
            kernels.run_program(a, n_ops)

    def error(self, signed: bool, exact32: np.ndarray) -> np.ndarray:
        a = self.arena
        if self.native is not None:
            self.native.decode_err(
                self.p_buf, a.words, self.p_out_slots, a.num_outputs,
                a.num_vectors, signed, self.p_decode_scratch, exact32,
                self.p_err,
            )
            return a.err
        return kernels.decode_error(a, a.num_outputs, signed, exact32)

    def reduce_stats(self, signed: bool) -> tuple:
        """Decode + exact integer reduction of the single-path outputs.

        Native only.  Returns ``(sum |d|, count != 0, max |d|)`` over the
        per-vector distances — the same integers :meth:`error` would
        materialize as float64 — without writing the error row.
        """
        a = self.arena
        self.native.decode_reduce(
            self.p_buf, a.words, self.p_out_slots, a.num_outputs,
            a.num_vectors, signed, self.p_decode_scratch, self.p_exact,
            self.p_stats3,
        )
        return self.stats3.tolist()

    def values(self, signed: bool) -> np.ndarray:
        a = self.arena
        if self.native is not None:
            self.native.decode(
                self.p_buf, a.words, self.p_out_slots, a.num_outputs,
                a.num_vectors, signed, self.p_decode_scratch, self.p_values,
            )
            return a.values
        return kernels.decode_values(a, a.num_outputs, signed)

    # ------------------------------------------------------------------
    # Batched evaluation over per-candidate lanes.
    def ensure_batch(self, n_cand: int) -> None:
        """Size the arena's batch lanes and refresh cached addresses."""
        a = self.arena
        a.ensure_batch(n_cand)
        if self.native is not None and self._batch_epoch_seen != a.batch_epoch:
            self.p_lanes = a.batch_lanes.ctypes.data
            self.p_b_ops = a.batch_ops.ctypes.data
            self.p_b_src_a = a.batch_src_a.ctypes.data
            self.p_b_src_b = a.batch_src_b.ctypes.data
            self.p_b_dst = a.batch_dst.ctypes.data
            self.p_b_out_slots = a.batch_out_slots.ctypes.data
            self.p_b_n_ops = a.batch_n_ops.ctypes.data
            self.p_b_scratch = a.batch_scratch.ctypes.data
            self.p_b_err = a.batch_err.ctypes.data
            self.p_b_stats = a.batch_stats.ctypes.data
            # Fully precomposed cgp_compile argument tails, one per slab
            # lane: compile_into_lane then costs one ctypes call with no
            # per-candidate pointer arithmetic or attribute traffic.
            p = self.params
            prog_b = p.num_nodes * 4                 # int32 row bytes
            out_b = a.batch_out_slots.shape[1] * 4
            self._lane_compile_args = [
                (
                    p.num_nodes, p.num_inputs, p.num_outputs,
                    self.p_fn2op, self.p_arity,
                    self.p_b_ops + k * prog_b,
                    self.p_b_src_a + k * prog_b,
                    self.p_b_src_b + k * prog_b,
                    self.p_b_dst + k * prog_b,
                    self.p_b_out_slots + k * out_b,
                    self.p_needed, self.p_scratch_i32,
                )
                for k in range(a.batch_capacity)
            ]
            # Per-lane slab pointers for the chunked (cache-blocked)
            # serial dispatch of execute_lane().
            self._lane_eval_args = [
                (
                    self.p_b_n_ops + k * 4,
                    self.p_b_ops + k * prog_b,
                    self.p_b_src_a + k * prog_b,
                    self.p_b_src_b + k * prog_b,
                    self.p_b_dst + k * prog_b,
                    self.p_b_out_slots + k * out_b,
                )
                for k in range(a.batch_capacity)
            ]
            # Fully precomposed cgp_eval_batch argument tuples for the
            # stats-mode chunked dispatch, split around the one argument
            # (do_sign) the caller supplies: execute_lane_stats then
            # costs a single raw ctypes call.
            self._lane_stats_args = [
                (
                    (
                        self.p_buf, self.p_lanes, a.num_inputs, 0,
                        a.words, 1, n_ops_p, ops_p, sa_p, sb_p, dst_p,
                        a.num_nodes, osl_p, a.num_outputs,
                        a.batch_out_slots.shape[1], a.num_vectors,
                    ),
                    (
                        self.p_b_scratch, 0, self.p_exact, self.p_err,
                        a.num_vectors, self.p_b_stats, 1,
                    ),
                )
                for (n_ops_p, ops_p, sa_p, sb_p, dst_p, osl_p)
                in self._lane_eval_args
            ]
            self._batch_epoch_seen = a.batch_epoch

    def compile_into_lane(self, genes: np.ndarray, lane: int) -> int:
        """Compile ``genes`` into batch slab row ``lane``; return n_ops."""
        genes = np.ascontiguousarray(genes, dtype=np.int64)
        a = self.arena
        p = self.params
        if self.native is not None:
            n = int(
                self.native._lib.cgp_compile(
                    genes.ctypes.data, *self._lane_compile_args[lane]
                )
            )
        else:
            n = compile_genes_into(
                genes, p, self.fn2op_list,
                a.batch_ops[lane], a.batch_src_a[lane],
                a.batch_src_b[lane], a.batch_dst[lane],
                a.batch_out_slots[lane],
            )
        a.batch_n_ops[lane] = n
        return n

    def lane_signature(self, lane: int, n_ops: int) -> bytes:
        """Signature of the program in slab row ``lane``.

        Byte-identical to :meth:`signature` for the same phenotype — the
        slab rows hold exactly what the single-candidate compile emits —
        so batch and sequential paths share one cache keyspace.
        """
        a = self.arena
        return phenotype_signature(
            a.batch_ops[lane, :n_ops], a.batch_src_a[lane, :n_ops],
            a.batch_src_b[lane, :n_ops], a.batch_dst[lane, :n_ops],
            a.batch_out_slots[lane, : a.num_outputs], salt=self.salt,
        )

    def lane_area(self, lane: int, n_ops: int) -> float:
        a = self.arena
        return float(self.area_by_op[a.batch_ops[lane, :n_ops]].sum())

    def execute_batch(
        self, n_lanes: int, signed: bool, nthreads: int,
        stats: bool = False,
    ) -> None:
        """Run + decode-error all ``n_lanes`` compiled lanes.

        One native call (candidate loop in C, optionally OpenMP) or the
        equivalent numpy loop; either way ``arena.batch_err[k]`` receives
        lane ``k``'s per-vector distances, bit-identical to the
        single-candidate path.  With ``stats`` (native only) lane ``k``'s
        distances reduce into ``arena.batch_stats[k]`` instead and the
        error rows stay untouched.

        On the serial native path the lane and transpose-scratch strides
        are 0: each candidate finishes (execute + decode) before the
        next starts and a compiled program writes every non-input slot
        before reading it, so all candidates soundly share lane 0 — a
        working set that stays cache-resident instead of streaming one
        cold lane per candidate.  Threaded dispatch needs the private
        lanes and passes the full strides.
        """
        a = self.arena
        if self.native is not None:
            serial = nthreads <= 1 or n_lanes <= 1
            self.native.eval_batch(
                self.p_buf, self.p_lanes, a.num_inputs,
                0 if serial else a.num_nodes,
                a.words, n_lanes, self.p_b_n_ops, self.p_b_ops,
                self.p_b_src_a, self.p_b_src_b, self.p_b_dst,
                a.num_nodes, self.p_b_out_slots, a.num_outputs,
                a.batch_out_slots.shape[1], a.num_vectors, signed,
                self.p_b_scratch,
                0 if serial else a.batch_scratch.shape[1],
                self.p_exact, self.p_b_err, a.num_vectors, nthreads,
                stats=self.p_b_stats if stats else 0,
            )
        else:
            for k in range(n_lanes):
                kernels.run_program_batch(a, k, int(a.batch_n_ops[k]))
                kernels.decode_error_batch(
                    a, k, a.num_outputs, signed, self.exact32
                )

    def execute_lane(self, lane: int, signed: bool) -> np.ndarray:
        """Run + decode-error one compiled slab lane (native only).

        The cache-blocked serial schedule of the batch ABI: the same
        ``cgp_eval_batch`` entry point, dispatched one candidate at a
        time with the slab pointers offset to ``lane`` and every
        per-candidate buffer — scratch lane, transpose scratch and the
        *single-path* error row (``arena.err``) — reused across chunks.
        The caller reduces the returned distances before the next chunk
        overwrites them, so each reduction reads a cache-hot row instead
        of one of N cold private rows; results are bit-identical to the
        one-call dispatch (same C code runs per candidate either way).
        """
        a = self.arena
        n_ops_p, ops_p, sa_p, sb_p, dst_p, osl_p = self._lane_eval_args[lane]
        self.native.eval_batch(
            self.p_buf, self.p_lanes, a.num_inputs, 0,
            a.words, 1, n_ops_p, ops_p, sa_p, sb_p, dst_p,
            a.num_nodes, osl_p, a.num_outputs,
            a.batch_out_slots.shape[1], a.num_vectors, signed,
            self.p_b_scratch, 0, self.p_exact, self.p_err,
            a.num_vectors, 1,
        )
        return a.err

    def execute_lane_stats(self, lane: int, signed: bool) -> tuple:
        """Run + exact integer reduction of one slab lane (native only).

        The stats-mode twin of :meth:`execute_lane`: the same chunked
        serial dispatch, but the decoded distances fold into
        ``(sum |d|, count != 0, max |d|)`` in C (``arena.batch_stats``
        row 0, reused across chunks) and the ~``num_vectors`` float64
        error row is never written — the dominant share of a width-8
        evaluation's memory traffic.
        """
        head, tail = self._lane_stats_args[lane]
        self.native._lib.cgp_eval_batch(*head, int(signed), *tail)
        return self.arena.batch_stats[0].tolist()


class _EngineEvalMixin:
    """Engine-backed hot path over :class:`CircuitObjective` state.

    Mixed into a concrete objective class (``CompiledObjective``,
    ``CompiledMultiplierFitness``); expects the base objective's
    attributes (``num_inputs``, ``num_vectors``, ``stimulus``,
    ``reference``, ``weights``, ``normalizer``, ``signed``, ``metric``,
    ``library``) to be initialized before :meth:`_init_engine` runs.
    """

    def _init_engine(self, backend: str, cache_entries: int) -> None:
        if backend not in ("auto", "native", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        native = None if backend == "numpy" else native_lib()
        if backend == "native" and native is None:
            raise RuntimeError(
                "native engine backend requested but unavailable "
                "(no C compiler, or REPRO_ENGINE forces numpy)"
            )
        self._native = native
        # The engine decodes into int32 and (for <= 16 output bits) forms
        # `exact - value` in int32 too, so the reference must leave
        # headroom for the largest decodable output magnitude (2**16) or
        # the native subtraction could overflow.  Wider references
        # (possible for a custom netlist objective) are served via the
        # interpreted path instead.
        self._engine_decodable = bool(
            np.abs(self.reference).max(initial=0) < (1 << 31) - (1 << 17)
        )
        self._exact32 = (
            self.reference.astype(np.int32) if self._engine_decodable else None
        )
        self._runtimes: Dict[CGPParams, Optional[_Runtime]] = {}
        # Objective identity folded into every phenotype signature: the
        # same compiled program scores differently under a different
        # reference, weight vector or metric.
        h = hashlib.blake2b(digest_size=8)
        h.update(self.metric.name.encode())
        h.update(b"s" if self.signed else b"u")
        h.update(repr(self.normalizer).encode())
        h.update(self.reference.tobytes())
        h.update(self.weights.tobytes())
        # Sampled objectives additionally fold the sample-spec identity
        # (counts, replicates, seed, realized stimulus) so a sampled
        # estimate never aliases an exhaustive value — or a different
        # sample's estimate — for the same phenotype.
        sample_salt = getattr(self, "_sample_salt", b"")
        h.update(sample_salt)
        self._objective_salt = h.digest()
        # Exact-reduction fast path: some metrics are *provably* equal —
        # bit for bit, not approximately — to a formula over the integer
        # triple (sum |d|, count != 0, max |d|), in which case the
        # native backend can skip materializing the float64 distance row
        # entirely (see _reduce_error).  Eligibility:
        #
        # * wmed / error-rate need every weight equal to one power of
        #   two w0 with unit total mass (the uniform distribution).
        #   Then every product w0*x and every partial sum in
        #   np.dot(w, err) is an exactly-representable scaled integer,
        #   making the dot order-independent and equal to w0 * sum.
        # * med only needs the integer sum to be exact: err.mean() is
        #   fl(T / N) and Python's T / N rounds identically.
        # * worst-case is always eligible (a single int-to-float cast).
        # * mred divides per-vector — no integer form; never eligible.
        #
        # Exactness of the int64 sum needs sum |d| < 2**53: distances
        # are below 2**31 (int32 decode guard), so cap num_vectors at
        # 2**20.  Every exhaustive objective in the paper is far below.
        w = self.weights
        w0 = float(w[0]) if w.size else 0.0
        uniform_pow2 = (
            w.size > 0
            and w0 > 0.0
            and math.frexp(w0)[0] == 0.5
            and bool(np.all(w == w0))
        )
        exact_sum = self.num_vectors <= (1 << 20)
        name = self.metric.name
        if name in ("wmed", "error-rate") and uniform_pow2 and exact_sum:
            self._reduce_kind: Optional[str] = name
        elif name == "med" and exact_sum:
            self._reduce_kind = name
        elif name == "worst-case":
            self._reduce_kind = name
        else:
            self._reduce_kind = None
        if sample_salt:
            # Sampled objectives always materialize the distance row:
            # the confidence interval comes from per-replicate (or
            # per-sample) reductions of it, which the integer triple
            # cannot reconstruct.
            self._reduce_kind = None
        self._w0 = w0
        self.cache = EvalCache(cache_entries)
        #: Within-batch phenotype dedup count (same sig, same brood).
        self._batch_dedup = 0
        #: Number of fused batch dispatches issued.
        self._batch_calls = 0
        #: Candidates actually executed via batch dispatch.
        self._batch_evals = 0
        _obs.ENGINE_BACKEND.labels(self.backend).set(1)

    @property
    def backend(self) -> str:
        """Name of the execution backend actually in use."""
        return "native" if self._native is not None else "numpy"

    def _runtime(self, params: CGPParams) -> Optional[_Runtime]:
        rt = self._runtimes.get(params)
        if rt is None and params not in self._runtimes:
            try:
                if not self._engine_decodable:
                    raise ValueError("reference exceeds int32 decode range")
                rt = _Runtime(
                    params,
                    self.stimulus,
                    self.num_vectors,
                    self.library,
                    self._native,
                    salt_extra=self._objective_salt,
                    exact32=self._exact32,
                )
            except (KeyError, ValueError):
                # A gate function without an engine opcode, or a shape
                # the engine cannot decode: remember the miss and serve
                # this params via the interpreted path.
                rt = None
            self._runtimes[params] = rt
        return rt

    def _check_params(self, params: CGPParams) -> None:
        if params.num_inputs != self.num_inputs:
            raise ValueError(
                f"chromosome has {params.num_inputs} inputs, evaluator "
                f"expects {self.num_inputs}"
            )

    def _reduce_error(self, s: int, nz: int, mx: int) -> float:
        """Metric value from the exact integer triple (native fast path).

        Bit-equal to ``metric.from_distances`` over the materialized
        distance row under the eligibility conditions checked in
        :meth:`_init_engine`: each formula reproduces the reference
        reduction's exact value and final rounding (see the comment
        there for the proofs).
        """
        kind = self._reduce_kind
        if kind == "wmed":
            return s * self._w0 / self.normalizer
        if kind == "med":
            return s / self.num_vectors / self.normalizer
        if kind == "error-rate":
            return nz * self._w0
        return float(mx) / self.normalizer  # worst-case

    # ------------------------------------------------------------------
    # Measure-tuple hooks: the measure is whatever per-phenotype record
    # the objective family caches and turns into results — (error, area)
    # here; the sampled subclass appends the confidence interval.
    def _finish_measure(self, err: np.ndarray, area: float) -> tuple:
        """Measure tuple from a materialized per-vector distance row."""
        return (
            self.metric.from_distances(
                err, self.weights, self.normalizer, self.reference
            ),
            area,
        )

    def _measure_interpreted(self, chromosome: Chromosome) -> tuple:
        """Measure via the inherited numpy path (no runtime available)."""
        return (
            CircuitObjective.error(self, chromosome),
            CircuitObjective.area(self, chromosome),
        )

    def _result(self, measure: tuple, threshold: float) -> EvalResult:
        """Eq. (1) result from a measure tuple."""
        error, area = measure
        fitness = area if error <= threshold else float("inf")
        return EvalResult(fitness=fitness, wmed=error, area=area)

    # ------------------------------------------------------------------
    def _measure(self, chromosome: Chromosome) -> tuple:
        """Measure tuple of a candidate, via cache or fresh execution."""
        rt = self._runtime(chromosome.params)
        if rt is None:
            return self._measure_interpreted(chromosome)
        rt.arena.assert_owner()
        n_ops = rt.compile(chromosome.genes)
        caching = self.cache.max_entries > 0
        if caching:
            sig = rt.signature(n_ops)
            cached = self.cache.get(sig)
            if cached is not None:
                return cached
        rt.execute(n_ops)
        area = float(rt.area_by_op[rt.arena.ops[:n_ops]].sum())
        if rt.native is not None and self._reduce_kind is not None:
            measure = (
                self._reduce_error(*rt.reduce_stats(self.signed)),
                area,
            )
        else:
            measure = self._finish_measure(
                rt.error(self.signed, self._exact32), area
            )
        if caching:
            self.cache.put(sig, *measure)
        return measure

    def truth_table(self, chromosome: Chromosome) -> np.ndarray:
        self._check_params(chromosome.params)
        rt = self._runtime(chromosome.params)
        if rt is None:
            return CircuitObjective.truth_table(self, chromosome)
        n_ops = rt.compile(chromosome.genes)
        rt.execute(n_ops)
        return rt.values(self.signed).astype(np.int64)

    def error(self, chromosome: Chromosome) -> float:
        self._check_params(chromosome.params)
        return self._measure(chromosome)[0]

    def wmed(self, chromosome: Chromosome) -> float:
        return self.error(chromosome)

    def evaluate(self, chromosome: Chromosome, threshold: float) -> EvalResult:
        t0 = perf_counter_ns()
        self._check_params(chromosome.params)
        result = self._result(self._measure(chromosome), threshold)
        _obs.ENGINE_EVALS.inc()
        _obs.ENGINE_EVAL_NS.inc(perf_counter_ns() - t0)
        return result

    def evaluate_batch(
        self, chromosomes: Sequence[Chromosome], threshold: float
    ) -> List[EvalResult]:
        """Evaluate a population slice with one fused native dispatch.

        Per candidate: compile into a private slab lane, look the
        signature up in the phenotype cache, and dedupe identical
        phenotypes within the batch.  Survivors then run through the
        ``cgp_eval_batch`` ABI under one of two schedules:

        * threaded (``REPRO_OMP`` resolves to > 1): **one** fused call,
          candidate loop in C under an OpenMP team, each candidate
          writing its private lane / scratch / error row;
        * serial: the same entry point dispatched one candidate at a
          time (cache-blocked), every chunk reusing the same lane,
          scratch and error row so the metric reduction that follows it
          reads cache-hot data.

        Results are bit-identical to calling :meth:`evaluate`
        sequentially — same compiled programs, same integer kernels,
        same float64 reduction operand order — batching only changes
        dispatch overhead and memory locality.

        Mixed-params batches and non-engine runtimes fall back to the
        sequential path.
        """
        chromosomes = list(chromosomes)
        if not chromosomes:
            return []
        params = chromosomes[0].params
        for c in chromosomes:
            self._check_params(c.params)
        rt = self._runtime(params)
        if rt is None or any(c.params != params for c in chromosomes[1:]):
            # The sequential fallback counts per-candidate in evaluate().
            return [self.evaluate(c, threshold) for c in chromosomes]
        t0 = perf_counter_ns()
        rt.arena.assert_owner()
        n = len(chromosomes)
        rt.ensure_batch(n)
        caching = self.cache.max_entries > 0
        measures: List[Optional[tuple]] = [None] * n
        dups: List[tuple] = []          # (result index, lane index)
        pending: List[tuple] = []       # (result index, lane, sig, n_ops)
        lane_of_sig: Dict[bytes, int] = {}
        n_lanes = 0
        # Bound-method / attribute hoists: this loop runs once per
        # evaluation, so repeated lookups are measurable next to the
        # ~100 µs native call.
        compile_lane = rt.compile_into_lane
        lane_sig = rt.lane_signature
        cache_get = self.cache.get
        for i, ch in enumerate(chromosomes):
            n_ops = compile_lane(ch.genes, n_lanes)
            sig = lane_sig(n_lanes, n_ops)
            if caching:
                cached = cache_get(sig)
                if cached is not None:
                    measures[i] = cached
                    continue
            dup_lane = lane_of_sig.get(sig)
            if dup_lane is not None:
                self._batch_dedup += 1
                dups.append((i, dup_lane))
                continue
            lane_of_sig[sig] = n_lanes
            pending.append((i, n_lanes, sig, n_ops))
            n_lanes += 1
        _obs.ENGINE_COMPILE_NS.inc(perf_counter_ns() - t0)
        if dups:
            _obs.ENGINE_BATCH_DEDUP.inc(len(dups))
        if n_lanes:
            nthreads = omp_threads() if rt.native is not None else 1
            self._batch_calls += 1
            self._batch_evals += n_lanes
            _obs.ENGINE_BATCH_CALLS.inc()
            _obs.ENGINE_BATCH_EVALS.inc(n_lanes)
            _obs.ENGINE_BATCH_SIZE.observe(n_lanes)
            by_lane: Dict[int, tuple] = {}
            finish = self._finish_measure
            lane_area = rt.lane_area
            cache_put = self.cache.put
            signed = self.signed
            fast = rt.native is not None and self._reduce_kind is not None
            if rt.native is not None and nthreads <= 1:
                # Cache-blocked serial schedule: dispatch the batch ABI
                # one candidate at a time and reduce each distance row
                # while it is still cache-hot.  One brood otherwise
                # streams n_lanes cold private error rows (~n x 512 KiB
                # at width 8) through the reductions, which costs more
                # than the dispatch the fused call saves.
                if fast:
                    execute_lane_stats = rt.execute_lane_stats
                    reduce_error = self._reduce_error
                    for i, lane, sig, n_ops in pending:
                        measure = (
                            reduce_error(*execute_lane_stats(lane, signed)),
                            lane_area(lane, n_ops),
                        )
                        if caching:
                            cache_put(sig, *measure)
                        measures[i] = by_lane[lane] = measure
                else:
                    execute_lane = rt.execute_lane
                    for i, lane, sig, n_ops in pending:
                        measure = finish(
                            execute_lane(lane, signed),
                            lane_area(lane, n_ops),
                        )
                        if caching:
                            cache_put(sig, *measure)
                        measures[i] = by_lane[lane] = measure
            else:
                rt.execute_batch(n_lanes, signed, nthreads, stats=fast)
                batch_err = rt.arena.batch_err
                batch_stats = rt.arena.batch_stats
                reduce_error = self._reduce_error
                for i, lane, sig, n_ops in pending:
                    if fast:
                        measure = (
                            reduce_error(*batch_stats[lane].tolist()),
                            lane_area(lane, n_ops),
                        )
                    else:
                        measure = finish(
                            batch_err[lane], lane_area(lane, n_ops)
                        )
                    if caching:
                        cache_put(sig, *measure)
                    measures[i] = by_lane[lane] = measure
            for i, lane in dups:
                measures[i] = by_lane[lane]
        result_of = self._result
        results = [result_of(m, threshold) for m in measures]
        _obs.ENGINE_EVALS.inc(n)
        _obs.ENGINE_EVAL_NS.inc(perf_counter_ns() - t0)
        return results

    def stats(self) -> dict:
        """Engine counters for logging and benchmarks."""
        omp = {"compiled": False, "threads": 1}
        if self._native is not None:
            omp = {
                "compiled": self._native.omp_compiled(),
                "threads": omp_threads(),
            }
        return {
            "backend": self.backend,
            "cache": self.cache.stats(),
            "fast_reduce": self._reduce_kind,
            "runtimes": len(self._runtimes),
            "batch": {
                "calls": self._batch_calls,
                "evals": self._batch_evals,
                "dedup": self._batch_dedup,
            },
            "omp": omp,
        }


class CompiledObjective(_EngineEvalMixin, CircuitObjective):
    """Engine-backed evaluator for *any* circuit objective.

    Wraps an existing :class:`~repro.core.objective.CircuitObjective`
    (sharing its precomputed reference / weights / stimulus arrays) and
    routes every evaluation through the compiled pipeline; see the
    module docstring.

    Args:
        objective: The interpreted objective to accelerate — anything
            built by :mod:`repro.core.components` (or a legacy
            ``MultiplierFitness`` / ``CircuitFitness``).
        backend: ``"auto"`` (native when buildable, else numpy),
            ``"native"`` (require the C backend) or ``"numpy"``.
        cache_entries: Phenotype-cache capacity; 0 disables caching.
    """

    def __init__(
        self,
        objective: CircuitObjective,
        backend: str = "auto",
        cache_entries: int = 1 << 16,
    ) -> None:
        if not isinstance(objective, CircuitObjective):
            raise TypeError(
                f"expected a CircuitObjective, got {type(objective).__name__}"
            )
        # Adopt the objective's precomputed state wholesale (reference,
        # weights, stimulus, area cache...); arrays are shared, not
        # copied — the wrapper only adds engine state on top.
        self.__dict__.update(objective.__dict__)
        self._init_engine(backend, cache_entries)


class CompiledSampledObjective(_EngineEvalMixin, SampledObjective):
    """Engine-backed evaluator for a sampled objective.

    Wraps a :class:`~repro.core.objective.SampledObjective`: candidates
    compile and execute through the same engine pipeline as
    :class:`CompiledObjective` — the arena simply holds the packed
    sample matrix instead of the exhaustive stimulus — and every result
    is a :class:`~repro.core.objective.SampledEvalResult` carrying the
    95 % confidence interval.  The phenotype-cache entries store the
    four-tuple ``(error, area, ci_low, ci_high)``, salted with the
    sample-spec identity, so sampled and exhaustive evaluations of the
    same phenotype never alias.  Exact-integer fast reduction is always
    disabled here: the CI needs the materialized distance row.

    Widths whose reference magnitudes exceed the engine's int32 decode
    range (e.g. multipliers past width 15) transparently serve through
    the interpreted sampled path instead — same estimates, no engine.

    Args:
        objective: The sampled objective to accelerate (anything built
            by :func:`repro.core.components.sampled_component_objective`).
        backend: ``"auto"`` (native when buildable, else numpy),
            ``"native"`` (require the C backend) or ``"numpy"``.
        cache_entries: Phenotype-cache capacity; 0 disables caching.
    """

    def __init__(
        self,
        objective: SampledObjective,
        backend: str = "auto",
        cache_entries: int = 1 << 16,
    ) -> None:
        if not isinstance(objective, SampledObjective):
            raise TypeError(
                f"expected a SampledObjective, got {type(objective).__name__}"
            )
        self.__dict__.update(objective.__dict__)
        self._init_engine(backend, cache_entries)

    def _finish_measure(self, err: np.ndarray, area: float) -> tuple:
        est = SampledObjective.estimate_distances(self, err)
        return (est.value, area, est.ci_low, est.ci_high)

    def _measure_interpreted(self, chromosome: Chromosome) -> tuple:
        # error_distances() routes through the mixin's truth_table, so
        # this also covers the engine-undecodable widths.
        est = SampledObjective.estimate_distances(
            self, CircuitObjective.error_distances(self, chromosome)
        )
        return (
            est.value,
            CircuitObjective.area(self, chromosome),
            est.ci_low,
            est.ci_high,
        )

    def _result(self, measure: tuple, threshold: float) -> SampledEvalResult:
        error, area, ci_low, ci_high = measure
        fitness = area if error <= threshold else float("inf")
        return SampledEvalResult(
            fitness=fitness,
            wmed=error,
            area=area,
            ci_low=ci_low,
            ci_high=ci_high,
        )


class CompiledMultiplierFitness(_EngineEvalMixin, MultiplierFitness):
    """Engine-backed drop-in for the legacy ``MultiplierFitness``.

    Equivalent to ``CompiledObjective(MultiplierFitness(...))`` but keeps
    the historical class identity and constructor.

    Args:
        width: Operand bit width.
        dist: Operand-``x`` distribution defining the WMED weights.
        library: Technology library for the area term.
        backend: ``"auto"`` (native when buildable, else numpy),
            ``"native"`` (require the C backend) or ``"numpy"``.
        cache_entries: Phenotype-cache capacity; 0 disables caching.
        metric: Error metric; the paper's ``"wmed"`` by default.
    """

    def __init__(
        self,
        width: int,
        dist: Distribution,
        library: Optional[TechLibrary] = None,
        backend: str = "auto",
        cache_entries: int = 1 << 16,
        metric: object = "wmed",
    ) -> None:
        MultiplierFitness.__init__(
            self, width, dist, library=library, metric=metric
        )
        self._init_engine(backend, cache_entries)
