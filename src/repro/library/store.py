"""SQLite-backed, content-addressed store of evolved designs.

Each row of the ``designs`` table is one approximate circuit with its
full characterization: the CGP chromosome text (the persistence format of
:mod:`repro.core.serialization`), the component kind / width /
signedness, search provenance (seed entropy, budget, driving
distribution), all five :class:`~repro.errors.metrics.ErrorMetric`
figures, and the :mod:`repro.tech` electrical record (area, power,
critical-path delay, PDP).

**Content addressing.**  The primary identity of a design is
:func:`design_signature` — the evaluation engine's compiled-phenotype
digest (:meth:`repro.engine.compiler.CompiledPhenotype.signature`) over
the circuit's active cone, salted with the input count.  Two chromosomes
with the same phenotype (CGP neutral drift produces these constantly)
map to the same address, so re-discovering a known circuit is a
duplicate, not a new row.

**Pareto admission.**  Within a *group* — ``(component, width, signed,
metric, dist)``; error values are only comparable when all five agree —
the store keeps exclusively non-dominated rows over the objective vector
``(error, area, power, pdp)``.  :meth:`DesignStore.add` rejects a
candidate dominated by (or duplicating) an existing row and prunes rows
the candidate dominates, so the stored set *is* the library's Pareto
front at every moment.

**Concurrency.**  Every operation opens its own short-lived connection;
writes run inside ``BEGIN IMMEDIATE`` transactions.  The database is
safe for any number of concurrent readers alongside one writer (the
builder), which is the serving-layer shape the ROADMAP aims at.

The schema is versioned via ``PRAGMA user_version``; opening a store
written by an incompatible schema fails loudly instead of misreading it.
"""

from __future__ import annotations

import hashlib
import os
import re
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..circuits.netlist import Netlist
from ..engine.compiler import compile_netlist
from ..obs.catalog import STORE_ADMISSIONS, STORE_PRUNED

__all__ = [
    "SCHEMA_VERSION",
    "DesignRecord",
    "DesignStore",
    "design_signature",
    "filter_records",
    "record_order_key",
]

#: Bump on incompatible schema changes; checked on every open.
SCHEMA_VERSION = 1

#: Columns a design must win on (any one, losing none) to be admitted.
_OBJECTIVE_COLUMNS = ("error", "area", "power_uw", "pdp")


def design_signature(netlist: Netlist) -> str:
    """Content address of a design: the compiled-phenotype digest.

    The netlist's active cone is lowered by the engine's phenotype
    compiler — canonical per phenotype, so any genotype (or gate-list
    permutation) with the same active circuit hashes identically.  The
    input count is folded in because the compiled program of a circuit
    that ignores its upper inputs is otherwise indistinguishable from a
    narrower interface.
    """
    phenotype = compile_netlist(netlist)
    h = hashlib.blake2b(digest_size=16)
    h.update(netlist.num_inputs.to_bytes(4, "little"))
    h.update(phenotype.signature())
    return h.hexdigest()


@dataclass(frozen=True)
class DesignRecord:
    """One stored design: identity, provenance and characterization.

    Attributes
    ----------
    design_id : str
        Content address — the compiled-phenotype digest
        (:func:`design_signature`), hex.
    component, width, signed, metric, dist
        The Pareto-comparability group key: component kind, operand
        width in bits, signedness, objective error metric, and the
        driving distribution's stored name.
    threshold_percent : float
        The search budget the design was evolved at, in percent of the
        objective normalizer.
    error : float
        The design's value under its *own* objective ``metric``, in
        the normalized [0, ~1] units search thresholds use; multiply
        by 100 (or read :attr:`error_percent`) for the paper's
        percent figures.
    area : float
        Cell area in um^2.
    power_uw : float
        Total power in uW (divide by 1000 for mW — the serving layer
        exports this as ``power_mw``).
    delay_ps : float
        Critical-path delay in ps.
    pdp : float
        Power-delay product in fJ.
    wmed, med, mred, error_rate, worst_case, bias
        The full cross-metric report: normalized WMED/MED, mean
        relative error distance, weighted error probability, largest
        absolute error in output units, and signed mean error.
    gates : int
        Active gate count.
    chromosome : str
        CGP chromosome text (the persistence format of
        :mod:`repro.core.serialization`); the record re-characterizes
        bit-for-bit from it.
    name, seed_key, generations, evaluations
        Provenance: design name, SeedSequence key, and search budget.
    """

    design_id: str
    component: str
    width: int
    signed: bool
    metric: str
    dist: str
    threshold_percent: float
    error: float
    area: float
    power_uw: float
    delay_ps: float
    pdp: float
    wmed: float
    med: float
    mred: float
    error_rate: float
    worst_case: int
    bias: float
    gates: int
    chromosome: str
    name: str = ""
    seed_key: str = ""
    generations: int = 0
    evaluations: int = 0

    @property
    def error_percent(self) -> float:
        """Objective error in the percent units the paper quotes."""
        return 100.0 * self.error

    def group(self) -> Tuple[str, int, bool, str, str]:
        """The Pareto-comparability group this design competes in."""
        return (self.component, self.width, self.signed, self.metric,
                self.dist)

    def objectives(self) -> Tuple[float, ...]:
        """The minimized vector used for dominance tests."""
        return tuple(
            float(getattr(self, c)) for c in _OBJECTIVE_COLUMNS
        )


_FIELDS = tuple(f.name for f in fields(DesignRecord))

_DESIGNS_DDL = f"""
CREATE TABLE IF NOT EXISTS designs (
    design_id TEXT NOT NULL,
    component TEXT NOT NULL,
    width INTEGER NOT NULL,
    signed INTEGER NOT NULL,
    metric TEXT NOT NULL,
    dist TEXT NOT NULL,
    threshold_percent REAL NOT NULL,
    error REAL NOT NULL,
    area REAL NOT NULL,
    power_uw REAL NOT NULL,
    delay_ps REAL NOT NULL,
    pdp REAL NOT NULL,
    wmed REAL NOT NULL,
    med REAL NOT NULL,
    mred REAL NOT NULL,
    error_rate REAL NOT NULL,
    worst_case INTEGER NOT NULL,
    bias REAL NOT NULL,
    gates INTEGER NOT NULL,
    chromosome TEXT NOT NULL,
    name TEXT NOT NULL DEFAULT '',
    seed_key TEXT NOT NULL DEFAULT '',
    generations INTEGER NOT NULL DEFAULT 0,
    evaluations INTEGER NOT NULL DEFAULT 0,
    created_at REAL NOT NULL,
    PRIMARY KEY (design_id, component, width, signed, metric, dist)
);
"""

_CELLS_DDL = """
CREATE TABLE IF NOT EXISTS cells (
    cell_id TEXT PRIMARY KEY,
    component TEXT NOT NULL,
    metric TEXT NOT NULL,
    width INTEGER NOT NULL,
    dist TEXT NOT NULL,
    threshold_percent REAL NOT NULL,
    status TEXT NOT NULL,
    design_id TEXT,
    completed_at REAL NOT NULL
);
"""

_GROUP_INDEX_DDL = """
CREATE INDEX IF NOT EXISTS idx_designs_group
    ON designs (component, width, signed, metric, dist, error);
"""


class DesignStore:
    """Persistent design library over one SQLite file (see module doc).

    Args:
        path: Database file; created (with schema) when absent.
            ``":memory:"`` is rejected — a memory store would silently
            lose the library on every connection, defeating the point.
    """

    def __init__(self, path: str) -> None:
        if path == ":memory:":
            raise ValueError(
                "DesignStore is a persistence layer; ':memory:' would "
                "drop the library on every operation"
            )
        self.path = path
        #: The store file(s) backing this read surface — one here; the
        #: federation layer overrides with several.  Everything that
        #: derives freshness tokens (snapshot, caches, ETags) iterates
        #: this instead of assuming a single file.
        self.paths: Tuple[str, ...] = (path,)
        with self._connect() as conn:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                conn.execute("BEGIN IMMEDIATE")
                conn.execute(_DESIGNS_DDL)
                conn.execute(_CELLS_DDL)
                conn.execute(_GROUP_INDEX_DDL)
                conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
                conn.commit()
            elif version != SCHEMA_VERSION:
                raise ValueError(
                    f"design store {path!r} has schema version {version}; "
                    f"this build reads version {SCHEMA_VERSION}"
                )

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            yield conn
        finally:
            conn.close()

    def state_token(self) -> Tuple[int, int]:
        """Freshness token of the backing file: ``(st_mtime_ns, st_size)``.

        SQLite rewrites the database file on every committed
        transaction, so any admitted design or checkpointed cell bumps
        the token.  A missing file maps to ``(-1, -1)`` instead of
        raising.  The serving layer's snapshot, response cache, wire
        cache and ETags all key on this value — a
        :class:`~repro.library.federation.FederatedStore` returns a
        tuple of per-file tokens with the same contract (any mounted
        file moving changes the token).
        """
        try:
            stat = os.stat(self.path)
        except OSError:
            return (-1, -1)
        return (stat.st_mtime_ns, stat.st_size)

    # ------------------------------------------------------------------
    # Designs
    # ------------------------------------------------------------------
    def add(self, record: DesignRecord) -> str:
        """Admit a design under the group's Pareto rule.

        Parameters
        ----------
        record : DesignRecord
            Fully characterized candidate (see the class docstring for
            field units).

        Returns
        -------
        str
            * ``"added"`` — non-dominated; inserted (dominated
              incumbents of the same group are pruned in the same
              transaction),
            * ``"duplicate"`` — the same phenotype (or an exactly equal
              objective vector) is already stored for this group,
            * ``"dominated"`` — an incumbent is at least as good on
              every objective and better on one; nothing changes.
        """
        group = record.group()
        candidate = record.objectives()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT design_id, "
                + ", ".join(_OBJECTIVE_COLUMNS)
                + " FROM designs WHERE component=? AND width=? AND signed=?"
                " AND metric=? AND dist=?",
                (group[0], group[1], int(group[2]), group[3], group[4]),
            ).fetchall()
            pruned: List[str] = []
            for design_id, *vector in rows:
                vector = tuple(float(v) for v in vector)
                if design_id == record.design_id or vector == candidate:
                    conn.rollback()
                    STORE_ADMISSIONS.labels("duplicate").inc()
                    return "duplicate"
                if _dominates(vector, candidate):
                    conn.rollback()
                    STORE_ADMISSIONS.labels("dominated").inc()
                    return "dominated"
                if _dominates(candidate, vector):
                    pruned.append(design_id)
            for design_id in pruned:
                conn.execute(
                    "DELETE FROM designs WHERE design_id=? AND component=?"
                    " AND width=? AND signed=? AND metric=? AND dist=?",
                    (design_id, group[0], group[1], int(group[2]),
                     group[3], group[4]),
                )
            values = [getattr(record, f) for f in _FIELDS]
            values[_FIELDS.index("signed")] = int(record.signed)
            conn.execute(
                f"INSERT INTO designs ({', '.join(_FIELDS)}, created_at)"
                f" VALUES ({', '.join('?' * len(_FIELDS))}, ?)",
                (*values, time.time()),
            )
            conn.commit()
        STORE_ADMISSIONS.labels("added").inc()
        if pruned:
            STORE_PRUNED.inc(len(pruned))
        return "added"

    def get(self, design_id: str) -> List[DesignRecord]:
        """All rows stored under one content address.

        Usually one; a phenotype that is Pareto-optimal under several
        metrics (the exact seed at threshold 0, typically) appears once
        per group.
        """
        return self.select(design_id=design_id)

    def select(
        self,
        component: Optional[str] = None,
        width: Optional[int] = None,
        metric: Optional[str] = None,
        dist: Optional[str] = None,
        signed: Optional[bool] = None,
        design_id: Optional[str] = None,
        design_id_prefix: Optional[str] = None,
        max_error: Optional[float] = None,
    ) -> List[DesignRecord]:
        """Fetch records matching every given filter, cheapest-error first.

        Parameters
        ----------
        component, width, metric, dist, signed : optional
            Group-key equality filters; ``None`` means "any".
        design_id : str, optional
            Exact content address.
        design_id_prefix : str, optional
            Leading substring of the content address (a SQL prefix
            scan, so ``library show`` stays cheap on large stores);
            ``LIKE`` wildcards in the prefix are treated literally.
        max_error : float, optional
            Inclusive cap on the *normalized* objective ``error``
            column — the same [0, ~1] units search thresholds use,
            i.e. percent / 100, **not** percent.

        Returns
        -------
        list of DesignRecord
            Totally ordered: ``(error, area, design_id, …group key)``,
            so results are deterministic across SQLite versions.
        """
        clauses: List[str] = []
        args: List[object] = []
        for column, value in (
            ("component", component),
            ("width", width),
            ("metric", metric),
            ("dist", dist),
            ("design_id", design_id),
        ):
            if value is not None:
                clauses.append(f"{column}=?")
                args.append(value)
        if design_id_prefix is not None:
            escaped = re.sub(r"([\\%_])", r"\\\1", design_id_prefix)
            clauses.append(r"design_id LIKE ? ESCAPE '\'")
            args.append(escaped + "%")
        if signed is not None:
            clauses.append("signed=?")
            args.append(int(signed))
        if max_error is not None:
            clauses.append("error<=?")
            args.append(float(max_error))
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        # The trailing columns complete the primary key, making the
        # order total: one phenotype stored under two groups would
        # otherwise tie on (error, area, design_id) and come back in
        # arbitrary SQLite scan order.
        sql = (
            f"SELECT {', '.join(_FIELDS)} FROM designs{where}"
            " ORDER BY error, area, design_id, component, width, signed,"
            " metric, dist"
        )
        with self._connect() as conn:
            rows = conn.execute(sql, args).fetchall()
        return [_row_to_record(row) for row in rows]

    def count(self) -> int:
        with self._connect() as conn:
            return int(conn.execute("SELECT COUNT(*) FROM designs").fetchone()[0])

    def groups(self) -> List[Tuple[Tuple[str, int, bool, str, str], int]]:
        """Every ``(component, width, signed, metric, dist)`` group + size."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT component, width, signed, metric, dist, COUNT(*)"
                " FROM designs GROUP BY component, width, signed, metric,"
                " dist ORDER BY component, width, metric, dist"
            ).fetchall()
        return [
            ((c, int(w), bool(s), m, d), int(n)) for c, w, s, m, d, n in rows
        ]

    # ------------------------------------------------------------------
    # Build-cell checkpoints
    # ------------------------------------------------------------------
    def mark_cell(
        self,
        cell_id: str,
        component: str,
        metric: str,
        width: int,
        dist: str,
        threshold_percent: float,
        status: str,
        design_id: Optional[str],
    ) -> None:
        """Checkpoint one completed grid cell (idempotent)."""
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT OR REPLACE INTO cells (cell_id, component, metric,"
                " width, dist, threshold_percent, status, design_id,"
                " completed_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (cell_id, component, metric, width, dist, threshold_percent,
                 status, design_id, time.time()),
            )
            conn.commit()

    def completed_cells(self) -> Dict[str, str]:
        """``{cell_id: status}`` of every checkpointed cell."""
        with self._connect() as conn:
            rows = conn.execute("SELECT cell_id, status FROM cells").fetchall()
        return {cell_id: status for cell_id, status in rows}


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance over equal-length minimized vectors."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def record_order_key(record: DesignRecord) -> Tuple:
    """Sort key realizing :meth:`DesignStore.select`'s total order.

    ``(error, area, design_id, component, width, signed, metric,
    dist)`` — SQLite's BINARY collation is bytewise UTF-8, which equals
    Python's code-point string ordering, so sorting records with this
    key reproduces the SQL ``ORDER BY`` exactly.  Shared by the
    serving snapshot, the federation layer and the store merge, so
    "same rows" always implies "same order".
    """
    return (record.error, record.area, record.design_id,
            record.component, record.width, int(record.signed),
            record.metric, record.dist)


def filter_records(
    records: Sequence[DesignRecord],
    component: Optional[str] = None,
    width: Optional[int] = None,
    metric: Optional[str] = None,
    dist: Optional[str] = None,
    signed: Optional[bool] = None,
    design_id: Optional[str] = None,
    design_id_prefix: Optional[str] = None,
    max_error: Optional[float] = None,
) -> List[DesignRecord]:
    """Apply :meth:`DesignStore.select`'s filters to in-memory records.

    Exactly the SQL ``WHERE`` clause, minus the SQL — equality on the
    group-key columns, literal prefix match on the content address, an
    inclusive cap on normalized ``error``.  Order is preserved, so
    feeding records already in the store's total order (see
    :func:`record_order_key`) yields byte-identical selections.  This
    is the single filter implementation behind the serving snapshot
    and the federated store.
    """
    out = []
    for r in records:
        if component is not None and r.component != component:
            continue
        if width is not None and r.width != width:
            continue
        if metric is not None and r.metric != metric:
            continue
        if dist is not None and r.dist != dist:
            continue
        if signed is not None and r.signed != signed:
            continue
        if design_id is not None and r.design_id != design_id:
            continue
        if design_id_prefix is not None \
                and not r.design_id.startswith(design_id_prefix):
            continue
        if max_error is not None and not r.error <= float(max_error):
            continue
        out.append(r)
    return out


def _row_to_record(row: Sequence[object]) -> DesignRecord:
    data = dict(zip(_FIELDS, row))
    data["signed"] = bool(data["signed"])
    data["width"] = int(data["width"])
    data["worst_case"] = int(data["worst_case"])
    data["gates"] = int(data["gates"])
    data["generations"] = int(data["generations"])
    data["evaluations"] = int(data["evaluations"])
    return DesignRecord(**data)
