"""Multi-store federation: merge design stores, or mount several at once.

Sharded library builds (``repro library build --shard i/n``) produce one
store per shard.  This module provides the two ways to put them back
together:

* :func:`merge_stores` — **offline union**: re-insert every input row
  into a fresh output store under the existing Pareto-admission rule
  (:meth:`~repro.library.store.DesignStore.add`).  Because sequential
  Pareto admission converges to the non-dominated subset of the offered
  candidates — dominance is transitive, so a row rejected against an
  incumbent stays dominated by whatever later prunes that incumbent —
  the result is a pure function of the union row *set*: idempotent
  (``merge(a, a) == a``) and order-independent (``merge(a, b) ==
  merge(b, a)``), with rows offered in the store's canonical total
  order so even exact-objective ties resolve identically.  The output
  is written to a temp file in the destination directory and
  ``os.replace``d into place, so a killed merge leaves the destination
  either untouched or complete — never torn.

* :class:`FederatedStore` — **online union**: several stores mounted
  behind one read surface.  It duck-types the read surface of
  :class:`~repro.library.store.DesignStore` (``select`` / ``count`` /
  ``groups`` / ``completed_cells``, identical filter + order
  semantics), computing the same Pareto union :func:`merge_stores`
  persists — reads through a federation are equal, row for row and in
  order, to reads of the offline merge.  ``repro serve --db a.db --db
  b.db`` mounts one; ``library.query``, the serving snapshot, the
  response cache and ETags all run over it unchanged, because its
  :meth:`~FederatedStore.state_token` covers *every* mounted file (a
  write to any one invalidates all derived state).

Both paths check schema versions on open (via the ``DesignStore``
constructor), so federating or merging a store written by an
incompatible build fails loudly instead of misreading it.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from dataclasses import astuple, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.catalog import MERGE_CELLS, MERGE_ROWS, MERGE_SOURCES
from .store import (
    DesignRecord,
    DesignStore,
    _dominates,
    filter_records,
    record_order_key,
)

__all__ = [
    "FederatedStore",
    "MergeReport",
    "merge_stores",
    "pareto_union",
]


def _offer_order_key(record: DesignRecord) -> Tuple:
    """Canonical admission order for merges and federated reductions.

    Groups first, then ascending ``threshold_percent`` — the order an
    unsharded build offers a group's cells in (the grid enumerates
    thresholds ascending within each group), so duplicate ties (same
    content address or same objective vector, evolved by neighbouring
    threshold cells) resolve to the same winner the single build kept.
    The full field tuple makes the key total over row content — any
    two rows comparing equal under it are identical — which is what
    makes merging a pure function of the input row *set*.
    """
    return (
        record.group(), record.threshold_percent,
        record_order_key(record), astuple(record),
    )


def pareto_union(
    records: Sequence[DesignRecord],
) -> List[DesignRecord]:
    """The Pareto-admitted union of a set of design records.

    Sorts the records into the canonical admission order
    (:func:`_offer_order_key`) and replays :meth:`DesignStore.add`'s
    admission rule in memory: within each ``(component, width, signed,
    metric, dist)`` group, a record is dropped when an already-kept
    record shares its content address or its exact objective vector
    (duplicate) or dominates it, and kept records that a newcomer
    dominates are pruned.  The result is the per-group non-dominated
    subset, re-sorted into the store's select order — exactly the rows
    (and order) :func:`merge_stores` would persist from the same
    input, and a pure function of the input *set*.
    """
    ordered = sorted(records, key=_offer_order_key)
    kept: List[Optional[DesignRecord]] = []
    by_group: Dict[Tuple, List[int]] = {}
    for record in ordered:
        candidate = record.objectives()
        members = by_group.setdefault(record.group(), [])
        admitted = True
        for i in members:
            incumbent = kept[i]
            if incumbent is None:
                continue
            vector = incumbent.objectives()
            if incumbent.design_id == record.design_id \
                    or vector == candidate:
                admitted = False  # duplicate
                break
            if _dominates(vector, candidate):
                admitted = False  # dominated
                break
        if not admitted:
            continue
        for i in members:
            incumbent = kept[i]
            if incumbent is not None \
                    and _dominates(candidate, incumbent.objectives()):
                kept[i] = None  # pruned by the newcomer
        members.append(len(kept))
        kept.append(record)
    return sorted(
        (r for r in kept if r is not None), key=record_order_key
    )


@dataclass
class MergeReport:
    """Outcome counters of one :func:`merge_stores` invocation."""

    inputs: int = 0
    rows_offered: int = 0
    added: int = 0
    dominated: int = 0
    duplicate: int = 0
    cells: int = 0
    out_designs: int = 0
    out_path: str = ""
    sources: List[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"merged {self.inputs} stores into {self.out_path}: "
            f"{self.rows_offered} rows offered, {self.added} added, "
            f"{self.dominated} dominated, {self.duplicate} duplicate; "
            f"{self.cells} build cells united; output holds "
            f"{self.out_designs} designs"
        )


def _read_cells(path: str) -> List[Tuple]:
    """All ``cells`` rows of a store file, as raw column tuples."""
    conn = sqlite3.connect(path, timeout=30.0)
    try:
        return conn.execute(
            "SELECT cell_id, component, metric, width, dist,"
            " threshold_percent, status, design_id, completed_at"
            " FROM cells"
        ).fetchall()
    finally:
        conn.close()


def _union_cells(cell_rows: Sequence[Tuple]) -> List[Tuple]:
    """Deterministic union of cell checkpoints by ``cell_id``.

    Duplicated cell ids (the same cell checkpointed into several
    inputs) keep the lexicographically smallest full row — an
    order-independent rule, and one that agrees with
    :meth:`FederatedStore.completed_cells` (which exposes the minimum
    status per cell id).
    """
    best: Dict[str, Tuple] = {}
    for row in cell_rows:
        cell = row[0]
        if cell not in best or (row[6:], row) < (best[cell][6:], best[cell]):
            best[cell] = row
    return [best[cell] for cell in sorted(best)]


def merge_stores(
    out_path: str,
    input_paths: Sequence[str],
) -> MergeReport:
    """Union several design stores into ``out_path``, atomically.

    Every input store's rows are offered — in the canonical admission
    order of :func:`_offer_order_key` — to a fresh store
    via the ordinary Pareto admission of
    :meth:`~repro.library.store.DesignStore.add`, and every input's
    build-cell checkpoints are united (so a merged store resumes, and
    reports ``cells_completed``, as the union of its parts).  An
    existing store at ``out_path`` participates as one more input, so
    re-running a merge is idempotent and incremental merges accumulate.

    **Atomicity.**  The output is assembled in a temp file next to
    ``out_path`` and moved into place with ``os.replace`` only after
    every row and cell is committed — a merge killed at any point
    leaves ``out_path`` either absent/previous or complete, never a
    half-written store (the abandoned temp file is removed on the next
    successful merge's ``os.replace``, or by hand).

    Parameters
    ----------
    out_path : str
        Destination store file.  Created or atomically replaced.
    input_paths : sequence of str
        Source store files.  Each must exist and carry the current
        schema version; a missing path raises instead of silently
        merging an empty store a typo just created.

    Returns
    -------
    MergeReport
        Admission counters over all offered rows.
    """
    sources = list(input_paths)
    if not sources:
        raise ValueError("merge needs at least one input store")
    for path in sources:
        if not os.path.exists(path):
            raise ValueError(f"no design store at {path!r}")
    if os.path.exists(out_path) and not any(
        os.path.samefile(out_path, p) for p in sources
    ):
        sources.append(out_path)

    records: List[DesignRecord] = []
    cell_rows: List[Tuple] = []
    for path in sources:
        store = DesignStore(path)  # schema-version check happens here
        records.extend(store.select())
        cell_rows.extend(_read_cells(path))
        MERGE_SOURCES.inc()

    report = MergeReport(
        inputs=len(sources), rows_offered=len(records),
        out_path=out_path, sources=sources,
    )
    out_dir = os.path.dirname(os.path.abspath(out_path))
    tmp_path = os.path.join(
        out_dir, f".{os.path.basename(out_path)}.merge.{os.getpid()}.tmp"
    )
    try:
        out = DesignStore(tmp_path)
        for record in sorted(records, key=_offer_order_key):
            status = out.add(record)
            setattr(report, status, getattr(report, status) + 1)
            MERGE_ROWS.labels(status).inc()
        cells = _union_cells(cell_rows)
        for (cell_id, component, metric, width, dist, threshold,
             status, design_id, _completed_at) in cells:
            out.mark_cell(
                cell_id, component, metric, width, dist, threshold,
                status, design_id,
            )
        report.cells = len(cells)
        MERGE_CELLS.inc(len(cells))
        report.out_designs = out.count()
        os.replace(tmp_path, out_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return report


class FederatedStore:
    """Several design stores mounted behind one read surface.

    Duck-types the read surface of
    :class:`~repro.library.store.DesignStore` — ``select``, ``count``,
    ``groups``, ``completed_cells``, ``get``, plus ``path`` / ``paths``
    and :meth:`state_token` — over the Pareto union of the mounted
    stores.  Reads are equal, row for row and in the same total order,
    to reads of the stores' offline :func:`merge_stores` output (the
    reduction is :func:`pareto_union`, which replays the identical
    admission rule).

    The union is reduced lazily and memoized under the combined state
    token, so a serving snapshot rebuild costs one reduction, and a
    quiescent mount costs none.  Writes are refused: a federation is a
    view, not a store — build into the member stores (or merge) and
    the next read sees it.

    Parameters
    ----------
    stores : sequence of str or DesignStore
        The mounted stores, in mount order (paths are opened —
        and schema-checked — immediately).  Mount order never affects
        results; it is kept only for display.
    """

    def __init__(
        self, stores: Sequence[Union[str, DesignStore]]
    ) -> None:
        if not stores:
            raise ValueError("a federation needs at least one store")
        self.stores: Tuple[DesignStore, ...] = tuple(
            s if isinstance(s, DesignStore) else DesignStore(s)
            for s in stores
        )
        self.paths: Tuple[str, ...] = tuple(s.path for s in self.stores)
        #: Display name (``/healthz``'s ``store`` field); the real
        #: file list is :attr:`paths`.
        self.path = "+".join(self.paths)
        self._lock = threading.Lock()
        self._reduced: Optional[Tuple[Tuple, List[DesignRecord]]] = None

    def state_token(self) -> Tuple[Tuple[int, int], ...]:
        """Combined freshness token: one per-file token per mount.

        The tuple of every member's ``(st_mtime_ns, st_size)`` — a
        write to *any* mounted file changes it, so the serving
        snapshot, response cache, wire cache and ETags (all keyed on
        this value) invalidate together however many stores are
        mounted.
        """
        return tuple(s.state_token() for s in self.stores)

    # ------------------------------------------------------------------
    # The DesignStore read surface
    # ------------------------------------------------------------------
    def _rows(self) -> List[DesignRecord]:
        """The reduced union, memoized under the combined token."""
        token = self.state_token()
        with self._lock:
            if self._reduced is not None and self._reduced[0] == token:
                return self._reduced[1]
        rows: List[DesignRecord] = []
        for store in self.stores:
            rows.extend(store.select())
        reduced = pareto_union(rows)
        with self._lock:
            self._reduced = (token, reduced)
        return reduced

    def select(
        self,
        component: Optional[str] = None,
        width: Optional[int] = None,
        metric: Optional[str] = None,
        dist: Optional[str] = None,
        signed: Optional[bool] = None,
        design_id: Optional[str] = None,
        design_id_prefix: Optional[str] = None,
        max_error: Optional[float] = None,
    ) -> List[DesignRecord]:
        """Exactly :meth:`DesignStore.select` over the merged view.

        Filters apply *after* the Pareto reduction (a row one store
        holds but the union prunes is never visible, whatever the
        filter), matching what a select against the offline merge
        would return.
        """
        return filter_records(
            self._rows(),
            component=component, width=width, metric=metric, dist=dist,
            signed=signed, design_id=design_id,
            design_id_prefix=design_id_prefix, max_error=max_error,
        )

    def get(self, design_id: str) -> List[DesignRecord]:
        return self.select(design_id=design_id)

    def count(self) -> int:
        return len(self._rows())

    def groups(self) -> List[Tuple[Tuple[str, int, bool, str, str], int]]:
        """Every group + size, in :meth:`DesignStore.groups` order.

        SQLite emits groups in ``ORDER BY component, width, metric,
        dist`` with ties in the b-tree's grouping-key order — net
        effect ``(component, width, metric, dist, signed)`` — which is
        reproduced here so ``/v1/stats`` bodies match the offline
        merge byte for byte.
        """
        counts: Dict[Tuple[str, int, bool, str, str], int] = {}
        for r in self._rows():
            counts[r.group()] = counts.get(r.group(), 0) + 1
        ordered = sorted(
            counts,
            key=lambda g: (g[0], g[1], g[3], g[4], int(g[2])),
        )
        return [(g, counts[g]) for g in ordered]

    def completed_cells(self) -> Dict[str, str]:
        """Union of every mount's checkpoints (min status on conflict)."""
        merged: Dict[str, str] = {}
        for store in self.stores:
            for cell, status in store.completed_cells().items():
                if cell not in merged or status < merged[cell]:
                    merged[cell] = status
        return merged

    # ------------------------------------------------------------------
    # Writes: refused
    # ------------------------------------------------------------------
    def add(self, record: DesignRecord) -> str:
        raise TypeError(
            "FederatedStore is read-only: build into a member store "
            "(or merge_stores) and the federation sees it on the next "
            "read"
        )

    def mark_cell(self, *args, **kwargs) -> None:
        raise TypeError(
            "FederatedStore is read-only: cells are checkpointed by "
            "the shard builds that own them"
        )
