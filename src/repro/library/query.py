"""Selection API over a design store: the surface a serving layer sits on.

Downstream users of an approximate-component library ask one question:
*"cheapest design meeting my error budget"*.  :func:`best` answers it;
:func:`front` returns the whole stored trade-off curve for plotting or
client-side selection; :func:`stats` summarizes what the library holds.
All three are pure reads — safe to call concurrently with a running
build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.components import get_component
from ..core.pareto import pareto_indices
from ..errors.metrics import get_metric
from .store import DesignRecord, DesignStore

__all__ = ["COST_COLUMNS", "best", "front", "stats"]

#: CLI/API cost names -> record attribute minimized by the selection.
COST_COLUMNS = {"area": "area", "power": "power_uw", "pdp": "pdp"}


def _cost_column(minimize: str) -> str:
    column = COST_COLUMNS.get(str(minimize).strip().lower())
    if column is None:
        raise ValueError(
            f"unknown cost {minimize!r}; choose from "
            f"{', '.join(COST_COLUMNS)}"
        )
    return column


def _canonical(component: str, metric: str) -> Tuple[str, str]:
    """Resolve component/metric aliases to the names designs are stored
    under (the builder canonicalizes on admission; queries must match)."""
    return get_component(component).name, get_metric(metric).name


def best(
    store: DesignStore,
    component: str,
    width: int,
    metric: str = "wmed",
    max_error_percent: Optional[float] = None,
    minimize: str = "area",
    dist: Optional[str] = None,
    signed: Optional[bool] = None,
) -> Optional[DesignRecord]:
    """Cheapest stored design within an error budget.

    Parameters
    ----------
    store : DesignStore
        The library.
    component : str
        Component kind (``multiplier``, ``adder``, ``mac``,
        ``divider``, ``subtractor``, ``barrel-shifter``); aliases are
        canonicalized via the component registry.
    width : int
        Operand width in bits.
    metric : str
        The error metric the budget is expressed in; only designs
        *evolved under* that metric are considered, so the stored
        ``error`` column is directly comparable.
    max_error_percent : float, optional
        Error budget in the paper's percent units — 100 x the
        normalized objective error, so ``1.0`` means 1 % of the
        objective normalizer (max reference magnitude).  ``None``
        means unconstrained.
    minimize : str
        Cost axis: ``"area"`` (um^2), ``"power"`` (uW) or
        ``"pdp"`` (fJ).
    dist : str, optional
        Restrict to designs driven by this stored distribution name
        (e.g. ``"Du"``, ``"D2"``).
    signed : bool, optional
        Restrict signedness; ``None`` accepts either.

    Returns
    -------
    DesignRecord or None
        The minimal-cost record (ties broken by lower error, then
        content address — fully deterministic), or ``None`` when
        nothing fits the budget.
    """
    column = _cost_column(minimize)
    component, metric = _canonical(component, metric)
    rows = store.select(
        component=component, width=width, metric=metric, dist=dist,
        signed=signed,
        max_error=(
            None if max_error_percent is None else max_error_percent / 100.0
        ),
    )
    if not rows:
        return None
    return min(rows, key=lambda r: (getattr(r, column), r.error, r.design_id))


def front(
    store: DesignStore,
    component: str,
    width: int,
    metric: str = "wmed",
    minimize: str = "area",
    dist: Optional[str] = None,
    signed: Optional[bool] = None,
    max_error_percent: Optional[float] = None,
) -> List[DesignRecord]:
    """The stored Pareto front over ``(error, cost)``, ascending error.

    The store already admits only group-wise non-dominated rows over the
    full objective vector; projecting onto one cost axis can still leave
    2-D-dominated points (a design may be kept for its power while losing
    on area), so the front is recomputed for the requested ``minimize``
    axis.  ``max_error_percent`` truncates the curve at an error budget
    (filtering by error commutes with taking the front, so the result is
    the front of the budget-constrained set).

    Parameters
    ----------
    store, component, width, metric, minimize, dist, signed, max_error_percent
        As for :func:`best` (same vocabulary, same units: error budgets
        in percent, ``minimize`` over area um^2 / power uW / pdp fJ).

    Returns
    -------
    list of DesignRecord
        Ascending ``error``, strictly improving cost; empty when the
        selection matches nothing.
    """
    column = _cost_column(minimize)
    component, metric = _canonical(component, metric)
    rows = store.select(
        component=component, width=width, metric=metric, dist=dist,
        signed=signed,
        max_error=(
            None if max_error_percent is None else max_error_percent / 100.0
        ),
    )
    if not rows:
        return []
    keep = pareto_indices(
        [r.error for r in rows], [getattr(r, column) for r in rows]
    )
    return [rows[i] for i in keep]


def stats(store: DesignStore) -> Dict[str, object]:
    """Library-wide summary: sizes, groups, and per-group error spans.

    Returns
    -------
    dict
        ``designs`` (total stored rows), ``cells_completed``
        (checkpointed build cells — resume bookkeeping), and
        ``groups``: one entry per ``(component, width, signed, metric,
        dist)`` group with its design count, error span in percent
        (``min_error_percent`` / ``max_error_percent``) and area span
        in um^2 (``min_area`` / ``max_area``).  JSON-serializable as
        is — this is the ``/v1/stats`` response body of
        :mod:`repro.serve`.
    """
    groups = []
    for (component, width, signed, metric, dist), count in store.groups():
        rows = store.select(
            component=component, width=width, metric=metric, dist=dist,
            signed=signed,
        )
        groups.append({
            "component": component,
            "width": width,
            "signed": signed,
            "metric": metric,
            "dist": dist,
            "designs": count,
            "min_error_percent": 100.0 * rows[0].error,
            "max_error_percent": 100.0 * rows[-1].error,
            "min_area": min(r.area for r in rows),
            "max_area": max(r.area for r in rows),
        })
    return {
        "designs": store.count(),
        "groups": groups,
        "cells_completed": len(store.completed_cells()),
    }
