"""Resumable library builds over component x metric x threshold x width grids.

:func:`build_library` drives :func:`repro.analysis.sweep.grid_front`
once per operand width and checkpoints every grid cell into the
:class:`~repro.library.store.DesignStore` the moment it completes (the
sweep layer's ``on_point`` hook fires in the builder's process as each
pool worker finishes).  Two properties follow:

* **Resumability** — a killed build restarts where it left off: cells
  already checkpointed are excluded via the sweep's ``skip_cell`` hook,
  and because :func:`~repro.analysis.sweep.grid_front` allocates its
  per-cell :class:`~numpy.random.SeedSequence` children for the *full*
  grid before filtering, the remaining cells evolve exactly the circuits
  they would have in an uninterrupted run.  A finished cell is never
  re-evolved; re-running a completed build is a no-op.
* **Pareto admission** — each completed cell's design is characterized
  (:func:`characterize_record`) and offered to the store, which admits
  only per-``(component, width, metric)``-group non-dominated rows and
  prunes any incumbents the newcomer dominates.

Cell identity (:func:`cell_id`) digests everything that determines a
cell's result — component, metric, width, distribution spec,
signedness, threshold, root seed, budget — so changing any search
parameter makes a fresh grid rather than silently reusing stale cells.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..analysis.sweep import DesignPoint, canonical_combos, grid_front
from ..circuits.simulator import truth_table
from ..core.chromosome import Chromosome
from ..core.components import component_objective, get_component
from ..core.evolution import EvolutionConfig
from ..core.serialization import chromosome_to_string
from ..errors.distributions import Distribution, distribution_from_spec
from ..errors.metrics import evaluate_errors_against, get_metric
from ..errors.truth_tables import operand_weights
from ..obs import catalog as _obs
from ..tech.library import TechLibrary, default_library
from ..tech.timing import characterize
from .store import DesignRecord, DesignStore, design_signature

__all__ = [
    "BuildSpec",
    "BuildReport",
    "build_library",
    "cell_id",
    "characterize_record",
    "library_fingerprint",
    "parse_shard",
]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``--shard i/n`` spec into ``(index, count)``, zero-based.

    ``"2/4"`` means "the second of four shards" → ``(1, 4)``.  The
    1-based surface syntax matches how people number machines; the
    returned index is 0-based because it feeds a modular assignment.
    """
    parts = text.strip().split("/")
    if len(parts) != 2:
        raise ValueError(
            f"shard spec must look like i/n (got {text!r})"
        )
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"shard spec must be two integers i/n (got {text!r})"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard index must satisfy 1 <= i <= n (got {text!r})"
        )
    return index - 1, count


@dataclass(frozen=True)
class BuildSpec:
    """One reproducible library build: the grid and the search budget.

    ``dist`` is a distribution spec string (``uniform``, ``d1``, ``d2``,
    ``half-normal:<sigma>``, ``normal:<mean>:<std>``) instantiated per
    width.  ``signed`` selects two's-complement operands — only legal
    when every component in the grid supports it (the adder, divider,
    subtractor and barrel shifter do not).
    The build's results are a pure function of this spec: same spec,
    same designs, bit for bit.
    """

    components: Tuple[str, ...] = ("multiplier",)
    metrics: Tuple[str, ...] = ("wmed",)
    widths: Tuple[int, ...] = (4,)
    thresholds_percent: Tuple[float, ...] = (0.5, 1.0, 2.0)
    dist: str = "uniform"
    signed: bool = False
    generations: int = 2000
    extra_columns: int = 20
    seed: int = 0
    engine: str = "auto"

    def combos(self) -> List[Tuple[str, str]]:
        """Canonical, de-duplicated (component, metric) pairs, grid order.

        Shares :func:`~repro.analysis.sweep.canonical_combos` with
        :func:`~repro.analysis.sweep.grid_front`, so resume accounting
        and the cells that actually run can never disagree.
        """
        return canonical_combos(self.components, self.metrics)

    def dist_spec(self) -> str:
        """Normalized distribution spec (part of every cell identity)."""
        return self.dist.strip().lower()

    def cells(self) -> List[Tuple[int, str, str, float]]:
        """Every grid cell as ``(width, component, metric, threshold)``,
        in deterministic build order."""
        return [
            (width, component, metric, level)
            for width in self.widths
            for component, metric in self.combos()
            for level in self.thresholds_percent
        ]


@dataclass
class BuildReport:
    """Outcome counters of one :func:`build_library` invocation."""

    cells_total: int = 0
    cells_skipped: int = 0
    cells_run: int = 0
    added: int = 0
    dominated: int = 0
    duplicate: int = 0
    store_designs: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"cells: {self.cells_run} run, {self.cells_skipped} resumed "
            f"(of {self.cells_total}); designs: {self.added} added, "
            f"{self.dominated} dominated, {self.duplicate} duplicate; "
            f"store now holds {self.store_designs}"
        )


def library_fingerprint(library: Optional[TechLibrary]) -> str:
    """Digest of a technology library's search-relevant constants.

    The evolved circuits themselves depend on the library (Eq. (1)
    minimizes library-derived area), so it is part of every cell
    identity — resuming a build under different cell constants must
    re-run, not silently reuse stale rows.
    """
    lib = library or default_library()
    payload = repr((
        lib.name, lib.vdd, lib.clock_ghz,
        sorted(lib.cells.items()),
    ))
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def cell_id(
    component: str,
    metric: str,
    width: int,
    dist_spec: str,
    signed: bool,
    threshold_percent: float,
    seed: int,
    generations: int,
    extra_columns: int,
    library_fp: str = "",
) -> str:
    """Digest identifying one grid cell's full parameterization.

    ``library_fp`` is the :func:`library_fingerprint` of the technology
    library the cell evolves under (empty falls back to the default
    library's).  The evaluation ``engine`` is deliberately excluded:
    engine backends are bit-identical, so a build may resume on a
    machine without the C toolchain and still skip its finished cells.
    """
    payload = repr((
        get_component(component).name,
        get_metric(metric).name,
        int(width),
        dist_spec,
        bool(signed),
        float(threshold_percent),
        int(seed),
        int(generations),
        int(extra_columns),
        library_fp or library_fingerprint(None),
    ))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def characterize_record(
    chromosome: Chromosome,
    component: str,
    width: int,
    dist: Distribution,
    metric: str,
    library: Optional[TechLibrary] = None,
    threshold_percent: float = float("nan"),
    name: str = "",
    seed_key: str = "",
    generations: int = 0,
    evaluations: int = 0,
) -> DesignRecord:
    """Full, deterministic characterization of one evolved chromosome.

    This is the single code path producing a store row's numeric fields
    — the builder uses it at admission time and verification re-runs it
    from the stored chromosome text, so "re-characterization matches the
    stored record bit-for-bit" is checkable by plain equality.

    ``error`` reduces the same float64 distance vector with the same
    :meth:`~repro.errors.metrics.ErrorMetric.from_distances` code (and
    operand order) as the search objective, so it equals the evolution's
    final ``best_eval.error`` exactly, engine or no engine.
    """
    comp = get_component(component)
    objective = component_objective(
        comp.name, width, dist, metric=metric, library=library
    )
    netlist = chromosome.to_netlist(name=name)
    table = truth_table(netlist, signed=objective.signed)
    distances = np.abs(objective.reference - table).astype(np.float64)
    error = objective.metric.from_distances(
        distances, objective.weights, objective.normalizer,
        objective.reference,
    )
    raw_weights = operand_weights(dist, objective.num_inputs)
    report = evaluate_errors_against(
        objective.reference, table,
        weights=raw_weights, normalizer=objective.normalizer,
    )
    # Same activity weighting as analysis.sweep.characterize_design, so
    # the electrical figures agree with the sweep-layer DesignPoints.
    summary = characterize(
        netlist, library, weights=raw_weights / raw_weights.sum()
    )
    mred = get_metric("mred").from_distances(
        distances, objective.weights, objective.normalizer,
        objective.reference,
    )
    return DesignRecord(
        design_id=design_signature(netlist),
        component=comp.name,
        width=width,
        signed=objective.signed,
        metric=objective.metric.name,
        dist=dist.name,
        threshold_percent=float(threshold_percent),
        error=float(error),
        area=float(summary.area),
        power_uw=float(summary.power.total),
        delay_ps=float(summary.delay),
        pdp=float(summary.pdp),
        wmed=report.wmed,
        med=report.med,
        mred=mred,
        error_rate=report.error_rate,
        worst_case=report.worst_case,
        bias=report.bias,
        gates=len(netlist.active_gate_indices()),
        chromosome=chromosome_to_string(chromosome),
        name=name,
        seed_key=seed_key,
        generations=generations,
        evaluations=evaluations,
    )


def build_library(
    store: DesignStore,
    spec: BuildSpec,
    max_workers: Optional[int] = None,
    executor: str = "process",
    library: Optional[TechLibrary] = None,
    progress: Optional[Callable[[Tuple[int, str, str, float], str], None]] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> BuildReport:
    """Run (or resume) one library build; see the module docstring.

    Args:
        store: Destination store; also holds the cell checkpoints.
        spec: The grid + budget.  Identical spec against the same store
            is a no-op (every cell resumes as complete).
        max_workers: Pool width per grid; ``<= 1`` runs serially.
        executor: ``"process"`` or ``"thread"`` (see
            :func:`~repro.analysis.sweep.parallel_front`).
        library: Technology library for area/power/delay.
        progress: Optional ``progress((width, component, metric, level),
            status)`` hook, fired per completed cell after its checkpoint
            commits; an exception here aborts the build *between* cells,
            which is exactly the kill point resumption is tested against.
        shard: Optional ``(index, count)`` (zero-based; see
            :func:`parse_shard`).  Cell ``k`` of :meth:`BuildSpec.cells`
            belongs to shard ``k % count``; cells outside this shard are
            excluded through the same ``skip_cell`` hook resume uses, so
            — because :func:`~repro.analysis.sweep.grid_front` allocates
            the *full* grid's SeedSequence children before filtering —
            every shard evolves exactly the rows an unsharded build
            would for its cells, bit for bit.  ``n`` shards into ``n``
            stores + :func:`~repro.library.federation.merge_stores` is
            therefore row-identical to one unsharded build.

    Returns:
        A :class:`BuildReport` of cells run/resumed and admission
        counts; under sharding, over this shard's cells only.
    """
    all_cells = spec.cells()
    if shard is None:
        mine = set(all_cells)
    else:
        index, count = shard
        if not 0 <= index < count:
            raise ValueError(
                f"shard index out of range: ({index}, {count})"
            )
        mine = {c for k, c in enumerate(all_cells) if k % count == index}
    report = BuildReport(cells_total=len(mine))
    done = set(store.completed_cells())
    dist_spec = spec.dist_spec()
    library_fp = library_fingerprint(library)
    _obs.BUILD_CELLS_PLANNED.set(report.cells_total)
    _obs.BUILD_SHARD_INDEX.set(0 if shard is None else shard[0])
    _obs.BUILD_SHARD_COUNT.set(1 if shard is None else shard[1])

    def cid(width: int, component: str, metric: str, level: float) -> str:
        return cell_id(
            component, metric, width, dist_spec, spec.signed, level,
            spec.seed, spec.generations, spec.extra_columns,
            library_fp=library_fp,
        )

    config = EvolutionConfig(generations=spec.generations)
    for width in spec.widths:
        dist = distribution_from_spec(dist_spec, width, spec.signed)

        # Counted here, not inside skip(): grid_front probes skip_cell
        # more than once per cell (an all-skipped pre-check plus the
        # per-level filter), so instrumenting the hook would overcount.
        resumed = sum(
            1
            for component, metric in spec.combos()
            for level in spec.thresholds_percent
            if (width, component, metric, level) in mine
            and cid(width, component, metric, level) in done
        )
        if resumed:
            _obs.BUILD_CELLS.labels("resumed").inc(resumed)

        # Shard exclusion rides the resume hook: a cell outside this
        # shard is "skipped" exactly like an already-checkpointed one,
        # and grid_front's full-grid seed allocation keeps the cells
        # that do run on their unsharded RNG streams.
        def skip(component: str, metric: str, level: float) -> bool:
            return (
                (width, component, metric, level) not in mine
                or cid(width, component, metric, level) in done
            )

        def on_point(
            component: str, metric: str, level: float, point: DesignPoint
        ) -> None:
            record = characterize_record(
                point.evolution.best,
                component,
                width,
                dist,
                metric,
                library=library,
                threshold_percent=level,
                name=point.name,
                seed_key=f"seed={spec.seed} width={width}",
                generations=spec.generations,
                evaluations=point.evolution.evaluations,
            )
            search_error = point.evolution.best_eval.error
            if record.error != search_error:
                raise RuntimeError(
                    f"characterization diverged from the search objective "
                    f"({record.error!r} != {search_error!r}) for "
                    f"{component}/{metric}/w{width}@{level}"
                )
            status = store.add(record)
            store.mark_cell(
                cid(width, component, metric, level), component, metric,
                width, dist.name, level, status, record.design_id,
            )
            report.cells_run += 1
            setattr(report, status, getattr(report, status) + 1)
            # Fires in the builder's process (pool workers hand their
            # DesignPoint back before this hook runs), so the counters
            # land in the process the progress heartbeat reads.
            _obs.BUILD_CELLS.labels(status).inc()
            _obs.BUILD_EVALUATIONS.inc(point.evolution.evaluations)
            _obs.BUILD_CELL_SECONDS.observe(int(point.wall_s * 1e9))
            if progress is not None:
                progress((width, component, metric, level), status)

        grid_front(
            width,
            dist,
            spec.thresholds_percent,
            eval_dists=(dist,),
            components=spec.components,
            metrics=spec.metrics,
            config=config,
            seed=np.random.SeedSequence(entropy=(spec.seed, width)),
            max_workers=max_workers,
            executor=executor,
            library=library,
            extra_columns=spec.extra_columns,
            engine=spec.engine,
            skip_cell=skip,
            on_point=on_point,
        )
    report.cells_skipped = report.cells_total - report.cells_run
    report.store_designs = store.count()
    return report
