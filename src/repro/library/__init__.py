"""Design library: persistent storage for evolved approximate circuits.

The search stack (objective layer + compiled engine + sweeps) produces
characterized approximate designs; this package is where they stop being
ephemeral.  It is the repo's equivalent of the paper group's published
EvoApprox-style libraries — a queryable catalog of Pareto-optimal
approximate components that downstream users select from by error
budget:

* :mod:`repro.library.store` — an SQLite-backed, content-addressed
  :class:`DesignStore` (keyed by the engine's compiled-phenotype
  signature) holding the chromosome text plus a full characterization
  record, admitting only Pareto-nondominated designs per
  ``(component, width, metric)`` group;
* :mod:`repro.library.builder` — :func:`build_library`, a resumable
  pipeline driving :func:`repro.analysis.sweep.grid_front` over
  ``component x metric x threshold x width`` grids with per-cell
  checkpointing (a killed build restarts where it left off and never
  re-evolves a finished cell);
* :mod:`repro.library.federation` — multi-store composition:
  :func:`merge_stores` unions shard outputs offline under the same
  Pareto admission (atomic, idempotent, order-independent) and
  :class:`FederatedStore` mounts several stores behind one read
  surface for ``repro serve --db a.db --db b.db``;
* :mod:`repro.library.query` — the selection API (:func:`best`,
  :func:`front`, :func:`stats`) a serving layer can sit on;
* :mod:`repro.library.export` — batch export of query results to
  structural Verilog, netlist JSON and catalog tables.

CLI: ``python -m repro.cli library build|merge|query|show|export|stats``.
"""

from .builder import (
    BuildReport,
    BuildSpec,
    build_library,
    characterize_record,
    parse_shard,
)
from .export import (
    catalog_table,
    export_records,
    record_netlist,
    record_verilog,
)
from .federation import FederatedStore, MergeReport, merge_stores, pareto_union
from .query import best, front, stats
from .store import DesignRecord, DesignStore, design_signature

__all__ = [
    "BuildReport",
    "BuildSpec",
    "DesignRecord",
    "DesignStore",
    "FederatedStore",
    "MergeReport",
    "best",
    "build_library",
    "catalog_table",
    "characterize_record",
    "design_signature",
    "export_records",
    "front",
    "merge_stores",
    "pareto_union",
    "parse_shard",
    "record_netlist",
    "record_verilog",
    "stats",
]
