"""Batch export of stored designs: Verilog, netlist JSON, catalog tables.

The library's delivery formats mirror how published approximate-circuit
libraries ship: synthesizable structural Verilog per design (via
:mod:`repro.circuits.verilog`), the repo's archival netlist JSON (via
:mod:`repro.circuits.io`), and a catalog table (CSV for tooling,
Markdown/text for humans, rendered through
:func:`repro.analysis.reporting.format_table`) that downstream users
browse to pick a design before pulling its artifact.
"""

from __future__ import annotations

import csv
import io
import os
import re
from typing import Iterable, List, Sequence

from ..analysis.reporting import format_table
from ..circuits.io import save_netlist
from ..circuits.netlist import Netlist
from ..circuits.verilog import to_verilog
from ..core.serialization import chromosome_from_string
from .store import DesignRecord

__all__ = [
    "catalog_table",
    "export_records",
    "record_netlist",
    "record_stem",
    "record_verilog",
]

_CATALOG_HEADERS = (
    "design_id", "component", "width", "sign", "metric", "dist",
    "threshold_%", "error_%", "area_um2", "power_uW", "delay_ps",
    "pdp_fJ", "gates",
)


def record_stem(record: DesignRecord) -> str:
    """Filesystem/module-safe base name for one design's artifacts.

    Covers the full store group key (component, width, signedness,
    metric, dist) plus the content address: one phenotype stored under
    several groups exports distinct artifacts instead of overwriting.
    """
    stem = (
        f"{record.component}{record.width}{'s' if record.signed else 'u'}"
        f"_{record.metric}_{record.dist}_{record.design_id[:10]}"
    )
    return re.sub(r"[^A-Za-z0-9_]", "_", stem)


def record_netlist(record: DesignRecord) -> Netlist:
    """Rebuild the design's netlist from its stored chromosome text."""
    netlist = chromosome_from_string(record.chromosome).to_netlist(
        name=record.name or record_stem(record)
    )
    return netlist


def record_verilog(record: DesignRecord, module_name: str = "") -> str:
    """Structural Verilog for one stored design."""
    return to_verilog(
        record_netlist(record), module_name=module_name or record_stem(record)
    )


def _catalog_rows(records: Sequence[DesignRecord]) -> List[List[object]]:
    return [
        [
            r.design_id[:10], r.component, r.width,
            "s" if r.signed else "u", r.metric, r.dist,
            r.threshold_percent, r.error_percent, r.area, r.power_uw,
            r.delay_ps, r.pdp, r.gates,
        ]
        for r in records
    ]


def catalog_table(records: Sequence[DesignRecord], fmt: str = "text") -> str:
    """Render a catalog of designs as ``text``, ``markdown`` or ``csv``.

    Column units are carried in the headers: ``threshold_%`` /
    ``error_%`` in percent, ``area_um2`` in um^2, ``power_uW`` in uW,
    ``delay_ps`` in ps, ``pdp_fJ`` in fJ.

    Parameters
    ----------
    records : sequence of DesignRecord
        Rows, rendered in the given order (queries return
        cheapest-error first).
    fmt : str
        ``"text"`` (aligned, human-readable), ``"markdown"`` (a GFM
        table) or ``"csv"`` (for tooling).

    Returns
    -------
    str
        The rendered table, trailing newline included.
    """
    rows = _catalog_rows(records)
    if fmt == "text":
        return format_table(_CATALOG_HEADERS, rows, title="design catalog")
    if fmt == "markdown":
        lines = [
            "| " + " | ".join(_CATALOG_HEADERS) + " |",
            "|" + "|".join("---" for _ in _CATALOG_HEADERS) + "|",
        ]
        for row in rows:
            cells = [
                f"{c:.4g}" if isinstance(c, float) else str(c) for c in row
            ]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines) + "\n"
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(_CATALOG_HEADERS)
        writer.writerows(rows)
        return buffer.getvalue()
    raise ValueError(f"unknown catalog format {fmt!r}")


def export_records(
    records: Iterable[DesignRecord],
    out_dir: str,
    formats: Sequence[str] = ("verilog", "netlist", "catalog"),
) -> List[str]:
    """Write every selected design's artifacts under ``out_dir``.

    Parameters
    ----------
    records : iterable of DesignRecord
        The selection to ship (typically a :func:`repro.library.query.
        best` singleton or a :func:`~repro.library.query.front` curve).
    out_dir : str
        Output directory, created if absent.
    formats : sequence of str
        Any subset of:

        * ``verilog`` — ``<stem>.v`` per design (structural Verilog),
        * ``netlist`` — ``<stem>.json`` per design (archival JSON),
        * ``catalog`` — one ``catalog.csv`` + ``catalog.md`` over the
          batch (see :func:`catalog_table` for column units).

    Returns
    -------
    list of str
        The written paths (catalog files last), deterministic order.
    """
    records = list(records)
    unknown = set(formats) - {"verilog", "netlist", "catalog"}
    if unknown:
        raise ValueError(f"unknown export formats: {sorted(unknown)}")
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for record in records:
        stem = record_stem(record)
        if "verilog" in formats:
            path = os.path.join(out_dir, f"{stem}.v")
            with open(path, "w") as fh:
                fh.write(record_verilog(record))
            written.append(path)
        if "netlist" in formats:
            path = os.path.join(out_dir, f"{stem}.json")
            save_netlist(record_netlist(record), path)
            written.append(path)
    if "catalog" in formats:
        for name, fmt in (("catalog.csv", "csv"), ("catalog.md", "markdown")):
            path = os.path.join(out_dir, name)
            with open(path, "w") as fh:
                fh.write(catalog_table(records, fmt=fmt))
            written.append(path)
    return written
