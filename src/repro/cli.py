"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``evolve`` — run the error-constrained CGP approximation of a
  component (``--component {multiplier,adder,mac}``, ``--metric
  {wmed,med,mred,error-rate,worst-case}``) and write the result as a CGP
  chromosome string (plus a summary line),
* ``characterize`` — electrical + error report for a saved chromosome;
  the component kind and operand width are detected from the chromosome
  interface (override with ``--component``),
* ``export-verilog`` — emit structural Verilog for a saved chromosome.

Distributions are named on the command line: ``uniform``, ``d1``, ``d2``,
``half-normal:<sigma>`` or ``normal:<mean>:<std>``; they weight the
``x`` operand (the low input bits) of any component.

Component notes: the ``adder`` component is unsigned (``--unsigned`` is
implied); the ``mac`` objective is exhaustive over ``2**(4w+1)``
vectors, so it supports ``--width`` up to 5.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

import numpy as np

from .circuits.netlist import Netlist
from .circuits.verilog import to_verilog
from .core import (
    EvolutionConfig,
    evolve,
    get_component,
    infer_component,
    netlist_to_chromosome,
    params_for_netlist,
)
from .core.components import COMPONENTS, ComponentSpec, component_objective
from .core.serialization import chromosome_from_string, chromosome_to_string
from .errors import (
    Distribution,
    discretized_half_normal,
    discretized_normal,
    evaluate_errors_against,
    metric_names,
    operand_weights,
    paper_d1,
    paper_d2,
    uniform,
)
from .tech import characterize

__all__ = ["main", "parse_distribution"]


def parse_distribution(spec: str, width: int, signed: bool) -> Distribution:
    """Parse a distribution spec string (see module docstring)."""
    spec = spec.strip().lower()
    if spec in ("uniform", "du"):
        return uniform(width, signed=signed, name="Du")
    if spec == "d1":
        return paper_d1(width)
    if spec == "d2":
        return paper_d2(width)
    if spec.startswith("half-normal:"):
        sigma = float(spec.split(":", 1)[1])
        return discretized_half_normal(
            width, sigma=sigma, signed=signed, name=spec
        )
    if spec.startswith("normal:"):
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError("normal spec is normal:<mean>:<std>")
        return discretized_normal(
            width, mean=float(parts[1]), std=float(parts[2]),
            signed=signed, name=spec,
        )
    raise ValueError(f"unknown distribution spec {spec!r}")


def _cmd_evolve(args: argparse.Namespace) -> int:
    comp = get_component(args.component)
    try:
        comp.check_width(args.width)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    signed = comp.resolve_signed(not args.unsigned)
    dist = parse_distribution(args.dist, args.width, signed)
    seed_net = comp.build_seed(args.width, signed)
    params = params_for_netlist(seed_net, extra_columns=args.extra_columns)
    seed = netlist_to_chromosome(seed_net, params)
    from .analysis.sweep import make_objective

    evaluator = make_objective(
        args.width,
        dist,
        engine=args.engine,
        component=comp.name,
        metric=args.metric,
    )
    result = evolve(
        seed,
        evaluator,
        threshold=args.wmed_percent / 100.0,
        config=EvolutionConfig(generations=args.generations),
        rng=np.random.default_rng(args.seed),
    )
    text = chromosome_to_string(result.best)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    print(
        f"# component={comp.name} metric={evaluator.metric.name} "
        f"error={100 * result.best_eval.wmed:.4f}% "
        f"area={result.best_eval.area:.1f}um2 "
        f"evaluations={result.evaluations}",
        file=sys.stderr,
    )
    return 0


def _load_chromosome(path: str):
    with open(path) as fh:
        return chromosome_from_string(fh.read())


def _resolve_component(
    net: Netlist, override: str
) -> Tuple[ComponentSpec, int]:
    """Component spec + operand width for a loaded chromosome's netlist."""
    if override != "auto":
        comp = get_component(override)
        width = comp.infer_width(net.num_inputs, net.num_outputs)
        if width is None:
            raise SystemExit(
                f"chromosome interface {net.num_inputs} -> "
                f"{net.num_outputs} bits does not match the "
                f"{comp.name} component"
            )
    else:
        match = infer_component(net.num_inputs, net.num_outputs)
        if match is None:
            raise SystemExit(
                f"cannot infer a component from the {net.num_inputs} -> "
                f"{net.num_outputs}-bit interface; pass --component "
                f"{{{','.join(COMPONENTS)}}}"
            )
        comp, width = match
    # Same guard as evolve: an exhaustive table over this interface must
    # be practical before we build it.
    try:
        comp.check_width(width)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return comp, width


def _cmd_characterize(args: argparse.Namespace) -> int:
    chromosome = _load_chromosome(args.chromosome)
    net = chromosome.to_netlist()
    comp, width = _resolve_component(net, args.component)
    signed = comp.resolve_signed(not args.unsigned)
    dist = parse_distribution(args.dist, width, signed)
    summary = characterize(net)
    objective = component_objective(comp.name, width, dist)
    table = objective.truth_table(chromosome)
    report = evaluate_errors_against(
        objective.reference,
        table,
        weights=operand_weights(dist, objective.num_inputs),
        normalizer=objective.normalizer,
    )
    print(f"component: {comp.name} (width {width}, "
          f"{'signed' if signed else 'unsigned'})")
    print(f"gates:  {len(net.active_gate_indices())}")
    print(f"area:   {summary.area:.1f} um2")
    print(f"power:  {summary.power.total / 1000:.4f} mW")
    print(f"delay:  {summary.delay:.0f} ps")
    print(f"pdp:    {summary.pdp:.1f} fJ")
    print(f"errors: {report}")
    return 0


def _cmd_export_verilog(args: argparse.Namespace) -> int:
    chromosome = _load_chromosome(args.chromosome)
    text = to_verilog(chromosome.to_netlist(), module_name=args.module)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ev = sub.add_parser("evolve", help="evolve an approximate component")
    p_ev.add_argument("--width", type=int, default=8)
    p_ev.add_argument(
        "--component",
        choices=tuple(COMPONENTS),
        default="multiplier",
        help="datapath component to approximate (adder is unsigned; "
        "mac supports width <= 5)",
    )
    p_ev.add_argument(
        "--metric",
        choices=metric_names(),
        default="wmed",
        help="error metric constraining Eq. (1)",
    )
    p_ev.add_argument("--dist", default="uniform")
    p_ev.add_argument(
        "--wmed-percent", type=float, default=0.5,
        help="error budget in percent (under --metric, not only WMED)",
    )
    p_ev.add_argument("--generations", type=int, default=10_000)
    p_ev.add_argument("--extra-columns", type=int, default=20)
    p_ev.add_argument("--unsigned", action="store_true")
    p_ev.add_argument("--seed", type=int, default=0)
    p_ev.add_argument(
        "--engine",
        choices=("auto", "native", "numpy", "off"),
        default="auto",
        help="candidate-evaluation path (results are identical; "
        "'off' is the interpreted evaluator)",
    )
    p_ev.add_argument("--output", help="chromosome file (stdout if omitted)")
    p_ev.set_defaults(func=_cmd_evolve)

    p_ch = sub.add_parser("characterize", help="report on a saved chromosome")
    p_ch.add_argument("chromosome", help="chromosome string file")
    p_ch.add_argument(
        "--component",
        choices=("auto",) + tuple(COMPONENTS),
        default="auto",
        help="component kind (auto = detect from the chromosome "
        "interface shape)",
    )
    p_ch.add_argument("--dist", default="uniform")
    p_ch.add_argument("--unsigned", action="store_true")
    p_ch.set_defaults(func=_cmd_characterize)

    p_vl = sub.add_parser("export-verilog", help="emit structural Verilog")
    p_vl.add_argument("chromosome", help="chromosome string file")
    p_vl.add_argument("--module", default="approx_circuit")
    p_vl.add_argument("--output", help="verilog file (stdout if omitted)")
    p_vl.set_defaults(func=_cmd_export_verilog)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
