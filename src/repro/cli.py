"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``evolve`` — run the WMED-driven CGP approximation of a multiplier and
  write the result as a CGP chromosome string (plus a summary line),
* ``characterize`` — electrical + error report for a saved chromosome,
* ``export-verilog`` — emit structural Verilog for a saved chromosome.

Distributions are named on the command line: ``uniform``, ``d1``, ``d2``,
``half-normal:<sigma>`` or ``normal:<mean>:<std>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .circuits.generators import build_baugh_wooley_multiplier, build_multiplier
from .circuits.verilog import to_verilog
from .core import (
    EvolutionConfig,
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
)
from .core.serialization import chromosome_from_string, chromosome_to_string
from .errors import (
    Distribution,
    discretized_half_normal,
    discretized_normal,
    evaluate_errors,
    exact_product_table,
    paper_d1,
    paper_d2,
    uniform,
)
from .tech import characterize

__all__ = ["main", "parse_distribution"]


def parse_distribution(spec: str, width: int, signed: bool) -> Distribution:
    """Parse a distribution spec string (see module docstring)."""
    spec = spec.strip().lower()
    if spec in ("uniform", "du"):
        return uniform(width, signed=signed, name="Du")
    if spec == "d1":
        return paper_d1(width)
    if spec == "d2":
        return paper_d2(width)
    if spec.startswith("half-normal:"):
        sigma = float(spec.split(":", 1)[1])
        return discretized_half_normal(
            width, sigma=sigma, signed=signed, name=spec
        )
    if spec.startswith("normal:"):
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError("normal spec is normal:<mean>:<std>")
        return discretized_normal(
            width, mean=float(parts[1]), std=float(parts[2]),
            signed=signed, name=spec,
        )
    raise ValueError(f"unknown distribution spec {spec!r}")


def _cmd_evolve(args: argparse.Namespace) -> int:
    signed = not args.unsigned
    dist = parse_distribution(args.dist, args.width, signed)
    if signed:
        seed_net = build_baugh_wooley_multiplier(args.width)
    else:
        seed_net = build_multiplier(args.width, signed=False)
    params = params_for_netlist(seed_net, extra_columns=args.extra_columns)
    seed = netlist_to_chromosome(seed_net, params)
    from .analysis.sweep import make_evaluator

    evaluator = make_evaluator(args.width, dist, engine=args.engine)
    result = evolve(
        seed,
        evaluator,
        threshold=args.wmed_percent / 100.0,
        config=EvolutionConfig(generations=args.generations),
        rng=np.random.default_rng(args.seed),
    )
    text = chromosome_to_string(result.best)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    print(
        f"# wmed={100 * result.best_eval.wmed:.4f}% "
        f"area={result.best_eval.area:.1f}um2 "
        f"evaluations={result.evaluations}",
        file=sys.stderr,
    )
    return 0


def _load_chromosome(path: str):
    with open(path) as fh:
        return chromosome_from_string(fh.read())


def _cmd_characterize(args: argparse.Namespace) -> int:
    chromosome = _load_chromosome(args.chromosome)
    width = chromosome.params.num_inputs // 2
    signed = not args.unsigned
    dist = parse_distribution(args.dist, width, signed)
    net = chromosome.to_netlist()
    summary = characterize(net)
    table = MultiplierFitness(width, dist).truth_table(chromosome)
    report = evaluate_errors(exact_product_table(width, signed), table, dist)
    print(f"gates:  {len(net.active_gate_indices())}")
    print(f"area:   {summary.area:.1f} um2")
    print(f"power:  {summary.power.total / 1000:.4f} mW")
    print(f"delay:  {summary.delay:.0f} ps")
    print(f"pdp:    {summary.pdp:.1f} fJ")
    print(f"errors: {report}")
    return 0


def _cmd_export_verilog(args: argparse.Namespace) -> int:
    chromosome = _load_chromosome(args.chromosome)
    text = to_verilog(chromosome.to_netlist(), module_name=args.module)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ev = sub.add_parser("evolve", help="evolve an approximate multiplier")
    p_ev.add_argument("--width", type=int, default=8)
    p_ev.add_argument("--dist", default="uniform")
    p_ev.add_argument("--wmed-percent", type=float, default=0.5)
    p_ev.add_argument("--generations", type=int, default=10_000)
    p_ev.add_argument("--extra-columns", type=int, default=20)
    p_ev.add_argument("--unsigned", action="store_true")
    p_ev.add_argument("--seed", type=int, default=0)
    p_ev.add_argument(
        "--engine",
        choices=("auto", "native", "numpy", "off"),
        default="auto",
        help="candidate-evaluation path (results are identical; "
        "'off' is the interpreted evaluator)",
    )
    p_ev.add_argument("--output", help="chromosome file (stdout if omitted)")
    p_ev.set_defaults(func=_cmd_evolve)

    p_ch = sub.add_parser("characterize", help="report on a saved chromosome")
    p_ch.add_argument("chromosome", help="chromosome string file")
    p_ch.add_argument("--dist", default="uniform")
    p_ch.add_argument("--unsigned", action="store_true")
    p_ch.set_defaults(func=_cmd_characterize)

    p_vl = sub.add_parser("export-verilog", help="emit structural Verilog")
    p_vl.add_argument("chromosome", help="chromosome string file")
    p_vl.add_argument("--module", default="approx_circuit")
    p_vl.add_argument("--output", help="verilog file (stdout if omitted)")
    p_vl.set_defaults(func=_cmd_export_verilog)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
