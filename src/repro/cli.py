"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``evolve`` — run the error-constrained CGP approximation of a
  component (``--component
  {multiplier,adder,mac,divider,subtractor,barrel-shifter}``,
  ``--metric {wmed,med,mred,error-rate,worst-case}``) and write the
  result as a CGP chromosome string (plus a summary line),
* ``characterize`` — electrical + error report for a saved chromosome;
  the component kind and operand width are detected from the chromosome
  interface when the shape is unambiguous (``--component`` is required
  when several components share it, e.g. adder/subtractor),
* ``export-verilog`` — emit structural Verilog for a saved chromosome,
* ``library`` — the persistent design library
  (:mod:`repro.library`): ``library build`` runs or resumes a grid
  build into an SQLite store (``--shard i/n`` builds one
  deterministic slice of the grid for distributed builds), ``library
  merge`` unions stores — e.g. shard outputs — under the same Pareto
  admission, ``library query`` selects the cheapest design inside an
  error budget (``--max-error``, ``--minimize {area,power,pdp}``,
  ``--front`` for the whole curve), ``library show`` prints one
  design in full, ``library export`` writes Verilog / netlist JSON /
  catalog tables, ``library stats`` summarizes the store,
* ``serve`` — the HTTP serving layer (:mod:`repro.serve`) over one or
  more built stores: ``repro serve --db designs.sqlite --port 8080``
  answers ``/v1/best``, ``/v1/front``, ``/v1/stats``,
  ``/v1/designs/{id}``, ``/openapi.json`` and ``/metrics``; repeating
  ``--db`` mounts several stores behind one federated query surface
  (see ``docs/serving.md``),
* ``obs`` — observability helpers (:mod:`repro.obs`): ``obs dump``
  prints the Prometheus exposition (this process, a running server via
  ``--url``, or a metrics slab file via ``--slab``); ``obs tail``
  prints or summarizes a ``REPRO_TRACE`` span log (see
  ``docs/observability.md``).

Distributions are named on the command line: ``uniform``, ``d1``, ``d2``,
``half-normal:<sigma>`` or ``normal:<mean>:<std>``; they weight the
``x`` operand (the low input bits) of any component.

Component notes: the ``adder``, ``divider``, ``subtractor`` and
``barrel-shifter`` components are unsigned (``--unsigned`` is implied);
the ``divider`` uses the ``x / 0 := all-ones`` convention; the ``mac``
objective is exhaustive over ``2**(4w+1)`` vectors, so it supports
``--width`` up to 5.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

import numpy as np

from .circuits.netlist import Netlist
from .circuits.verilog import to_verilog
from .core import (
    EvolutionConfig,
    evolve,
    get_component,
    infer_component,
    netlist_to_chromosome,
    params_for_netlist,
)
from .core.components import COMPONENTS, ComponentSpec, component_objective
from .core.serialization import chromosome_from_string, chromosome_to_string
from .errors import (
    Distribution,
    distribution_from_spec,
    evaluate_errors_against,
    metric_names,
    operand_weights,
)
from .tech import characterize

__all__ = ["main", "parse_distribution"]


def parse_distribution(spec: str, width: int, signed: bool) -> Distribution:
    """Parse a distribution spec string (see module docstring)."""
    return distribution_from_spec(spec, width, signed)


def _cmd_evolve(args: argparse.Namespace) -> int:
    comp = get_component(args.component)
    sample = None
    if args.eval == "sampled":
        from .core.objective import SampleSpec

        try:
            sample = SampleSpec(
                samples=args.samples,
                replicates=args.replicates,
                seed=args.seed,
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    try:
        if sample is not None:
            comp.check_sampled_width(args.width)
        else:
            comp.check_width(args.width)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    signed = comp.resolve_signed(not args.unsigned)
    try:
        dist = parse_distribution(args.dist, args.width, signed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    seed_net = comp.build_seed(args.width, signed)
    params = params_for_netlist(seed_net, extra_columns=args.extra_columns)
    seed = netlist_to_chromosome(seed_net, params)
    from .analysis.sweep import make_objective

    evaluator = make_objective(
        args.width,
        dist,
        engine=args.engine,
        component=comp.name,
        metric=args.metric,
        sample=sample,
    )
    result = evolve(
        seed,
        evaluator,
        threshold=args.wmed_percent / 100.0,
        config=EvolutionConfig(generations=args.generations),
        rng=np.random.default_rng(args.seed),
    )
    text = chromosome_to_string(result.best)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    best = result.best_eval
    ci = ""
    if sample is not None:
        ci = (
            f" ci95=[{100 * best.ci_low:.4f}%, {100 * best.ci_high:.4f}%]"
            f" samples={sample.samples}x{sample.replicates}"
        )
    print(
        f"# component={comp.name} metric={evaluator.metric.name} "
        f"error={100 * best.wmed:.4f}%{ci} "
        f"area={best.area:.1f}um2 "
        f"evaluations={result.evaluations}",
        file=sys.stderr,
    )
    return 0


def _load_chromosome(path: str):
    with open(path) as fh:
        return chromosome_from_string(fh.read())


def _resolve_component(
    net: Netlist, override: str
) -> Tuple[ComponentSpec, int]:
    """Component spec + operand width for a loaded chromosome's netlist."""
    if override != "auto":
        comp = get_component(override)
        width = comp.infer_width(net.num_inputs, net.num_outputs)
        if width is None:
            raise SystemExit(
                f"chromosome interface {net.num_inputs} -> "
                f"{net.num_outputs} bits does not match the "
                f"{comp.name} component"
            )
    else:
        matches = infer_component(net.num_inputs, net.num_outputs)
        if not matches:
            raise SystemExit(
                f"cannot infer a component from the {net.num_inputs} -> "
                f"{net.num_outputs}-bit interface; pass --component "
                f"{{{','.join(COMPONENTS)}}}"
            )
        if len(matches) > 1:
            # Shape collisions are real (adder/subtractor share
            # 2w -> w+1, divider/barrel-shifter share 2w -> w):
            # guessing would silently characterize against the wrong
            # reference, so demand an explicit choice.
            names = ", ".join(m.name for m, _ in matches)
            raise SystemExit(
                f"the {net.num_inputs} -> {net.num_outputs}-bit "
                f"interface is ambiguous: it matches {len(matches)} "
                f"components ({names}); pass --component to pick one"
            )
        comp, width = matches[0]
    # Same guard as evolve: an exhaustive table over this interface must
    # be practical before we build it.
    try:
        comp.check_width(width)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return comp, width


def _cmd_characterize(args: argparse.Namespace) -> int:
    chromosome = _load_chromosome(args.chromosome)
    net = chromosome.to_netlist()
    comp, width = _resolve_component(net, args.component)
    signed = comp.resolve_signed(not args.unsigned)
    dist = parse_distribution(args.dist, width, signed)
    summary = characterize(net)
    objective = component_objective(comp.name, width, dist)
    table = objective.truth_table(chromosome)
    report = evaluate_errors_against(
        objective.reference,
        table,
        weights=operand_weights(dist, objective.num_inputs),
        normalizer=objective.normalizer,
    )
    print(f"component: {comp.name} (width {width}, "
          f"{'signed' if signed else 'unsigned'})")
    print(f"gates:  {len(net.active_gate_indices())}")
    print(f"area:   {summary.area:.1f} um2")
    print(f"power:  {summary.power.total / 1000:.4f} mW")
    print(f"delay:  {summary.delay:.0f} ps")
    print(f"pdp:    {summary.pdp:.1f} fJ")
    print(f"errors: {report}")
    return 0


def _split_csv(value: str) -> List[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def _build_heartbeat():
    """Start the ``library build --progress`` heartbeat thread.

    Reads the obs catalog counters the builder increments per finished
    cell (they fire in the builder's process regardless of executor
    kind), so the thread needs no channel to the pool workers.  Returns
    a stop callable; a no-op one when metrics are disabled.
    """
    from time import monotonic

    from .obs import catalog as obs_catalog
    from .obs import enabled as obs_enabled

    if not obs_enabled():
        print(
            "[progress] REPRO_OBS=0: metrics disabled, heartbeat off",
            file=sys.stderr, flush=True,
        )
        return lambda: None

    import threading

    stop = threading.Event()
    t_start = monotonic()
    base_cells = obs_catalog.BUILD_CELLS.total()
    base_evals = obs_catalog.BUILD_EVALUATIONS.value

    def beat() -> None:
        while not stop.wait(2.0):
            now = monotonic()
            cells = obs_catalog.BUILD_CELLS.total() - base_cells
            total = obs_catalog.BUILD_CELLS_PLANNED.value
            evals = obs_catalog.BUILD_EVALUATIONS.value - base_evals
            elapsed = max(now - t_start, 1e-9)
            eta = ""
            if 0 < cells < total:
                remaining = elapsed / cells * (total - cells)
                eta = f"  ETA {remaining:.0f}s"
            print(
                f"[progress] cells {cells}/{total}  "
                f"{evals:,} evals ({evals / elapsed:,.0f}/s){eta}",
                file=sys.stderr, flush=True,
            )

    thread = threading.Thread(
        target=beat, name="build-heartbeat", daemon=True
    )
    thread.start()

    def finish() -> None:
        stop.set()
        thread.join(timeout=5.0)

    return finish


def _cmd_library_build(args: argparse.Namespace) -> int:
    from .library import BuildSpec, DesignStore, build_library, parse_shard

    shard = parse_shard(args.shard) if args.shard else None
    spec = BuildSpec(
        components=tuple(_split_csv(args.components)),
        metrics=tuple(_split_csv(args.metrics)),
        widths=tuple(int(w) for w in _split_csv(args.widths)),
        thresholds_percent=tuple(
            float(t) for t in _split_csv(args.thresholds)
        ),
        dist=args.dist,
        signed=not args.unsigned,
        generations=args.generations,
        extra_columns=args.extra_columns,
        seed=args.seed,
        engine=args.engine,
    )
    store = DesignStore(args.db)

    def progress(cell, status):
        width, component, metric, level = cell
        print(
            f"[cell] {component}/{metric} w={width} @{level:g}%: {status}",
            file=sys.stderr,
        )

    stop_heartbeat = (
        _build_heartbeat()
        if args.progress and not args.quiet
        else (lambda: None)
    )
    try:
        report = build_library(
            store, spec,
            max_workers=args.max_workers,
            executor=args.executor,
            progress=progress if args.verbose and not args.quiet else None,
            shard=shard,
        )
    finally:
        stop_heartbeat()
    if not args.quiet:
        print(report)
    return 0


def _cmd_library_merge(args: argparse.Namespace) -> int:
    from .library import merge_stores

    report = merge_stores(args.out, args.inputs)
    if not args.quiet:
        print(report)
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    from . import obs

    if args.url:
        from urllib.request import urlopen

        with urlopen(args.url) as response:
            sys.stdout.write(response.read().decode("utf-8"))
        return 0
    if args.slab:
        lanes = obs.read_slab(args.slab)
        sys.stdout.write(obs.render_prometheus(lanes=lanes))
        return 0
    sys.stdout.write(obs.render_prometheus())
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .obs.trace import read_spans, summarize

    try:
        spans = list(read_spans(args.path))
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.path!r}: {exc}") from None
    if args.summary:
        rows = summarize(spans)
        print(format_table(
            ("span", "count", "total (ms)", "mean (ms)", "max (ms)"),
            [
                [name, r["count"], f"{r['total_ms']:.3f}",
                 f"{r['mean_ms']:.3f}", f"{r['max_ms']:.3f}"]
                for name, r in rows.items()
            ],
        ))
        return 0
    for rec in spans[-args.limit:]:
        tags = rec.get("tags") or {}
        tag_text = " ".join(f"{k}={v}" for k, v in tags.items())
        print(
            f"{rec.get('name', '?'):<16} "
            f"{rec.get('dur_ns', 0) / 1e6:>10.3f} ms  "
            f"pid={rec.get('pid')} id={rec.get('id')} "
            f"parent={rec.get('parent') or '-'}"
            + (f"  {tag_text}" if tag_text else "")
        )
    return 0


def _library_cmd(fn):
    """Surface expected errors as one-line messages, not tracebacks."""

    def run(args: argparse.Namespace) -> int:
        try:
            return fn(args)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

    return run


def _canonical_dist_name(spec: str, width: int) -> str:
    """Resolve a --dist filter to the name designs are stored under.

    ``library build --dist uniform`` stores rows under the
    distribution's *name* (``Du``); accept the same spec vocabulary on
    the query side (unrecognized strings pass through as literal stored
    names).
    """
    try:
        return distribution_from_spec(spec, width, False).name
    except ValueError:
        return spec


def _library_records(args: argparse.Namespace):
    """Shared record selection for the query/export subcommands."""
    from .library import DesignStore, best, front

    store = DesignStore(args.db)
    if args.dist is not None:
        args.dist = _canonical_dist_name(args.dist, args.width)
    signed = None
    if args.signed:
        signed = True
    elif args.unsigned:
        signed = False
    if getattr(args, "front", False):
        return store, front(
            store, args.component, args.width, args.metric,
            minimize=args.minimize, dist=args.dist, signed=signed,
            max_error_percent=args.max_error,
        )
    record = best(
        store, args.component, args.width, args.metric,
        max_error_percent=args.max_error, minimize=args.minimize,
        dist=args.dist, signed=signed,
    )
    return store, ([record] if record is not None else [])


def _cmd_library_query(args: argparse.Namespace) -> int:
    from .library import catalog_table

    _, records = _library_records(args)
    if not records:
        print("no stored design matches the query", file=sys.stderr)
        return 1
    print(catalog_table(records))
    return 0


def _cmd_library_show(args: argparse.Namespace) -> int:
    from .library import DesignStore

    store = DesignStore(args.db)
    matches = store.select(design_id_prefix=args.design_id)
    if not matches:
        print(f"no design with id prefix {args.design_id!r}", file=sys.stderr)
        return 1
    for r in matches:
        print(f"design:     {r.design_id}")
        print(f"component:  {r.component} (width {r.width}, "
              f"{'signed' if r.signed else 'unsigned'})")
        print(f"objective:  {r.metric} @ {r.threshold_percent:g}% "
              f"under {r.dist}")
        print(f"error:      {r.error_percent:.4f}%  (wmed={r.wmed:.6g} "
              f"med={r.med:.6g} mred={r.mred:.6g} er={r.error_rate:.4f} "
              f"wce={r.worst_case})")
        print(f"electrical: area={r.area:.1f} um2  "
              f"power={r.power_uw / 1000:.4f} mW  delay={r.delay_ps:.0f} ps  "
              f"pdp={r.pdp:.1f} fJ  gates={r.gates}")
        print(f"provenance: {r.seed_key}  generations={r.generations}  "
              f"evaluations={r.evaluations}")
        print(f"chromosome: {r.chromosome}")
    return 0


def _cmd_library_export(args: argparse.Namespace) -> int:
    from .library import export_records

    _, records = _library_records(args)
    if not records:
        print("no stored design matches the query", file=sys.stderr)
        return 1
    written = export_records(
        records, args.out, formats=tuple(_split_csv(args.formats))
    )
    for path in written:
        print(path)
    return 0


def _cmd_library_stats(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .library import DesignStore, stats

    summary = stats(DesignStore(args.db))
    print(f"designs: {summary['designs']}  "
          f"(from {summary['cells_completed']} completed build cells)")
    groups = summary["groups"]
    if groups:
        print(format_table(
            ("component", "width", "sign", "metric", "dist", "designs",
             "error span (%)", "area span (um2)"),
            [
                [
                    g["component"], g["width"],
                    "s" if g["signed"] else "u", g["metric"], g["dist"],
                    g["designs"],
                    f"{g['min_error_percent']:.4g}..{g['max_error_percent']:.4g}",
                    f"{g['min_area']:.4g}..{g['max_area']:.4g}",
                ]
                for g in groups
            ],
        ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .serve import serve

    for path in args.db:
        if not os.path.exists(path):
            raise SystemExit(
                f"no design store at {path!r}; build one first with "
                "`repro library build --db ...`"
            )
    try:
        return serve(
            args.db[0] if len(args.db) == 1 else args.db,
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_size=args.cache_size,
            quiet=args.quiet,
            procs=args.procs,
        )
    except OSError as exc:
        # Bind failures (port in use, privileged port, bad host) are
        # operator mistakes, not bugs: one line, no traceback.
        raise SystemExit(
            f"cannot serve on {args.host}:{args.port}: {exc}"
        ) from None


def _cmd_export_verilog(args: argparse.Namespace) -> int:
    chromosome = _load_chromosome(args.chromosome)
    text = to_verilog(chromosome.to_netlist(), module_name=args.module)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ev = sub.add_parser("evolve", help="evolve an approximate component")
    p_ev.add_argument("--width", type=int, default=8)
    p_ev.add_argument(
        "--component",
        choices=tuple(COMPONENTS),
        default="multiplier",
        help="datapath component to approximate (adder/divider/"
        "subtractor/barrel-shifter are unsigned; mac supports "
        "width <= 5)",
    )
    p_ev.add_argument(
        "--metric",
        choices=metric_names(),
        default="wmed",
        help="error metric constraining Eq. (1)",
    )
    p_ev.add_argument("--dist", default="uniform")
    p_ev.add_argument(
        "--wmed-percent", type=float, default=0.5,
        help="error budget in percent (under --metric, not only WMED)",
    )
    p_ev.add_argument("--generations", type=int, default=10_000)
    p_ev.add_argument("--extra-columns", type=int, default=20)
    p_ev.add_argument("--unsigned", action="store_true")
    p_ev.add_argument("--seed", type=int, default=0)
    p_ev.add_argument(
        "--eval",
        choices=("exhaustive", "sampled"),
        default="exhaustive",
        help="candidate scoring: 'exhaustive' enumerates every input "
        "vector (width-limited); 'sampled' estimates the metric on a "
        "reproducible operand sample with a 95%% confidence interval — "
        "required for wide operands (e.g. multipliers past width 10)",
    )
    p_ev.add_argument(
        "--samples", type=int, default=4096,
        help="sampled mode: vectors per replicate stream",
    )
    p_ev.add_argument(
        "--replicates", type=int, default=8,
        help="sampled mode: independent sample streams (the CI comes "
        "from the spread of their per-stream estimates)",
    )
    p_ev.add_argument(
        "--engine",
        choices=("auto", "native", "numpy", "off"),
        default="auto",
        help="candidate-evaluation path (results are identical; "
        "'off' is the interpreted evaluator)",
    )
    p_ev.add_argument("--output", help="chromosome file (stdout if omitted)")
    p_ev.set_defaults(func=_cmd_evolve)

    p_ch = sub.add_parser("characterize", help="report on a saved chromosome")
    p_ch.add_argument("chromosome", help="chromosome string file")
    p_ch.add_argument(
        "--component",
        choices=("auto",) + tuple(COMPONENTS),
        default="auto",
        help="component kind (auto = detect from the chromosome "
        "interface shape; an ambiguous shape, e.g. adder/subtractor, "
        "demands an explicit choice)",
    )
    p_ch.add_argument("--dist", default="uniform")
    p_ch.add_argument("--unsigned", action="store_true")
    p_ch.set_defaults(func=_cmd_characterize)

    p_vl = sub.add_parser("export-verilog", help="emit structural Verilog")
    p_vl.add_argument("chromosome", help="chromosome string file")
    p_vl.add_argument("--module", default="approx_circuit")
    p_vl.add_argument("--output", help="verilog file (stdout if omitted)")
    p_vl.set_defaults(func=_cmd_export_verilog)

    p_lib = sub.add_parser(
        "library",
        help="persistent design library "
        "(build / merge / query / show / export / stats)",
    )
    lib_sub = p_lib.add_subparsers(dest="library_command", required=True)

    def add_db(p):
        p.add_argument("--db", required=True, help="design store SQLite file")

    p_lb = lib_sub.add_parser(
        "build", help="run (or resume) a grid build into the store"
    )
    add_db(p_lb)
    p_lb.add_argument(
        "--components", default="multiplier",
        help="comma list from "
        f"{{{','.join(COMPONENTS)}}} "
        "(all but multiplier and mac need --unsigned)",
    )
    p_lb.add_argument(
        "--metrics", default="wmed",
        help=f"comma list from {{{','.join(metric_names())}}}",
    )
    p_lb.add_argument("--widths", default="4", help="comma list of widths")
    p_lb.add_argument(
        "--thresholds", default="0.5,1,2",
        help="comma list of error budgets in percent",
    )
    p_lb.add_argument("--dist", default="uniform")
    p_lb.add_argument("--unsigned", action="store_true")
    p_lb.add_argument("--generations", type=int, default=2000)
    p_lb.add_argument("--extra-columns", type=int, default=20)
    p_lb.add_argument("--seed", type=int, default=0)
    p_lb.add_argument(
        "--engine", choices=("auto", "native", "numpy", "off"), default="auto"
    )
    p_lb.add_argument("--max-workers", type=int, default=None)
    p_lb.add_argument(
        "--executor", choices=("process", "thread"), default="process"
    )
    p_lb.add_argument(
        "--verbose", action="store_true", help="log each completed cell"
    )
    p_lb.add_argument(
        "--progress", action="store_true",
        help="periodic heartbeat (cells done/total, evals/s, ETA) "
        "from the obs counters",
    )
    p_lb.add_argument(
        "--quiet", action="store_true",
        help="suppress all build output (overrides --verbose/--progress)",
    )
    p_lb.add_argument(
        "--shard", default=None, metavar="I/N",
        help="build only every N-th grid cell starting at the I-th "
        "(1-based), e.g. --shard 2/4; shard outputs are bit-identical "
        "to the matching cells of an unsharded build and recombine "
        "with `library merge`",
    )
    p_lb.set_defaults(func=_library_cmd(_cmd_library_build))

    p_lm = lib_sub.add_parser(
        "merge",
        help="union stores (e.g. shard outputs) under Pareto admission",
    )
    p_lm.add_argument(
        "out",
        help="destination store (atomically created or replaced; an "
        "existing store at this path participates as one more input)",
    )
    p_lm.add_argument(
        "inputs", nargs="+", metavar="input",
        help="source store files (each must exist)",
    )
    p_lm.add_argument("--quiet", action="store_true")
    p_lm.set_defaults(func=_library_cmd(_cmd_library_merge))

    def add_query_args(p, with_front: bool):
        add_db(p)
        p.add_argument("--component", default="multiplier")
        p.add_argument("--width", type=int, required=True)
        p.add_argument("--metric", default="wmed")
        p.add_argument("--dist", default=None, help="distribution name filter")
        p.add_argument(
            "--max-error", type=float, default=None,
            help="error budget in percent",
        )
        p.add_argument(
            "--minimize", choices=("area", "power", "pdp"), default="area"
        )
        sign = p.add_mutually_exclusive_group()
        sign.add_argument(
            "--signed", action="store_true",
            help="only signed designs (default: either signedness)",
        )
        sign.add_argument(
            "--unsigned", action="store_true",
            help="only unsigned designs (default: either signedness)",
        )
        if with_front:
            p.add_argument(
                "--front", action="store_true",
                help="return the whole Pareto front instead of one design",
            )

    p_lq = lib_sub.add_parser("query", help="select designs by error budget")
    add_query_args(p_lq, with_front=True)
    p_lq.set_defaults(func=_library_cmd(_cmd_library_query))

    p_ls = lib_sub.add_parser("show", help="print one design in full")
    add_db(p_ls)
    p_ls.add_argument("design_id", help="design id (prefix accepted)")
    p_ls.set_defaults(func=_library_cmd(_cmd_library_show))

    p_le = lib_sub.add_parser("export", help="write design artifacts")
    add_query_args(p_le, with_front=True)
    p_le.add_argument("--out", required=True, help="output directory")
    p_le.add_argument(
        "--formats", default="verilog,netlist,catalog",
        help="comma subset of verilog,netlist,catalog",
    )
    p_le.set_defaults(func=_library_cmd(_cmd_library_export))

    p_lt = lib_sub.add_parser("stats", help="summarize the store")
    add_db(p_lt)
    p_lt.set_defaults(func=_library_cmd(_cmd_library_stats))

    p_sv = sub.add_parser(
        "serve", help="HTTP API over one or more built design stores"
    )
    p_sv.add_argument(
        "--db", required=True, action="append",
        help="design store SQLite file; repeat to mount several stores "
        "behind one federated query surface",
    )
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=8080)
    p_sv.add_argument(
        "--workers", type=int, default=8,
        help="request-handling thread pool size",
    )
    p_sv.add_argument(
        "--cache-size", type=int, default=1024,
        help="response-cache entries (0 disables caching)",
    )
    p_sv.add_argument(
        "--procs", type=int, default=1,
        help="worker processes sharing the port (SO_REUSEPORT or "
        "prefork fd passing); 1 = single-process, exactly as before",
    )
    p_sv.add_argument(
        "--quiet", action="store_true", help="suppress access logging"
    )
    p_sv.set_defaults(func=_library_cmd(_cmd_serve))

    p_obs = sub.add_parser(
        "obs", help="observability: metrics dump / trace tail"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_od = obs_sub.add_parser(
        "dump", help="print the Prometheus metrics exposition"
    )
    od_src = p_od.add_mutually_exclusive_group()
    od_src.add_argument(
        "--url",
        help="scrape a running server, "
        "e.g. http://127.0.0.1:8080/metrics",
    )
    od_src.add_argument(
        "--slab", help="read a metrics slab file directly (no server)"
    )
    p_od.set_defaults(func=_library_cmd(_cmd_obs_dump))

    p_ot = obs_sub.add_parser(
        "tail", help="print or summarize a REPRO_TRACE span log"
    )
    p_ot.add_argument("path", help="trace JSONL file")
    p_ot.add_argument(
        "--limit", type=int, default=20, help="spans to show (most recent)"
    )
    p_ot.add_argument(
        "--summary", action="store_true",
        help="aggregate per span name instead of listing spans",
    )
    p_ot.set_defaults(func=_library_cmd(_cmd_obs_tail))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
