"""Pareto-front utilities over (error, cost) pairs.

The paper constructs its trade-off fronts by repeating the constrained
single-objective search for several target error levels and keeping the
non-dominated results; these helpers implement the bookkeeping.
Both objectives are minimized.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["dominates", "pareto_indices", "pareto_points", "hypervolume_2d"]


def dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """True when point ``a`` Pareto-dominates ``b`` (minimization)."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def pareto_indices(
    errors: Sequence[float], costs: Sequence[float]
) -> List[int]:
    """Indices of non-dominated (error, cost) points, sorted by error.

    Duplicate points are kept once (first occurrence wins).
    """
    errors = np.asarray(errors, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if errors.shape != costs.shape:
        raise ValueError("errors and costs must have equal length")
    order = np.lexsort((costs, errors))
    front: List[int] = []
    best_cost = np.inf
    seen = set()
    for idx in order:
        point = (float(errors[idx]), float(costs[idx]))
        if point in seen:
            continue
        if costs[idx] < best_cost:
            front.append(int(idx))
            best_cost = float(costs[idx])
            seen.add(point)
    return front


def pareto_points(
    points: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Non-dominated subset of (error, cost) points, sorted by error."""
    if not points:
        return []
    errors = [p[0] for p in points]
    costs = [p[1] for p in points]
    return [points[i] for i in pareto_indices(errors, costs)]


def hypervolume_2d(
    points: Sequence[Tuple[float, float]],
    reference: Tuple[float, float],
) -> float:
    """Dominated hypervolume w.r.t. ``reference`` (minimization).

    A scalar quality figure for comparing whole fronts, used by the
    ablation benchmarks.
    """
    front = pareto_points(
        [p for p in points if p[0] <= reference[0] and p[1] <= reference[1]]
    )
    volume = 0.0
    prev_error = reference[0]
    for error, cost in sorted(front, reverse=True):
        if cost >= reference[1]:
            continue
        volume += (prev_error - error) * (reference[1] - cost)
        prev_error = error
    return volume
