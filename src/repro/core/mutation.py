"""The CGP mutation operator.

The paper's search uses a single variation operator: point mutation that
"randomly modifies up to ``h`` randomly selected integers of the string",
always producing a structurally valid circuit.  Positions are drawn with
replacement, and a redrawn gene may coincide with its old value, so the
number of *effective* changes is at most ``h`` — matching the paper's
"up to" phrasing.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .chromosome import Chromosome

__all__ = ["mutate", "random_gene_value", "randomize_output_genes"]


def random_gene_value(
    chromosome: Chromosome, position: int, rng: np.random.Generator
) -> int:
    """Draw a uniformly random legal value for one genome position."""
    p = chromosome.params
    gpn = p.genes_per_node
    node_genes_end = p.num_nodes * gpn
    if position < node_genes_end:
        node, slot = divmod(position, gpn)
        if slot == p.arity:  # function gene
            return int(rng.integers(0, len(p.functions)))
        index = int(rng.integers(0, p.num_sources(node)))
        return p.source_address(node, index)
    lo, hi = p.output_range()
    return int(rng.integers(lo, hi))


def mutate(
    parent: Chromosome,
    h: int,
    rng: np.random.Generator,
) -> (Chromosome, List[int]):
    """Create one offspring by point-mutating up to ``h`` genes.

    Args:
        parent: Chromosome to copy and perturb.
        h: Maximum number of modified genes (the paper uses ``h = 5``).
        rng: Random source.

    Returns:
        ``(offspring, changed_positions)`` where ``changed_positions``
        lists the genome positions whose value actually changed — the
        evolution loop uses it to detect phenotypically neutral offspring.
    """
    if h <= 0:
        raise ValueError("h must be positive")
    child = Chromosome(parent.params, parent.genes.copy())
    changed: List[int] = []
    positions = rng.integers(0, parent.params.genome_length, size=h)
    for position in positions:
        position = int(position)
        new_value = random_gene_value(child, position, rng)
        if new_value != int(child.genes[position]):
            child.genes[position] = new_value
            changed.append(position)
    child.invalidate_cache()
    return child, changed


def randomize_output_genes(
    chromosome: Chromosome, rng: np.random.Generator
) -> None:
    """In-place re-draw of all output genes (used by tests/benchmarks)."""
    p = chromosome.params
    lo, hi = p.output_range()
    start = p.num_nodes * p.genes_per_node
    chromosome.genes[start:] = rng.integers(lo, hi, size=p.num_outputs)
    chromosome.invalidate_cache()
