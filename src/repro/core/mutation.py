"""The CGP mutation operator.

The paper's search uses a single variation operator: point mutation that
"randomly modifies up to ``h`` randomly selected integers of the string",
always producing a structurally valid circuit.  Positions are drawn with
replacement, and a redrawn gene may coincide with its old value, so the
number of *effective* changes is at most ``h`` — matching the paper's
"up to" phrasing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .chromosome import CGPParams, Chromosome

__all__ = ["mutate", "random_gene_value", "randomize_output_genes"]

#: Per-params (lows, highs) draw bounds for every genome position.
#: Bounds depend only on the grid geometry, never on gene values, so
#: they are computed once per params and shared by every mutate() call.
_BOUNDS_CACHE: Dict[CGPParams, Tuple[np.ndarray, np.ndarray]] = {}


def _mutation_bounds(p: CGPParams) -> Tuple[np.ndarray, np.ndarray]:
    cached = _BOUNDS_CACHE.get(p)
    if cached is None:
        gpn = p.genes_per_node
        node_end = p.num_nodes * gpn
        lows = np.zeros(p.genome_length, dtype=np.int64)
        highs = np.empty(p.genome_length, dtype=np.int64)
        for node in range(p.num_nodes):
            base = node * gpn
            highs[base:base + p.arity] = p.num_sources(node)
            highs[base + p.arity] = len(p.functions)
        lo, hi = p.output_range()
        lows[node_end:] = lo
        highs[node_end:] = hi
        _BOUNDS_CACHE[p] = cached = (lows, highs)
    return cached


def random_gene_value(
    chromosome: Chromosome, position: int, rng: np.random.Generator
) -> int:
    """Draw a uniformly random legal value for one genome position."""
    p = chromosome.params
    gpn = p.genes_per_node
    node_genes_end = p.num_nodes * gpn
    if position < node_genes_end:
        node, slot = divmod(position, gpn)
        if slot == p.arity:  # function gene
            return int(rng.integers(0, len(p.functions)))
        index = int(rng.integers(0, p.num_sources(node)))
        return p.source_address(node, index)
    lo, hi = p.output_range()
    return int(rng.integers(lo, hi))


def mutate(
    parent: Chromosome,
    h: int,
    rng: np.random.Generator,
) -> (Chromosome, List[int]):
    """Create one offspring by point-mutating up to ``h`` genes.

    Args:
        parent: Chromosome to copy and perturb.
        h: Maximum number of modified genes (the paper uses ``h = 5``).
        rng: Random source.

    Returns:
        ``(offspring, changed_positions)`` where ``changed_positions``
        lists the genome positions whose value actually changed — the
        evolution loop uses it to detect phenotypically neutral offspring.
    """
    if h <= 0:
        raise ValueError("h must be positive")
    p = parent.params
    child = Chromosome(p, parent.genes.copy())
    changed: List[int] = []
    positions = rng.integers(0, p.genome_length, size=h)
    # One vectorized draw with per-position bounds instead of h scalar
    # rng.integers() calls.  numpy's bounded-integer sampler consumes
    # the bit stream element by element exactly like the equivalent
    # sequence of scalar calls (same Lemire rejection per value), so the
    # RNG stream — and therefore every search trajectory — is unchanged.
    lows, highs = _mutation_bounds(p)
    draws = rng.integers(lows[positions], highs[positions])
    gpn = p.genes_per_node
    arity = p.arity
    node_end = p.num_nodes * gpn
    genes = child.genes
    for position, draw in zip(positions.tolist(), draws.tolist()):
        if position < node_end and position % gpn != arity:
            new_value = p.source_address(position // gpn, draw)
        else:
            new_value = draw
        if new_value != int(genes[position]):
            genes[position] = new_value
            changed.append(position)
    child.invalidate_cache()
    return child, changed


def randomize_output_genes(
    chromosome: Chromosome, rng: np.random.Generator
) -> None:
    """In-place re-draw of all output genes (used by tests/benchmarks)."""
    p = chromosome.params
    lo, hi = p.output_range()
    start = p.num_nodes * p.genes_per_node
    chromosome.genes[start:] = rng.integers(lo, hi, size=p.num_outputs)
    chromosome.invalidate_cache()
