"""Fitness evaluation for WMED-constrained multiplier approximation.

.. deprecated::
    :class:`MultiplierFitness` is kept as a thin alias for the
    multiplier instance of the component-agnostic objective layer — new
    code should build objectives through
    :func:`repro.core.components.multiplier_objective` (or
    :func:`~repro.core.components.component_objective` /
    :class:`~repro.core.objective.CircuitObjective` directly).  Results
    are bit-identical to the historical class, so existing trajectories
    do not change.

Implements the paper's Eq. (1):

``F(M~) = area(M~)   if WMED_D(M~) <= E_i``
``F(M~) = infinity   otherwise``

Area is estimated from the technology library over the active nodes only
(the phenotype), which is what makes each candidate evaluation cheap; the
WMED term requires one exhaustive packed simulation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors.distributions import Distribution
from ..errors.truth_tables import (
    exact_product_table,
    max_product_magnitude,
    vector_weights,
)
from ..tech.library import TechLibrary
from .objective import CircuitObjective, EvalResult

__all__ = ["EvalResult", "MultiplierFitness"]


class MultiplierFitness(CircuitObjective):
    """Evaluator for ``width``-bit approximate multipliers.

    The multiplier instance of :class:`~repro.core.objective
    .CircuitObjective`: reference = exact product table, weights = the
    WMED weights of ``dist``, normalizer = maximum product magnitude.
    Precomputes all three once; each candidate costs one packed
    simulation plus two vector reductions.

    Args:
        width: Operand bit width ``w``.
        dist: Operand-``x`` distribution defining the WMED weights (its
            ``signed`` flag selects the product semantics).
        library: Technology library for the area term.
        metric: Error metric; the paper's ``"wmed"`` by default.
    """

    def __init__(
        self,
        width: int,
        dist: Distribution,
        library: Optional[TechLibrary] = None,
        metric: object = "wmed",
    ) -> None:
        if dist.width != width:
            raise ValueError("distribution width must match operand width")
        super().__init__(
            num_inputs=2 * width,
            reference=exact_product_table(width, dist.signed),
            weights=vector_weights(dist, width),
            signed=dist.signed,
            normalizer=float(max_product_magnitude(width, dist.signed)),
            metric=metric,
            library=library,
            component="multiplier",
        )
        self.width = width
        self.dist = dist

    @property
    def exact(self) -> np.ndarray:
        """Historical name for the reference product table."""
        return self.reference
