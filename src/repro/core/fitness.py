"""Fitness evaluation for WMED-constrained circuit approximation.

Implements the paper's Eq. (1):

``F(M~) = area(M~)   if WMED_D(M~) <= E_i``
``F(M~) = infinity   otherwise``

Area is estimated from the technology library over the active nodes only
(the phenotype), which is what makes each candidate evaluation cheap; the
WMED term requires one exhaustive packed simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.simulator import exhaustive_inputs, words_to_values
from ..errors.distributions import Distribution
from ..errors.truth_tables import (
    exact_product_table,
    max_product_magnitude,
    vector_weights,
)
from ..tech.library import TechLibrary, default_library
from .chromosome import Chromosome

__all__ = ["EvalResult", "MultiplierFitness"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one candidate evaluation.

    ``fitness`` is Eq. (1): area when the WMED constraint holds, else
    ``inf``.  ``wmed`` is normalized to [0, ~1] (multiply by 100 for the
    paper's percent figures).
    """

    fitness: float
    wmed: float
    area: float

    def feasible(self) -> bool:
        return np.isfinite(self.fitness)


class MultiplierFitness:
    """Evaluator for ``width``-bit approximate multipliers under WMED.

    Precomputes the exhaustive stimulus, the exact product table and the
    WMED weight vector once; each candidate costs one packed simulation
    plus two vector reductions.

    Args:
        width: Operand bit width ``w``.
        dist: Operand-``x`` distribution defining the WMED weights (its
            ``signed`` flag selects the product semantics).
        library: Technology library for the area term.
    """

    def __init__(
        self,
        width: int,
        dist: Distribution,
        library: Optional[TechLibrary] = None,
    ) -> None:
        if dist.width != width:
            raise ValueError("distribution width must match operand width")
        self.width = width
        self.signed = dist.signed
        self.dist = dist
        self.library = library or default_library()
        self.stimulus = exhaustive_inputs(2 * width)
        self.num_vectors = 1 << (2 * width)
        self.exact = exact_product_table(width, self.signed)
        weights = vector_weights(dist, width)
        # Normalize to a probability distribution over vectors so that the
        # weighted sum is an expectation — keeps this evaluator's WMED
        # identical to :func:`repro.errors.metrics.wmed`.
        self.weights = weights / weights.sum()
        self.normalizer = float(max_product_magnitude(width, self.signed))
        self._area_cache: Dict[Tuple[str, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    def truth_table(self, chromosome: Chromosome) -> np.ndarray:
        """Decoded integer outputs of the candidate over all vectors.

        Equivalent to :func:`repro.circuits.simulator.words_to_values`
        but decodes all output bits in one vectorized bit-transpose (this
        sits on the search's hot path): unpack each output plane, stack
        them as the bit columns of one integer per vector, and repack.
        """
        words = chromosome.simulate(self.stimulus)
        n_bits = len(words)
        dtype = np.uint16 if n_bits <= 16 else np.uint64
        acc = np.zeros(self.num_vectors, dtype=dtype)
        for j, plane in enumerate(words):
            bits = np.unpackbits(plane.view(np.uint8), bitorder="little")[
                : self.num_vectors
            ].astype(dtype)
            acc |= bits << dtype(j)
        values = acc.astype(np.int64)
        if self.signed:
            values[values >= 1 << (n_bits - 1)] -= 1 << n_bits
        return values

    def wmed(self, chromosome: Chromosome) -> float:
        """Normalized WMED of the candidate (0 = exact)."""
        table = self.truth_table(chromosome)
        err = np.abs(self.exact - table).astype(np.float64)
        return float(np.dot(self.weights, err)) / self.normalizer

    def _areas_by_fn_index(self, functions: Tuple[str, ...]) -> np.ndarray:
        areas = self._area_cache.get(functions)
        if areas is None:
            areas = np.array(
                [self.library.cell(fn).area for fn in functions],
                dtype=np.float64,
            )
            self._area_cache[functions] = areas
        return areas

    def area(self, chromosome: Chromosome) -> float:
        """Active-cone cell area of the candidate in um^2."""
        p = chromosome.params
        active = chromosome.active_nodes()
        if active.size == 0:
            return 0.0
        fn_genes = chromosome.genes[active * p.genes_per_node + p.arity]
        areas = self._areas_by_fn_index(p.functions)
        return float(areas[fn_genes].sum())

    def evaluate(self, chromosome: Chromosome, threshold: float) -> EvalResult:
        """Eq. (1) fitness of a candidate at WMED target ``threshold``."""
        error = self.wmed(chromosome)
        area = self.area(chromosome)
        fitness = area if error <= threshold else float("inf")
        return EvalResult(fitness=fitness, wmed=error, area=area)
