"""The component-agnostic objective: Eq. (1) over any reference function.

The paper presents its method on multipliers "for the sake of
simplicity" (Section III), but the machinery is function-agnostic: a
candidate circuit is scored by

``F(C~) = area(C~)   if  error_metric(C~) <= E_i``
``F(C~) = infinity   otherwise``

where the error metric compares the candidate's exhaustive truth table
against a *reference* table under a per-vector *weight* vector.  This
module is the single home of that machinery:

* :class:`CircuitObjective` — reference table + normalized weight vector
  + pluggable :class:`~repro.errors.metrics.ErrorMetric` (WMED, MED,
  MRED, error rate, worst case) + technology-library area term.  It owns
  the decode/area/evaluate hot path that every evaluator in the repo —
  including the compiled engine's
  :class:`~repro.engine.evaluator.CompiledObjective` — inherits, so
  there is exactly one implementation of each.
* :class:`EvalResult` — the outcome record shared by all evaluators.

Component-specific constructors (multiplier, adder, MAC, arbitrary
netlist) live in :mod:`repro.core.components`; the legacy
``MultiplierFitness`` / ``CircuitFitness`` classes are thin subclasses
kept for backward compatibility.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..circuits.simulator import exhaustive_inputs, pack_input_vectors
from ..errors.metrics import (
    ErrorMetric,
    MetricEstimate,
    estimate_from_distances,
    get_metric,
)
from ..tech.library import TechLibrary, default_library
from .chromosome import Chromosome

__all__ = [
    "EvalResult",
    "CircuitObjective",
    "SampleSpec",
    "SampledEvalResult",
    "SampledStimulus",
    "draw_sampled_stimulus",
    "SampledObjective",
]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one candidate evaluation.

    ``fitness`` is Eq. (1): area when the error constraint holds, else
    ``inf``.  ``wmed`` holds the objective's error-metric value — named
    for the paper's central metric, it is the WMED only when the
    objective's metric is ``"wmed"`` (use the :attr:`error` alias in
    metric-generic code).  Magnitude metrics are normalized to [0, ~1]
    (multiply by 100 for the paper's percent figures).
    """

    fitness: float
    wmed: float
    area: float

    @property
    def error(self) -> float:
        """Metric-agnostic alias for the error term."""
        return self.wmed

    def feasible(self) -> bool:
        return np.isfinite(self.fitness)


class CircuitObjective:
    """Eq. (1) objective against an arbitrary reference function.

    Precomputes the exhaustive stimulus and normalizes the weight vector
    once; each candidate costs one packed simulation, one vectorized
    truth-table decode and one metric reduction.

    Args:
        num_inputs: Primary input count of the candidates; the reference
            table must enumerate all ``2**num_inputs`` vectors.
        reference: Exact outputs in vector order (``int64``).
        weights: Per-vector importance; normalized internally to sum
            to 1.  ``None`` means uniform.
        signed: Decode candidate output buses as two's complement.
        normalizer: Error scale so magnitude metrics land in [0, ~1];
            defaults to ``max |reference|`` (falling back to 1 for the
            all-zero function).
        metric: :class:`~repro.errors.metrics.ErrorMetric` or registry
            name (``"wmed"``, ``"med"``, ``"mred"``, ``"error-rate"``,
            ``"worst-case"``).
        library: Technology library for the area term.
        component: Optional tag naming the component family (used in
            reports and engine cache identity).
    """

    def __init__(
        self,
        num_inputs: int,
        reference: np.ndarray,
        weights: Optional[np.ndarray] = None,
        signed: bool = False,
        normalizer: Optional[float] = None,
        metric: object = "wmed",
        library: Optional[TechLibrary] = None,
        component: str = "",
    ) -> None:
        reference = np.asarray(reference, dtype=np.int64).ravel()
        expected = 1 << num_inputs
        if reference.shape != (expected,):
            raise ValueError(
                f"reference must have {expected} entries, got {reference.shape}"
            )
        self.num_inputs = num_inputs
        self.num_vectors = expected
        self.reference = reference
        self.signed = signed
        self.component = component
        self.stimulus = exhaustive_inputs(num_inputs)
        if weights is None:
            weights = np.full(expected, 1.0 / expected)
        else:
            weights = np.asarray(weights, dtype=np.float64).ravel()
            if weights.shape != (expected,):
                raise ValueError("weights length must match the vector count")
            total = weights.sum()
            if total <= 0:
                raise ValueError("weights must have positive mass")
            weights = weights / total
        self.weights = weights
        if normalizer is None:
            normalizer = float(np.abs(reference).max()) or 1.0
        if normalizer <= 0:
            raise ValueError("normalizer must be positive")
        self.normalizer = float(normalizer)
        self.metric: ErrorMetric = get_metric(metric)
        self.library = library or default_library()
        self._area_cache: Dict[Tuple[str, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Decode hot path
    # ------------------------------------------------------------------
    def truth_table(self, chromosome: Chromosome) -> np.ndarray:
        """Decoded integer outputs of the candidate over all vectors.

        Equivalent to :func:`repro.circuits.simulator.words_to_values`
        but decodes all output bits in one vectorized bit-transpose (this
        sits on the search's hot path): unpack each output plane, stack
        them as the bit columns of one integer per vector, and repack.
        """
        words = chromosome.simulate(self.stimulus)
        n_bits = len(words)
        dtype = np.uint16 if n_bits <= 16 else np.uint64
        acc = np.zeros(self.num_vectors, dtype=dtype)
        for j, plane in enumerate(words):
            bits = np.unpackbits(plane.view(np.uint8), bitorder="little")[
                : self.num_vectors
            ].astype(dtype)
            acc |= bits << dtype(j)
        values = acc.astype(np.int64)
        if self.signed:
            values[values >= 1 << (n_bits - 1)] -= 1 << n_bits
        return values

    def error_distances(self, chromosome: Chromosome) -> np.ndarray:
        """Per-vector ``|reference - candidate|`` as ``float64``."""
        table = self.truth_table(chromosome)
        return np.abs(self.reference - table).astype(np.float64)

    def error(self, chromosome: Chromosome) -> float:
        """The objective's error-metric value for a candidate."""
        return self.metric.from_distances(
            self.error_distances(chromosome),
            self.weights,
            self.normalizer,
            self.reference,
        )

    def wmed(self, chromosome: Chromosome) -> float:
        """Historical alias for :meth:`error` (the paper's metric name)."""
        return self.error(chromosome)

    # ------------------------------------------------------------------
    # Area term
    # ------------------------------------------------------------------
    def _areas_by_fn_index(self, functions: Tuple[str, ...]) -> np.ndarray:
        areas = self._area_cache.get(functions)
        if areas is None:
            areas = np.array(
                [self.library.cell(fn).area for fn in functions],
                dtype=np.float64,
            )
            self._area_cache[functions] = areas
        return areas

    def area(self, chromosome: Chromosome) -> float:
        """Active-cone cell area of the candidate in um^2."""
        p = chromosome.params
        active = chromosome.active_nodes()
        if active.size == 0:
            return 0.0
        fn_genes = chromosome.genes[active * p.genes_per_node + p.arity]
        areas = self._areas_by_fn_index(p.functions)
        return float(areas[fn_genes].sum())

    # ------------------------------------------------------------------
    # Eq. (1)
    # ------------------------------------------------------------------
    def evaluate(self, chromosome: Chromosome, threshold: float) -> EvalResult:
        """Eq. (1): area when the error constraint holds, else inf."""
        error = self.error(chromosome)
        area = self.area(chromosome)
        fitness = area if error <= threshold else float("inf")
        return EvalResult(fitness=fitness, wmed=error, area=area)


# ----------------------------------------------------------------------
# Sampled evaluation: estimates with confidence intervals for wide
# operands (the exhaustive 2**ni vector space stops being practical
# past width ~10 for two-operand components)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SampleSpec:
    """How a sampled objective draws its stimulus.

    ``samples`` vectors per replicate, ``replicates`` independent
    streams, all derived from ``SeedSequence(seed)`` — the sample matrix
    (and therefore every estimate) is a pure function of this spec and
    the target distribution, never of backend, worker count or
    evaluation order.
    """

    samples: int = 4096
    replicates: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.samples < 2:
            raise ValueError("samples must be >= 2")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")

    @property
    def total(self) -> int:
        """Total stimulus vectors, ``samples * replicates``."""
        return self.samples * self.replicates

    def key(self) -> bytes:
        """Canonical identity bytes (folded into engine cache keys)."""
        return repr((self.samples, self.replicates, self.seed)).encode()


@dataclass(frozen=True)
class SampledEvalResult(EvalResult):
    """An :class:`EvalResult` whose error term is a sampled estimate.

    ``wmed`` (the :attr:`~EvalResult.error` alias) holds the pooled
    point estimate; ``[ci_low, ci_high]`` its 95 % confidence interval
    (see :class:`repro.errors.metrics.MetricEstimate` for the interval
    semantics, including the one-sided ``worst-case`` convention).
    """

    ci_low: float = float("nan")
    ci_high: float = float("nan")


@dataclass(frozen=True)
class SampledStimulus:
    """A reproducibly drawn sample matrix in packed simulation form.

    ``vectors[i]`` is the raw input-vector pattern of sample ``i``
    (operand ``x`` in the low bits, as in the exhaustive vector order);
    ``stimulus`` is the same set packed for the simulators, and samples
    are grouped as ``spec.replicates`` consecutive blocks of
    ``spec.samples``, one per spawned stream.
    """

    vectors: np.ndarray
    stimulus: np.ndarray
    num_inputs: int
    width: int
    spec: SampleSpec


def draw_sampled_stimulus(
    dist, num_inputs: int, spec: SampleSpec
) -> SampledStimulus:
    """Draw the sample matrix for a sampled objective.

    Stream discipline: replicate ``r`` uses a generator seeded from
    ``SeedSequence(spec.seed).spawn(replicates)[r]`` — the same spawning
    convention as :func:`repro.analysis.sweep.parallel_front` — and
    draws the ``x`` operand (the low ``dist.width`` bits) from ``dist``
    via ``sample_patterns`` plus one uniform draw for the remaining
    input bits.  Works with both materialized :class:`~repro.errors
    .distributions.Distribution` and parametric
    :class:`~repro.errors.distributions.WideDistribution` laws.
    """
    width = int(dist.width)
    rest_bits = num_inputs - width
    if rest_bits < 0:
        raise ValueError(
            f"distribution width {width} exceeds input count {num_inputs}"
        )
    if num_inputs > 62:
        raise ValueError(
            f"sampled vectors are packed into 62-bit patterns; "
            f"{num_inputs} inputs exceed that"
        )
    children = np.random.SeedSequence(spec.seed).spawn(spec.replicates)
    vectors = np.empty(spec.total, dtype=np.uint64)
    n = spec.samples
    for r, child in enumerate(children):
        rng = np.random.default_rng(child)
        v = dist.sample_patterns(n, rng).astype(np.uint64)
        if rest_bits:
            rest = rng.integers(0, 1 << rest_bits, size=n, dtype=np.uint64)
            v = v | (rest << np.uint64(width))
        vectors[r * n : (r + 1) * n] = v
    return SampledStimulus(
        vectors=vectors,
        stimulus=pack_input_vectors(vectors, num_inputs),
        num_inputs=num_inputs,
        width=width,
        spec=spec,
    )


class SampledObjective(CircuitObjective):
    """Eq. (1) objective evaluated on a reproducible operand sample.

    The sampled counterpart of :class:`CircuitObjective` for operand
    widths whose exhaustive vector space (``2**num_inputs``) cannot be
    enumerated: the stimulus is a :class:`SampledStimulus` drawn from
    the target distribution, the reference is computed *at the sampled
    vectors only* (closed form, via ``reference_at``), and the weight
    vector is uniform — samples drawn from ``D`` embody the weighting,
    so the plain sample mean estimates the weighted metric.  ``med``
    and ``worst-case`` ignore weights exhaustively, so their sampling
    law is the uniform distribution instead of ``dist``.

    Every inherited decode/area/evaluate path works unchanged on the
    sample matrix; :meth:`evaluate` returns a :class:`SampledEvalResult`
    carrying the 95 % confidence interval.

    Args:
        num_inputs: Primary input count of the candidates.
        reference_at: ``vectors -> int64`` exact outputs at the given
            raw input-vector patterns (closed form; never a table).
        dist: Target distribution of the ``x`` operand (low bits).
        spec: Sample-count / replicate / seed specification.
        signed: Decode candidate output buses as two's complement.
        normalizer: Error scale (max ``|reference|`` over the *full*
            domain, closed form — so thresholds keep exhaustive
            semantics).
        metric: Metric name or :class:`~repro.errors.metrics
            .ErrorMetric`.
        library: Technology library for the area term.
        component: Component-family tag.
    """

    def __init__(
        self,
        num_inputs: int,
        reference_at: Callable[[np.ndarray], np.ndarray],
        dist,
        spec: SampleSpec,
        signed: bool = False,
        normalizer: Optional[float] = None,
        metric: object = "wmed",
        library: Optional[TechLibrary] = None,
        component: str = "",
    ) -> None:
        self.metric = get_metric(metric)
        self.dist = dist
        self.sample_spec = spec
        # med and worst-case are uniform-space metrics (their exhaustive
        # reductions ignore the weight vector), so estimate them from a
        # uniform sample; the weighted metrics sample from dist itself.
        if self.metric.name in ("med", "worst-case"):
            from ..errors.distributions import uniform

            self.sampling_dist = uniform(dist.width, dist.signed)
        else:
            self.sampling_dist = dist
        sampled = draw_sampled_stimulus(self.sampling_dist, num_inputs, spec)
        self.sampled = sampled
        self.num_inputs = num_inputs
        self.num_vectors = spec.total
        self.stimulus = sampled.stimulus
        self.reference = np.asarray(
            reference_at(sampled.vectors), dtype=np.int64
        ).ravel()
        if self.reference.shape != (spec.total,):
            raise ValueError(
                f"reference_at must return {spec.total} values, got "
                f"{self.reference.shape}"
            )
        self.weights = np.full(spec.total, 1.0 / spec.total)
        self.signed = signed
        if normalizer is None:
            normalizer = float(np.abs(self.reference).max()) or 1.0
        if normalizer <= 0:
            raise ValueError("normalizer must be positive")
        self.normalizer = float(normalizer)
        self.component = component
        self.library = library or default_library()
        self._area_cache: Dict[Tuple[str, ...], np.ndarray] = {}
        # Sample-spec identity: folded into the engine's cache salt so a
        # sampled estimate never aliases an exhaustive value or a
        # different sample spec's estimate for the same phenotype.  The
        # stimulus bytes pin the realized draw itself.
        h = hashlib.blake2b(digest_size=8)
        h.update(b"sampled")
        h.update(spec.key())
        h.update((getattr(dist, "spec", "") or dist.name).encode())
        h.update(self.stimulus.tobytes())
        self._sample_salt = h.digest()

    def estimate_distances(self, distances: np.ndarray) -> MetricEstimate:
        """Metric estimate + 95 % CI from a per-sample distance row."""
        return estimate_from_distances(
            self.metric,
            distances,
            self.normalizer,
            self.reference,
            self.sample_spec.replicates,
        )

    def estimate(self, chromosome: Chromosome) -> MetricEstimate:
        """Simulate the candidate on the sample and estimate the metric."""
        return self.estimate_distances(self.error_distances(chromosome))

    def evaluate(
        self, chromosome: Chromosome, threshold: float
    ) -> SampledEvalResult:
        """Eq. (1) on the point estimate, carrying the 95 % CI."""
        est = self.estimate(chromosome)
        area = self.area(chromosome)
        fitness = area if est.value <= threshold else float("inf")
        return SampledEvalResult(
            fitness=fitness,
            wmed=est.value,
            area=area,
            ci_low=est.ci_low,
            ci_high=est.ci_high,
        )
