"""The component-agnostic objective: Eq. (1) over any reference function.

The paper presents its method on multipliers "for the sake of
simplicity" (Section III), but the machinery is function-agnostic: a
candidate circuit is scored by

``F(C~) = area(C~)   if  error_metric(C~) <= E_i``
``F(C~) = infinity   otherwise``

where the error metric compares the candidate's exhaustive truth table
against a *reference* table under a per-vector *weight* vector.  This
module is the single home of that machinery:

* :class:`CircuitObjective` — reference table + normalized weight vector
  + pluggable :class:`~repro.errors.metrics.ErrorMetric` (WMED, MED,
  MRED, error rate, worst case) + technology-library area term.  It owns
  the decode/area/evaluate hot path that every evaluator in the repo —
  including the compiled engine's
  :class:`~repro.engine.evaluator.CompiledObjective` — inherits, so
  there is exactly one implementation of each.
* :class:`EvalResult` — the outcome record shared by all evaluators.

Component-specific constructors (multiplier, adder, MAC, arbitrary
netlist) live in :mod:`repro.core.components`; the legacy
``MultiplierFitness`` / ``CircuitFitness`` classes are thin subclasses
kept for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.simulator import exhaustive_inputs
from ..errors.metrics import ErrorMetric, get_metric
from ..tech.library import TechLibrary, default_library
from .chromosome import Chromosome

__all__ = ["EvalResult", "CircuitObjective"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one candidate evaluation.

    ``fitness`` is Eq. (1): area when the error constraint holds, else
    ``inf``.  ``wmed`` holds the objective's error-metric value — named
    for the paper's central metric, it is the WMED only when the
    objective's metric is ``"wmed"`` (use the :attr:`error` alias in
    metric-generic code).  Magnitude metrics are normalized to [0, ~1]
    (multiply by 100 for the paper's percent figures).
    """

    fitness: float
    wmed: float
    area: float

    @property
    def error(self) -> float:
        """Metric-agnostic alias for the error term."""
        return self.wmed

    def feasible(self) -> bool:
        return np.isfinite(self.fitness)


class CircuitObjective:
    """Eq. (1) objective against an arbitrary reference function.

    Precomputes the exhaustive stimulus and normalizes the weight vector
    once; each candidate costs one packed simulation, one vectorized
    truth-table decode and one metric reduction.

    Args:
        num_inputs: Primary input count of the candidates; the reference
            table must enumerate all ``2**num_inputs`` vectors.
        reference: Exact outputs in vector order (``int64``).
        weights: Per-vector importance; normalized internally to sum
            to 1.  ``None`` means uniform.
        signed: Decode candidate output buses as two's complement.
        normalizer: Error scale so magnitude metrics land in [0, ~1];
            defaults to ``max |reference|`` (falling back to 1 for the
            all-zero function).
        metric: :class:`~repro.errors.metrics.ErrorMetric` or registry
            name (``"wmed"``, ``"med"``, ``"mred"``, ``"error-rate"``,
            ``"worst-case"``).
        library: Technology library for the area term.
        component: Optional tag naming the component family (used in
            reports and engine cache identity).
    """

    def __init__(
        self,
        num_inputs: int,
        reference: np.ndarray,
        weights: Optional[np.ndarray] = None,
        signed: bool = False,
        normalizer: Optional[float] = None,
        metric: object = "wmed",
        library: Optional[TechLibrary] = None,
        component: str = "",
    ) -> None:
        reference = np.asarray(reference, dtype=np.int64).ravel()
        expected = 1 << num_inputs
        if reference.shape != (expected,):
            raise ValueError(
                f"reference must have {expected} entries, got {reference.shape}"
            )
        self.num_inputs = num_inputs
        self.num_vectors = expected
        self.reference = reference
        self.signed = signed
        self.component = component
        self.stimulus = exhaustive_inputs(num_inputs)
        if weights is None:
            weights = np.full(expected, 1.0 / expected)
        else:
            weights = np.asarray(weights, dtype=np.float64).ravel()
            if weights.shape != (expected,):
                raise ValueError("weights length must match the vector count")
            total = weights.sum()
            if total <= 0:
                raise ValueError("weights must have positive mass")
            weights = weights / total
        self.weights = weights
        if normalizer is None:
            normalizer = float(np.abs(reference).max()) or 1.0
        if normalizer <= 0:
            raise ValueError("normalizer must be positive")
        self.normalizer = float(normalizer)
        self.metric: ErrorMetric = get_metric(metric)
        self.library = library or default_library()
        self._area_cache: Dict[Tuple[str, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Decode hot path
    # ------------------------------------------------------------------
    def truth_table(self, chromosome: Chromosome) -> np.ndarray:
        """Decoded integer outputs of the candidate over all vectors.

        Equivalent to :func:`repro.circuits.simulator.words_to_values`
        but decodes all output bits in one vectorized bit-transpose (this
        sits on the search's hot path): unpack each output plane, stack
        them as the bit columns of one integer per vector, and repack.
        """
        words = chromosome.simulate(self.stimulus)
        n_bits = len(words)
        dtype = np.uint16 if n_bits <= 16 else np.uint64
        acc = np.zeros(self.num_vectors, dtype=dtype)
        for j, plane in enumerate(words):
            bits = np.unpackbits(plane.view(np.uint8), bitorder="little")[
                : self.num_vectors
            ].astype(dtype)
            acc |= bits << dtype(j)
        values = acc.astype(np.int64)
        if self.signed:
            values[values >= 1 << (n_bits - 1)] -= 1 << n_bits
        return values

    def error_distances(self, chromosome: Chromosome) -> np.ndarray:
        """Per-vector ``|reference - candidate|`` as ``float64``."""
        table = self.truth_table(chromosome)
        return np.abs(self.reference - table).astype(np.float64)

    def error(self, chromosome: Chromosome) -> float:
        """The objective's error-metric value for a candidate."""
        return self.metric.from_distances(
            self.error_distances(chromosome),
            self.weights,
            self.normalizer,
            self.reference,
        )

    def wmed(self, chromosome: Chromosome) -> float:
        """Historical alias for :meth:`error` (the paper's metric name)."""
        return self.error(chromosome)

    # ------------------------------------------------------------------
    # Area term
    # ------------------------------------------------------------------
    def _areas_by_fn_index(self, functions: Tuple[str, ...]) -> np.ndarray:
        areas = self._area_cache.get(functions)
        if areas is None:
            areas = np.array(
                [self.library.cell(fn).area for fn in functions],
                dtype=np.float64,
            )
            self._area_cache[functions] = areas
        return areas

    def area(self, chromosome: Chromosome) -> float:
        """Active-cone cell area of the candidate in um^2."""
        p = chromosome.params
        active = chromosome.active_nodes()
        if active.size == 0:
            return 0.0
        fn_genes = chromosome.genes[active * p.genes_per_node + p.arity]
        areas = self._areas_by_fn_index(p.functions)
        return float(areas[fn_genes].sum())

    # ------------------------------------------------------------------
    # Eq. (1)
    # ------------------------------------------------------------------
    def evaluate(self, chromosome: Chromosome, threshold: float) -> EvalResult:
        """Eq. (1): area when the error constraint holds, else inf."""
        error = self.error(chromosome)
        area = self.area(chromosome)
        fitness = area if error <= threshold else float("inf")
        return EvalResult(fitness=fitness, wmed=error, area=area)
