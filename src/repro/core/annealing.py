"""Simulated-annealing baseline search over CGP genotypes.

The paper positions CGP's (1 + lambda) strategy against other automated
approximation loops (ABACUS, SALSA — greedy / annealing-style methods
applying elementary circuit modifications).  This module provides that
comparison point on identical ground: the same genotype, mutation
operator and Eq. (1) evaluator, but Metropolis acceptance with a
geometric temperature schedule instead of elitist selection.

Because Eq. (1) is partly infinite, annealing works on a *relaxed* scalar
energy: ``area + penalty * max(0, wmed - threshold)``, which equals the
area inside the feasible region and degrades smoothly outside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .chromosome import Chromosome
from .evolution import EvolutionResult
from .objective import EvalResult
from .mutation import mutate

__all__ = ["AnnealingConfig", "anneal"]


@dataclass(frozen=True)
class AnnealingConfig:
    """Annealing schedule and relaxation parameters."""

    steps: int = 10_000
    h: int = 5
    initial_temperature: float = 20.0
    final_temperature: float = 0.05
    infeasibility_penalty: float = 1e4

    def temperature(self, step: int) -> float:
        """Geometric interpolation between the two endpoint temperatures."""
        if self.steps <= 1:
            return self.final_temperature
        ratio = self.final_temperature / self.initial_temperature
        return self.initial_temperature * ratio ** (step / (self.steps - 1))


def _energy(result: EvalResult, threshold: float, penalty: float) -> float:
    violation = max(0.0, result.wmed - threshold)
    return result.area + penalty * violation


def anneal(
    seed: Chromosome,
    evaluator,
    threshold: float,
    config: Optional[AnnealingConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> EvolutionResult:
    """Simulated annealing minimizing the relaxed Eq. (1) energy.

    Args:
        seed: Starting chromosome (typically the exact seed circuit).
        evaluator: Any object with ``evaluate(chromosome, threshold)``
            returning an :class:`~repro.core.objective.EvalResult`
            (any :class:`~repro.core.objective.CircuitObjective`).
        threshold: Error budget.
        config: Schedule parameters.
        rng: Random source.

    Returns:
        An :class:`~repro.core.evolution.EvolutionResult` for drop-in
        comparison with :func:`~repro.core.evolution.evolve`; ``best``
        is the best *feasible* state visited (the seed if none other).
    """
    cfg = config or AnnealingConfig()
    rng = rng or np.random.default_rng()
    if threshold < 0:
        raise ValueError("threshold must be non-negative")

    current = seed.copy()
    current_eval = evaluator.evaluate(current, threshold)
    current_energy = _energy(current_eval, threshold, cfg.infeasibility_penalty)
    best, best_eval = current, current_eval
    evaluations = 1

    for step in range(cfg.steps):
        candidate, changed = mutate(current, cfg.h, rng)
        if not changed:
            continue
        cand_eval = evaluator.evaluate(candidate, threshold)
        evaluations += 1
        cand_energy = _energy(cand_eval, threshold, cfg.infeasibility_penalty)
        delta = cand_energy - current_energy
        temperature = cfg.temperature(step)
        if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-12)):
            current, current_eval, current_energy = (
                candidate, cand_eval, cand_energy,
            )
            better_feasible = cand_eval.feasible() and (
                not best_eval.feasible()
                or (cand_eval.fitness, cand_eval.wmed)
                < (best_eval.fitness, best_eval.wmed)
            )
            if better_feasible:
                best, best_eval = candidate, cand_eval

    return EvolutionResult(
        best=best,
        best_eval=best_eval,
        generations=cfg.steps,
        evaluations=evaluations,
        threshold=threshold,
    )
