"""Seeding CGP with conventional exact circuits.

The paper initializes every run with a conventional exact multiplier
("the initial population of CGP is seeded with different conventional
implementations of exact multipliers", ``c = 320 ... 490`` depending on
the seed).  :func:`netlist_to_chromosome` performs that embedding: each
netlist gate becomes one CGP node in address order; surplus columns are
filled with inactive identity nodes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuits.gates import gate_function
from ..circuits.netlist import Netlist
from .chromosome import CGP_FUNCTION_SET, CGPParams, Chromosome

__all__ = ["netlist_to_chromosome", "params_for_netlist", "random_chromosome"]


def params_for_netlist(
    netlist: Netlist,
    extra_columns: int = 0,
    functions=CGP_FUNCTION_SET,
) -> CGPParams:
    """CGP parameters sized to host ``netlist`` (plus spare columns).

    The paper's column counts (320...490 for 8-bit multipliers) are
    exactly "seed gate count, structure-dependent"; ``extra_columns`` adds
    slack the search can grow into.
    """
    return CGPParams(
        num_inputs=netlist.num_inputs,
        num_outputs=netlist.num_outputs,
        columns=len(netlist.gates) + extra_columns,
        rows=1,
        functions=tuple(functions),
    )


def netlist_to_chromosome(
    netlist: Netlist,
    params: Optional[CGPParams] = None,
) -> Chromosome:
    """Encode a netlist as a CGP chromosome.

    Gate ``k`` of the netlist occupies node ``k``; because netlists are
    topologically ordered by construction, every source reference is
    automatically legal under full levels-back.  Remaining nodes are
    filled with ``BUF`` of input 0 (inactive padding).

    Args:
        netlist: Circuit to embed (``r = 1`` assumed in ``params``).
        params: Target CGP shape; defaults to a tight fit.

    Raises:
        ValueError: if the netlist does not fit or uses functions outside
            the parameter function set.
    """
    if params is None:
        params = params_for_netlist(netlist)
    if params.rows != 1:
        raise ValueError("seeding requires rows == 1")
    if params.num_inputs != netlist.num_inputs:
        raise ValueError("input count mismatch")
    if params.num_outputs != netlist.num_outputs:
        raise ValueError("output count mismatch")
    if len(netlist.gates) > params.num_nodes:
        raise ValueError(
            f"netlist has {len(netlist.gates)} gates, "
            f"chromosome only {params.num_nodes} nodes"
        )
    fn_index = {name: i for i, name in enumerate(params.functions)}
    try:
        pad_fn = fn_index["BUF"]
    except KeyError:
        pad_fn = 0

    genes = np.zeros(params.genome_length, dtype=np.int64)
    gpn = params.genes_per_node
    for k, gate in enumerate(netlist.gates):
        if gate.fn not in fn_index:
            raise ValueError(
                f"gate function {gate.fn!r} not in CGP function set"
            )
        genes[k * gpn] = gate.inputs[0]
        genes[k * gpn + 1] = gate.inputs[1]
        genes[k * gpn + 2] = fn_index[gate.fn]
    for k in range(len(netlist.gates), params.num_nodes):
        genes[k * gpn] = 0
        genes[k * gpn + 1] = 0
        genes[k * gpn + 2] = pad_fn
    genes[params.num_nodes * gpn:] = netlist.outputs
    return Chromosome(params, genes)


def random_chromosome(
    params: CGPParams, rng: np.random.Generator
) -> Chromosome:
    """Uniformly random (valid) chromosome — for tests and ablations."""
    genes = np.zeros(params.genome_length, dtype=np.int64)
    gpn = params.genes_per_node
    for node in range(params.num_nodes):
        n_src = params.num_sources(node)
        genes[node * gpn] = params.source_address(
            node, int(rng.integers(0, n_src))
        )
        genes[node * gpn + 1] = params.source_address(
            node, int(rng.integers(0, n_src))
        )
        genes[node * gpn + 2] = int(rng.integers(0, len(params.functions)))
    lo, hi = params.output_range()
    genes[params.num_nodes * gpn:] = rng.integers(
        lo, hi, size=params.num_outputs
    )
    return Chromosome(params, genes)
