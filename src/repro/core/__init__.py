"""WMED-driven CGP circuit approximation — the paper's core contribution."""

from .annealing import AnnealingConfig, anneal
from .chromosome import CGP_FUNCTION_SET, CGPParams, Chromosome
from .components import (
    COMPONENTS,
    ComponentSpec,
    adder_objective,
    barrel_shifter_objective,
    component_names,
    component_objective,
    divider_objective,
    get_component,
    infer_component,
    mac_objective,
    multiplier_objective,
    netlist_objective,
    sampled_component_objective,
    subtractor_objective,
)
from .evolution import EvolutionConfig, EvolutionResult, evolve
from .fitness import EvalResult, MultiplierFitness
from .generic_fitness import CircuitFitness
from .mutation import mutate, random_gene_value
from .objective import (
    CircuitObjective,
    SampledEvalResult,
    SampledObjective,
    SampledStimulus,
    SampleSpec,
    draw_sampled_stimulus,
)
from .pareto import dominates, hypervolume_2d, pareto_indices, pareto_points
from .seeding import netlist_to_chromosome, params_for_netlist, random_chromosome
from .serialization import chromosome_from_string, chromosome_to_string

__all__ = [
    "AnnealingConfig",
    "anneal",
    "CircuitFitness",
    "CircuitObjective",
    "COMPONENTS",
    "ComponentSpec",
    "adder_objective",
    "barrel_shifter_objective",
    "component_names",
    "component_objective",
    "divider_objective",
    "get_component",
    "infer_component",
    "mac_objective",
    "multiplier_objective",
    "netlist_objective",
    "sampled_component_objective",
    "subtractor_objective",
    "SampledEvalResult",
    "SampledObjective",
    "SampledStimulus",
    "SampleSpec",
    "draw_sampled_stimulus",
    "CGP_FUNCTION_SET",
    "CGPParams",
    "Chromosome",
    "EvolutionConfig",
    "EvolutionResult",
    "evolve",
    "EvalResult",
    "MultiplierFitness",
    "mutate",
    "random_gene_value",
    "dominates",
    "hypervolume_2d",
    "pareto_indices",
    "pareto_points",
    "netlist_to_chromosome",
    "params_for_netlist",
    "random_chromosome",
    "chromosome_from_string",
    "chromosome_to_string",
]
