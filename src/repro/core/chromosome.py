"""CGP genotype: parameters, chromosome, decoding and simulation.

A candidate circuit is the integer string of Section III-B: ``r x c``
programmable nodes, each encoded as ``na`` source genes plus one function
gene, followed by ``no`` output genes.  With the paper's setting ``r = 1``
every node may read any primary input or any earlier node (full
levels-back), which is also what seeding from a netlist requires.

The chromosome is stored as a flat ``numpy.int64`` array so mutation is a
couple of vectorized draws, and simulation works directly on the genotype
(no netlist conversion inside the search loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import DEFAULT_FUNCTION_SET, gate_function
from ..circuits.netlist import Netlist

__all__ = ["CGPParams", "Chromosome", "CGP_FUNCTION_SET"]

#: Function set used for the paper's experiments: identity, inversion, all
#: standard two-input gates, plus constants (needed to seed Baugh-Wooley
#: correction terms and handy for aggressive approximation).
CGP_FUNCTION_SET: Tuple[str, ...] = DEFAULT_FUNCTION_SET + ("CONST0", "CONST1")


@dataclass(frozen=True)
class CGPParams:
    """Structural CGP parameters (paper Section III-B).

    Attributes:
        num_inputs: ``ni`` primary inputs.
        num_outputs: ``no`` primary outputs.
        columns: ``c`` columns of programmable nodes.
        rows: ``r`` rows; the paper uses 1, which keeps full connectivity.
        arity: ``na`` source genes per node (2 throughout).
        functions: Names of the node functions (the set Gamma).
        levels_back: How many preceding columns a node may read from;
            ``None`` means unrestricted (all previous columns + inputs).
    """

    num_inputs: int
    num_outputs: int
    columns: int
    rows: int = 1
    arity: int = 2
    functions: Tuple[str, ...] = CGP_FUNCTION_SET
    levels_back: Optional[int] = None

    def __post_init__(self) -> None:
        if min(self.num_inputs, self.num_outputs, self.columns, self.rows) <= 0:
            raise ValueError("all structural parameters must be positive")
        if self.arity != 2:
            raise ValueError("this implementation fixes arity at 2")
        for fn in self.functions:
            gate_function(fn)  # raises on unknown names
        # Per-function-index evaluation tables, precomputed once so the
        # inner simulation loop avoids dict lookups (frozen dataclass, so
        # set via object.__setattr__).
        specs = [gate_function(fn) for fn in self.functions]
        object.__setattr__(
            self, "_arities", tuple(spec.arity for spec in specs)
        )
        object.__setattr__(
            self, "_packed_fns", tuple(spec.packed for spec in specs)
        )

    def __getstate__(self) -> dict:
        """Pickle only the declared fields.

        The derived ``_arities`` / ``_packed_fns`` tables hold lambdas
        (unpicklable); they are rebuilt by ``__post_init__`` on load.
        Needed so chromosomes can cross process boundaries in parallel
        sweeps.
        """
        import dataclasses

        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self.__post_init__()

    @property
    def num_nodes(self) -> int:
        return self.columns * self.rows

    @property
    def genes_per_node(self) -> int:
        return self.arity + 1

    @property
    def genome_length(self) -> int:
        """``S = r * c * (na + 1) + no`` integers."""
        return self.num_nodes * self.genes_per_node + self.num_outputs

    def node_column(self, node: int) -> int:
        return node // self.rows

    def _first_source_column(self, node: int) -> int:
        col = self.node_column(node)
        if self.levels_back is None:
            return 0
        return max(0, col - self.levels_back)

    def num_sources(self, node: int) -> int:
        """Number of legal sources for a node's input genes.

        Legal sources are all primary inputs plus the nodes in the
        admissible preceding columns (``levels_back`` of them; all with
        the paper's unrestricted setting).
        """
        col = self.node_column(node)
        return self.num_inputs + (col - self._first_source_column(node)) * self.rows

    def source_address(self, node: int, index: int) -> int:
        """Map a uniform source index to a signal address for ``node``."""
        if index < self.num_inputs:
            return index
        offset = index - self.num_inputs
        return self.num_inputs + self._first_source_column(node) * self.rows + offset

    def legal_source(self, node: int, address: int) -> bool:
        """Whether ``address`` is a legal input source for ``node``."""
        if 0 <= address < self.num_inputs:
            return True
        node_index = address - self.num_inputs
        if not 0 <= node_index < self.num_nodes:
            return False
        col = node_index // self.rows
        return self._first_source_column(node) <= col < self.node_column(node)

    def output_range(self) -> Tuple[int, int]:
        """Legal half-open address range for output genes."""
        return 0, self.num_inputs + self.num_nodes


@dataclass
class Chromosome:
    """One CGP individual: parameters plus the integer genome."""

    params: CGPParams
    genes: np.ndarray
    _active_cache: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        genes = np.asarray(self.genes, dtype=np.int64)
        if genes.shape != (self.params.genome_length,):
            raise ValueError(
                f"genome must have {self.params.genome_length} genes, "
                f"got {genes.shape}"
            )
        self.genes = genes

    # ------------------------------------------------------------------
    # Gene accessors
    # ------------------------------------------------------------------
    def node_genes(self, node: int) -> Tuple[int, int, int]:
        """``(src_a, src_b, fn_index)`` of a node."""
        base = node * self.params.genes_per_node
        g = self.genes
        return int(g[base]), int(g[base + 1]), int(g[base + 2])

    @property
    def output_genes(self) -> np.ndarray:
        return self.genes[self.params.num_nodes * self.params.genes_per_node:]

    def node_function(self, node: int) -> str:
        return self.params.functions[self.node_genes(node)[2]]

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        """Drop the cached active-node set (call after in-place edits)."""
        self._active_cache = None

    def active_nodes(self) -> np.ndarray:
        """Indices of nodes in the output cone, ascending (= topological)."""
        if self._active_cache is not None:
            return self._active_cache
        p = self.params
        genes = self.genes
        gpn = p.genes_per_node
        ni = p.num_inputs
        arities = p._arities
        needed = np.zeros(p.num_nodes, dtype=bool)
        for out in genes[p.num_nodes * gpn:]:
            if out >= ni:
                needed[out - ni] = True
        # Sources always precede their node, so one reverse sweep settles
        # the transitive fan-in without a worklist.
        for node in range(p.num_nodes - 1, -1, -1):
            if not needed[node]:
                continue
            base = node * gpn
            arity = arities[genes[base + 2]]
            if arity >= 1 and genes[base] >= ni:
                needed[genes[base] - ni] = True
            if arity >= 2 and genes[base + 1] >= ni:
                needed[genes[base + 1] - ni] = True
        active = np.nonzero(needed)[0]
        self._active_cache = active
        return active

    def active_gene_positions(self) -> np.ndarray:
        """Genome positions whose mutation can change the phenotype.

        These are the genes of active nodes plus the output genes; a
        mutation touching none of them is phenotypically neutral, which
        the evolution loop exploits to skip re-evaluation.
        """
        p = self.params
        gpn = p.genes_per_node
        active = self.active_nodes()
        node_positions = (active[:, None] * gpn + np.arange(gpn)).ravel()
        out_positions = np.arange(
            p.num_nodes * gpn, p.genome_length, dtype=np.int64
        )
        return np.concatenate([node_positions, out_positions])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def simulate(self, input_words: np.ndarray) -> List[np.ndarray]:
        """Packed simulation of the phenotype (active nodes only).

        Args:
            input_words: Array ``(num_inputs, W)`` of packed stimulus.

        Returns:
            One packed word array per primary output.
        """
        p = self.params
        if input_words.shape[0] != p.num_inputs:
            raise ValueError(
                f"stimulus rows {input_words.shape[0]} != ni {p.num_inputs}"
            )
        width = input_words.shape[1]
        values: List[Optional[np.ndarray]] = [None] * (p.num_inputs + p.num_nodes)
        for k in range(p.num_inputs):
            values[k] = input_words[k]
        zeros = np.zeros(width, dtype=np.uint64)
        genes = self.genes
        gpn = p.genes_per_node
        ni = p.num_inputs
        arities = p._arities
        packed_fns = p._packed_fns
        for node in self.active_nodes():
            base = int(node) * gpn
            fn_idx = genes[base + 2]
            arity = arities[fn_idx]
            a = values[genes[base]] if arity >= 1 else zeros
            b = values[genes[base + 1]] if arity >= 2 else zeros
            values[ni + int(node)] = packed_fns[fn_idx](a, b)
        outs = []
        for out in self.output_genes:
            val = values[int(out)]
            if val is None:  # pragma: no cover - defensive
                raise RuntimeError(f"output source {out} not computed")
            outs.append(val)
        return outs

    def cell_counts(self) -> dict:
        """Histogram of active node functions (for area estimation)."""
        p = self.params
        counts: dict = {}
        for node in self.active_nodes():
            fn = p.functions[self.node_genes(int(node))[2]]
            counts[fn] = counts.get(fn, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_netlist(self, name: str = "") -> Netlist:
        """Export the phenotype (active cone) as a compact netlist."""
        p = self.params
        net = Netlist(num_inputs=p.num_inputs, name=name)
        remap = {k: k for k in range(p.num_inputs)}
        for node in self.active_nodes():
            src_a, src_b, fn_idx = self.node_genes(int(node))
            fn = p.functions[fn_idx]
            arity = gate_function(fn).arity
            srcs = tuple(remap[s] for s in (src_a, src_b)[:arity])
            remap[p.num_inputs + int(node)] = net.add_gate(fn, *srcs)
        outs = []
        for out in self.output_genes:
            out = int(out)
            if out in remap:
                outs.append(remap[out])
            else:
                # Output wired straight to an input that is otherwise
                # unused as a gate source: inputs always map to themselves.
                outs.append(out)
        net.set_outputs(outs)
        return net

    def copy(self) -> "Chromosome":
        clone = Chromosome(self.params, self.genes.copy())
        clone._active_cache = self._active_cache
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.params
        return (
            f"<Chromosome ni={p.num_inputs} no={p.num_outputs} "
            f"c={p.columns} active={len(self.active_nodes())}>"
        )
