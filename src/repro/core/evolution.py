"""The (1 + lambda) evolution strategy of CGP (paper Section III-C).

Starting from a parent (the seeded exact circuit, or the survivor of a
previous target level), each generation creates ``lambda`` mutants,
evaluates them with Eq. (1), and promotes the best offspring whenever it
is *at least as fit* as the parent — the neutral-drift rule that CGP
relies on to traverse plateaus.

Three standard accelerations are implemented, none of which changes the
search semantics:

* offspring whose mutations touch only inactive genes inherit the parent's
  evaluation without simulation (their phenotype is identical);
* the evaluator precomputes stimulus / reference / weights once per run;
* each generation's offspring are evaluated as one batch — through the
  evaluator's ``evaluate_batch`` when it provides one (the compiled
  engine of :mod:`repro.engine` does, with phenotype caching), else
  sequentially.  Mutation draws happen before any evaluation, so the RNG
  stream, and therefore the search trajectory, is identical either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..obs.trace import span
from .chromosome import Chromosome
from .mutation import mutate
from .objective import CircuitObjective, EvalResult

__all__ = ["EvolutionConfig", "EvolutionResult", "evolve"]


@dataclass(frozen=True)
class EvolutionConfig:
    """Search hyper-parameters (paper defaults).

    ``tie_break_error`` refines Eq. (1)'s acceptance: among candidates of
    equal area (including the infeasible ones), the one with lower WMED is
    preferred.  This keeps all of CGP's neutral drift over genotypes with
    identical (area, WMED) while preventing the search from silently
    drifting *toward* the error budget on plateaus — which matters at
    small evaluation budgets.  Set to ``False`` for the paper's literal
    area-only fitness.
    """

    generations: int = 10_000
    lam: int = 4
    h: int = 5
    neutral_drift: bool = True
    skip_neutral_evaluations: bool = True
    tie_break_error: bool = True
    time_limit_s: Optional[float] = None
    history_every: int = 0


@dataclass
class EvolutionResult:
    """Outcome of one CGP run at a fixed WMED target."""

    best: Chromosome
    best_eval: EvalResult
    generations: int
    evaluations: int
    threshold: float
    history: List[Tuple[int, float, float]] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.best_eval.feasible()


def evolve(
    seed: Chromosome,
    evaluator: CircuitObjective,
    threshold: float,
    config: Optional[EvolutionConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> EvolutionResult:
    """Run (1 + lambda) CGP minimizing Eq. (1) at one error target.

    Args:
        seed: Initial parent (typically a seeded exact circuit, whose
            error of 0 satisfies any threshold).
        evaluator: Precomputed :class:`~repro.core.objective
            .CircuitObjective` (any component, any metric) — or the
            engine-backed :class:`~repro.engine.CompiledObjective`.
        threshold: Error target ``E_i`` (normalized units, e.g. 0.005
            for the paper's 0.5 %).
        config: Search hyper-parameters.
        rng: Random source (fresh default generator when omitted).

    Returns:
        :class:`EvolutionResult` with the final parent (the best feasible
        circuit found, by construction of the acceptance rule).
    """
    cfg = config or EvolutionConfig()
    rng = rng or np.random.default_rng()
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    # One REPRO_TRACE span per run; a no-op stub when tracing is off.
    with span("evolve.run", threshold=threshold, lam=cfg.lam) as sp:
        result = _evolve_loop(seed, evaluator, threshold, cfg, rng)
        sp.tag(generations=result.generations,
               evaluations=result.evaluations)
        return result


def _evolve_loop(
    seed: Chromosome,
    evaluator: CircuitObjective,
    threshold: float,
    cfg: EvolutionConfig,
    rng: np.random.Generator,
) -> EvolutionResult:
    parent = seed.copy()
    parent_eval = evaluator.evaluate(parent, threshold)
    evaluations = 1
    history: List[Tuple[int, float, float]] = []
    deadline = (
        time.monotonic() + cfg.time_limit_s if cfg.time_limit_s else None
    )

    def sort_key(result: EvalResult):
        if cfg.tie_break_error:
            return (result.fitness, result.wmed)
        return (result.fitness,)

    batch_eval = getattr(evaluator, "evaluate_batch", None)

    # Reused per-generation scratch: a genome-length activity mask is
    # cheaper to rebuild (vectorized fill + scatter) and to probe (list
    # indexing on the few changed positions) than a Python set of all
    # active positions — same semantics, just a faster membership test.
    active_mask = np.zeros(seed.params.genome_length, dtype=bool)

    generation = 0
    for generation in range(1, cfg.generations + 1):
        active_mask[:] = False
        active_mask[parent.active_gene_positions()] = True
        is_active = active_mask.tolist()
        # Create the whole brood first (all RNG draws), then evaluate the
        # non-neutral offspring as one batch.
        children: List[Chromosome] = []
        child_evals: List[Optional[EvalResult]] = []
        pending: List[Chromosome] = []
        for _ in range(cfg.lam):
            child, changed = mutate(parent, cfg.h, rng)
            children.append(child)
            neutral = cfg.skip_neutral_evaluations and not any(
                is_active[pos] for pos in changed
            )
            if neutral:
                child_evals.append(parent_eval)
            else:
                child_evals.append(None)
                pending.append(child)
        if pending:
            if batch_eval is not None:
                results = batch_eval(pending, threshold)
            else:
                results = [evaluator.evaluate(c, threshold) for c in pending]
            evaluations += len(pending)
            results_iter = iter(results)
            child_evals = [
                ev if ev is not None else next(results_iter)
                for ev in child_evals
            ]

        best_child: Optional[Chromosome] = None
        best_eval: Optional[EvalResult] = None
        for child, child_eval in zip(children, child_evals):
            if best_eval is None or sort_key(child_eval) < sort_key(best_eval):
                best_child, best_eval = child, child_eval
        assert best_child is not None and best_eval is not None

        accept = (
            sort_key(best_eval) <= sort_key(parent_eval)
            if cfg.neutral_drift
            else sort_key(best_eval) < sort_key(parent_eval)
        )
        if accept:
            parent, parent_eval = best_child, best_eval

        if cfg.history_every and generation % cfg.history_every == 0:
            history.append((generation, parent_eval.wmed, parent_eval.area))
        if deadline is not None and time.monotonic() >= deadline:
            break

    return EvolutionResult(
        best=parent,
        best_eval=parent_eval,
        generations=generation,
        evaluations=evaluations,
        threshold=threshold,
        history=history,
    )
