"""Chromosome serialization in a compact CGP string format.

Evolved circuits are published (EvoApprox-style) as one-line CGP
chromosome strings so they can be archived, diffed and re-imported
without pickling.  Format::

    {ni,no,c,r,na,lb,fn0|fn1|...}([s0,s1,f],[s0,s1,f],...)(o0,o1,...)

* header: structural parameters; ``lb`` is the levels-back value or ``*``
  for unrestricted; the function set is recorded by name,
* one ``[src_a,src_b,fn_index]`` triple per node,
* the output gene list.
"""

from __future__ import annotations

import re
from typing import Tuple

import numpy as np

from .chromosome import CGPParams, Chromosome

__all__ = ["chromosome_to_string", "chromosome_from_string"]

_HEADER_RE = re.compile(r"^\{([^}]*)\}")
_NODE_RE = re.compile(r"\[(\-?\d+),(\-?\d+),(\-?\d+)\]")
_OUTPUT_RE = re.compile(r"\(([\d,\s]*)\)$")


def chromosome_to_string(chromosome: Chromosome) -> str:
    """Serialize a chromosome (parameters + genome) to one line."""
    p = chromosome.params
    lb = "*" if p.levels_back is None else str(p.levels_back)
    header = (
        f"{{{p.num_inputs},{p.num_outputs},{p.columns},{p.rows},"
        f"{p.arity},{lb},{'|'.join(p.functions)}}}"
    )
    nodes = []
    for node in range(p.num_nodes):
        a, b, fn = chromosome.node_genes(node)
        nodes.append(f"[{a},{b},{fn}]")
    outputs = ",".join(str(int(o)) for o in chromosome.output_genes)
    return f"{header}({''.join(nodes)})({outputs})"


def chromosome_from_string(text: str) -> Chromosome:
    """Parse a string produced by :func:`chromosome_to_string`.

    Raises:
        ValueError: on malformed input or gene counts inconsistent with
            the header.
    """
    text = text.strip()
    header_match = _HEADER_RE.match(text)
    if not header_match:
        raise ValueError("missing {ni,no,c,r,na,lb,functions} header")
    fields = header_match.group(1).split(",", 6)
    if len(fields) != 7:
        raise ValueError(f"header needs 7 fields, got {len(fields)}")
    ni, no, c, r, na = (int(v) for v in fields[:5])
    lb = None if fields[5] == "*" else int(fields[5])
    functions: Tuple[str, ...] = tuple(fields[6].split("|"))
    params = CGPParams(
        num_inputs=ni,
        num_outputs=no,
        columns=c,
        rows=r,
        arity=na,
        functions=functions,
        levels_back=lb,
    )

    body = text[header_match.end():]
    nodes = _NODE_RE.findall(body)
    if len(nodes) != params.num_nodes:
        raise ValueError(
            f"expected {params.num_nodes} node triples, found {len(nodes)}"
        )
    out_match = _OUTPUT_RE.search(body)
    if not out_match:
        raise ValueError("missing output gene list")
    outs = [int(v) for v in out_match.group(1).split(",") if v.strip()]
    if len(outs) != no:
        raise ValueError(f"expected {no} output genes, found {len(outs)}")

    genes = np.zeros(params.genome_length, dtype=np.int64)
    gpn = params.genes_per_node
    for k, (a, b, fn) in enumerate(nodes):
        genes[k * gpn] = int(a)
        genes[k * gpn + 1] = int(b)
        genes[k * gpn + 2] = int(fn)
    genes[params.num_nodes * gpn:] = outs
    chromosome = Chromosome(params, genes)

    # Structural validation: every gene must be legal.
    for node in range(params.num_nodes):
        a, b, fn = chromosome.node_genes(node)
        if not 0 <= fn < len(functions):
            raise ValueError(f"node {node}: function index {fn} out of range")
        arity = 2  # connection genes must be legal regardless of arity
        for src in (a, b)[:arity]:
            if not params.legal_source(node, src):
                raise ValueError(f"node {node}: illegal source {src}")
    lo, hi = params.output_range()
    for out in outs:
        if not lo <= out < hi:
            raise ValueError(f"output gene {out} out of range")
    return chromosome
