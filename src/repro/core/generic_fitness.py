"""Backward-compatible alias for the generic objective.

.. deprecated::
    :class:`CircuitFitness` predates the objective layer; it is now a
    thin subclass of :class:`~repro.core.objective.CircuitObjective`
    kept so existing callers (and serialized experiment scripts) keep
    working.  New code should use :class:`CircuitObjective` or the
    component constructors in :mod:`repro.core.components` directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tech.library import TechLibrary
from .objective import CircuitObjective

__all__ = ["CircuitFitness"]


class CircuitFitness(CircuitObjective):
    """Eq. (1) fitness against an arbitrary reference function.

    Same constructor as the historical class; see
    :class:`~repro.core.objective.CircuitObjective` for the semantics
    (this subclass adds nothing beyond the name).
    """

    def __init__(
        self,
        num_inputs: int,
        reference: np.ndarray,
        weights: Optional[np.ndarray] = None,
        signed: bool = False,
        normalizer: Optional[float] = None,
        library: Optional[TechLibrary] = None,
        metric: object = "wmed",
    ) -> None:
        super().__init__(
            num_inputs=num_inputs,
            reference=reference,
            weights=weights,
            signed=signed,
            normalizer=normalizer,
            metric=metric,
            library=library,
        )
