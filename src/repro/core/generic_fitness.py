"""WMED-constrained fitness for arbitrary combinational functions.

The paper presents the method on multipliers "for the sake of
simplicity" (Section III) but the machinery is function-agnostic:
:class:`CircuitFitness` evaluates any candidate against any reference
truth table under any per-vector weight vector.  This is the entry point
for approximating adders, MAC slices or custom datapath blocks with the
same WMED-driven search.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..circuits.simulator import exhaustive_inputs
from ..tech.library import TechLibrary, default_library
from .chromosome import Chromosome
from .fitness import EvalResult

__all__ = ["CircuitFitness"]


class CircuitFitness:
    """Eq. (1) fitness against an arbitrary reference function.

    Args:
        num_inputs: Primary input count of the candidates; the reference
            table must enumerate all ``2**num_inputs`` vectors.
        reference: Exact outputs in vector order (``int64``).
        weights: Per-vector importance; normalized internally.  ``None``
            means uniform (plain MED).
        signed: Decode candidate output buses as two's complement.
        normalizer: Error scale so the metric lands in [0, ~1]; defaults
            to ``max |reference|`` (falling back to 1 for the all-zero
            function).
        library: Technology library for the area term.
    """

    def __init__(
        self,
        num_inputs: int,
        reference: np.ndarray,
        weights: Optional[np.ndarray] = None,
        signed: bool = False,
        normalizer: Optional[float] = None,
        library: Optional[TechLibrary] = None,
    ) -> None:
        reference = np.asarray(reference, dtype=np.int64).ravel()
        expected = 1 << num_inputs
        if reference.shape != (expected,):
            raise ValueError(
                f"reference must have {expected} entries, got {reference.shape}"
            )
        self.num_inputs = num_inputs
        self.num_vectors = expected
        self.reference = reference
        self.signed = signed
        self.stimulus = exhaustive_inputs(num_inputs)
        if weights is None:
            weights = np.full(expected, 1.0 / expected)
        else:
            weights = np.asarray(weights, dtype=np.float64).ravel()
            if weights.shape != (expected,):
                raise ValueError("weights length must match the vector count")
            total = weights.sum()
            if total <= 0:
                raise ValueError("weights must have positive mass")
            weights = weights / total
        self.weights = weights
        if normalizer is None:
            normalizer = float(np.abs(reference).max()) or 1.0
        if normalizer <= 0:
            raise ValueError("normalizer must be positive")
        self.normalizer = float(normalizer)
        self.library = library or default_library()
        self._area_cache: Dict[Tuple[str, ...], np.ndarray] = {}

    # The decode / area / evaluate machinery is identical to the
    # multiplier evaluator's; shared via small delegating methods so the
    # hot path stays in one place.
    def truth_table(self, chromosome: Chromosome) -> np.ndarray:
        """Decoded integer outputs of the candidate over all vectors."""
        from .fitness import MultiplierFitness

        return MultiplierFitness.truth_table(self, chromosome)  # type: ignore[arg-type]

    def wmed(self, chromosome: Chromosome) -> float:
        """Weighted, normalized mean error distance of the candidate."""
        table = self.truth_table(chromosome)
        err = np.abs(self.reference - table).astype(np.float64)
        return float(np.dot(self.weights, err)) / self.normalizer

    def area(self, chromosome: Chromosome) -> float:
        """Active-cone cell area in um^2."""
        from .fitness import MultiplierFitness

        return MultiplierFitness.area(self, chromosome)  # type: ignore[arg-type]

    def _areas_by_fn_index(self, functions: Tuple[str, ...]) -> np.ndarray:
        from .fitness import MultiplierFitness

        return MultiplierFitness._areas_by_fn_index(self, functions)  # type: ignore[arg-type]

    def evaluate(self, chromosome: Chromosome, threshold: float) -> EvalResult:
        """Eq. (1): area when the error constraint holds, else inf."""
        error = self.wmed(chromosome)
        area = self.area(chromosome)
        fitness = area if error <= threshold else float("inf")
        return EvalResult(fitness=fitness, wmed=error, area=area)
