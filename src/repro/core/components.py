"""Component builders: one objective constructor per datapath block.

The objective layer (:mod:`repro.core.objective`) is function-agnostic;
this module knows the concrete components — how to build an exact seed
circuit, what its reference truth table is, and how a data distribution
on the ``x`` operand maps to per-vector weights.  Everything the search
stack needs to approximate a component is derived from one
:class:`ComponentSpec`:

* ``multiplier`` — ``2w -> 2w`` bits, products (the paper's component);
* ``adder`` — ``2w -> w+1`` bits, unsigned sums with carry-out;
* ``mac`` — ``[x, y, acc] -> acc'`` multiply-accumulate slice with a
  ``2w+1``-bit accumulator (depth-2 sizing); exhaustive over
  ``2**(4w+1)`` vectors, so it is practical for ``w <= 5``;
* ``divider`` — ``2w -> w`` bits, unsigned quotients ``x // y`` with the
  ``x / 0 := 2**w - 1`` (all-ones) convention;
* ``subtractor`` — ``2w -> w+1`` bits, wrap-around two's-complement
  differences ``(x - y) mod 2**(w+1)``;
* ``barrel-shifter`` — ``2w -> w`` bits, logical left shifts
  ``(x << s) mod 2**w`` with ``s`` the low ``max(1, ceil(log2(w)))``
  bits of operand ``y``.

``netlist_objective`` covers anything else: it takes an arbitrary exact
netlist and uses its simulated truth table as the reference.

Interface shapes are not unique: the subtractor shares the adder's
``2w -> w+1`` shape, the barrel shifter the divider's ``2w -> w``.
:func:`infer_component` therefore returns *every* matching
``(component, width)`` pair and callers that need exactly one (e.g. the
CLI ``characterize`` command) must ask the user to disambiguate instead
of silently picking the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulator import truth_table
from ..errors.distributions import Distribution
from ..errors.truth_tables import (
    exact_product_table,
    max_product_magnitude,
    operand_values,
    operand_weights,
)
from ..tech.library import TechLibrary
from .objective import CircuitObjective, SampledObjective, SampleSpec

__all__ = [
    "ComponentSpec",
    "COMPONENTS",
    "component_names",
    "get_component",
    "infer_component",
    "component_objective",
    "sampled_component_objective",
    "multiplier_objective",
    "adder_objective",
    "mac_objective",
    "divider_objective",
    "subtractor_objective",
    "barrel_shifter_objective",
    "netlist_objective",
]

#: MAC widths above this are rejected: the objective is exhaustive over
#: ``2**(4w+1)`` vectors and 2**21 is the largest practical table.
_MAC_MAX_WIDTH = 5


def _mac_acc_width(width: int) -> int:
    """Accumulator width for the standard MAC slice (depth-2 sizing)."""
    return 2 * width + 1


def _decode(patterns: np.ndarray, bits: int, signed: bool) -> np.ndarray:
    """Numeric value of each ``bits``-wide pattern (shared decode table)."""
    return operand_values(bits, signed)[patterns]


def _wrap(values: np.ndarray, bits: int, signed: bool) -> np.ndarray:
    """Wrap integers to a ``bits``-wide bus and re-decode."""
    return _decode(values & ((1 << bits) - 1), bits, signed)


@dataclass(frozen=True)
class ComponentSpec:
    """Everything the search stack needs to know about one component.

    Attributes:
        name: Registry key (``"multiplier"``, ``"adder"``, ``"mac"``,
            ``"divider"``, ``"subtractor"``, ``"barrel-shifter"``).
        num_inputs: ``width -> ni`` of the standard interface.
        num_outputs: ``width -> no`` of the standard interface.
        build_seed: ``(width, signed) -> Netlist`` exact seed circuit.
        reference: ``(width, signed) -> int64`` closed-form truth table
            in vector order (always equal to simulating the seed).
        supports_signed: Whether a two's-complement variant exists.
        max_width: Largest practical operand width (exhaustive tables).
        reference_at: ``(width, signed, vectors) -> int64`` exact
            outputs at the given raw input-vector patterns — the
            closed-form per-vector sibling of ``reference``, usable at
            widths where the full table cannot be materialized (the
            sampled-evaluation path).
        max_abs_reference: ``(width, signed) -> int`` closed-form
            ``max |reference|`` over the full domain — the sampled
            objective's normalizer, equal to what the exhaustive
            objective derives from the materialized table.
        sampled_max_width: Largest operand width the sampled path
            supports (bounded by 62-bit vector patterns and int64
            reference arithmetic, not by table size).
    """

    name: str
    num_inputs: Callable[[int], int]
    num_outputs: Callable[[int], int]
    build_seed: Callable[[int, bool], Netlist]
    reference: Callable[[int, bool], np.ndarray]
    supports_signed: bool = True
    max_width: int = 16
    reference_at: Optional[
        Callable[[int, bool, np.ndarray], np.ndarray]
    ] = None
    max_abs_reference: Optional[Callable[[int, bool], int]] = None
    sampled_max_width: int = 31

    def check_width(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if width > self.max_width:
            raise ValueError(
                f"{self.name} objective is exhaustive over "
                f"2**{self.num_inputs(width)} vectors; width must be "
                f"<= {self.max_width} (the sampled path supports up to "
                f"{self.sampled_max_width})"
            )

    def check_sampled_width(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if self.reference_at is None or self.max_abs_reference is None:
            raise ValueError(
                f"{self.name} has no closed-form per-vector reference; "
                f"sampled evaluation is unavailable"
            )
        if width > self.sampled_max_width:
            raise ValueError(
                f"{self.name} sampled evaluation supports width <= "
                f"{self.sampled_max_width} (62-bit packed vectors, int64 "
                f"reference arithmetic); got {width}"
            )

    def resolve_signed(self, signed: bool) -> bool:
        """Clamp a requested signedness to what the component supports."""
        return signed and self.supports_signed

    def infer_width(self, num_inputs: int, num_outputs: int) -> Optional[int]:
        """Operand width matching an interface shape, or ``None``."""
        for width in range(1, 65):
            if (
                self.num_inputs(width) == num_inputs
                and self.num_outputs(width) == num_outputs
            ):
                return width
            if self.num_inputs(width) > num_inputs:
                return None
        return None


# ----------------------------------------------------------------------
# Seed builders and closed-form references
# ----------------------------------------------------------------------
def _multiplier_seed(width: int, signed: bool) -> Netlist:
    from ..circuits.generators import (
        build_baugh_wooley_multiplier,
        build_multiplier,
    )

    if signed:
        return build_baugh_wooley_multiplier(width)
    return build_multiplier(width, signed=False)


def _adder_seed(width: int, signed: bool) -> Netlist:
    from ..circuits.generators import build_ripple_carry_adder

    return build_ripple_carry_adder(width)


def _adder_reference(width: int, signed: bool) -> np.ndarray:
    from ..circuits.verify import reference_sums

    return reference_sums(width, signed=False)


def _mac_seed(width: int, signed: bool) -> Netlist:
    from ..circuits.generators.mac import build_mac

    return build_mac(width, _mac_acc_width(width), signed=signed)


def _mac_reference(width: int, signed: bool) -> np.ndarray:
    """``acc + x * y`` wrapped to the accumulator width, vector order."""
    acc_width = _mac_acc_width(width)
    ni = 2 * width + acc_width
    v = np.arange(1 << ni, dtype=np.int64)
    mask = (1 << width) - 1
    x = _decode(v & mask, width, signed)
    y = _decode((v >> width) & mask, width, signed)
    acc = _decode(v >> (2 * width), acc_width, signed)
    return _wrap(acc + x * y, acc_width, signed)


def _operand_grids(width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Unsigned ``(x, y)`` operand values for every input vector."""
    v = np.arange(1 << (2 * width), dtype=np.int64)
    return v & ((1 << width) - 1), v >> width


def _divider_seed(width: int, signed: bool) -> Netlist:
    from ..circuits.generators import build_restoring_divider

    return build_restoring_divider(width)


def _divider_reference(width: int, signed: bool) -> np.ndarray:
    """``x // y`` with ``x / 0 = 2**width - 1`` (all-ones), vector order.

    The all-ones convention is what a restoring array produces for free
    (a zero divisor never borrows, so every quotient bit restores to 1);
    encoding it here keeps the closed form equal to the seed circuit.
    """
    x, y = _operand_grids(width)
    return np.where(y == 0, (1 << width) - 1, x // np.maximum(y, 1))


def _subtractor_seed(width: int, signed: bool) -> Netlist:
    from ..circuits.generators import build_borrow_ripple_subtractor

    return build_borrow_ripple_subtractor(width)


def _subtractor_reference(width: int, signed: bool) -> np.ndarray:
    """``(x - y) mod 2**(width + 1)``, vector order.

    The two's-complement encoding of ``x - y`` wrapped to ``w + 1``
    bits: the borrow-out doubles as the sign bit, read unsigned.
    """
    x, y = _operand_grids(width)
    return (x - y) & ((1 << (width + 1)) - 1)


def _shifter_seed(width: int, signed: bool) -> Netlist:
    from ..circuits.generators import build_barrel_shifter

    return build_barrel_shifter(width)


def _shifter_reference(width: int, signed: bool) -> np.ndarray:
    """``(x << s) mod 2**width``, ``s`` = low shift bits of ``y``."""
    from ..circuits.generators import shift_amount_bits

    x, y = _operand_grids(width)
    s = y & ((1 << shift_amount_bits(width)) - 1)
    return (x << s) & ((1 << width) - 1)


# ----------------------------------------------------------------------
# Per-vector closed-form references (the sampled-evaluation path):
# identical arithmetic to the table builders above, but evaluated only
# at the given raw input-vector patterns, so they work at widths whose
# 2**ni tables cannot exist.
# ----------------------------------------------------------------------
def _decode_at(patterns: np.ndarray, bits: int, signed: bool) -> np.ndarray:
    """Numeric value of each ``bits``-wide pattern, without a table."""
    v = patterns.astype(np.int64)
    if signed:
        half = np.int64(1 << (bits - 1))
        v = np.where(v >= half, v - np.int64(1 << bits), v)
    return v


def _operands_at(vectors: np.ndarray, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Raw ``(x, y)`` operand patterns of each vector (standard layout)."""
    v = vectors.astype(np.int64)
    mask = np.int64((1 << width) - 1)
    return v & mask, (v >> width) & mask


def _multiplier_reference_at(
    width: int, signed: bool, vectors: np.ndarray
) -> np.ndarray:
    x, y = _operands_at(vectors, width)
    return _decode_at(x, width, signed) * _decode_at(y, width, signed)


def _adder_reference_at(
    width: int, signed: bool, vectors: np.ndarray
) -> np.ndarray:
    x, y = _operands_at(vectors, width)
    return x + y


def _mac_reference_at(
    width: int, signed: bool, vectors: np.ndarray
) -> np.ndarray:
    acc_width = _mac_acc_width(width)
    x, y = _operands_at(vectors, width)
    acc = _decode_at(
        vectors.astype(np.int64) >> (2 * width), acc_width, signed
    )
    total = acc + _decode_at(x, width, signed) * _decode_at(y, width, signed)
    return _decode_at(
        total & np.int64((1 << acc_width) - 1), acc_width, signed
    )


def _divider_reference_at(
    width: int, signed: bool, vectors: np.ndarray
) -> np.ndarray:
    x, y = _operands_at(vectors, width)
    return np.where(y == 0, (1 << width) - 1, x // np.maximum(y, 1))


def _subtractor_reference_at(
    width: int, signed: bool, vectors: np.ndarray
) -> np.ndarray:
    x, y = _operands_at(vectors, width)
    return (x - y) & np.int64((1 << (width + 1)) - 1)


def _shifter_reference_at(
    width: int, signed: bool, vectors: np.ndarray
) -> np.ndarray:
    from ..circuits.generators import shift_amount_bits

    x, y = _operands_at(vectors, width)
    s = y & np.int64((1 << shift_amount_bits(width)) - 1)
    return (x << s) & np.int64((1 << width) - 1)


# Closed-form max |reference| over the full domain — each provably equal
# to the materialized table's maximum (asserted by the test suite at
# small widths): adder attains 2*(2**w - 1); the divider's x/0 all-ones
# convention and the s=0 shift attain 2**w - 1; the wrapped difference
# attains all-ones at (x=0, y=1); the MAC's wrapped accumulator attains
# the unsigned all-ones / the signed minimum at x*y = 0.
def _mac_max_abs(width: int, signed: bool) -> int:
    acc_width = _mac_acc_width(width)
    return (1 << (acc_width - 1)) if signed else (1 << acc_width) - 1


_MAX_ABS_REFERENCE: Dict[str, Callable[[int, bool], int]] = {
    "multiplier": max_product_magnitude,
    "adder": lambda w, s: (1 << (w + 1)) - 2,
    "mac": _mac_max_abs,
    "divider": lambda w, s: (1 << w) - 1,
    "subtractor": lambda w, s: (1 << (w + 1)) - 1,
    "barrel-shifter": lambda w, s: (1 << w) - 1,
}


COMPONENTS: Dict[str, ComponentSpec] = {
    "multiplier": ComponentSpec(
        name="multiplier",
        num_inputs=lambda w: 2 * w,
        num_outputs=lambda w: 2 * w,
        build_seed=_multiplier_seed,
        reference=exact_product_table,
        supports_signed=True,
        max_width=10,
        reference_at=_multiplier_reference_at,
        max_abs_reference=_MAX_ABS_REFERENCE["multiplier"],
        sampled_max_width=31,
    ),
    "adder": ComponentSpec(
        name="adder",
        num_inputs=lambda w: 2 * w,
        num_outputs=lambda w: w + 1,
        build_seed=_adder_seed,
        reference=_adder_reference,
        supports_signed=False,
        max_width=10,
        reference_at=_adder_reference_at,
        max_abs_reference=_MAX_ABS_REFERENCE["adder"],
        sampled_max_width=31,
    ),
    "mac": ComponentSpec(
        name="mac",
        num_inputs=lambda w: 2 * w + _mac_acc_width(w),
        num_outputs=lambda w: _mac_acc_width(w),
        build_seed=_mac_seed,
        reference=_mac_reference,
        supports_signed=True,
        max_width=_MAC_MAX_WIDTH,
        reference_at=_mac_reference_at,
        max_abs_reference=_MAX_ABS_REFERENCE["mac"],
        # ni = 4w + 1 must fit a 62-bit packed vector pattern.
        sampled_max_width=15,
    ),
    "divider": ComponentSpec(
        name="divider",
        num_inputs=lambda w: 2 * w,
        num_outputs=lambda w: w,
        build_seed=_divider_seed,
        reference=_divider_reference,
        supports_signed=False,
        max_width=10,
        reference_at=_divider_reference_at,
        max_abs_reference=_MAX_ABS_REFERENCE["divider"],
        sampled_max_width=31,
    ),
    "subtractor": ComponentSpec(
        name="subtractor",
        num_inputs=lambda w: 2 * w,
        num_outputs=lambda w: w + 1,
        build_seed=_subtractor_seed,
        reference=_subtractor_reference,
        supports_signed=False,
        max_width=10,
        reference_at=_subtractor_reference_at,
        max_abs_reference=_MAX_ABS_REFERENCE["subtractor"],
        sampled_max_width=31,
    ),
    "barrel-shifter": ComponentSpec(
        name="barrel-shifter",
        num_inputs=lambda w: 2 * w,
        num_outputs=lambda w: w,
        build_seed=_shifter_seed,
        reference=_shifter_reference,
        supports_signed=False,
        max_width=10,
        reference_at=_shifter_reference_at,
        max_abs_reference=_MAX_ABS_REFERENCE["barrel-shifter"],
        sampled_max_width=31,
    ),
}


def component_names() -> Tuple[str, ...]:
    """Registered component names, stable order (CLI choices, grids)."""
    return tuple(COMPONENTS)


def get_component(spec) -> ComponentSpec:
    """Resolve a component name (or pass a :class:`ComponentSpec`)."""
    if isinstance(spec, ComponentSpec):
        return spec
    comp = COMPONENTS.get(str(spec).strip().lower())
    if comp is None:
        raise ValueError(
            f"unknown component {spec!r}; known: {', '.join(COMPONENTS)}"
        )
    return comp


def infer_component(
    num_inputs: int, num_outputs: int
) -> Tuple[Tuple[ComponentSpec, int], ...]:
    """Every ``(component, width)`` matching an interface shape.

    Checked in registry order; returns an empty tuple when no
    registered component matches.  Interface shapes are *not* unique —
    a ``2w -> w+1`` netlist is both an adder and a subtractor, a
    ``2w -> w`` netlist both a divider and a barrel shifter (and the
    degenerate ``2 -> 2`` shape also fits a 1-bit multiplier) — so
    callers that need exactly one component must treat a multi-element
    result as ambiguous and ask for an explicit choice (e.g.
    ``--component`` on the CLI) rather than silently picking the first.
    """
    matches = []
    for comp in COMPONENTS.values():
        width = comp.infer_width(num_inputs, num_outputs)
        if width is not None:
            matches.append((comp, width))
    return tuple(matches)


# ----------------------------------------------------------------------
# Objective constructors
# ----------------------------------------------------------------------
def multiplier_objective(
    width: int,
    dist: Distribution,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Objective for ``width``-bit multipliers (the paper's component).

    Signedness follows ``dist.signed``; the normalizer is the maximum
    exact product magnitude so thresholds keep the paper's percent
    semantics.  With ``metric="wmed"`` this is exactly the historical
    ``MultiplierFitness`` — bit-identical trajectories.
    """
    # The legacy class (kept as a deprecated alias) *is* the multiplier
    # objective; constructing it here keeps one canonical code path.
    from .fitness import MultiplierFitness

    return MultiplierFitness(width, dist, library=library, metric=metric)


def _unsigned_objective(
    name: str,
    width: int,
    dist: Distribution,
    metric: object,
    library: Optional[TechLibrary],
) -> CircuitObjective:
    """Shared constructor for the unsigned two-operand components.

    Adder, subtractor, divider and barrel shifter all follow the same
    recipe: closed-form reference over the standard ``[x, y]`` layout,
    ``dist`` weighting the ``x`` operand, normalizer = max reference
    value (the paper's percent semantics).
    """
    comp = COMPONENTS[name]
    comp.check_width(width)
    if dist.width != width:
        raise ValueError("distribution width must match operand width")
    if dist.signed:
        raise ValueError(f"the {name} component is unsigned")
    reference = comp.reference(width, False)
    return CircuitObjective(
        num_inputs=comp.num_inputs(width),
        reference=reference,
        weights=operand_weights(dist, comp.num_inputs(width)),
        signed=False,
        normalizer=float(reference.max()),
        metric=metric,
        library=library,
        component=name,
    )


def adder_objective(
    width: int,
    dist: Distribution,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Objective for unsigned ``width``-bit adders (sum with carry-out)."""
    return _unsigned_objective("adder", width, dist, metric, library)


def divider_objective(
    width: int,
    dist: Distribution,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Objective for unsigned ``width``-bit dividers (``x // y``).

    The reference encodes the ``x / 0 := 2**width - 1`` (all-ones)
    convention, matching the restoring-array seed circuit; ``dist``
    weights the dividend ``x`` (the low input half).
    """
    return _unsigned_objective("divider", width, dist, metric, library)


def subtractor_objective(
    width: int,
    dist: Distribution,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Objective for unsigned ``width``-bit wrap-around subtractors.

    The ``w + 1``-bit reference is the two's-complement encoding of
    ``x - y`` wrapped to ``2**(w+1)`` and read unsigned (borrow-out =
    sign bit); error distances are therefore taken on the wrapped
    encoding, not on the signed difference.
    """
    return _unsigned_objective("subtractor", width, dist, metric, library)


def barrel_shifter_objective(
    width: int,
    dist: Distribution,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Objective for ``width``-bit logical-left barrel shifters.

    The shift amount is the low ``max(1, ceil(log2(width)))`` bits of
    operand ``y`` (see
    :func:`~repro.circuits.generators.shift_amount_bits`); ``dist``
    weights the shifted operand ``x``.
    """
    return _unsigned_objective("barrel-shifter", width, dist, metric, library)


def mac_objective(
    width: int,
    dist: Distribution,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Objective for ``[x, y, acc] -> acc + x*y`` MAC slices.

    The ``x`` operand follows ``dist`` (the application's data
    distribution, e.g. NN weights); ``y`` and the accumulator are
    uniform.  Exhaustive over ``2**(4w+1)`` vectors — practical for
    ``width <= 5``.
    """
    comp = COMPONENTS["mac"]
    comp.check_width(width)
    if dist.width != width:
        raise ValueError("distribution width must match operand width")
    reference = comp.reference(width, dist.signed)
    return CircuitObjective(
        num_inputs=comp.num_inputs(width),
        reference=reference,
        weights=operand_weights(dist, comp.num_inputs(width)),
        signed=dist.signed,
        normalizer=float(np.abs(reference).max()),
        metric=metric,
        library=library,
        component="mac",
    )


_OBJECTIVE_BUILDERS = {
    "multiplier": multiplier_objective,
    "adder": adder_objective,
    "mac": mac_objective,
    "divider": divider_objective,
    "subtractor": subtractor_objective,
    "barrel-shifter": barrel_shifter_objective,
}


def component_objective(
    component: str,
    width: int,
    dist: Distribution,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Dispatch to the named component's objective constructor."""
    comp = get_component(component)
    return _OBJECTIVE_BUILDERS[comp.name](
        width, dist, metric=metric, library=library
    )


def sampled_component_objective(
    component: str,
    width: int,
    dist,
    spec: Optional[SampleSpec] = None,
    metric: object = "wmed",
    library: Optional[TechLibrary] = None,
) -> SampledObjective:
    """Monte-Carlo objective for a registered component at any width.

    The sampled sibling of :func:`component_objective`: instead of
    materializing the ``2**ni`` reference table it draws ``spec.samples
    * spec.replicates`` input vectors (the ``x`` operand from ``dist``,
    every other input bit uniform, mirroring ``operand_weights``) and
    evaluates the component's closed-form ``reference_at`` only there.
    ``dist`` may be a parametric :class:`~repro.errors.distributions.
    WideDistribution` — nothing here touches a pmf — so this is the
    only constructor usable at ``width > max_width``.  At small widths
    it estimates the same quantity the exhaustive objective computes
    exactly (same normalizer, same metric semantics).
    """
    comp = get_component(component)
    comp.check_sampled_width(width)
    if dist.width != width:
        raise ValueError("distribution width must match operand width")
    if dist.signed and not comp.supports_signed:
        raise ValueError(f"the {comp.name} component is unsigned")
    signed = comp.resolve_signed(dist.signed)
    return SampledObjective(
        num_inputs=comp.num_inputs(width),
        reference_at=lambda v: comp.reference_at(width, signed, v),
        dist=dist,
        spec=spec if spec is not None else SampleSpec(),
        signed=signed,
        normalizer=float(comp.max_abs_reference(width, signed)),
        metric=metric,
        library=library,
        component=comp.name,
    )


def netlist_objective(
    netlist: Netlist,
    dist: Optional[Distribution] = None,
    metric: object = "wmed",
    signed: bool = False,
    normalizer: Optional[float] = None,
    library: Optional[TechLibrary] = None,
) -> CircuitObjective:
    """Objective whose reference is an arbitrary exact netlist.

    The netlist is simulated exhaustively once; its truth table becomes
    the reference.  ``dist``, if given, weights the low ``dist.width``
    input bits (``None`` means uniform) and must agree with ``signed`` —
    a signed PMF over unsigned patterns (or vice versa) would put each
    pattern's mass on the wrong value.  This is the escape hatch for
    custom datapath blocks with no registered :class:`ComponentSpec`.
    """
    if dist is not None and dist.signed != signed:
        raise ValueError(
            f"distribution signedness ({dist.signed}) must match the "
            f"objective's ({signed})"
        )
    reference = truth_table(netlist, signed=signed)
    weights = (
        operand_weights(dist, netlist.num_inputs) if dist is not None else None
    )
    return CircuitObjective(
        num_inputs=netlist.num_inputs,
        reference=reference,
        weights=weights,
        signed=signed,
        normalizer=normalizer,
        metric=metric,
        library=library,
        component=netlist.name or "netlist",
    )
