"""Endpoint handlers + dispatch: the HTTP-independent core of serving.

Everything here speaks plain Python — :func:`handle` takes a method, a
path and a raw query string and returns a rendered :class:`Response` —
so the whole API surface is testable (and benchmarkable) without a
socket.  :mod:`repro.serve.server` is only the HTTP plumbing around
this function.

Request lifecycle::

    match path against ROUTES ──► 404 unknown path
    check method               ──► 405 with Allow
    validate + coerce query    ──► 422 canonical error
    ETag check (If-None-Match) ──► match: 304, no body
    response cache lookup      ──► hit: return, X-Cache: hit
    handler (library.query     ──► 404 no design / 422 bad vocabulary
      over the store snapshot)
    cache fill                 ──► X-Cache: miss

Catalog responses carry a **strong ETag** derived from ``(route, path
params, validated query params, store-state token)`` — the exact
response-cache key.  Responses are a deterministic function of that
key, so the hash is a valid strong validator, and because the
store-state token is part of it, the same ETag stays valid for as long
as the store file is untouched and flips on any build write.  A request
presenting a matching ``If-None-Match`` is answered ``304`` before the
handler (or even the cache) is consulted.  The token is also identical
across ``--procs N`` worker processes, so a pooled client revalidates
correctly whichever worker accepts its connection.

Handlers read from the :class:`~repro.serve.snapshot.Snapshot` of the
store (``ctx.snapshot()``) rather than SQLite: the snapshot implements
the store's read surface verbatim, so ``library.query`` runs unchanged
and responses are byte-identical to the direct-store path.

Canonical errors: every non-200 body is
``{"error": {"code": <int>, "status": "<reason>", "message": "<why>"}}``
— one shape for clients to branch on, whatever went wrong.

The response cache (:class:`repro.serve.cache.ResponseCache`) is keyed
on ``(route, path params, validated query params, store file state)``;
see :mod:`repro.serve.cache` for why that makes invalidation free.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from functools import lru_cache
from http.client import responses as _REASONS
from typing import Dict, List, Mapping, Optional, Tuple

from time import perf_counter_ns

from .. import __version__
from ..circuits.io import netlist_to_dict
from ..obs import catalog as _obs
from ..obs import fleet_summary
from ..obs.export import CONTENT_TYPE as _PROMETHEUS_CT
from ..obs.export import render_prometheus
from ..obs.trace import span as _span
from ..core.components import component_names
from ..errors.metrics import metric_names
from ..library.export import record_netlist, record_verilog
from ..library.query import COST_COLUMNS, best, front
from ..library.store import SCHEMA_VERSION, DesignRecord, DesignStore
from .cache import ResponseCache, store_state
from .routes import UNSET, Param, Route, match_path
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "ROUTES",
    "Response",
    "ServeContext",
    "handle",
    "make_etag",
    "record_to_json",
]

_JSON = "application/json"


@dataclass(frozen=True)
class Response:
    """One rendered response: status, body bytes, content type, headers."""

    status: int
    body: bytes
    content_type: str = _JSON
    headers: Tuple[Tuple[str, str], ...] = ()

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "Unknown")

    def json(self) -> object:
        """Decode the body as JSON (test/benchmark convenience)."""
        return json.loads(self.body.decode("utf-8"))


def json_response(status: int, payload: object) -> Response:
    """Serialize ``payload`` as a canonical JSON response."""
    body = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
    return Response(status=status, body=body)


def text_response(status: int, text: str, content_type: str) -> Response:
    return Response(
        status=status, body=text.encode("utf-8"), content_type=content_type
    )


def error_response(status: int, message: str) -> Response:
    """The one error shape every non-200 response uses."""
    return json_response(status, {
        "error": {
            "code": status,
            "status": _REASONS.get(status, "Unknown"),
            "message": message,
        },
    })


@dataclass
class ServeContext:
    """Everything a handler needs: store, snapshot, cache, identity.

    ``wire_cache`` is the HTTP layer's rendered-bytes memo
    (:class:`repro.serve.server.WireCache`); it is ``None`` for pure
    dispatch use (tests, benchmarks through :func:`handle`) and is only
    read here for ``/healthz`` observability.
    """

    store: DesignStore
    cache: ResponseCache = field(default_factory=ResponseCache)
    snapshots: Optional[SnapshotManager] = None
    wire_cache: Optional[object] = None

    def __post_init__(self) -> None:
        if self.snapshots is None:
            self.snapshots = SnapshotManager(self.store)

    def snapshot(self) -> Snapshot:
        """The current store snapshot (rebuilt if the store moved)."""
        return self.snapshots.current()

    def state(self) -> Tuple:
        """Freshness token of the backing store (cache key part).

        One ``(st_mtime_ns, st_size)`` pair for a single-file store, a
        tuple of them for a federated mount — either way ``repr`` is
        stable across processes, so ETags and cache keys built from it
        agree across ``--procs N`` workers.
        """
        return self.store.state_token()


# ----------------------------------------------------------------------
# Record serialization
# ----------------------------------------------------------------------
def record_to_json(record: DesignRecord) -> Dict[str, object]:
    """One stored design as a JSON-compatible dict.

    All :class:`~repro.library.store.DesignRecord` fields, plus the two
    derived figures clients always recompute otherwise:
    ``error_percent`` (objective error x 100, the paper's units) and
    ``power_mw`` (``power_uw`` / 1000).  Electrical units are fixed by
    :mod:`repro.tech`: ``area`` um^2, ``power_uw`` uW, ``delay_ps`` ps,
    ``pdp`` fJ.
    """
    data = {f: getattr(record, f) for f in record.__dataclass_fields__}
    data["error_percent"] = record.error_percent
    data["power_mw"] = record.power_uw / 1000.0
    return data


# ----------------------------------------------------------------------
# Handlers: (ctx, path_params, query) -> Response
# ----------------------------------------------------------------------
def _select_kwargs(query: Dict[str, object]) -> Dict[str, object]:
    """Map validated query params onto ``library.query`` keywords."""
    return {
        "component": query["component"],
        "width": query["width"],
        "metric": query["metric"],
        "max_error_percent": query.get("max_error_percent"),
        "minimize": query["minimize"],
        "dist": query.get("dist"),
        "signed": query.get("signed"),
    }


def _h_health(ctx: ServeContext, path_params, query) -> Response:
    # Top-level figures are per-process state: under `repro serve
    # --procs N` each worker answers for itself (own pid, own cache
    # counters, own snapshot) — honest per-worker figures.  The
    # ``fleet`` block is the cross-worker view, read from the shared
    # metrics slab, so any single worker also reports the whole fleet.
    payload = {
        "status": "ok",
        "version": __version__,
        "store": ctx.store.path,
        "stores": [
            {"path": path, "state": list(store_state(path))}
            for path in getattr(ctx.store, "paths", (ctx.store.path,))
        ],
        "schema_version": SCHEMA_VERSION,
        "pid": os.getpid(),
        "designs": ctx.snapshot().count(),
        "cache": ctx.cache.stats(),
        "snapshot": ctx.snapshots.stats(),
        "fleet": fleet_summary(),
    }
    if ctx.wire_cache is not None:
        payload["wire_cache"] = ctx.wire_cache.stats()
    return json_response(200, payload)


def _h_best(ctx: ServeContext, path_params, query) -> Response:
    record = best(ctx.snapshot(), **_select_kwargs(query))
    if record is None:
        return error_response(404, "no stored design matches the query")
    return json_response(200, {"design": record_to_json(record)})


def _h_front(ctx: ServeContext, path_params, query) -> Response:
    records = front(ctx.snapshot(), **_select_kwargs(query))
    return json_response(200, {
        "count": len(records),
        "designs": [record_to_json(r) for r in records],
    })


def _h_stats(ctx: ServeContext, path_params, query) -> Response:
    return json_response(200, ctx.snapshot().stats_payload())


def _h_design(ctx: ServeContext, path_params, query) -> Response:
    prefix = path_params["design_id"]
    records = ctx.snapshot().select(design_id_prefix=prefix)
    if not records:
        return error_response(
            404, f"no design with id prefix {prefix!r}"
        )
    fmt = query["format"]
    if fmt == "json":
        return json_response(200, {
            "count": len(records),
            "designs": [record_to_json(r) for r in records],
        })
    # One content address = one phenotype: rows under several groups
    # share their circuit, so any row yields the artifact.  Distinct
    # addresses sharing the prefix are a different story — returning
    # one of several circuits would be silently wrong, so ask the
    # client to disambiguate.
    distinct = sorted({r.design_id for r in records})
    if len(distinct) > 1:
        shown = ", ".join(d[:12] for d in distinct[:8])
        return error_response(
            409,
            f"prefix {prefix!r} is ambiguous for format={fmt}: it "
            f"matches {len(distinct)} designs ({shown}); use a longer "
            "prefix (format=json lists all matches)",
        )
    if fmt == "verilog":
        return text_response(
            200, record_verilog(records[0]), "text/x-verilog; charset=utf-8"
        )
    return json_response(200, netlist_to_dict(record_netlist(records[0])))


@lru_cache(maxsize=1)
def _openapi_response() -> Response:
    # The spec only changes with the code: render once per process.
    from .openapi import generate_openapi  # lazy: openapi imports ROUTES

    return json_response(200, generate_openapi())


def _h_openapi(ctx: ServeContext, path_params, query) -> Response:
    return _openapi_response()


def _h_metrics(ctx: ServeContext, path_params, query) -> Response:
    # Rendered fresh on every scrape (cached=False): counters are sums
    # over every worker lane of the shared slab, so this one response
    # is the fleet-wide truth regardless of which worker answered.
    return Response(
        200,
        render_prometheus().encode("utf-8"),
        content_type=_PROMETHEUS_CT,
    )


# ----------------------------------------------------------------------
# The route table (single source of truth; see routes.py module doc)
# ----------------------------------------------------------------------
_SELECT_PARAMS = (
    Param("component", "string", default="multiplier",
          enum=component_names(),
          description="Component kind; the closed vocabulary of the "
          "component registry (anything else is a 422)."),
    Param("width", "integer", required=True,
          description="Operand width in bits."),
    Param("metric", "string", default="wmed",
          description="Error metric the budget is expressed in "
          f"({', '.join(metric_names())}); only designs evolved under "
          "it are considered."),
    Param("max_error_percent", "number",
          description="Error budget in percent of the objective "
          "normalizer (the paper's units); omit for unconstrained."),
    Param("minimize", "string", default="area",
          enum=tuple(COST_COLUMNS),
          description="Cost axis to minimize: area (um^2), "
          "power (uW) or pdp (fJ)."),
    Param("dist", "string",
          description="Restrict to designs driven by this stored "
          "distribution name (e.g. Du, D2)."),
    Param("signed", "boolean",
          description="Restrict signedness; omit to accept either."),
)

ROUTES: Tuple[Route, ...] = (
    Route(
        "GET", "/healthz", "health",
        "Liveness + store/cache status.",
        _h_health, cached=False, response_schema="Health",
        description="Always uncached; reports the store path(s) — one "
        "entry per mounted store under `stores` — design count, schema "
        "version and response-cache counters.",
    ),
    Route(
        "GET", "/v1/best", "best",
        "Cheapest stored design within an error budget.",
        _h_best, params=_SELECT_PARAMS, response_schema="BestResponse",
        description="The serving form of repro.library.query.best: "
        "minimal-cost Pareto design under max_error_percent, "
        "deterministic tie-breaking. 404 when nothing fits the budget.",
    ),
    Route(
        "GET", "/v1/front", "front",
        "The stored Pareto front over (error, cost).",
        _h_front, params=_SELECT_PARAMS, response_schema="FrontResponse",
        description="2-D re-projection of the stored group front onto "
        "the requested cost axis, ascending error; an empty selection "
        "is a 200 with count 0, not an error.",
    ),
    Route(
        "GET", "/v1/stats", "stats",
        "Library-wide summary: sizes, groups, error spans.",
        _h_stats, response_schema="StatsResponse",
        description="The serving form of repro.library.query.stats.",
    ),
    Route(
        "GET", "/v1/designs/{design_id}", "design",
        "One design (by content-address prefix) + its artifacts.",
        _h_design,
        params=(
            Param("format", "string", default="json",
                  enum=("json", "verilog", "netlist"),
                  description="json: full records; verilog: structural "
                  "Verilog (text/x-verilog); netlist: archival netlist "
                  "JSON."),
        ),
        response_schema="DesignResponse",
        description="design_id is a prefix of the compiled-phenotype "
        "content address (as printed by the catalog endpoints); one "
        "phenotype stored under several groups returns one record per "
        "group.  A prefix matching several distinct designs is a 409 "
        "for the artifact formats (format=json lists all matches).",
    ),
    Route(
        "GET", "/openapi.json", "openapi",
        "This specification, generated from the live route table.",
        _h_openapi, cached=False, response_schema="Object",
    ),
    Route(
        "GET", "/metrics", "metrics",
        "Prometheus text-format metrics for the whole worker fleet.",
        _h_metrics, cached=False, response_schema="Text",
        media_type="text/plain",
        description="Prometheus exposition format 0.0.4.  Counters and "
        "histograms are summed across every `--procs N` worker via the "
        "shared metrics slab (gauges carry a per-worker label), so "
        "scraping any one worker observes the whole fleet.  Always "
        "rendered fresh — never cached, never carries an ETag.",
    ),
)


# ----------------------------------------------------------------------
# HTTP revalidation
# ----------------------------------------------------------------------
def make_etag(key: object) -> str:
    """Strong ETag for a response-cache key (quoted, RFC 9110 form).

    The key already folds in the store-state token, and every response
    is a deterministic function of its key, so hashing the key is a
    valid strong validator — and a *cross-process* one: ``repr`` of the
    (str/int/float/bool) tuple is stable, so every ``--procs N`` worker
    derives the identical ETag for the same query and store state.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]
    return f'"{digest}"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """RFC 9110 ``If-None-Match``: list of entity tags, or ``*``.

    Weak comparison (``W/`` prefixes ignored) — the correct mode for
    cache revalidation on GET/HEAD.
    """
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


# ----------------------------------------------------------------------
# Validation + dispatch
# ----------------------------------------------------------------------
def validate_query(
    route: Route, pairs: List[Tuple[str, str]]
) -> Dict[str, object]:
    """Coerce raw query pairs against the route's parameter spec.

    Raises ``ValueError`` (mapped to 422 by :func:`handle`) on unknown
    or repeated parameters, type/enum violations, or a missing required
    parameter.  Defaults are applied; parameters without a default stay
    absent from the result.
    """
    spec = {p.name: p for p in route.params}
    values: Dict[str, object] = {}
    for name, raw in pairs:
        param = spec.get(name)
        if param is None:
            known = ", ".join(spec) if spec else "none"
            raise ValueError(
                f"unknown parameter {name!r}; this endpoint takes: {known}"
            )
        if name in values:
            raise ValueError(f"parameter {name!r} given more than once")
        values[name] = param.coerce(raw)
    for param in route.params:
        if param.name in values:
            continue
        if param.required:
            raise ValueError(f"missing required parameter {param.name!r}")
        if param.default is not UNSET:
            values[param.name] = param.default
    return values


def handle(
    ctx: ServeContext,
    method: str,
    path: str,
    query_string: str = "",
    routes: Tuple[Route, ...] = ROUTES,
    headers: Optional[Mapping[str, str]] = None,
) -> Response:
    """Dispatch one request; never raises (500s are rendered, not thrown).

    ``headers`` carries the request headers the dispatcher cares about
    (currently only ``If-None-Match``); omitting it preserves the
    historical signature for tests and benchmarks.

    Every call is observed: the per-route request counter and latency
    histogram (and the 304 counter) are recorded on the way out, so a
    ``/metrics`` scrape — which renders *inside* its handler, before
    its own request completes — counts exactly the requests completed
    before it.
    """
    t0 = perf_counter_ns()
    with _span("serve.request", method=method, path=path) as sp:
        route, response = _dispatch_request(
            ctx, method, path, query_string, routes, headers
        )
        sp.tag(status=response.status,
               route=route.name if route is not None else None)
    label = _obs.route_label(route.name if route is not None else None)
    _obs.HTTP_REQUESTS_BY_ROUTE[label].inc()
    _obs.HTTP_LATENCY_BY_ROUTE[label].observe(perf_counter_ns() - t0)
    _obs.HTTP_DISPATCH.inc()
    if response.status == 304:
        _obs.HTTP_NOT_MODIFIED.inc()
    return response


def _dispatch_request(
    ctx: ServeContext,
    method: str,
    path: str,
    query_string: str,
    routes: Tuple[Route, ...],
    headers: Optional[Mapping[str, str]],
) -> Tuple[Optional[Route], Response]:
    from urllib.parse import parse_qsl, unquote

    route, path_params = match_path(routes, path)
    if route is None:
        return None, error_response(404, f"unknown path {path!r}")
    if method == "HEAD":  # RFC 9110: HEAD is GET without the body
        method = "GET"
    if method != route.method:
        return route, replace(
            error_response(405, f"{route.path} only supports {route.method}"),
            headers=(("Allow", route.method),),
        )
    path_params = {k: unquote(v) for k, v in path_params.items()}
    try:
        pairs = parse_qsl(
            query_string, keep_blank_values=True, strict_parsing=False
        )
        query = validate_query(route, pairs)
    except ValueError as exc:
        return route, error_response(422, str(exc))

    key = None
    etag = None
    if route.cached:
        key = (
            route.name,
            tuple(sorted(path_params.items())),
            tuple(sorted(query.items())),
            ctx.state(),
        )
        etag = make_etag(key)
        if_none_match = headers.get("If-None-Match") if headers else None
        if if_none_match and etag_matches(if_none_match, etag):
            # A matching validator proves the client holds the response
            # for this exact (query, store state): skip everything.
            return route, Response(304, b"", headers=(("ETag", etag),))
        if ctx.cache.maxsize:
            hit = ctx.cache.get(key)
            if hit is not None:
                return route, replace(hit, headers=hit.headers + (
                    ("ETag", etag), ("X-Cache", "hit"),
                ))
    try:
        response = route.handler(ctx, path_params, query)
    except ValueError as exc:
        # The library layer's vocabulary errors (unknown metric,
        # component, cost axis) — client mistakes, not server faults.
        response = error_response(422, str(exc))
    except Exception as exc:  # noqa: BLE001 - the server must not die
        response = error_response(
            500, f"internal error ({type(exc).__name__}): {exc}"
        )
    if key is not None and response.status < 500:
        if ctx.cache.maxsize:
            ctx.cache.put(key, response)
        extra = [("X-Cache", "miss")] if ctx.cache.maxsize else []
        if response.status == 200:
            # Only successful representations get the validator; error
            # envelopes are state-dependent too, but clients have no
            # use for revalidating a 404.
            extra.insert(0, ("ETag", etag))
        response = replace(
            response, headers=response.headers + tuple(extra)
        )
    return route, response
