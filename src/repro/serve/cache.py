"""In-process read-through response cache for the serving layer.

Hot queries ("best 8-bit multiplier under 1 % WMED") repeat endlessly
in a serving workload while the store changes only when a build admits
a design.  The cache exploits that asymmetry: rendered HTTP responses
are memoized under a key that folds in the **store file state**
(``st_mtime_ns`` + ``st_size``), so

* a repeated query skips SQLite, JSON encoding, everything — it is one
  dictionary hit under a lock (~1 us), and
* any write to the store changes the file state, which changes every
  key, which makes every cached entry unreachable — invalidation needs
  no notification channel between builder and server.

Stale entries (dead store states) age out by LRU eviction; the cache
is bounded by entry count, not bytes, because responses are small
(records, fronts and stats of a Pareto store — tens of rows, not
megabytes).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

from ..obs.catalog import RESPONSE_CACHE_HITS, RESPONSE_CACHE_MISSES

__all__ = ["ResponseCache", "store_state"]


def store_state(path: str) -> Tuple[int, int]:
    """Freshness token of the store file: ``(st_mtime_ns, st_size)``.

    SQLite rewrites the database file on every committed transaction,
    so any admitted design, pruned row or checkpointed cell bumps
    ``st_mtime_ns``.  Size is folded in as a belt-and-braces guard for
    filesystems with coarse timestamps.  A missing file maps to
    ``(-1, -1)`` (distinct from every real state) instead of raising,
    so a store swapped out from under the server degrades to cache
    misses, not 500s.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return (-1, -1)
    return (stat.st_mtime_ns, stat.st_size)


class ResponseCache:
    """Bounded, thread-safe LRU memo of rendered responses.

    Parameters
    ----------
    maxsize : int
        Entry cap; ``0`` disables caching entirely (every ``get``
        misses, ``put`` is a no-op) — used by benchmarks to measure
        the uncached path through the same code.

    Notes
    -----
    Keys are built by the dispatcher as ``(route name, sorted query
    items, store_state(db))`` — see :func:`repro.serve.api.handle`.
    ``hits``/``misses`` counters are exposed in ``/healthz`` so cache
    effectiveness is observable in production.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[object]:
        """Cached value for ``key`` (refreshing its LRU position).

        The per-instance counters feed ``stats()`` (per-process truth);
        the global obs counters aggregate the same events fleet-wide.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                RESPONSE_CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            RESPONSE_CACHE_HITS.inc()
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``key``, evicting least-recently-used entries."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for ``/healthz``: size, capacity, hits, misses.

        Includes the owning ``pid`` because under ``repro serve
        --procs N`` every worker process has its *own* cache — the
        counters describe one process, and aggregating them across
        workers would double-count nothing and miss everything.
        """
        with self._lock:
            return {
                "pid": os.getpid(),
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }
