"""Multi-process serving: N workers, one port, one supervisor.

``repro serve --procs N`` forks N worker processes, each running the
ordinary bounded-thread :class:`~repro.serve.server.DesignServer` over
its own store connection, snapshot and caches.  Python's GIL caps one
process at roughly one core of request dispatch; N processes remove
that cap, and everything the workers share is already safe to share:

* the **SQLite store** is read-only here, opened per process
  (one-builder / N-reader is the store's documented contract);
* the **snapshot**, **response cache** and **wire cache** are
  per-process and key on the store file's ``(st_mtime_ns, st_size)``
  token, so all workers invalidate at the same moment without talking
  to each other;
* **ETags** hash that token, so a pooled client revalidates correctly
  whichever worker the kernel hands its connection to.

Two ways to share the port:

* ``SO_REUSEPORT`` (Linux, modern BSD) — every worker binds its own
  listening socket with the option set and the kernel load-balances
  accepted connections across them.  The parent binds a *non-listening*
  placeholder first: it resolves ``port=0`` to a concrete port and
  keeps it reserved for respawns, without joining the accept group.
* **prefork fd passing** — where ``SO_REUSEPORT`` is unavailable, the
  parent binds and listens once and hands the listening socket to each
  worker over a ``socketpair`` via :func:`socket.send_fds`; workers
  then compete on ``accept`` of the same socket.

The parent never serves.  It supervises: a dead worker is respawned,
SIGTERM/SIGINT fan out to every worker (which close their servers and
exit), and :meth:`MultiProcessServer.stop` force-kills anything that
ignores the request — ``--procs N`` must never leave orphans.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import sys
import time
from typing import List, Optional, Tuple

from .. import obs

__all__ = [
    "MultiProcessServer",
    "reuseport_supported",
    "serve_multiprocess",
]


def reuseport_supported() -> bool:
    """Whether this platform can share a port via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def _child_main(
    db,
    host: str,
    port: int,
    workers: int,
    cache_size: int,
    quiet: bool,
    reuse_port: bool,
    fd_conn: Optional[socket.socket],
    ready,
    slab_path: Optional[str] = None,
    lane: int = 0,
) -> None:
    """Worker entry point (runs in the forked child).

    Attaches this worker's metrics to lane ``lane`` of the shared slab
    (every counter it records from here on is visible to every sibling's
    ``/metrics``), binds (or adopts) the listening socket, signals
    ``ready``, serves until SIGTERM/SIGINT, then closes and
    ``os._exit(0)`` — the hard exit skips inherited atexit hooks
    (thread-pool joins, coverage finalizers) that have no business
    running in a fork of the supervisor.
    """
    from .server import create_server

    def _terminate(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    obs.attach_worker(slab_path, lane)

    listen_socket = None
    if fd_conn is not None:
        _, fds, _, _ = socket.recv_fds(fd_conn, 1, 1)
        fd_conn.close()
        listen_socket = socket.socket(fileno=fds[0])
    server = None
    try:
        server = create_server(
            db, host=host, port=port, workers=workers,
            cache_size=cache_size, quiet=quiet,
            reuse_port=reuse_port, listen_socket=listen_socket,
        )
        ready.set()
        server.serve_forever(poll_interval=0.5)
    except (SystemExit, KeyboardInterrupt):
        pass
    finally:
        if server is not None:
            try:
                server.server_close()
            except OSError:
                pass
        os._exit(0)


class MultiProcessServer:
    """N forked :class:`DesignServer` workers sharing one port.

    Parameters mirror :func:`repro.serve.server.create_server`, plus:

    procs : int
        Number of worker processes (each with its own ``workers``-sized
        thread pool).
    use_reuseport : bool, optional
        Force the port-sharing mechanism; default auto-detects
        (``SO_REUSEPORT`` where available, prefork fd passing
        otherwise).  Tests pin ``False`` to exercise the fallback.

    Lifecycle: ``start()`` → (serve traffic; optionally call
    ``respawn_dead()`` periodically) → ``stop()``.  ``stop`` is
    idempotent and guarantees no worker outlives it.
    """

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 8080,
        procs: int = 2,
        workers: int = 8,
        cache_size: int = 1024,
        quiet: bool = False,
        use_reuseport: Optional[bool] = None,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self.db = db
        self.host = host
        self.procs = procs
        self.workers = workers
        self.cache_size = cache_size
        self.quiet = quiet
        if use_reuseport is None:
            use_reuseport = reuseport_supported()
        self.use_reuseport = use_reuseport
        if use_reuseport and not reuseport_supported():
            raise OSError("SO_REUSEPORT is not available on this platform")
        self._ctx = multiprocessing.get_context("fork")
        self._children: List = []
        self._listen: Optional[socket.socket] = None
        self._placeholder: Optional[socket.socket] = None
        self.port = port
        self._bind(host, port)
        # One metrics-slab lane per worker slot, created before any
        # fork so every child can attach by lane index.  A respawned
        # worker reuses its predecessor's lane and therefore resumes
        # its counters — fleet totals never go backwards.  None when
        # REPRO_OBS=0.
        self._slab: Optional[str] = obs.create_slab(procs)

    # ------------------------------------------------------------------
    # Socket setup
    # ------------------------------------------------------------------
    def _bind(self, host: str, port: int) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self.use_reuseport:
                # Placeholder: resolves port=0 and keeps the port
                # reserved across worker respawns.  Never listens, so
                # the kernel excludes it from connection distribution.
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
                sock.bind((host, port))
                self._placeholder = sock
            else:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
                sock.bind((host, port))
                sock.listen(128)
                self._listen = sock
        except OSError:
            sock.close()
            raise
        self.port = sock.getsockname()[1]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, lane: int):
        ready = self._ctx.Event()
        fd_child = None
        fd_parent = None
        if not self.use_reuseport:
            fd_parent, fd_child = socket.socketpair()
        child = self._ctx.Process(
            target=_child_main,
            args=(
                self.db, self.host, self.port, self.workers,
                self.cache_size, self.quiet, self.use_reuseport,
                fd_child, ready, self._slab, lane,
            ),
            daemon=False,
        )
        child.start()
        if fd_parent is not None:
            socket.send_fds(fd_parent, [b"listen"], [self._listen.fileno()])
            fd_parent.close()
            fd_child.close()
        deadline = time.monotonic() + 10.0
        while not ready.wait(timeout=0.05):
            if not child.is_alive():
                raise RuntimeError(
                    f"serve worker died during startup "
                    f"(exit code {child.exitcode})"
                )
            if time.monotonic() > deadline:
                child.terminate()
                raise RuntimeError("serve worker did not become ready")
        return child

    def start(self) -> None:
        """Fork the workers; returns once every one is accepting."""
        if self._children:
            raise RuntimeError("already started")
        try:
            for lane in range(self.procs):
                self._children.append(self._spawn(lane))
        except Exception:
            self.stop()
            raise

    @property
    def pids(self) -> List[int]:
        return [c.pid for c in self._children if c.pid is not None]

    def respawn_dead(self) -> List[int]:
        """Replace exited workers; returns the new pids (often empty)."""
        new_pids: List[int] = []
        for i, child in enumerate(self._children):
            if child.is_alive():
                continue
            child.join(timeout=0)
            replacement = self._spawn(i)
            self._children[i] = replacement
            new_pids.append(replacement.pid)
        return new_pids

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate every worker and release the port.  Idempotent."""
        for child in self._children:
            if child.is_alive():
                child.terminate()  # SIGTERM -> clean close in the child
        deadline = time.monotonic() + timeout
        for child in self._children:
            child.join(timeout=max(0.0, deadline - time.monotonic()))
        for child in self._children:
            if child.is_alive():  # pragma: no cover - unresponsive child
                child.kill()
                child.join(timeout=1.0)
        self._children = []
        for sock_attr in ("_placeholder", "_listen"):
            sock = getattr(self, sock_attr)
            if sock is not None:
                sock.close()
                setattr(self, sock_attr, None)
        if self._slab is not None:
            try:
                os.unlink(self._slab)
            except OSError:
                pass
            self._slab = None

    def __enter__(self) -> "MultiProcessServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_multiprocess(
    db,
    host: str = "127.0.0.1",
    port: int = 8080,
    procs: int = 2,
    workers: int = 8,
    cache_size: int = 1024,
    quiet: bool = False,
) -> int:
    """Run ``--procs N`` serving until interrupted (CLI entry point).

    The parent process supervises only: it respawns dead workers every
    poll tick and fans SIGTERM/SIGINT out to all of them on shutdown.
    The ``workers:`` line lists worker pids so operators (and the
    orphan-free shutdown test) can track them.
    """
    server = MultiProcessServer(
        db, host=host, port=port, procs=procs, workers=workers,
        cache_size=cache_size, quiet=quiet,
    )

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.start()
        mechanism = (
            "SO_REUSEPORT" if server.use_reuseport else "prefork fd passing"
        )
        shown = db if isinstance(db, str) else " + ".join(db)
        print(
            f"serving {shown} on http://{host}:{server.port} "
            f"({procs} procs x {workers} workers via {mechanism}, "
            f"cache {cache_size}); Ctrl-C to stop",
            file=sys.stderr, flush=True,
        )
        print(
            "workers: " + " ".join(str(pid) for pid in server.pids),
            file=sys.stderr, flush=True,
        )
        while True:
            time.sleep(0.2)
            for pid in server.respawn_dead():
                print(f"respawned worker {pid}", file=sys.stderr, flush=True)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr, flush=True)
    finally:
        server.stop()
        signal.signal(signal.SIGTERM, previous)
    return 0
