"""OpenAPI spec + Markdown API reference, generated from the route table.

``/openapi.json`` is not hand-written: :func:`generate_openapi` renders
:data:`repro.serve.api.ROUTES` — the same table the dispatcher matches
requests against — into an OpenAPI 3.0 document, and
:func:`generate_markdown` renders the same table into the committed API
reference (``docs/api.md``).  A handler cannot gain, lose or change a
parameter without the spec and the docs following, and CI enforces the
committed copy::

    python -m repro.serve.openapi --check docs/api.md   # exit 1 on drift
    python -m repro.serve.openapi --markdown            # regenerate
    python -m repro.serve.openapi                       # print the JSON spec

Both renderings are deterministic (sorted keys, no timestamps), so the
check is a byte comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Tuple

from .. import __version__
from .routes import UNSET, Param, Route

__all__ = ["generate_openapi", "generate_markdown", "main"]

#: DesignRecord wire fields -> (JSON type, description).  Units are
#: spelled out here once and flow into the spec and docs/api.md.
_RECORD_FIELDS: Tuple[Tuple[str, str, str], ...] = (
    ("design_id", "string",
     "Content address: compiled-phenotype digest (hex)."),
    ("component", "string",
     "Component kind (multiplier, adder, mac, divider, subtractor, "
     "barrel-shifter)."),
    ("width", "integer", "Operand width in bits."),
    ("signed", "boolean", "Signed operand encoding."),
    ("metric", "string", "Error metric the design was evolved under."),
    ("dist", "string", "Driving operand-distribution name (e.g. Du)."),
    ("threshold_percent", "number",
     "Search error budget, percent of the objective normalizer."),
    ("error", "number",
     "Objective error under `metric`, normalized to [0, ~1]."),
    ("error_percent", "number",
     "`error` x 100 — the units the paper quotes."),
    ("area", "number", "Cell area in um^2."),
    ("power_uw", "number", "Total power in uW."),
    ("power_mw", "number", "Total power in mW (= power_uw / 1000)."),
    ("delay_ps", "number", "Critical-path delay in ps."),
    ("pdp", "number", "Power-delay product in fJ."),
    ("wmed", "number", "Weighted mean error distance, normalized."),
    ("med", "number", "Mean error distance, normalized."),
    ("mred", "number", "Mean relative error distance."),
    ("error_rate", "number", "Weighted probability of any error."),
    ("worst_case", "integer", "Largest absolute error, output units."),
    ("bias", "number", "Signed mean error E[approx - exact]."),
    ("gates", "integer", "Active gate count."),
    ("chromosome", "string", "CGP chromosome text (persistence format)."),
    ("name", "string", "Human-readable design name."),
    ("seed_key", "string", "SeedSequence provenance of the search run."),
    ("generations", "integer", "Search budget that produced the design."),
    ("evaluations", "integer", "Candidate evaluations spent."),
)


def _record_schema() -> dict:
    return {
        "type": "object",
        "description": "One stored design: identity, provenance and "
        "full characterization (all five error metrics + electrical "
        "figures).",
        "properties": {
            name: {"type": type_, "description": desc}
            for name, type_, desc in _RECORD_FIELDS
        },
        "required": [name for name, _, _ in _RECORD_FIELDS],
    }


def _schemas() -> dict:
    record_ref = {"$ref": "#/components/schemas/DesignRecord"}
    return {
        "Error": {
            "type": "object",
            "description": "Canonical error envelope: every non-200 "
            "response has this shape.",
            "properties": {
                "error": {
                    "type": "object",
                    "properties": {
                        "code": {"type": "integer",
                                 "description": "HTTP status code."},
                        "status": {"type": "string",
                                   "description": "HTTP reason phrase."},
                        "message": {"type": "string",
                                    "description": "What went wrong."},
                    },
                    "required": ["code", "status", "message"],
                },
            },
            "required": ["error"],
        },
        "Health": {
            "type": "object",
            "description": "Worker status: top-level figures are "
            "per-process (the worker that answered — its own pid, "
            "caches and snapshot); the `fleet` block aggregates every "
            "`--procs N` worker from the shared metrics slab, so one "
            "sample observes the whole fleet.",
            "properties": {
                "status": {"type": "string"},
                "version": {"type": "string"},
                "store": {"type": "string",
                          "description": "Backing SQLite file path; a "
                          "federated mount joins the member paths with "
                          "'+' (see `stores` for the list)."},
                "stores": {
                    "type": "array",
                    "description": "One entry per mounted store file — "
                    "a single entry for an ordinary mount, one per "
                    "`--db` for a federated one.",
                    "items": {
                        "type": "object",
                        "properties": {
                            "path": {"type": "string"},
                            "state": {
                                "type": "array",
                                "items": {"type": "integer"},
                                "description": "Freshness token "
                                "(st_mtime_ns, st_size) of this file.",
                            },
                        },
                        "required": ["path", "state"],
                    },
                },
                "schema_version": {"type": "integer"},
                "pid": {"type": "integer",
                        "description": "Pid of the worker process that "
                        "answered this request."},
                "designs": {"type": "integer",
                            "description": "Stored design count."},
                "cache": {"type": "object",
                          "description": "This process's response-cache "
                          "counters (pid, entries, maxsize, hits, "
                          "misses)."},
                "snapshot": {"type": "object",
                             "description": "This process's in-memory "
                             "store snapshot: state token, design "
                             "count, rebuild count."},
                "fleet": {"type": "object",
                          "description": "Cross-worker aggregation from "
                          "the shared metrics slab: lane count, one "
                          "entry per live worker (lane, pid, request "
                          "count, snapshot figures) and fleet request/"
                          "rebuild totals. `enabled: false` (empty "
                          "workers list) under REPRO_OBS=0."},
                "wire_cache": {"type": "object",
                               "description": "Rendered-bytes fast-path "
                               "counters (entries, maxsize, hits, "
                               "fills); present when served over HTTP."},
            },
            "required": ["status", "version", "store", "stores",
                         "schema_version", "pid", "designs", "cache",
                         "snapshot", "fleet"],
        },
        "DesignRecord": _record_schema(),
        "BestResponse": {
            "type": "object",
            "properties": {"design": record_ref},
            "required": ["design"],
        },
        "FrontResponse": {
            "type": "object",
            "properties": {
                "count": {"type": "integer"},
                "designs": {"type": "array", "items": record_ref,
                            "description": "Ascending error; strictly "
                            "improving cost."},
            },
            "required": ["count", "designs"],
        },
        "StatsResponse": {
            "type": "object",
            "properties": {
                "designs": {"type": "integer"},
                "cells_completed": {"type": "integer"},
                "groups": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "description": "One (component, width, signed, "
                        "metric, dist) group: design count, error span "
                        "in percent, area span in um^2.",
                    },
                },
            },
            "required": ["designs", "cells_completed", "groups"],
        },
        "DesignResponse": {
            "type": "object",
            "description": "format=json response; format=verilog "
            "returns text/x-verilog, format=netlist returns the "
            "archival netlist JSON document.",
            "properties": {
                "count": {"type": "integer"},
                "designs": {"type": "array", "items": record_ref},
            },
            "required": ["count", "designs"],
        },
        "Object": {"type": "object"},
        "Text": {
            "type": "string",
            "description": "Plain-text body (Prometheus exposition "
            "format 0.0.4 for /metrics).",
        },
    }


def _param_to_openapi(param: Param, location: str = "query") -> dict:
    schema: Dict[str, object] = {"type": param.type}
    if param.enum is not None:
        schema["enum"] = list(param.enum)
    if param.default is not UNSET:
        schema["default"] = param.default
    return {
        "name": param.name,
        "in": location,
        "required": param.required or location == "path",
        "description": param.description,
        "schema": schema,
    }


def generate_openapi(routes: Optional[Tuple[Route, ...]] = None) -> dict:
    """The OpenAPI 3.0 document for ``routes`` (default: the live table)."""
    if routes is None:
        from .api import ROUTES as routes  # noqa: N811

    paths: Dict[str, dict] = {}
    for route in routes:
        parameters = [
            _param_to_openapi(Param(name, "string",
                                    description="Path parameter."),
                              location="path")
            for name in route.path_param_names()
        ]
        parameters += [_param_to_openapi(p) for p in route.params]
        ok: Dict[str, object] = {
            "description": route.summary,
            "content": {
                route.media_type: {
                    "schema": {
                        "$ref": "#/components/schemas/"
                        + route.response_schema,
                    },
                },
            },
        }
        responses: Dict[str, object] = {"200": ok}
        if route.cached:
            ok["headers"] = {
                "ETag": {
                    "description": "Strong validator over (route, "
                    "params, store state); identical across --procs "
                    "workers. Changes iff the store file changes.",
                    "schema": {"type": "string"},
                },
                "X-Cache": {
                    "description": "Response-cache disposition "
                    "(hit/miss) in the answering process.",
                    "schema": {"type": "string",
                               "enum": ["hit", "miss"]},
                },
            }
            responses["304"] = {
                "description": "If-None-Match matched the current "
                "ETag: the client's copy is still valid; no body.",
                "headers": {
                    "ETag": {
                        "description": "The (still current) validator.",
                        "schema": {"type": "string"},
                    },
                },
            }
        operation = {
            "operationId": route.name,
            "summary": route.summary,
            "description": route.description,
            "parameters": parameters,
            "responses": {
                **responses,
                "default": {
                    "description": "Canonical error envelope "
                    "(404 unknown path/design, 405 wrong method, "
                    "422 invalid parameters, 500 internal).",
                    "content": {
                        "application/json": {
                            "schema": {
                                "$ref": "#/components/schemas/Error",
                            },
                        },
                    },
                },
            },
        }
        paths.setdefault(route.path, {})[route.method.lower()] = operation
    return {
        "openapi": "3.0.3",
        "info": {
            "title": "repro design-library API",
            "version": __version__,
            "description": "Read-only serving layer over the persistent "
            "design library: Pareto-optimal approximate circuits "
            "selected by error budget.",
        },
        "paths": paths,
        "components": {"schemas": _schemas()},
    }


def generate_markdown(routes: Optional[Tuple[Route, ...]] = None) -> str:
    """The committed API reference (``docs/api.md``), deterministically."""
    if routes is None:
        from .api import ROUTES as routes  # noqa: N811

    lines = [
        "# HTTP API reference",
        "",
        "<!-- GENERATED by `python -m repro.serve.openapi --markdown` "
        "from the route table in src/repro/serve/api.py. Do not edit "
        "by hand; CI checks this file against the live routes. -->",
        "",
        "Serving layer over the design library "
        "(`repro serve --db <store> --port <port>`, add `--procs N` "
        "for multi-process workers on one port). All endpoints are "
        "`GET`; every non-200 response is the canonical error envelope "
        '`{"error": {"code", "status", "message"}}`. Catalog responses '
        "carry a strong `ETag` — resend it as `If-None-Match` to get a "
        "body-less `304 Not Modified` until the store next changes.",
        "",
    ]
    for route in routes:
        lines += [f"## `{route.method} {route.path}`", "", route.summary, ""]
        if route.description:
            lines += [route.description, ""]
        if route.path_param_names():
            names = ", ".join(f"`{n}`" for n in route.path_param_names())
            lines += [f"Path parameters: {names}.", ""]
        if route.params:
            lines += [
                "| parameter | type | required | default | description |",
                "|---|---|---|---|---|",
            ]
            for p in route.params:
                type_ = p.type
                if p.enum is not None:
                    type_ += " (" + " \\| ".join(p.enum) + ")"
                lines.append(
                    f"| `{p.name}` | {type_} | "
                    f"{'yes' if p.required else 'no'} | "
                    f"{'—' if p.default is UNSET else f'`{p.default}`'} | "
                    f"{p.description} |"
                )
            lines.append("")
        caching = (
            "Cached (read-through, invalidated by any store write); "
            "200s carry a strong `ETag` and `X-Cache`, and a matching "
            "`If-None-Match` is answered `304` with no body."
            if route.cached else "Never cached."
        )
        lines += [
            f"Response: `{route.response_schema}` "
            f"(see `/openapi.json` schemas). {caching}",
            "",
        ]
    lines += [
        "## Design record fields",
        "",
        "| field | type | description |",
        "|---|---|---|",
    ]
    for name, type_, desc in _RECORD_FIELDS:
        lines.append(f"| `{name}` | {type_} | {desc} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.openapi",
        description="Render (or verify) the API spec from the route table.",
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit the Markdown API reference instead of the JSON spec",
    )
    parser.add_argument("--out", help="write to this file instead of stdout")
    parser.add_argument(
        "--check", metavar="PATH",
        help="exit non-zero unless PATH matches the generated Markdown "
        "reference (CI drift gate)",
    )
    args = parser.parse_args(argv)

    if args.check:
        expected = generate_markdown()
        try:
            with open(args.check) as fh:
                actual = fh.read()
        except OSError as exc:
            print(f"cannot read {args.check}: {exc}", file=sys.stderr)
            return 1
        if actual != expected:
            print(
                f"{args.check} is out of date with the route table; "
                "regenerate with: python -m repro.serve.openapi "
                f"--markdown --out {args.check}",
                file=sys.stderr,
            )
            return 1
        print(f"{args.check} matches the route table")
        return 0

    text = (
        generate_markdown()
        if args.markdown
        else json.dumps(generate_openapi(), indent=2, sort_keys=True) + "\n"
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
