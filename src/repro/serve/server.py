"""Threaded stdlib HTTP server around :func:`repro.serve.api.handle`.

Zero dependencies beyond the standard library: a
:class:`http.server.ThreadingHTTPServer` subclass whose request
concurrency is bounded by a worker pool (``--workers``) instead of the
mixin's unbounded thread-per-request, dispatching every request through
the HTTP-independent :func:`~repro.serve.api.handle`.

The concurrency story mirrors the store's: SQLite with short-lived
connections is safe for any number of reader threads alongside one
builder process, so worker threads share one :class:`ServeContext`
(and one response cache) without further locking.

Programmatic use (tests, benchmarks)::

    server = create_server("my.sqlite", port=0)   # 0 = ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    ... requests against http://127.0.0.1:%d % server.server_port ...
    server.shutdown(); server.server_close()
"""

from __future__ import annotations

import sys
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from .. import __version__
from ..library.store import DesignStore
from .api import ServeContext, handle
from .cache import ResponseCache

__all__ = ["DesignServer", "create_server", "serve"]


class _Handler(BaseHTTPRequestHandler):
    """Per-request plumbing; all semantics live in ``api.handle``."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    #: Largest request body drained to keep a keep-alive connection
    #: usable; anything bigger forces the connection closed instead.
    _MAX_DRAIN = 1 << 20

    def _dispatch(self, method: str) -> None:
        # Drain any request body first: on an HTTP/1.1 keep-alive
        # connection an unread body would be parsed as the next
        # request line, corrupting every pooled client.
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if self.headers.get("Transfer-Encoding") or length < 0 \
                or length > self._MAX_DRAIN:
            self.close_connection = True
        elif length:
            self.rfile.read(length)
        url = urlsplit(self.path)
        response = handle(
            self.server.context, method, url.path, url.query
        )
        body = b"" if method == "HEAD" else response.body
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        if body:
            self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    do_PUT = do_DELETE = do_PATCH = do_OPTIONS = do_POST

    def send_error(self, code, message=None, explain=None) -> None:
        """Canonical JSON envelope even for stdlib-generated errors.

        BaseHTTPRequestHandler calls this for conditions the dispatch
        never sees — an unknown verb (501), a malformed request line
        (400), an over-long URI (414).  The API contract promises one
        error shape for every non-200 response, so those must not fall
        back to the stdlib's HTML error page.
        """
        from .api import error_response

        response = error_response(code, message or explain or "")
        self.log_error("code %d, message %s", code, message or "")
        try:
            self.send_response(code, response.reason)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            self.send_header("Connection", "close")
            self.end_headers()
            if getattr(self, "command", None) != "HEAD":
                self.wfile.write(response.body)
        except OSError:  # pragma: no cover - client already gone
            pass
        self.close_connection = True

    def log_message(self, format: str, *args) -> None:
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)


class DesignServer(ThreadingHTTPServer):
    """HTTP server with a bounded worker pool and a shared context."""

    daemon_threads = True
    # TCPServer's default listen backlog (5) drops connection bursts on
    # the floor well below the worker pool's capacity; queue them instead.
    request_queue_size = 128

    def __init__(
        self,
        address,
        context: ServeContext,
        workers: int = 8,
        quiet: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        super().__init__(address, _Handler)
        self.context = context
        self.quiet = quiet
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    def process_request(self, request, client_address) -> None:
        # Bound concurrency: queue in the pool instead of one unbounded
        # thread per connection (ThreadingMixIn's default).
        self._pool.submit(self.process_request_thread, request, client_address)

    def server_close(self) -> None:
        super().server_close()
        # A failed bind closes the server from inside super().__init__,
        # before the pool exists.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)


def create_server(
    db: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 8,
    cache_size: int = 1024,
    quiet: bool = False,
) -> DesignServer:
    """Bind a :class:`DesignServer` over the store at ``db``.

    Parameters
    ----------
    db : str
        Design-store SQLite file (as written by ``repro library build``).
        Opening validates the schema version; a missing file is created
        empty, so point-at-wrong-path mistakes surface as ``designs: 0``
        in ``/healthz`` rather than a crash.
    host, port : str, int
        Bind address; ``port=0`` picks an ephemeral port (the bound one
        is ``server.server_port``).
    workers : int
        Size of the request-handling thread pool.
    cache_size : int
        Response-cache entry cap; ``0`` disables caching.
    quiet : bool
        Suppress per-request access logging.
    """
    context = ServeContext(
        store=DesignStore(db), cache=ResponseCache(cache_size)
    )
    return DesignServer((host, port), context, workers=workers, quiet=quiet)


def serve(
    db: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 8,
    cache_size: int = 1024,
    quiet: bool = False,
) -> int:
    """Run the server until interrupted (the ``repro serve`` command)."""
    server = create_server(
        db, host=host, port=port, workers=workers,
        cache_size=cache_size, quiet=quiet,
    )
    print(
        f"serving {db} on http://{host}:{server.server_port} "
        f"({workers} workers, cache {cache_size}); Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0
