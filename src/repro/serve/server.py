"""Threaded stdlib HTTP server around :func:`repro.serve.api.handle`.

Zero dependencies beyond the standard library: a
:class:`http.server.ThreadingHTTPServer` subclass whose request
concurrency is bounded by a worker pool (``--workers``) instead of the
mixin's unbounded thread-per-request, dispatching every request through
the HTTP-independent :func:`~repro.serve.api.handle`.

Two throughput decisions shape this module (see
``BENCH_serve.json`` for the measured effect):

* **TCP_NODELAY** on every connection.  Without it, the two-segment
  response write (headers, then body) interacts with delayed ACKs to
  stall keep-alive clients ~40 ms per request — the difference between
  ~23 and several thousand requests per second on one connection.
* **A wire-level fast path** (:class:`WireCache`).  The rendered
  response bytes of hot ``GET`` targets — status line, headers and body
  as one buffer — are memoized per process under the store-state token.
  A repeat request is answered straight from
  :meth:`_Handler.handle_one_request` with a cheap raw scan of the
  header block and a single ``write``, skipping the stdlib's
  ``email``-based header parse, URL split, query validation and
  dispatch entirely.  Anything the fast path does not recognize — any
  non-GET, an unknown target, HTTP/1.0, a stale token — falls through
  to the stock machinery, which renders the identical response (the
  fast path is a byte cache, not a second implementation).

The concurrency story mirrors the store's: SQLite with short-lived
connections is safe for any number of reader threads alongside one
builder process, so worker threads share one :class:`ServeContext`
(and one response cache) without further locking.  For multi-process
serving (``repro serve --procs N``) see :mod:`repro.serve.procs`;
this module contributes the two bind modes it needs
(``reuse_port=True`` and ``listen_socket=...``).

Programmatic use (tests, benchmarks)::

    server = create_server("my.sqlite", port=0)   # 0 = ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    ... requests against http://127.0.0.1:%d % server.server_port ...
    server.shutdown(); server.server_close()
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from email.utils import formatdate
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, NamedTuple, Optional, Tuple
from urllib.parse import urlsplit

from time import perf_counter_ns

from .. import __version__
from ..library.federation import FederatedStore
from ..library.store import DesignStore
from ..obs import catalog as _obs
from .api import ROUTES, ServeContext, handle
from .cache import ResponseCache, store_state
from .routes import match_path

__all__ = ["DesignServer", "WireCache", "create_server", "serve"]


# ----------------------------------------------------------------------
# Wire cache: rendered response bytes, token-guarded
# ----------------------------------------------------------------------
_date_memo: Tuple[int, bytes] = (0, b"")


def _http_date() -> bytes:
    """The RFC 9110 ``Date`` value, memoized per second.

    ``formatdate`` costs microseconds; at fast-path rates that is real
    money, and the header only changes once a second anyway.
    """
    global _date_memo
    now = int(time.time())
    if _date_memo[0] != now:
        _date_memo = (now, formatdate(now, usegmt=True).encode("ascii"))
    return _date_memo[1]


class WireEntry(NamedTuple):
    """One memoized target: 200 and 304 images, split around ``Date``."""

    etag: bytes
    head_200: bytes   # status line .. "Date: "
    tail_200: bytes   # CRLF, remaining headers, blank line, body
    head_304: bytes
    tail_304: bytes
    #: Route label of the memoized target (obs request counters); the
    #: wire fast path never dispatches, so the label is resolved once
    #: at memoize time instead of per request.
    route: str = "other"


class WireCache:
    """Per-process memo of fully rendered responses for hot GET targets.

    Keys are the **raw request target bytes** exactly as they appear on
    the request line (``b"/v1/front?width=4"``), so a lookup is one
    dict probe — no URL split, no query parse.  Equivalent queries
    spelled differently simply take the slow path, which stays correct.

    Freshness uses the same token as the response cache and the ETags:
    every lookup stats the store file(s) (~1 us each) and a token
    change drops the whole memo before answering — so a build write to
    any mounted store is visible to the very next request, exactly
    like the slow path.

    ``maxsize=0`` disables the fast path (benchmarks use this to
    measure the full dispatch).
    """

    def __init__(self, store, maxsize: int = 1024) -> None:
        # Accepts the store object (single or federated: anything with
        # state_token()) or, for backward compatibility, a bare path.
        if isinstance(store, str):
            path = store
            self.path = path
            self._token_fn = lambda: store_state(path)
        else:
            self.path = store.path
            self._token_fn = store.state_token
        self.maxsize = maxsize
        self.hits = 0
        self.fills = 0
        self._token: Tuple = (-2, -2)
        self._lock = threading.Lock()
        self._entries: Dict[bytes, WireEntry] = {}

    def lookup(self, raw_target: bytes) -> Optional[WireEntry]:
        if not self.maxsize:
            return None
        token = self._token_fn()
        with self._lock:
            if token != self._token:
                self._entries.clear()
                self._token = token
                return None
            entry = self._entries.get(raw_target)
            if entry is not None:
                self.hits += 1
                _obs.HTTP_WIRE_HITS.inc()
            return entry

    def put(
        self,
        raw_target: bytes,
        token: Tuple,
        entry: WireEntry,
    ) -> None:
        if not self.maxsize:
            return
        with self._lock:
            if token != self._token:
                if token != self._token_fn():
                    return  # rendered against a state that is already gone
                self._entries.clear()
                self._token = token
            if len(self._entries) >= self.maxsize:
                return  # bounded: hot targets fill it, the tail stays slow
            self._entries[raw_target] = entry
            self.fills += 1
            _obs.HTTP_WIRE_FILLS.inc()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "fills": self.fills,
            }


def _render_wire_entry(
    version_line: bytes, response, etag: str, route: str = "other"
) -> WireEntry:
    """Render a 200 response (and its 304 twin) into wire images.

    Header order mirrors the slow path exactly: ``Server``, ``Date``,
    ``Content-Type``, ``Content-Length``, then the dispatcher's extra
    headers — with ``X-Cache`` rewritten to ``hit``, because a memoized
    answer *is* a cache hit.
    """
    head_200 = b"HTTP/1.1 200 OK\r\nServer: %s\r\nDate: " % version_line
    parts = [
        b"\r\nContent-Type: %s" % response.content_type.encode("latin-1"),
        b"\r\nContent-Length: %d" % len(response.body),
    ]
    for name, value in response.headers:
        if name == "X-Cache":
            value = "hit"
        parts.append(
            b"\r\n%s: %s" % (name.encode("latin-1"), value.encode("latin-1"))
        )
    parts.append(b"\r\n\r\n")
    parts.append(response.body)
    etag_bytes = etag.encode("latin-1")
    head_304 = b"HTTP/1.1 304 Not Modified\r\nServer: %s\r\nDate: " \
        % version_line
    tail_304 = b"\r\nETag: %s\r\n\r\n" % etag_bytes
    return WireEntry(
        etag=etag_bytes,
        head_200=head_200,
        tail_200=b"".join(parts),
        head_304=head_304,
        tail_304=tail_304,
        route=route,
    )


class _Handler(BaseHTTPRequestHandler):
    """Per-request plumbing; all semantics live in ``api.handle``."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    # Small header+body writes must hit the wire immediately: Nagle +
    # delayed ACK otherwise stalls every keep-alive client ~40 ms/req.
    disable_nagle_algorithm = True

    #: Largest request body drained to keep a keep-alive connection
    #: usable; anything bigger forces the connection closed instead.
    _MAX_DRAIN = 1 << 20

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def handle_one_request(self) -> None:
        """Stock request loop with a wire-cache short-circuit.

        Mirrors ``BaseHTTPRequestHandler.handle_one_request`` exactly,
        except that a well-formed ``GET <known target> HTTP/1.1`` whose
        rendered bytes are memoized is answered by
        :meth:`_fast_response` without the stdlib header parse.
        """
        try:
            self.raw_requestline = self.rfile.readline(65537)
            if len(self.raw_requestline) > 65536:
                self.requestline = ""
                self.request_version = ""
                self.command = ""
                self.send_error(414)
                return
            if not self.raw_requestline:
                self.close_connection = True
                return
            words = self.raw_requestline.split()
            if (
                len(words) == 3
                and words[0] == b"GET"
                and words[2] == b"HTTP/1.1"
            ):
                entry = self.server.wire_cache.lookup(words[1])
                if entry is not None:
                    t0 = perf_counter_ns()
                    status = self._fast_response(words[1], entry)
                    if status is not None:
                        # Counted at completion, mirroring api.handle:
                        # the wire path bypasses the dispatcher, so it
                        # must feed the same request counters itself.
                        _obs.HTTP_REQUESTS_BY_ROUTE[entry.route].inc()
                        _obs.HTTP_LATENCY_BY_ROUTE[entry.route].observe(
                            perf_counter_ns() - t0
                        )
                        if status == 304:
                            _obs.HTTP_NOT_MODIFIED.inc()
                    return
            if not self.parse_request():
                return
            mname = "do_" + self.command
            if not hasattr(self, mname):
                self.send_error(
                    501, "Unsupported method (%r)" % self.command
                )
                return
            getattr(self, mname)()
            self.wfile.flush()
        except TimeoutError as exc:
            self.log_error("Request timed out: %r", exc)
            self.close_connection = True

    def _fast_response(
        self, raw_target: bytes, entry: WireEntry
    ) -> Optional[int]:
        """Answer from a wire image after a raw scan of the headers.

        The scan only needs three facts the slow path would extract
        from the parsed headers: does ``If-None-Match`` hold our ETag
        (304 instead of 200), did the client ask ``Connection: close``,
        and is there a request body to drain before the next pipelined
        request.  Everything else in the header block is irrelevant to
        a memoized GET.

        Returns the status written (200/304), or ``None`` when the
        request was rejected before a response image went out (431).
        """
        revalidated = False
        close = False
        drain = 0
        count = 0
        while True:
            line = self.rfile.readline(65537)
            if line in (b"\r\n", b"\n", b""):
                break
            count += 1
            if len(line) > 65536 or count > 100:
                self.requestline = ""
                self.request_version = ""
                self.command = "GET"
                self.path = raw_target.decode("latin-1")
                self.send_error(431)
                return None
            low = line.lower()
            if low.startswith(b"if-none-match"):
                if entry.etag in line:
                    revalidated = True
            elif low.startswith(b"connection"):
                if b"close" in low:
                    close = True
            elif low.startswith(b"content-length"):
                try:
                    drain = int(low.split(b":", 1)[1])
                except ValueError:
                    drain = -1
            elif low.startswith(b"transfer-encoding"):
                drain = -1
        if drain:
            if drain < 0 or drain > self._MAX_DRAIN:
                close = True
            else:
                self.rfile.read(drain)
        if revalidated:
            self.wfile.write(
                b"".join((entry.head_304, _http_date(), entry.tail_304))
            )
        else:
            self.wfile.write(
                b"".join((entry.head_200, _http_date(), entry.tail_200))
            )
        self.close_connection = close
        self.requestline = self.raw_requestline.decode(
            "latin-1"
        ).rstrip("\r\n")
        self.command = "GET"
        self.path = raw_target.decode("latin-1")
        self.log_request(304 if revalidated else 200)
        return 304 if revalidated else 200

    # ------------------------------------------------------------------
    # Slow path (stock dispatch through api.handle)
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        # Drain any request body first: on an HTTP/1.1 keep-alive
        # connection an unread body would be parsed as the next
        # request line, corrupting every pooled client.
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if self.headers.get("Transfer-Encoding") or length < 0 \
                or length > self._MAX_DRAIN:
            self.close_connection = True
        elif length:
            self.rfile.read(length)
        url = urlsplit(self.path)
        context = self.server.context
        token_before = context.state()
        response = handle(
            context, method, url.path, url.query, headers=self.headers
        )
        if response.status == 304:
            # RFC 9110: no body, no representation headers — only the
            # validator travels.
            self.send_response(304)
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            return
        body = b"" if method == "HEAD" else response.body
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        if body:
            self.wfile.write(body)
        self._maybe_memoize(method, response, token_before)

    def _maybe_memoize(self, method: str, response, token_before) -> None:
        """Feed the wire cache from a just-rendered slow-path response.

        Only 200 GETs carrying an ETag qualify (the dispatcher attaches
        ETags exclusively to cacheable-route successes), and only when
        the store token did not move while the response was being
        computed — otherwise the bytes might describe a state the token
        no longer names.
        """
        if method != "GET" or response.status != 200:
            return
        wire = self.server.wire_cache
        if not wire.maxsize:
            return
        etag = next(
            (v for n, v in response.headers if n == "ETag"), None
        )
        if etag is None or self.server.context.state() != token_before:
            return
        route, _ = match_path(ROUTES, urlsplit(self.path).path)
        wire.put(
            self.path.encode("latin-1"),
            token_before,
            _render_wire_entry(
                self.version_string().encode("latin-1"), response, etag,
                route=_obs.route_label(route.name if route else None),
            ),
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    do_PUT = do_DELETE = do_PATCH = do_OPTIONS = do_POST

    def send_error(self, code, message=None, explain=None) -> None:
        """Canonical JSON envelope even for stdlib-generated errors.

        BaseHTTPRequestHandler calls this for conditions the dispatch
        never sees — an unknown verb (501), a malformed request line
        (400), an over-long URI (414).  The API contract promises one
        error shape for every non-200 response, so those must not fall
        back to the stdlib's HTML error page.
        """
        from .api import error_response

        response = error_response(code, message or explain or "")
        self.log_error("code %d, message %s", code, message or "")
        try:
            self.send_response(code, response.reason)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            self.send_header("Connection", "close")
            self.end_headers()
            if getattr(self, "command", None) != "HEAD":
                self.wfile.write(response.body)
        except OSError:  # pragma: no cover - client already gone
            pass
        self.close_connection = True

    def log_message(self, format: str, *args) -> None:
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)


class DesignServer(ThreadingHTTPServer):
    """HTTP server with a bounded worker pool and a shared context.

    Three bind modes, for the three serving topologies:

    * default — bind ``address`` exclusively (single process);
    * ``reuse_port=True`` — set ``SO_REUSEPORT`` before binding, so N
      sibling processes can bind the same address and let the kernel
      load-balance accepted connections across them;
    * ``listen_socket=...`` — adopt an already-listening socket
      (received over ``socket.recv_fds`` by the prefork fallback where
      ``SO_REUSEPORT`` does not exist).
    """

    daemon_threads = True
    # TCPServer's default listen backlog (5) drops connection bursts on
    # the floor well below the worker pool's capacity; queue them instead.
    request_queue_size = 128

    def __init__(
        self,
        address,
        context: ServeContext,
        workers: int = 8,
        quiet: bool = False,
        reuse_port: bool = False,
        listen_socket: Optional[socket.socket] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._reuse_port = reuse_port
        if listen_socket is None:
            super().__init__(address, _Handler)
        else:
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()  # the placeholder socketserver created
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            host, port = self.server_address[:2]
            self.server_name = socket.getfqdn(host)
            self.server_port = port
        self.context = context
        self.quiet = quiet
        self.wire_cache = context.wire_cache
        if self.wire_cache is None:
            self.wire_cache = WireCache(context.store, maxsize=0)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    def server_bind(self) -> None:
        if self._reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
                raise OSError(
                    "SO_REUSEPORT is not available on this platform; "
                    "use the prefork listen_socket mode instead"
                )
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def process_request(self, request, client_address) -> None:
        # Bound concurrency: queue in the pool instead of one unbounded
        # thread per connection (ThreadingMixIn's default).
        self._pool.submit(self.process_request_thread, request, client_address)

    def server_close(self) -> None:
        super().server_close()
        # A failed bind closes the server from inside super().__init__,
        # before the pool exists.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)


def create_server(
    db,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 8,
    cache_size: int = 1024,
    quiet: bool = False,
    reuse_port: bool = False,
    listen_socket: Optional[socket.socket] = None,
) -> DesignServer:
    """Bind a :class:`DesignServer` over the store(s) at ``db``.

    Parameters
    ----------
    db : str or sequence of str
        Design-store SQLite file (as written by ``repro library build``).
        Opening validates the schema version; a missing file is created
        empty, so point-at-wrong-path mistakes surface as ``designs: 0``
        in ``/healthz`` rather than a crash.  A sequence of paths
        mounts every store behind one federated query surface
        (:class:`~repro.library.federation.FederatedStore`): queries
        answer from the Pareto union, and a write to any file
        invalidates the snapshot, caches and ETags.
    host, port : str, int
        Bind address; ``port=0`` picks an ephemeral port (the bound one
        is ``server.server_port``).
    workers : int
        Size of the request-handling thread pool.
    cache_size : int
        Response-cache entry cap, shared with the wire cache; ``0``
        disables both (every request runs the full dispatch).
    quiet : bool
        Suppress per-request access logging.
    reuse_port : bool
        Bind with ``SO_REUSEPORT`` (multi-process workers; see
        :mod:`repro.serve.procs`).
    listen_socket : socket.socket, optional
        Adopt this already-listening socket instead of binding.
    """
    paths = [db] if isinstance(db, str) else list(db)
    if len(paths) == 1:
        store = DesignStore(paths[0])
    else:
        store = FederatedStore(paths)
    context = ServeContext(
        store=store,
        cache=ResponseCache(cache_size),
        wire_cache=WireCache(store, maxsize=cache_size),
    )
    # Claim this process's lane in the metrics slab: /healthz fleet
    # aggregation treats a nonzero pid gauge as "live worker".
    _obs.WORKER_PID.set(os.getpid())
    return DesignServer(
        (host, port), context, workers=workers, quiet=quiet,
        reuse_port=reuse_port, listen_socket=listen_socket,
    )


def serve(
    db,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 8,
    cache_size: int = 1024,
    quiet: bool = False,
    procs: int = 1,
) -> int:
    """Run the server until interrupted (the ``repro serve`` command).

    ``db`` is one store path or a sequence of them (a federated
    mount; see :func:`create_server`).  ``procs=1`` (the default)
    serves from this process exactly as before; ``procs>1`` delegates
    to :func:`repro.serve.procs.serve_multiprocess` — N worker
    processes sharing the port, supervised and respawned by this one.
    """
    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    if procs > 1:
        from .procs import serve_multiprocess

        return serve_multiprocess(
            db, host=host, port=port, procs=procs, workers=workers,
            cache_size=cache_size, quiet=quiet,
        )
    server = create_server(
        db, host=host, port=port, workers=workers,
        cache_size=cache_size, quiet=quiet,
    )
    shown = db if isinstance(db, str) else " + ".join(db)
    print(
        f"serving {shown} on http://{host}:{server.server_port} "
        f"({workers} workers, cache {cache_size}); Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0
