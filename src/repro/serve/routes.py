"""The route table: the single source of truth for the HTTP API.

Every endpoint of the serving layer is one :class:`Route` in
:data:`repro.serve.api.ROUTES` — method, path template, typed query
parameters, handler, and documentation strings.  Three consumers read
the same table, which is what keeps them from drifting apart:

* the request dispatcher (:func:`repro.serve.api.handle`) matches
  paths and validates parameters against it,
* the OpenAPI generator (:mod:`repro.serve.openapi`) renders it into
  ``/openapi.json`` and the Markdown API reference in ``docs/api.md``,
* CI re-renders the spec from this table and fails when the committed
  reference differs (``python -m repro.serve.openapi --check``).

Path templates use ``{name}`` segments (``/v1/designs/{design_id}``);
a segment matches one path component, never across ``/``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = ["Param", "Route", "UNSET", "match_path", "compile_path"]

#: JSON-schema scalar types a query/path parameter may declare.
PARAM_TYPES = ("string", "integer", "number", "boolean")

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


class _Unset:
    """Sentinel distinguishing "no default" from a falsy default."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"


#: Default of a parameter with no default: an absent parameter stays
#: absent from the validated query instead of binding a value.  A
#: dedicated sentinel (not ``None``) so ``False``/``0``/``""`` work as
#: real defaults.
UNSET = _Unset()


@dataclass(frozen=True)
class Param:
    """One typed query (or path) parameter of a :class:`Route`.

    Parameters
    ----------
    name : str
        Wire name, exactly as it appears in the query string.
    type : str
        One of ``string``, ``integer``, ``number``, ``boolean``.
    required : bool
        Reject the request with 422 when the parameter is absent.
    default : object
        Value used when the parameter is absent (:data:`UNSET` = no
        default; the handler sees the key omitted).
    description : str
        Human sentence for the OpenAPI spec; spell out units here.
    enum : tuple of str, optional
        Closed vocabulary; any other value is a 422.
    """

    name: str
    type: str = "string"
    required: bool = False
    default: object = UNSET
    description: str = ""
    enum: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.type not in PARAM_TYPES:
            raise ValueError(
                f"parameter {self.name!r}: unknown type {self.type!r}"
            )

    def coerce(self, raw: str) -> object:
        """Parse a raw query-string value; raise ``ValueError`` to 422."""
        # Enum membership is checked on the raw wire value, before type
        # dispatch, so it binds for every parameter type.
        if self.enum is not None and raw not in self.enum:
            raise ValueError(
                f"parameter {self.name!r} must be one of "
                f"{', '.join(self.enum)}; got {raw!r}"
            )
        if self.type == "integer":
            try:
                return int(raw, 10)
            except ValueError:
                raise ValueError(
                    f"parameter {self.name!r} must be an integer, "
                    f"got {raw!r}"
                ) from None
        if self.type == "number":
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"parameter {self.name!r} must be a number, got {raw!r}"
                ) from None
            if value != value or value in (float("inf"), float("-inf")):
                raise ValueError(
                    f"parameter {self.name!r} must be finite, got {raw!r}"
                )
            return value
        if self.type == "boolean":
            lowered = raw.strip().lower()
            if lowered in _TRUE:
                return True
            if lowered in _FALSE:
                return False
            raise ValueError(
                f"parameter {self.name!r} must be a boolean "
                f"(true/false), got {raw!r}"
            )
        return raw


@dataclass(frozen=True)
class Route:
    """One endpoint: path template + typed parameters + handler.

    ``cached`` marks responses as safe to memoize in the read-through
    response cache (anything derived purely from the store contents);
    liveness endpoints opt out so they always reflect this instant.
    """

    method: str
    path: str
    name: str
    summary: str
    handler: Callable
    params: Tuple[Param, ...] = ()
    cached: bool = True
    description: str = ""
    #: OpenAPI component schema name of the 200 response body.
    response_schema: str = "Object"
    #: Content type of the 200 response (``/metrics`` is plain text).
    media_type: str = "application/json"
    pattern: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pattern", compile_path(self.path))

    def path_param_names(self) -> Tuple[str, ...]:
        """Names of the ``{...}`` segments, in path order."""
        return tuple(re.findall(r"\{(\w+)\}", self.path))


def compile_path(template: str) -> re.Pattern:
    """Compile a ``{name}``-style path template to an anchored regex."""
    parts = []
    for token in re.split(r"(\{\w+\})", template):
        if token.startswith("{") and token.endswith("}"):
            parts.append(f"(?P<{token[1:-1]}>[^/]+)")
        else:
            parts.append(re.escape(token))
    return re.compile("^" + "".join(parts) + "$")


def match_path(
    routes: Tuple[Route, ...], path: str
) -> Tuple[Optional[Route], Dict[str, str]]:
    """First route whose template matches ``path`` (+ path params).

    Returns ``(None, {})`` when no template matches — a 404, regardless
    of method.
    """
    for route in routes:
        found = route.pattern.match(path)
        if found:
            return route, found.groupdict()
    return None, {}
