"""Immutable in-memory snapshot of a design store for the hot read path.

A Pareto design store is small by construction — within each group the
store holds only non-dominated rows, so even a large build grid yields
tens-to-hundreds of records, kilobytes of data.  The serving layer
exploits that: instead of opening a SQLite connection per request, it
reads everything once into an immutable :class:`Snapshot` and answers
every catalog query (`/v1/best`, `/v1/front`, `/v1/stats`,
`/v1/designs/{id}`) from memory.

The snapshot is **duck-typed as the read surface of**
:class:`~repro.library.store.DesignStore` — it implements ``select``,
``count``, ``groups`` and ``completed_cells`` with identical filter,
ordering and value semantics — so :func:`repro.library.query.best`,
:func:`~repro.library.query.front` and :func:`~repro.library.query.stats`
run against it unchanged.  Responses are therefore byte-identical to
the direct SQLite path by construction: the selection logic is shared,
only the row source differs (asserted end-to-end by
``benchmarks/bench_serve.py``).

Freshness follows the same discipline as the response cache
(:mod:`repro.serve.cache`): a snapshot is stamped with the store's
:meth:`~repro.library.store.DesignStore.state_token` at build time —
``(st_mtime_ns, st_size)`` of the single backing file, or a tuple of
per-file tokens when a :class:`~repro.library.federation.FederatedStore`
mounts several — and :meth:`SnapshotManager.current` re-stats the
file(s) (one ~1 us syscall each) on every access.  A build writing
*any* backing store changes the token, the next request rebuilds, and
the atomic reference swap means concurrent requests either see the
complete old image or the complete new one, never a torn mix.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..library.store import DesignRecord, DesignStore, filter_records
from ..obs import catalog as _obs

__all__ = ["Snapshot", "SnapshotManager"]


def _state_ns(state) -> int:
    """Newest ``st_mtime_ns`` inside a state token, for the gauge.

    Single-store tokens are ``(st_mtime_ns, st_size)``; federated
    tokens are tuples of those — either way the newest mtime is the
    scalar worth exposing.
    """
    if state and isinstance(state[0], tuple):
        return max(int(s[0]) for s in state)
    return int(state[0]) if state else 0


class Snapshot:
    """One immutable image of a store: every record, group and cell.

    Built via :meth:`build`; never mutated afterwards (the manager swaps
    whole snapshots, it does not patch them).  All reads are lock-free.

    Attributes
    ----------
    state : tuple of int
        The ``(st_mtime_ns, st_size)`` store-file token the image was
        built against — the same token the response cache and the ETag
        generator key on, so all three invalidate together.
    """

    __slots__ = ("state", "records", "_groups", "_cells", "_stats")

    def __init__(
        self,
        state: Tuple[int, int],
        records: Tuple[DesignRecord, ...],
        groups: Tuple[Tuple[Tuple[str, int, bool, str, str], int], ...],
        cells: Dict[str, str],
    ) -> None:
        self.state = state
        self.records = records
        self._groups = groups
        self._cells = cells
        self._stats: Optional[dict] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, store: DesignStore, retries: int = 3) -> "Snapshot":
        """Read a consistent image of ``store``.

        The three reads (records, groups, cells) use separate
        short-lived connections, so a concurrent builder commit between
        them could tear the image.  The token is compared before and
        after the reads and the whole load retried on mismatch; under
        continuous writing the last attempt is accepted (its token is
        already stale, so the very next request rebuilds again).
        """
        state = store.state_token()
        for _ in range(max(1, retries)):
            records = store.select()
            groups = store.groups()
            cells = store.completed_cells()
            after = store.state_token()
            if after == state:
                break
            state = after
        return cls(
            state=state,
            records=tuple(records),
            groups=tuple(groups),
            cells=dict(cells),
        )

    # ------------------------------------------------------------------
    # The DesignStore read surface (see module doc: duck-typed)
    # ------------------------------------------------------------------
    def select(
        self,
        component: Optional[str] = None,
        width: Optional[int] = None,
        metric: Optional[str] = None,
        dist: Optional[str] = None,
        signed: Optional[bool] = None,
        design_id: Optional[str] = None,
        design_id_prefix: Optional[str] = None,
        max_error: Optional[float] = None,
    ) -> List[DesignRecord]:
        """Exactly :meth:`DesignStore.select`, minus the SQL.

        ``self.records`` is already in the store's total order
        ``(error, area, design_id, component, width, signed, metric,
        dist)`` — SQLite's BINARY collation is bytewise UTF-8, which
        equals Python's code-point ordering — and
        :func:`~repro.library.store.filter_records` preserves order,
        so no re-sort is needed.
        """
        return filter_records(
            self.records,
            component=component, width=width, metric=metric, dist=dist,
            signed=signed, design_id=design_id,
            design_id_prefix=design_id_prefix, max_error=max_error,
        )

    def count(self) -> int:
        return len(self.records)

    def groups(self) -> List[Tuple[Tuple[str, int, bool, str, str], int]]:
        # Captured verbatim from the store at build time, so the
        # /v1/stats group order matches the SQLite GROUP BY order
        # byte-for-byte.
        return list(self._groups)

    def completed_cells(self) -> Dict[str, str]:
        return dict(self._cells)

    # ------------------------------------------------------------------
    # Pre-rendered payloads
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        """The ``/v1/stats`` body, computed once per snapshot.

        Identical to ``repro.library.query.stats(store)`` at this state
        (it *is* that function, run over the snapshot).  Memoized
        because stats aggregates every group; the assignment is atomic
        so racing requests at worst compute it twice.
        """
        if self._stats is None:
            from ..library.query import stats

            self._stats = stats(self)
        return self._stats


class SnapshotManager:
    """Owns the current :class:`Snapshot`; rebuilds when the store moves.

    ``current()`` is the only entry point the handlers use: it stats the
    store file, returns the held snapshot when the token still matches,
    and otherwise rebuilds under a lock (double-checked, so concurrent
    requests trigger exactly one rebuild) and atomically swaps the
    reference.  Requests already holding the old snapshot keep serving
    the old consistent image — immutability makes that safe.
    """

    def __init__(self, store: DesignStore) -> None:
        self._store = store
        self._lock = threading.Lock()
        self._snapshot: Optional[Snapshot] = None
        self.rebuilds = 0

    def current(self) -> Snapshot:
        """The snapshot matching the store's current state token."""
        snapshot = self._snapshot
        token = self._store.state_token()
        if snapshot is not None and snapshot.state == token:
            return snapshot
        with self._lock:
            snapshot = self._snapshot
            if snapshot is None \
                    or snapshot.state != self._store.state_token():
                snapshot = Snapshot.build(self._store)
                self._snapshot = snapshot
                self.rebuilds += 1
                _obs.SNAPSHOT_REBUILDS.inc()
                _obs.SNAPSHOT_DESIGNS.set(snapshot.count())
                _obs.SNAPSHOT_STATE_NS.set(_state_ns(snapshot.state))
            return snapshot

    def stats(self) -> dict:
        """Observability block for ``/healthz`` (per-process)."""
        snapshot = self._snapshot
        return {
            "state": list(snapshot.state) if snapshot is not None else None,
            "designs": snapshot.count() if snapshot is not None else None,
            "rebuilds": self.rebuilds,
        }
