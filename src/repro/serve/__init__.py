"""HTTP serving layer over the design library.

The ROADMAP's "millions of users" surface: a dependency-free HTTP JSON
API over :mod:`repro.library.query`, so downstream users select
Pareto-optimal approximate circuits by error budget with a ``curl``
instead of a Python environment.  ``repro serve --db designs.sqlite``
on the CLI; see ``docs/serving.md`` for the cookbook and ``docs/api.md``
for the generated endpoint reference.

* :mod:`repro.serve.routes` — the route table (:class:`Route`,
  :class:`Param`): the single source of truth the dispatcher, the
  OpenAPI spec and the docs are all generated from;
* :mod:`repro.serve.api` — HTTP-independent handlers + dispatch
  (:func:`handle`): request validation, canonical error envelopes,
  read-through response caching;
* :mod:`repro.serve.cache` — the LRU response cache, keyed on the store
  file state so any ``library build`` write invalidates for free;
* :mod:`repro.serve.openapi` — ``/openapi.json`` + the Markdown API
  reference, generated (and CI-verified) from the route table;
* :mod:`repro.serve.snapshot` — the immutable in-memory store image
  (:class:`Snapshot`) the hot read path serves from, atomically swapped
  when the store file changes;
* :mod:`repro.serve.server` — the threaded stdlib HTTP server
  (:func:`create_server` for embedding, :func:`serve` for the CLI),
  including the wire-level fast path (:class:`WireCache`);
* :mod:`repro.serve.procs` — ``--procs N`` multi-process serving
  (:class:`MultiProcessServer`): N workers on one shared port via
  ``SO_REUSEPORT`` or prefork fd passing, supervised and respawned.

Endpoints: ``/healthz``, ``/v1/best``, ``/v1/front``, ``/v1/stats``,
``/v1/designs/{design_id}`` (JSON / Verilog / netlist export),
``/openapi.json``.
"""

from .api import (
    ROUTES,
    Response,
    ServeContext,
    handle,
    make_etag,
    record_to_json,
)
from .cache import ResponseCache, store_state
from .procs import MultiProcessServer, reuseport_supported
from .routes import Param, Route
from .server import DesignServer, WireCache, create_server, serve
from .snapshot import Snapshot, SnapshotManager

# NOTE: repro.serve.openapi is deliberately not imported here — it is a
# runnable module (`python -m repro.serve.openapi`), and importing it
# from the package __init__ would trip runpy's double-import warning.

__all__ = [
    "DesignServer",
    "MultiProcessServer",
    "Param",
    "ROUTES",
    "Response",
    "ResponseCache",
    "Route",
    "ServeContext",
    "Snapshot",
    "SnapshotManager",
    "WireCache",
    "create_server",
    "handle",
    "make_etag",
    "record_to_json",
    "reuseport_supported",
    "serve",
    "store_state",
]
