"""repro — data-distribution-driven automated circuit approximation.

A from-scratch reproduction of Vasicek, Mrazek and Sekanina, "Automated
Circuit Approximation Method Driven by Data Distribution" (DATE 2019):
WMED-driven Cartesian Genetic Programming over gate-level arithmetic
circuits, plus every substrate the paper's evaluation rests on (circuit
simulation, technology cost models, baseline approximate multipliers, a
Gaussian image filter, and quantized neural-network inference with
approximate MAC units).

Subpackages:

* :mod:`repro.core` — CGP search with the WMED-constrained fitness,
* :mod:`repro.circuits` — gate-level netlists, simulation, generators,
* :mod:`repro.errors` — WMED and other error metrics; distributions,
* :mod:`repro.tech` — area / power / timing / PDP models,
* :mod:`repro.baselines` — truncated / broken-array / zero-guard shelves,
* :mod:`repro.imaging` — the approximate Gaussian filter case study,
* :mod:`repro.nn` — quantized NN inference with approximate multipliers,
* :mod:`repro.analysis` — sweeps, heat maps, reporting,
* :mod:`repro.engine` — compiled evaluation engine (phenotype compiler,
  native/numpy kernels, phenotype cache) behind the CGP hot path,
* :mod:`repro.library` — persistent design library (SQLite Pareto
  store, resumable grid builder, query/selection API, export pipeline).
"""

__version__ = "1.2.0"

__all__ = [
    "analysis",
    "baselines",
    "circuits",
    "core",
    "engine",
    "errors",
    "imaging",
    "library",
    "nn",
    "tech",
]
