"""Netlist (de)serialization to plain JSON-compatible dicts.

Evolved circuits and generated baselines are archived as small JSON
documents so experiment artifacts can be stored, diffed and reloaded
without pickling.  The schema is deliberately minimal::

    {"name": ..., "num_inputs": N,
     "gates": [["AND", src_a, src_b], ...],
     "outputs": [...]}
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .netlist import Gate, Netlist

__all__ = ["netlist_to_dict", "netlist_from_dict", "save_netlist", "load_netlist"]

_SCHEMA_KEYS = {"name", "num_inputs", "gates", "outputs"}


def netlist_to_dict(netlist: Netlist) -> Dict[str, Any]:
    """JSON-compatible representation of a netlist."""
    return {
        "name": netlist.name,
        "num_inputs": netlist.num_inputs,
        "gates": [[g.fn, *g.inputs] for g in netlist.gates],
        "outputs": list(netlist.outputs),
    }


def netlist_from_dict(data: Dict[str, Any]) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_dict` output.

    Raises:
        ValueError: on schema violations or structurally invalid circuits.
    """
    missing = {"num_inputs", "gates", "outputs"} - set(data)
    if missing:
        raise ValueError(f"missing keys: {sorted(missing)}")
    net = Netlist(
        num_inputs=int(data["num_inputs"]), name=str(data.get("name", ""))
    )
    for entry in data["gates"]:
        if not entry:
            raise ValueError("empty gate entry")
        fn, *srcs = entry
        net.add_gate(str(fn), *(int(s) for s in srcs))
    net.set_outputs([int(o) for o in data["outputs"]])
    net.validate()
    return net


def save_netlist(netlist: Netlist, path: str) -> None:
    """Write a netlist to a JSON file."""
    with open(path, "w") as fh:
        json.dump(netlist_to_dict(netlist), fh, indent=1)


def load_netlist(path: str) -> Netlist:
    """Read a netlist from a JSON file written by :func:`save_netlist`."""
    with open(path) as fh:
        return netlist_from_dict(json.load(fh))
