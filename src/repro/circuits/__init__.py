"""Gate-level combinational circuit substrate.

Public surface:

* :class:`~repro.circuits.netlist.Netlist`, :class:`~repro.circuits.netlist.Gate`
  — circuit representation,
* :mod:`~repro.circuits.gates` — gate function registry,
* :mod:`~repro.circuits.simulator` — vectorized packed-bit simulation,
* :mod:`~repro.circuits.generators` — exact adders / multipliers / MACs,
* :mod:`~repro.circuits.verify` — exhaustive functional checks,
* :func:`~repro.circuits.compose.append_netlist` — structural composition.
"""

from .compose import append_netlist
from .gates import DEFAULT_FUNCTION_SET, FULL_FUNCTION_SET, GATE_REGISTRY, gate_function
from .netlist import Gate, Netlist
from .verilog import to_verilog
from .simulator import (
    exhaustive_inputs,
    output_values,
    pack_bits,
    pack_input_vectors,
    simulate,
    truth_table,
    unpack_bits,
    words_to_values,
)

__all__ = [
    "Gate",
    "Netlist",
    "append_netlist",
    "DEFAULT_FUNCTION_SET",
    "FULL_FUNCTION_SET",
    "GATE_REGISTRY",
    "gate_function",
    "exhaustive_inputs",
    "output_values",
    "pack_bits",
    "pack_input_vectors",
    "simulate",
    "truth_table",
    "unpack_bits",
    "words_to_values",
    "to_verilog",
]
