"""Gate-level netlist representation.

A :class:`Netlist` is a flat, topologically ordered list of gates over a
shared signal address space, mirroring the addressing scheme of Cartesian
Genetic Programming:

* signals ``0 .. num_inputs - 1`` are the primary inputs,
* the gate appended at position ``k`` drives signal ``num_inputs + k``,
* every gate may only read signals with *smaller* addresses, so the list
  order is a valid evaluation order by construction and no feedback is
  representable (combinational circuits only).

This doubles as the interchange format between the exact-circuit
generators (:mod:`repro.circuits.generators`), the CGP seeding code
(:mod:`repro.core.seeding`) and the technology-level cost models
(:mod:`repro.tech`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .gates import GATE_REGISTRY, gate_function

__all__ = ["Gate", "Netlist"]


@dataclass(frozen=True)
class Gate:
    """One gate instance: a function name plus input signal addresses."""

    fn: str
    inputs: Tuple[int, ...]

    def __post_init__(self) -> None:
        spec = gate_function(self.fn)
        if len(self.inputs) < spec.arity:
            raise ValueError(
                f"gate {self.fn} needs {spec.arity} inputs, got {self.inputs}"
            )


@dataclass
class Netlist:
    """A combinational circuit as a topologically ordered gate list.

    Attributes:
        num_inputs: Number of primary inputs.
        gates: Gate list; gate ``k`` drives signal ``num_inputs + k``.
        outputs: Signal addresses of the primary outputs (may repeat and
            may point directly at primary inputs).
        name: Optional human-readable circuit name.
    """

    num_inputs: int
    gates: List[Gate] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)
    name: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_gate(self, fn: str, *inputs: int) -> int:
        """Append a gate and return the signal address it drives.

        Unary/nullary functions may be given fewer operands; the missing
        connection slots are padded with signal 0 so that every stored gate
        has a uniform two-slot shape (matching the CGP node format).
        """
        spec = gate_function(fn)
        padded = tuple(inputs) + (0,) * (2 - len(inputs))
        if len(padded) != 2:
            raise ValueError(f"at most 2 inputs supported, got {inputs}")
        limit = self.num_signals
        for src in padded[: max(spec.arity, 0)] if spec.arity else ():
            if not 0 <= src < limit:
                raise ValueError(
                    f"gate input {src} out of range [0, {limit}) for fn {fn}"
                )
        # Unused slots must still be legal addresses.
        padded = tuple(min(src, limit - 1) if limit else 0 for src in padded)
        self.gates.append(Gate(fn, padded))
        return limit

    def set_outputs(self, outputs: Sequence[int]) -> None:
        """Define the primary outputs, validating every address."""
        for out in outputs:
            if not 0 <= out < self.num_signals:
                raise ValueError(f"output address {out} out of range")
        self.outputs = list(outputs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_signals(self) -> int:
        """Total number of addressable signals (inputs + gate outputs)."""
        return self.num_inputs + len(self.gates)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def gate_signal(self, gate_index: int) -> int:
        """Signal address driven by gate ``gate_index``."""
        return self.num_inputs + gate_index

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        for k, gate in enumerate(self.gates):
            sig = self.gate_signal(k)
            if gate.fn not in GATE_REGISTRY:
                raise ValueError(f"gate {k} has unknown function {gate.fn!r}")
            for src in gate.inputs:
                if not 0 <= src < sig:
                    raise ValueError(
                        f"gate {k} (signal {sig}) reads illegal source {src}"
                    )
        for out in self.outputs:
            if not 0 <= out < self.num_signals:
                raise ValueError(f"output address {out} out of range")

    def active_signals(self) -> Set[int]:
        """Signals in the transitive fan-in cone of the outputs.

        Primary inputs that feed the cone are included.  Gates outside the
        cone contribute neither to function nor (in our cost models) to
        area/power — they correspond to the inactive CGP nodes.
        """
        active: Set[int] = set()
        stack = [out for out in self.outputs]
        while stack:
            sig = stack.pop()
            if sig in active:
                continue
            active.add(sig)
            if sig >= self.num_inputs:
                gate = self.gates[sig - self.num_inputs]
                spec = gate_function(gate.fn)
                stack.extend(gate.inputs[: spec.arity])
        return active

    def active_gate_indices(self) -> List[int]:
        """Indices of gates inside the output cone, in topological order."""
        active = self.active_signals()
        return [
            k
            for k in range(len(self.gates))
            if self.gate_signal(k) in active
        ]

    def cell_counts(self, active_only: bool = True) -> Dict[str, int]:
        """Histogram of gate function names.

        Args:
            active_only: Count only gates in the output cone (the default;
                matches how area is reported for CGP phenotypes).
        """
        indices: Iterable[int]
        if active_only:
            indices = self.active_gate_indices()
        else:
            indices = range(len(self.gates))
        counts: Dict[str, int] = {}
        for k in indices:
            fn = self.gates[k].fn
            counts[fn] = counts.get(fn, 0) + 1
        return counts

    def fanouts(self) -> Dict[int, int]:
        """Number of gate/output consumers per signal (active cone only)."""
        fanout: Dict[int, int] = {}
        active = self.active_signals()
        for k in self.active_gate_indices():
            gate = self.gates[k]
            spec = gate_function(gate.fn)
            for src in gate.inputs[: spec.arity]:
                fanout[src] = fanout.get(src, 0) + 1
        for out in self.outputs:
            fanout[out] = fanout.get(out, 0) + 1
        for sig in active:
            fanout.setdefault(sig, 0)
        return fanout

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self) -> "Netlist":
        """Deep copy (gates are immutable, so a shallow list copy suffices)."""
        return Netlist(
            num_inputs=self.num_inputs,
            gates=list(self.gates),
            outputs=list(self.outputs),
            name=self.name,
        )

    def pruned(self) -> "Netlist":
        """Return an equivalent netlist containing only the active cone.

        Signal addresses are compacted; primary inputs keep their position.
        """
        keep = self.active_gate_indices()
        remap: Dict[int, int] = {i: i for i in range(self.num_inputs)}
        new = Netlist(num_inputs=self.num_inputs, name=self.name)
        for k in keep:
            gate = self.gates[k]
            spec = gate_function(gate.fn)
            srcs = tuple(
                remap[s] for s in gate.inputs[: spec.arity]
            )
            remap[self.gate_signal(k)] = new.add_gate(gate.fn, *srcs)
        new.set_outputs([remap[o] for o in self.outputs])
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Netlist{label}: {self.num_inputs} in, {self.num_outputs} out, "
            f"{len(self.gates)} gates ({len(self.active_gate_indices())} active)>"
        )
