"""Exhaustive functional verification helpers.

Arithmetic circuits built by the generators (or evolved by CGP) are small
enough that their full truth table is cheap to compute, so verification is
exact: compare against numpy-computed reference arithmetic over every
input combination.
"""

from __future__ import annotations

import numpy as np

from .netlist import Netlist
from .simulator import truth_table

__all__ = [
    "operand_grids",
    "reference_products",
    "reference_sums",
    "verify_multiplier",
    "verify_adder",
    "mismatch_count",
]


def operand_grids(width: int, signed: bool) -> (np.ndarray, np.ndarray):
    """Per-vector operand values for the standard two-operand layout.

    Vector ``v`` encodes ``x = v & (2**width - 1)`` (inputs 0..w-1) and
    ``y = v >> width`` (inputs w..2w-1); with ``signed=True`` both are
    decoded as two's complement.

    Returns:
        ``(x, y)`` int64 arrays of length ``2**(2 * width)``.
    """
    n = 1 << width
    raw = np.arange(n, dtype=np.int64)
    vals = np.where(raw >= n // 2, raw - n, raw) if signed else raw
    x = np.tile(vals, n)
    y = np.repeat(vals, n)
    return x, y


def reference_products(width: int, signed: bool) -> np.ndarray:
    """Exact products ``x * y`` for every input vector, in vector order."""
    x, y = operand_grids(width, signed)
    return x * y


def reference_sums(width: int, signed: bool, with_carry: bool = True) -> np.ndarray:
    """Exact sums ``x + y`` for every input vector, in vector order.

    With ``with_carry`` the value is the full ``width + 1``-bit result (as
    produced by :func:`~repro.circuits.generators.adders.build_ripple_carry_adder`);
    otherwise it wraps modulo ``2**width``.
    """
    x, y = operand_grids(width, signed)
    s = x + y
    if not with_carry:
        s = np.mod(s, 1 << width)
    return s


def mismatch_count(netlist: Netlist, reference: np.ndarray, signed: bool) -> int:
    """Number of input vectors on which the circuit disagrees with ``reference``."""
    got = truth_table(netlist, signed=signed)
    if got.shape != reference.shape:
        raise ValueError(
            f"reference has {reference.shape} entries, circuit {got.shape}"
        )
    return int(np.count_nonzero(got != reference))


def verify_multiplier(netlist: Netlist, width: int, signed: bool) -> None:
    """Assert that ``netlist`` is an exact ``width``-bit multiplier.

    Raises:
        AssertionError: with the first differing vector on mismatch.
    """
    ref = reference_products(width, signed)
    got = truth_table(netlist, signed=signed)
    bad = np.nonzero(got != ref)[0]
    if bad.size:
        v = int(bad[0])
        x, y = operand_grids(width, signed)
        raise AssertionError(
            f"multiplier mismatch at vector {v}: "
            f"{x[v]} * {y[v]} = {ref[v]}, circuit says {got[v]} "
            f"({bad.size} mismatching vectors total)"
        )


def verify_adder(netlist: Netlist, width: int, with_carry: bool = True) -> None:
    """Assert that ``netlist`` is an exact unsigned ``width``-bit adder."""
    ref = reference_sums(width, signed=False, with_carry=with_carry)
    got = truth_table(netlist, signed=False)
    bad = np.nonzero(got != ref)[0]
    if bad.size:
        v = int(bad[0])
        x, y = operand_grids(width, False)
        raise AssertionError(
            f"adder mismatch at vector {v}: "
            f"{x[v]} + {y[v]} = {ref[v]}, circuit says {got[v]} "
            f"({bad.size} mismatching vectors total)"
        )
