"""Exact subtractor generators.

Mirrors :mod:`.adders`: the cell builders (:func:`half_subtractor`,
:func:`full_subtractor`, :func:`borrow_ripple_subtractor`) append gate
structures to an existing netlist and return the produced signal
addresses, and :func:`build_borrow_ripple_subtractor` wraps them into a
standalone component with the standard two-operand interface.  The
restoring-array divider (:mod:`.dividers`) reuses the ripple chain as
its per-row trial subtractor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netlist import Netlist

__all__ = [
    "half_subtractor",
    "full_subtractor",
    "borrow_ripple_subtractor",
    "build_borrow_ripple_subtractor",
]


def half_subtractor(net: Netlist, a: int, b: int) -> Tuple[int, int]:
    """Append ``a - b``; return ``(difference, borrow)`` addresses."""
    d = net.add_gate("XOR", a, b)
    na = net.add_gate("NOT", a)
    borrow = net.add_gate("AND", na, b)  # ~a & b
    return d, borrow


def full_subtractor(net: Netlist, a: int, b: int, bin_: int) -> Tuple[int, int]:
    """Append ``a - b - bin``; return ``(difference, borrow)`` addresses.

    The dual of the full adder, built from the paper's function set
    (identity/inversion/two-input gates):
    ``borrow = (~a & b) | (~(a ^ b) & bin)``.
    """
    axb = net.add_gate("XOR", a, b)
    d = net.add_gate("XOR", axb, bin_)
    na = net.add_gate("NOT", a)
    t1 = net.add_gate("AND", na, b)  # ~a & b
    nx = net.add_gate("NOT", axb)
    t2 = net.add_gate("AND", nx, bin_)  # ~(a ^ b) & bin
    borrow = net.add_gate("OR", t1, t2)
    return d, borrow


def borrow_ripple_subtractor(
    net: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    bin_: Optional[int] = None,
) -> Tuple[List[int], int]:
    """Append a borrow-ripple subtractor over two equal-width operands.

    Args:
        net: Netlist to extend.
        a_bits: LSB-first signal addresses of the minuend A.
        b_bits: LSB-first signal addresses of the subtrahend B.
        bin_: Optional borrow-in signal; omitted means borrow-in of 0
            (the first stage degenerates to a half subtractor).

    Returns:
        ``(difference_bits, borrow_out)`` where ``difference_bits`` is
        LSB-first, same width as the operands, and holds
        ``(A - B) mod 2**width``; ``borrow_out`` is 1 iff ``A < B``.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    if not a_bits:
        raise ValueError("zero-width subtractor")
    diffs: List[int] = []
    borrow = bin_
    for a, b in zip(a_bits, b_bits):
        if borrow is None:
            d, borrow = half_subtractor(net, a, b)
        else:
            d, borrow = full_subtractor(net, a, b, borrow)
        diffs.append(d)
    return diffs, borrow


def build_borrow_ripple_subtractor(width: int) -> Netlist:
    """Standalone exact ``width``-bit wrap-around subtractor netlist.

    Inputs are laid out ``[a0..a(w-1), b0..b(w-1)]``; the outputs are
    the difference bits LSB-first followed by the borrow-out.  Read as
    one unsigned ``width + 1``-bit word, the output is
    ``(a - b) mod 2**(width + 1)`` — the two's-complement encoding of
    ``a - b`` wrapped to ``width + 1`` bits (the borrow-out doubles as
    the sign bit).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    net = Netlist(num_inputs=2 * width, name=f"sub{width}")
    a_bits = list(range(width))
    b_bits = list(range(width, 2 * width))
    diffs, borrow = borrow_ripple_subtractor(net, a_bits, b_bits)
    net.set_outputs(list(diffs) + [borrow])
    return net
