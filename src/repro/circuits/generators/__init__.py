"""Exact arithmetic circuit generators.

Adders, subtractors, multipliers, dividers, barrel shifters and MAC
units — the seed circuits of the component registry
(:mod:`repro.core.components`) plus their reusable building blocks.
"""

from .adders import (
    build_ripple_carry_adder,
    full_adder,
    half_adder,
    ripple_carry_adder,
)
from .dividers import build_restoring_divider
from .mac import accumulator_width, build_mac
from .multipliers import (
    build_array_multiplier,
    build_baugh_wooley_multiplier,
    build_multiplier,
    build_wallace_multiplier,
    partial_product_columns,
    reduce_columns,
)
from .shifters import build_barrel_shifter, shift_amount_bits
from .subtractors import (
    borrow_ripple_subtractor,
    build_borrow_ripple_subtractor,
    full_subtractor,
    half_subtractor,
)

__all__ = [
    "build_ripple_carry_adder",
    "full_adder",
    "half_adder",
    "ripple_carry_adder",
    "borrow_ripple_subtractor",
    "build_borrow_ripple_subtractor",
    "full_subtractor",
    "half_subtractor",
    "build_restoring_divider",
    "build_barrel_shifter",
    "shift_amount_bits",
    "accumulator_width",
    "build_mac",
    "build_array_multiplier",
    "build_baugh_wooley_multiplier",
    "build_multiplier",
    "build_wallace_multiplier",
    "partial_product_columns",
    "reduce_columns",
]
