"""Exact arithmetic circuit generators (adders, multipliers, MAC units)."""

from .adders import (
    build_ripple_carry_adder,
    full_adder,
    half_adder,
    ripple_carry_adder,
)
from .mac import accumulator_width, build_mac
from .multipliers import (
    build_array_multiplier,
    build_baugh_wooley_multiplier,
    build_multiplier,
    build_wallace_multiplier,
    partial_product_columns,
    reduce_columns,
)

__all__ = [
    "build_ripple_carry_adder",
    "full_adder",
    "half_adder",
    "ripple_carry_adder",
    "accumulator_width",
    "build_mac",
    "build_array_multiplier",
    "build_baugh_wooley_multiplier",
    "build_multiplier",
    "build_wallace_multiplier",
    "partial_product_columns",
    "reduce_columns",
]
