"""Exact unsigned divider generator (restoring array).

The classic combinational restoring-array divider: one row per quotient
bit, each row shifting the next dividend bit into the partial remainder,
trial-subtracting the divisor (:func:`.subtractors.borrow_ripple_subtractor`)
and restoring the pre-subtraction remainder through a borrow-controlled
mux when the trial goes negative.  The quotient bit is the complement of
the row's borrow-out.

Division by zero never borrows, so every quotient bit restores to 1 and
the array naturally realizes the ``x / 0 := 2**width - 1`` (all-ones)
convention that the ``divider`` component's closed-form reference
(:mod:`repro.core.components`) encodes.
"""

from __future__ import annotations

from typing import List

from ..netlist import Netlist
from .subtractors import borrow_ripple_subtractor

__all__ = ["build_restoring_divider"]


def build_restoring_divider(width: int) -> Netlist:
    """Standalone exact ``width``-bit unsigned restoring-array divider.

    Inputs are laid out ``[x0..x(w-1), y0..y(w-1)]`` (dividend ``x``,
    divisor ``y``, LSB first); the outputs are the ``width`` quotient
    bits of ``x // y`` LSB first, with ``x / 0 = 2**width - 1``
    (all-ones) for every ``x`` — the convention a restoring array
    produces for free, since a zero divisor never borrows.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    net = Netlist(num_inputs=2 * width, name=f"div{width}")
    x_bits = list(range(width))
    y_bits = list(range(width, 2 * width))
    zero = net.add_gate("CONST0")
    # The trial subtraction runs over width + 1 bits: the shifted-in
    # partial remainder is < 2 * divisor <= 2**(w+1) - 2.
    divisor = y_bits + [zero]
    remainder: List[int] = [zero] * width
    quotient: List[int] = [0] * width
    for i in reversed(range(width)):
        shifted = [x_bits[i]] + remainder  # 2 * remainder + x_i
        trial, borrow = borrow_ripple_subtractor(net, shifted, divisor)
        q = net.add_gate("NOT", borrow)
        quotient[i] = q
        # Restore: keep the pre-subtraction remainder when the trial
        # went negative — per bit ``borrow ? shifted : trial``, with the
        # quotient bit doubling as the mux's inverted select.  The low
        # ``width`` bits always suffice: a successful trial leaves
        # remainder < divisor, a restored one the (< divisor) shifted
        # value.
        remainder = [
            net.add_gate(
                "OR",
                net.add_gate("AND", shifted[j], borrow),
                net.add_gate("AND", trial[j], q),
            )
            for j in range(width)
        ]
    net.set_outputs(quotient)
    return net
