"""Exact barrel shifter generator (logarithmic mux stages).

A ``width``-bit logical-left barrel shifter as ``ceil(log2(width))``
mux stages: stage ``k`` shifts by ``2**k`` when shift-amount bit ``k``
is set, so any amount in ``[0, 2**sbits)`` resolves in ``sbits`` gate
levels instead of a ``width``-deep shift chain.  Each stage bit is one
2:1 mux (AND/AND/OR over a per-stage inverted select) choosing between
the unshifted and the ``2**k``-shifted signal; positions below the
shift distance select constant 0 (logical shift), realized as a single
AND with the inverted select.

The shift amount is taken from the low :func:`shift_amount_bits` bits
of operand B — the convention the ``barrel-shifter``
:class:`~repro.core.components.ComponentSpec` reference encodes; B's
higher bits are ignored (they fall outside the output cone).
"""

from __future__ import annotations

from ..netlist import Netlist

__all__ = ["shift_amount_bits", "build_barrel_shifter"]


def shift_amount_bits(width: int) -> int:
    """Shift-amount bit count ``max(1, ceil(log2(width)))``.

    Enough bits to express every distinct logical-left shift of a
    ``width``-bit word (amounts ``>= width`` all yield 0, so more bits
    add nothing); at least one bit so a 1-bit shifter still shifts.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    return max(1, (width - 1).bit_length())


def build_barrel_shifter(width: int) -> Netlist:
    """Standalone exact ``width``-bit logical-left barrel shifter.

    Inputs are laid out ``[a0..a(w-1), b0..b(w-1)]`` (LSB first); the
    outputs are the ``width`` bits of ``(a << s) mod 2**width`` LSB
    first, where ``s`` is the low :func:`shift_amount_bits` bits of
    operand B.
    """
    sbits = shift_amount_bits(width)
    net = Netlist(num_inputs=2 * width, name=f"shl{width}")
    current = list(range(width))  # operand A
    for k in range(sbits):
        select = width + k  # shift-amount bit b_k
        keep = net.add_gate("NOT", select)  # shared across the stage
        step = 1 << k
        current = [
            net.add_gate(
                "OR",
                net.add_gate("AND", current[j - step], select),
                net.add_gate("AND", current[j], keep),
            )
            if j >= step
            else net.add_gate("AND", current[j], keep)  # 0 shifted in
            for j in range(width)
        ]
    net.set_outputs(current)
    return net
