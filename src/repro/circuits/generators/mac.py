"""Multiply-and-accumulate (MAC) unit generator.

The paper's processing element (Section V-B) is an 8-bit signed multiplier
feeding an ``n``-bit accumulator adder, with ``n = 8 + log2(d)`` where
``d`` is the maximum number of products summed into one neuron.  The MAC
built here has inputs ``[x (w bits), y (w bits), acc (n bits)]`` and
outputs the ``n``-bit updated accumulator ``acc + x * y``.

Any multiplier netlist with the standard ``[x, y] -> product`` interface —
exact, baseline-approximate or CGP-evolved — can be embedded, which is how
approximate multipliers become approximate MACs.
"""

from __future__ import annotations

from typing import Optional

from ..compose import append_netlist
from ..netlist import Netlist
from .adders import ripple_carry_adder
from .multipliers import build_baugh_wooley_multiplier, build_multiplier

__all__ = ["accumulator_width", "build_mac"]


def accumulator_width(operand_width: int, max_terms: int) -> int:
    """Accumulator width ``n = 2 * w + ceil(log2(d))`` that never overflows.

    The paper quotes ``n = 8 + log2(d)`` for 8-bit operands, counting the
    product width as part of the 8-bit datapath convention; we size for the
    full product to keep the reference MAC exact.
    """
    if operand_width <= 0 or max_terms <= 0:
        raise ValueError("operand_width and max_terms must be positive")
    extra = max(1, (max_terms - 1).bit_length())
    return 2 * operand_width + extra


def build_mac(
    operand_width: int,
    acc_width: int,
    multiplier: Optional[Netlist] = None,
    signed: bool = True,
) -> Netlist:
    """Build a MAC unit, optionally around a supplied multiplier netlist.

    Args:
        operand_width: Width ``w`` of the two multiplication operands.
        acc_width: Width ``n >= 2 * w`` of the accumulator input/output.
        multiplier: Multiplier to embed (inputs ``[x, y]``, ``2w``-bit
            product).  Defaults to an exact multiplier of the requested
            signedness.
        signed: Interpret operands and accumulator as two's complement;
            the product is then sign-extended to the accumulator width.

    Returns:
        Netlist with ``2 * w + n`` inputs and ``n`` outputs.
    """
    w = operand_width
    if acc_width < 2 * w:
        raise ValueError("accumulator must be at least as wide as the product")
    if multiplier is None:
        multiplier = (
            build_baugh_wooley_multiplier(w) if signed else build_multiplier(w, False)
        )
    if multiplier.num_inputs != 2 * w:
        raise ValueError("multiplier input width mismatch")
    if multiplier.num_outputs != 2 * w:
        raise ValueError("multiplier must produce the full 2w-bit product")

    net = Netlist(num_inputs=2 * w + acc_width, name=f"mac{w}x{acc_width}")
    product = append_netlist(net, multiplier, list(range(2 * w)))

    if signed:
        sign = product[-1]
        extended = product + [sign] * (acc_width - 2 * w)
    else:
        zero = net.add_gate("CONST0")
        extended = product + [zero] * (acc_width - 2 * w)

    acc_bits = list(range(2 * w, 2 * w + acc_width))
    sums, _cout = ripple_carry_adder(net, acc_bits, extended)
    net.set_outputs(sums)
    return net
