"""Exact multiplier generators.

Three conventional implementations are provided, matching the paper's
practice of seeding CGP with "different conventional implementations of
exact multipliers":

* :func:`build_array_multiplier` — unsigned row-ripple array multiplier,
* :func:`build_wallace_multiplier` — unsigned column-reduction (Wallace-
  style) multiplier,
* :func:`build_baugh_wooley_multiplier` — signed two's-complement
  multiplier using the Baugh-Wooley reformulation.

All builders lay primary inputs out as ``[x0..x(w-1), y0..y(w-1)]``
(LSB first) and produce the full ``2w``-bit product LSB first, so their
truth tables line up with :func:`repro.circuits.simulator.exhaustive_inputs`
vector indexing: vector ``v`` encodes ``x = v & (2**w - 1)`` and
``y = v >> w``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..netlist import Netlist
from .adders import full_adder, half_adder, ripple_carry_adder

__all__ = [
    "reduce_columns",
    "partial_product_columns",
    "build_array_multiplier",
    "build_wallace_multiplier",
    "build_baugh_wooley_multiplier",
    "build_multiplier",
]


def reduce_columns(
    net: Netlist,
    columns: List[List[int]],
    out_width: int,
) -> List[int]:
    """Reduce per-column bit lists to a single binary word.

    Performs carry-save reduction (full/half adders) until every column
    holds at most two bits, then resolves the remaining two rows with a
    ripple carry chain.  Carries beyond ``out_width`` are discarded, i.e.
    the result is the column sum modulo ``2**out_width`` — exactly the
    wrap-around semantics needed by Baugh-Wooley correction constants.

    Args:
        net: Netlist to extend.
        columns: ``columns[c]`` lists the signal addresses whose weight is
            ``2**c``.  The list is consumed (not mutated).
        out_width: Width of the produced word.

    Returns:
        LSB-first signal addresses of the ``out_width``-bit result.
    """
    cols = [list(col) for col in columns[:out_width]]
    cols += [[] for _ in range(out_width - len(cols))]

    while any(len(col) > 2 for col in cols):
        nxt: List[List[int]] = [[] for _ in range(out_width)]
        for c, col in enumerate(cols):
            i = 0
            while len(col) - i >= 3:
                s, cy = full_adder(net, col[i], col[i + 1], col[i + 2])
                i += 3
                nxt[c].append(s)
                if c + 1 < out_width:
                    nxt[c + 1].append(cy)
            if len(col) - i == 2 and len(col) > 2:
                # Column still oversized after the FA pass: squeeze with a
                # half adder so progress is guaranteed every round.
                s, cy = half_adder(net, col[i], col[i + 1])
                i += 2
                nxt[c].append(s)
                if c + 1 < out_width:
                    nxt[c + 1].append(cy)
            nxt[c].extend(col[i:])
        cols = nxt

    # Final carry-propagate pass: each column now has <= 2 entries, plus at
    # most one incoming carry, so a FA/HA per column suffices.
    result: List[int] = []
    carry = None
    const0 = None
    for col in cols:
        entries = list(col)
        if carry is not None:
            entries.append(carry)
            carry = None
        if not entries:
            if const0 is None:
                const0 = net.add_gate("CONST0")
            result.append(const0)
        elif len(entries) == 1:
            result.append(entries[0])
        elif len(entries) == 2:
            s, carry = half_adder(net, entries[0], entries[1])
            result.append(s)
        else:
            s, carry = full_adder(net, entries[0], entries[1], entries[2])
            result.append(s)
    return result


def _operand_bits(width: int) -> (Sequence[int], Sequence[int]):
    return list(range(width)), list(range(width, 2 * width))


def partial_product_columns(
    net: Netlist,
    width: int,
    signed: bool,
    keep=None,
) -> List[List[int]]:
    """Build the partial-product array as per-column signal lists.

    For unsigned operands every partial product is ``AND(x_i, y_j)`` in
    column ``i + j``; for signed operands the Baugh-Wooley arrangement is
    produced (complemented mixed terms + correction constants).

    Args:
        net: Netlist to extend (must have the standard ``2 * width``
            inputs already).
        width: Operand width ``w``.
        signed: Baugh-Wooley (signed) vs plain AND array (unsigned).
        keep: Optional predicate ``keep(i, j) -> bool`` deciding whether
            the partial product of ``x_i`` and ``y_j`` is generated at
            all.  Dropping terms is how the truncated and broken-array
            baselines are built.  Correction constants of the signed form
            are kept whenever any term in their column survives.

    Returns:
        ``columns[c]`` = signals of weight ``2**c``; length ``2 * width``.
    """
    if keep is None:
        keep = lambda i, j: True  # noqa: E731 - tiny local predicate
    a_bits, b_bits = _operand_bits(width)
    w = width
    out_width = 2 * w
    columns: List[List[int]] = [[] for _ in range(out_width)]

    if not signed:
        for i in range(w):
            for j in range(w):
                if keep(i, j):
                    columns[i + j].append(
                        net.add_gate("AND", a_bits[i], b_bits[j])
                    )
        return columns

    if w < 2:
        raise ValueError("signed partial products need width >= 2")
    for i in range(w - 1):
        for j in range(w - 1):
            if keep(i, j):
                columns[i + j].append(net.add_gate("AND", a_bits[i], b_bits[j]))
    if keep(w - 1, w - 1):
        columns[2 * w - 2].append(
            net.add_gate("AND", a_bits[w - 1], b_bits[w - 1])
        )
    for i in range(w - 1):
        if keep(i, w - 1):
            columns[i + w - 1].append(
                net.add_gate("NAND", a_bits[i], b_bits[w - 1])
            )
    for j in range(w - 1):
        if keep(w - 1, j):
            columns[j + w - 1].append(
                net.add_gate("NAND", a_bits[w - 1], b_bits[j])
            )

    one = None
    if columns[w] or any(columns[c] for c in range(w)):
        one = net.add_gate("CONST1")
        columns[w].append(one)
    if columns[2 * w - 1] or columns[2 * w - 2]:
        if one is None:
            one = net.add_gate("CONST1")
        columns[2 * w - 1].append(one)
    return columns


def build_array_multiplier(width: int) -> Netlist:
    """Unsigned ``width x width`` row-ripple array multiplier.

    The classic array structure: one AND plane for the partial products and
    a cascade of ripple-carry adders accumulating one shifted row at a
    time.  Produces the full ``2 * width``-bit product.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    net = Netlist(num_inputs=2 * width, name=f"mul{width}u_array")
    a_bits, b_bits = _operand_bits(width)

    rows = [
        [net.add_gate("AND", a_bits[j], b_bits[i]) for j in range(width)]
        for i in range(width)
    ]

    if width == 1:
        net.set_outputs([rows[0][0], net.add_gate("CONST0")])
        return net

    outputs = [rows[0][0]]
    zero = net.add_gate("CONST0")
    # Invariant: ``high`` holds product bits i .. i + width - 1 before the
    # row for multiplier bit i is added.
    high = rows[0][1:] + [zero]
    for i in range(1, width):
        sums, cout = ripple_carry_adder(net, high, rows[i])
        outputs.append(sums[0])
        high = sums[1:] + [cout]
    outputs.extend(high)
    net.set_outputs(outputs)
    return net


def build_wallace_multiplier(width: int) -> Netlist:
    """Unsigned ``width x width`` Wallace-style (column reduction) multiplier."""
    if width <= 0:
        raise ValueError("width must be positive")
    net = Netlist(num_inputs=2 * width, name=f"mul{width}u_wallace")
    columns = partial_product_columns(net, width, signed=False)
    net.set_outputs(reduce_columns(net, columns, 2 * width))
    return net


def build_baugh_wooley_multiplier(width: int) -> Netlist:
    """Signed two's-complement ``width x width`` Baugh-Wooley multiplier.

    Partial products involving exactly one sign bit are complemented
    (NAND instead of AND) and constant ones are injected at columns
    ``width`` and ``2 * width - 1``; the column sum modulo ``2**(2 width)``
    then equals the signed product in two's complement.
    """
    net = Netlist(num_inputs=2 * width, name=f"mul{width}s_bw")
    columns = partial_product_columns(net, width, signed=True)
    net.set_outputs(reduce_columns(net, columns, 2 * width))
    return net


def build_multiplier(width: int, signed: bool, structure: str = "array") -> Netlist:
    """Convenience dispatcher over the exact multiplier builders.

    Args:
        width: Operand width in bits.
        signed: Two's-complement operands and product when true.
        structure: ``"array"`` or ``"wallace"`` for unsigned circuits;
            ignored for signed ones (Baugh-Wooley is used).
    """
    if signed:
        return build_baugh_wooley_multiplier(width)
    if structure == "array":
        return build_array_multiplier(width)
    if structure == "wallace":
        return build_wallace_multiplier(width)
    raise ValueError(f"unknown multiplier structure {structure!r}")
