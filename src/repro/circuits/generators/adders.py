"""Exact adder generators.

These builders append gate structures to an existing
:class:`~repro.circuits.netlist.Netlist` and return the signal addresses of
the produced sum bits.  They are the building blocks for the array and
tree multipliers and also stand alone (e.g. the accumulator adder of a MAC
unit is a ripple-carry adder built here).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netlist import Netlist

__all__ = [
    "half_adder",
    "full_adder",
    "ripple_carry_adder",
    "build_ripple_carry_adder",
]


def half_adder(net: Netlist, a: int, b: int) -> Tuple[int, int]:
    """Append a half adder; return ``(sum, carry)`` signal addresses."""
    s = net.add_gate("XOR", a, b)
    c = net.add_gate("AND", a, b)
    return s, c


def full_adder(net: Netlist, a: int, b: int, cin: int) -> Tuple[int, int]:
    """Append a full adder; return ``(sum, carry)`` signal addresses.

    Uses the classic 5-gate realization (2x XOR, 2x AND, 1x OR).
    """
    axb = net.add_gate("XOR", a, b)
    s = net.add_gate("XOR", axb, cin)
    c1 = net.add_gate("AND", a, b)
    c2 = net.add_gate("AND", axb, cin)
    c = net.add_gate("OR", c1, c2)
    return s, c


def ripple_carry_adder(
    net: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    cin: Optional[int] = None,
) -> Tuple[List[int], int]:
    """Append a ripple-carry adder over two equal-width operands.

    Args:
        net: Netlist to extend.
        a_bits: LSB-first signal addresses of operand A.
        b_bits: LSB-first signal addresses of operand B.
        cin: Optional carry-in signal; omitted means carry-in of 0 (the
            first stage degenerates to a half adder).

    Returns:
        ``(sum_bits, carry_out)`` where ``sum_bits`` is LSB-first and has
        the same width as the operands.
    """
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    if not a_bits:
        raise ValueError("zero-width adder")
    sums: List[int] = []
    carry = cin
    for a, b in zip(a_bits, b_bits):
        if carry is None:
            s, carry = half_adder(net, a, b)
        else:
            s, carry = full_adder(net, a, b, carry)
        sums.append(s)
    return sums, carry


def build_ripple_carry_adder(width: int, with_carry_out: bool = True) -> Netlist:
    """Standalone exact ``width``-bit ripple-carry adder netlist.

    Inputs are laid out ``[a0..a(w-1), b0..b(w-1)]``; outputs are the sum
    bits LSB-first, optionally followed by the carry-out.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    net = Netlist(num_inputs=2 * width, name=f"rca{width}")
    a_bits = list(range(width))
    b_bits = list(range(width, 2 * width))
    sums, cout = ripple_carry_adder(net, a_bits, b_bits)
    outputs = list(sums)
    if with_carry_out:
        outputs.append(cout)
    net.set_outputs(outputs)
    return net
