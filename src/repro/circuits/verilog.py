"""Structural Verilog export.

Evolved netlists are handed to a synthesis flow in the paper (Synopsys
DC); this module produces the equivalent synthesizable artifact: a flat
structural Verilog module using ``assign`` expressions over the standard
gate functions.
"""

from __future__ import annotations

from typing import Dict, List

from .gates import gate_function
from .netlist import Netlist

__all__ = ["to_verilog"]

_EXPRESSIONS = {
    "CONST0": lambda a, b: "1'b0",
    "CONST1": lambda a, b: "1'b1",
    "BUF": lambda a, b: a,
    "NOT": lambda a, b: f"~{a}",
    "AND": lambda a, b: f"{a} & {b}",
    "OR": lambda a, b: f"{a} | {b}",
    "XOR": lambda a, b: f"{a} ^ {b}",
    "NAND": lambda a, b: f"~({a} & {b})",
    "NOR": lambda a, b: f"~({a} | {b})",
    "XNOR": lambda a, b: f"~({a} ^ {b})",
    "ANDN": lambda a, b: f"{a} & ~{b}",
    "ORN": lambda a, b: f"{a} | ~{b}",
}


def to_verilog(netlist: Netlist, module_name: str = "") -> str:
    """Render the active cone of a netlist as a structural Verilog module.

    Inputs become ``in_<k>`` ports, outputs ``out_<k>`` ports; internal
    signals are ``w<k>`` wires.  Gates outside the output cone are not
    emitted (they would be swept by synthesis anyway).

    Raises:
        ValueError: if a gate function has no Verilog template.
    """
    name = module_name or (netlist.name.replace("-", "_") or "circuit")
    in_ports = [f"in_{k}" for k in range(netlist.num_inputs)]
    out_ports = [f"out_{k}" for k in range(netlist.num_outputs)]

    signal_expr: Dict[int, str] = {
        k: in_ports[k] for k in range(netlist.num_inputs)
    }
    lines: List[str] = [
        f"module {name} (",
        "    input  wire " + ", ".join(in_ports) + ",",
        "    output wire " + ", ".join(out_ports),
        ");",
    ]

    body: List[str] = []
    for k in netlist.active_gate_indices():
        gate = netlist.gates[k]
        if gate.fn not in _EXPRESSIONS:
            raise ValueError(f"no Verilog template for gate {gate.fn!r}")
        spec = gate_function(gate.fn)
        operands = [signal_expr[s] for s in gate.inputs[: spec.arity]]
        a = operands[0] if operands else ""
        b = operands[1] if len(operands) > 1 else ""
        sig = netlist.gate_signal(k)
        wire = f"w{sig}"
        signal_expr[sig] = wire
        body.append(f"    wire {wire} = {_EXPRESSIONS[gate.fn](a, b)};")

    lines.extend(body)
    for j, out in enumerate(netlist.outputs):
        lines.append(f"    assign out_{j} = {signal_expr[out]};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
