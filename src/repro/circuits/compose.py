"""Structural composition of netlists.

:func:`append_netlist` instantiates one netlist inside another, remapping
signal addresses.  It is used to embed a (possibly approximate) multiplier
inside a MAC unit or any other wrapper circuit while keeping a single flat
gate list that the simulator and the cost models understand.
"""

from __future__ import annotations

from typing import List, Sequence

from .gates import gate_function
from .netlist import Netlist

__all__ = ["append_netlist"]


def append_netlist(
    dst: Netlist,
    src: Netlist,
    input_signals: Sequence[int],
) -> List[int]:
    """Instantiate ``src`` inside ``dst``.

    Only the active cone of ``src`` is copied (inactive gates would inflate
    the destination without affecting behaviour).

    Args:
        dst: Netlist being extended.
        src: Netlist to instantiate.
        input_signals: For each primary input of ``src``, the ``dst``
            signal address that drives it.

    Returns:
        ``dst`` signal addresses corresponding to ``src``'s outputs.
    """
    if len(input_signals) != src.num_inputs:
        raise ValueError(
            f"src has {src.num_inputs} inputs, got {len(input_signals)} drivers"
        )
    for sig in input_signals:
        if not 0 <= sig < dst.num_signals:
            raise ValueError(f"driver signal {sig} out of range in destination")

    remap = {i: input_signals[i] for i in range(src.num_inputs)}
    for k in src.active_gate_indices():
        gate = src.gates[k]
        spec = gate_function(gate.fn)
        srcs = tuple(remap[s] for s in gate.inputs[: spec.arity])
        remap[src.gate_signal(k)] = dst.add_gate(gate.fn, *srcs)
    return [remap[o] for o in src.outputs]
