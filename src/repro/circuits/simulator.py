"""Vectorized packed-bit simulation of gate-level netlists.

The simulator evaluates a :class:`~repro.circuits.netlist.Netlist` for many
test vectors at once.  A signal over ``N`` vectors is a ``uint64`` array of
``ceil(N / 64)`` words; vector ``v`` lives in bit ``v % 64`` of word
``v // 64`` (little-endian bit order, which matches
``numpy.unpackbits(..., bitorder="little")`` on the uint8 view).

The most important entry points are:

* :func:`exhaustive_inputs` — packed input patterns enumerating all
  ``2**num_inputs`` vectors,
* :func:`simulate` — packed output words for arbitrary stimulus,
* :func:`output_values` / :func:`truth_table` — decoded integer outputs,
  the representation consumed by the error metrics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .gates import gate_function
from .netlist import Netlist

__all__ = [
    "words_for",
    "pack_bits",
    "unpack_bits",
    "exhaustive_inputs",
    "pack_input_vectors",
    "simulate",
    "words_to_values",
    "output_values",
    "truth_table",
    "popcount",
]


def words_for(num_vectors: int) -> int:
    """Number of uint64 words needed to hold ``num_vectors`` bits."""
    if num_vectors < 0:
        raise ValueError("num_vectors must be non-negative")
    return (num_vectors + 63) // 64


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean/0-1 array of shape (N,) into uint64 words.

    Bit ``v`` of the result's word ``v // 64`` (little-endian) is
    ``bits[v]``; trailing pad bits are zero.
    """
    bits = np.asarray(bits).astype(np.uint8).ravel()
    n = bits.shape[0]
    packed8 = np.packbits(bits, bitorder="little")
    out = np.zeros(words_for(n) * 8, dtype=np.uint8)
    out[: packed8.shape[0]] = packed8
    return out.view("<u8").copy()

def unpack_bits(words: np.ndarray, num_vectors: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: words -> uint8 array of shape (N,)."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:num_vectors]


def _use_bitwise_count() -> bool:
    """Whether to popcount via ``np.bitwise_count`` (NumPy >= 2).

    Older NumPy falls back to unpacking bits; ``REPRO_POPCOUNT=portable``
    forces that fallback so CI can exercise the pre-NumPy-2 path on any
    NumPy version (both paths are bit-identical).  The knob is read once
    at import time (``popcount`` sits on hot loops): set it before the
    process starts, or monkeypatch ``_HAS_BITWISE_COUNT`` in tests.
    """
    import os

    if os.environ.get("REPRO_POPCOUNT", "").lower() in ("portable", "unpack"):
        return False
    return hasattr(np, "bitwise_count")


_HAS_BITWISE_COUNT = _use_bitwise_count()


def popcount(words: np.ndarray, num_vectors: int) -> int:
    """Number of 1-bits among the first ``num_vectors`` positions.

    Pad bits beyond ``num_vectors`` are ignored (gates like NOT can set
    them), so the result only depends on the valid positions.
    """
    if num_vectors == 0:
        return 0
    n_words = words_for(num_vectors)
    w = np.ascontiguousarray(words).ravel()[:n_words]
    if not _HAS_BITWISE_COUNT:
        return int(unpack_bits(w, num_vectors).sum())
    rem = num_vectors % 64
    if rem:
        w = w.copy()
        w[-1] &= np.uint64((1 << rem) - 1)
    return int(np.bitwise_count(w).sum())


#: Packed value of exhaustive-input row ``k`` for ``k < 6``: within one
#: 64-vector word the bit pattern ``(v >> k) & 1`` repeats with period
#: ``2**(k+1)``.
_EXHAUSTIVE_WORD_MASKS = (
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
)


def exhaustive_inputs(num_inputs: int) -> np.ndarray:
    """Packed input patterns enumerating all ``2**num_inputs`` vectors.

    Returns an array of shape ``(num_inputs, words)`` where row ``k`` holds
    bit ``k`` of the vector index: vector ``v`` drives input ``k`` with
    ``(v >> k) & 1``.  For a two-operand circuit whose inputs are laid out
    ``[x0..x(w-1), y0..y(w-1)]`` this enumerates ``x`` as the low half of
    the vector index and ``y`` as the high half.

    The pattern is constructed analytically instead of packing
    ``2**num_inputs`` explicit index rows: row ``k < 6`` is a constant
    word, and row ``k >= 6`` alternates runs of ``2**(k-6)`` all-zero and
    all-one words — no materialized index array, no per-row packing loop.
    """
    if num_inputs <= 0:
        raise ValueError("num_inputs must be positive")
    if num_inputs > 26:
        raise ValueError(
            f"exhaustive enumeration of {num_inputs} inputs is impractical"
        )
    n = 1 << num_inputs
    n_words = words_for(n)
    out = np.empty((num_inputs, n_words), dtype=np.uint64)
    for k in range(min(num_inputs, 6)):
        out[k] = _EXHAUSTIVE_WORD_MASKS[k]
    for k in range(6, num_inputs):
        # Bit v of word w is (v >> k) & 1 = (w >> (k - 6)) & 1: whole
        # words alternate in runs of 2**(k-6) zeros then ones.
        half = 1 << (k - 6)
        row = out[k].reshape(-1, 2 * half)
        row[:, :half] = 0
        row[:, half:] = np.uint64(0xFFFFFFFFFFFFFFFF)
    if n < 64:
        out &= np.uint64((1 << n) - 1)  # zero the pad bits
    return out


def pack_input_vectors(vectors: np.ndarray, num_inputs: int) -> np.ndarray:
    """Pack explicit test vectors into per-input word rows.

    All input rows are packed in one batched ``packbits`` call (bit
    matrix of shape ``(num_inputs, N)``) instead of a Python loop of
    per-row packs.

    Args:
        vectors: Integer array of shape (N,); bit ``k`` of each entry is
            the stimulus for primary input ``k``.
        num_inputs: Number of primary inputs.

    Returns:
        Array of shape ``(num_inputs, words_for(N))``.
    """
    vecs = np.asarray(vectors, dtype=np.uint64).ravel()
    shifts = np.arange(num_inputs, dtype=np.uint64)[:, None]
    bits = ((vecs[None, :] >> shifts) & np.uint64(1)).astype(np.uint8)
    packed8 = np.packbits(bits, axis=1, bitorder="little")
    out8 = np.zeros((num_inputs, words_for(vecs.size) * 8), dtype=np.uint8)
    out8[:, : packed8.shape[1]] = packed8
    return out8.view("<u8")


def simulate(
    netlist: Netlist,
    input_words: np.ndarray,
    active_only: bool = True,
) -> List[np.ndarray]:
    """Evaluate a netlist over packed stimulus.

    Args:
        netlist: Circuit to simulate (must satisfy ``validate()``).
        input_words: Array of shape ``(num_inputs, W)`` as produced by
            :func:`exhaustive_inputs` or :func:`pack_input_vectors`.
        active_only: Evaluate only gates in the output cone (default).

    Returns:
        One packed word array per primary output, each of shape ``(W,)``.
    """
    if input_words.shape[0] != netlist.num_inputs:
        raise ValueError(
            f"stimulus has {input_words.shape[0]} rows, "
            f"netlist expects {netlist.num_inputs}"
        )
    width = input_words.shape[1]
    values: List[Optional[np.ndarray]] = [None] * netlist.num_signals
    for k in range(netlist.num_inputs):
        values[k] = np.ascontiguousarray(input_words[k])

    if active_only:
        indices: Sequence[int] = netlist.active_gate_indices()
    else:
        indices = range(len(netlist.gates))

    zeros = np.zeros(width, dtype=np.uint64)
    for k in indices:
        gate = netlist.gates[k]
        spec = gate_function(gate.fn)
        a = values[gate.inputs[0]] if spec.arity >= 1 else zeros
        b = values[gate.inputs[1]] if spec.arity >= 2 else zeros
        values[netlist.gate_signal(k)] = spec.packed(a, b)

    outs = []
    for out in netlist.outputs:
        val = values[out]
        if val is None:
            raise RuntimeError(f"output signal {out} was never computed")
        outs.append(val)
    return outs


def simulate_signals(
    netlist: Netlist,
    input_words: np.ndarray,
) -> List[Optional[np.ndarray]]:
    """Like :func:`simulate` but return every signal's packed words.

    Entry ``s`` of the result holds signal ``s``'s words, or ``None`` for
    gates outside the output cone (they are not evaluated).  Used by the
    switching-activity power model, which needs internal node values.
    """
    if input_words.shape[0] != netlist.num_inputs:
        raise ValueError(
            f"stimulus has {input_words.shape[0]} rows, "
            f"netlist expects {netlist.num_inputs}"
        )
    width = input_words.shape[1]
    values: List[Optional[np.ndarray]] = [None] * netlist.num_signals
    for k in range(netlist.num_inputs):
        values[k] = np.ascontiguousarray(input_words[k])
    zeros = np.zeros(width, dtype=np.uint64)
    for k in netlist.active_gate_indices():
        gate = netlist.gates[k]
        spec = gate_function(gate.fn)
        a = values[gate.inputs[0]] if spec.arity >= 1 else zeros
        b = values[gate.inputs[1]] if spec.arity >= 2 else zeros
        values[netlist.gate_signal(k)] = spec.packed(a, b)
    return values


def words_to_values(
    output_words: Sequence[np.ndarray],
    num_vectors: int,
    signed: bool = False,
) -> np.ndarray:
    """Decode per-bit output words into integer values per vector.

    ``output_words[j]`` is bit ``j`` (LSB first) of the output bus.  With
    ``signed=True`` the bus is interpreted as two's complement of width
    ``len(output_words)``.
    """
    n_bits = len(output_words)
    vals = np.zeros(num_vectors, dtype=np.int64)
    for j, words in enumerate(output_words):
        bits = unpack_bits(words, num_vectors).astype(np.int64)
        vals += bits << j
    if signed and n_bits > 0:
        sign = np.int64(1) << (n_bits - 1)
        vals = np.where(vals >= sign, vals - (sign << 1), vals)
    return vals


def output_values(
    netlist: Netlist,
    input_words: np.ndarray,
    num_vectors: int,
    signed: bool = False,
) -> np.ndarray:
    """Simulate and decode: integer output per test vector."""
    words = simulate(netlist, input_words)
    return words_to_values(words, num_vectors, signed=signed)


def truth_table(netlist: Netlist, signed: bool = False) -> np.ndarray:
    """Exhaustive integer output table indexed by input vector.

    Entry ``v`` is the circuit output when primary input ``k`` is driven
    with bit ``k`` of ``v``.
    """
    stim = exhaustive_inputs(netlist.num_inputs)
    return output_values(netlist, stim, 1 << netlist.num_inputs, signed=signed)


def simulate_reference(netlist: Netlist, vector: int) -> int:
    """Slow single-vector reference simulator using scalar gate functions.

    Used by tests to cross-check the packed simulator.
    """
    values = [0] * netlist.num_signals
    for k in range(netlist.num_inputs):
        values[k] = (vector >> k) & 1
    for k, gate in enumerate(netlist.gates):
        spec = gate_function(gate.fn)
        a = values[gate.inputs[0]] if spec.arity >= 1 else 0
        b = values[gate.inputs[1]] if spec.arity >= 2 else 0
        values[netlist.gate_signal(k)] = spec.scalar(a, b)
    out = 0
    for j, sig in enumerate(netlist.outputs):
        out |= values[sig] << j
    return out
