"""Gate function registry for the gate-level circuit substrate.

Every gate function is defined over *packed* bit vectors: a signal carrying
N test vectors is stored as a ``numpy.uint64`` array of ``ceil(N / 64)``
words, one vector per bit.  Bitwise numpy operators therefore evaluate a
gate for all test vectors at once, which is what makes exhaustive
evaluation of 16-input circuits (65 536 vectors) cheap enough to sit inside
a CGP loop.

All functions are registered with a *fixed* arity of two connection slots
(the CGP node format); unary and nullary functions simply ignore the unused
operand(s).  This mirrors the chromosome encoding used by the paper, where
every node carries ``na = 2`` source genes regardless of its function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "GateFunction",
    "GATE_REGISTRY",
    "DEFAULT_FUNCTION_SET",
    "FULL_FUNCTION_SET",
    "gate_function",
    "ALL_ONES",
]

#: All-ones uint64 constant used to implement logical NOT on packed words.
ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class GateFunction:
    """A single boolean gate function.

    Attributes:
        name: Canonical upper-case cell name (``"AND"``, ``"XNOR"``, ...).
        arity: Number of operands the function actually reads (0, 1 or 2).
        packed: Vectorized evaluator over packed ``uint64`` words.  Always
            called with two word arrays; unary/nullary functions ignore the
            extras.
        scalar: Reference evaluator over python ints in ``{0, 1}``, used by
            tests and by the slow reference simulator.
    """

    name: str
    arity: int
    packed: Callable[[np.ndarray, np.ndarray], np.ndarray]
    scalar: Callable[[int, int], int]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateFunction({self.name})"


def _make_registry() -> Dict[str, GateFunction]:
    ones = ALL_ONES

    def const0(a, b):
        return np.zeros_like(a)

    def const1(a, b):
        return np.full_like(a, ones)

    registry = {
        "CONST0": GateFunction("CONST0", 0, const0, lambda a, b: 0),
        "CONST1": GateFunction("CONST1", 0, const1, lambda a, b: 1),
        "BUF": GateFunction("BUF", 1, lambda a, b: a.copy(), lambda a, b: a),
        "NOT": GateFunction("NOT", 1, lambda a, b: a ^ ones, lambda a, b: 1 - a),
        "AND": GateFunction("AND", 2, lambda a, b: a & b, lambda a, b: a & b),
        "OR": GateFunction("OR", 2, lambda a, b: a | b, lambda a, b: a | b),
        "XOR": GateFunction("XOR", 2, lambda a, b: a ^ b, lambda a, b: a ^ b),
        "NAND": GateFunction(
            "NAND", 2, lambda a, b: (a & b) ^ ones, lambda a, b: 1 - (a & b)
        ),
        "NOR": GateFunction(
            "NOR", 2, lambda a, b: (a | b) ^ ones, lambda a, b: 1 - (a | b)
        ),
        "XNOR": GateFunction(
            "XNOR", 2, lambda a, b: (a ^ b) ^ ones, lambda a, b: 1 - (a ^ b)
        ),
        # AND/OR with one inverted input; part of the "all standard
        # two-input gates" set the paper uses.
        "ANDN": GateFunction(
            "ANDN", 2, lambda a, b: a & (b ^ ones), lambda a, b: a & (1 - b)
        ),
        "ORN": GateFunction(
            "ORN", 2, lambda a, b: a | (b ^ ones), lambda a, b: a | (1 - b)
        ),
    }
    return registry


#: Global name -> :class:`GateFunction` registry.
GATE_REGISTRY: Dict[str, GateFunction] = _make_registry()

#: The function set used throughout the paper's experiments: identity,
#: inversion and all standard two-input gates.
DEFAULT_FUNCTION_SET: Tuple[str, ...] = (
    "BUF",
    "NOT",
    "AND",
    "OR",
    "XOR",
    "NAND",
    "NOR",
    "XNOR",
)

#: Extended set including constants and inverted-input gates.
FULL_FUNCTION_SET: Tuple[str, ...] = tuple(GATE_REGISTRY)


def gate_function(name: str) -> GateFunction:
    """Look up a gate function by name.

    Raises:
        KeyError: if ``name`` is not a registered gate function.
    """
    try:
        return GATE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown gate function {name!r}; known: {sorted(GATE_REGISTRY)}"
        ) from None
