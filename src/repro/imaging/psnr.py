"""Peak signal-to-noise ratio."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["mse", "psnr", "average_psnr"]


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean squared error between two images of equal shape."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError("image shapes differ")
    return float(np.mean((reference - candidate) ** 2))


def psnr(reference: np.ndarray, candidate: np.ndarray, peak: float = 255.0) -> float:
    """PSNR in dB; identical images give ``inf``."""
    err = mse(reference, candidate)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))


def average_psnr(
    references: Sequence[np.ndarray], candidates: Sequence[np.ndarray]
) -> float:
    """Mean PSNR over image pairs (the paper's 25-image average)."""
    if len(references) != len(candidates):
        raise ValueError("sequence lengths differ")
    if not references:
        raise ValueError("empty image set")
    values = [psnr(r, c) for r, c in zip(references, candidates)]
    finite = [v for v in values if np.isfinite(v)]
    if not finite:
        return float("inf")
    # Infinite entries (bit-exact outputs) are clamped to the max finite
    # value so a single perfect image cannot blow up the average.
    top = max(finite)
    return float(np.mean([min(v, top) for v in values]))
