"""Synthetic grayscale test images.

Stands in for the paper's 25-image PSNR evaluation set (see DESIGN.md,
"Substitutions"): the Gaussian-filter experiment only needs a pool of
smooth-ish 8-bit images with varied content, which these generators
provide deterministically from a seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "gradient_image",
    "blob_image",
    "checker_image",
    "smooth_noise_image",
    "standard_image_suite",
]


def _to_u8(img: np.ndarray) -> np.ndarray:
    return np.clip(np.rint(img), 0, 255).astype(np.uint8)


def gradient_image(size: int, angle: float = 0.0) -> np.ndarray:
    """Linear luminance ramp across the image at the given angle."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    t = np.cos(angle) * xs + np.sin(angle) * ys
    t -= t.min()
    span = t.max() or 1.0
    return _to_u8(255.0 * t / span)


def blob_image(size: int, rng: np.random.Generator, blobs: int = 5) -> np.ndarray:
    """Sum of random Gaussian blobs — smooth natural-ish content."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    img = np.zeros((size, size))
    for _ in range(blobs):
        cx, cy = rng.uniform(0, size, size=2)
        sigma = rng.uniform(size / 12, size / 4)
        amp = rng.uniform(60, 255)
        img += amp * np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * sigma**2))
    peak = img.max() or 1.0
    return _to_u8(255.0 * img / peak)


def checker_image(size: int, cell: int = 8, low: int = 40, high: int = 215) -> np.ndarray:
    """Checkerboard — high-frequency content stressing the filter."""
    if cell <= 0:
        raise ValueError("cell must be positive")
    ys, xs = np.mgrid[0:size, 0:size]
    board = ((xs // cell) + (ys // cell)) % 2
    return _to_u8(np.where(board, high, low))


def smooth_noise_image(
    size: int, rng: np.random.Generator, passes: int = 4
) -> np.ndarray:
    """Low-pass-filtered uniform noise (cloud-like texture)."""
    img = rng.uniform(0, 255, size=(size, size))
    kernel = np.array([1.0, 2.0, 1.0]) / 4.0
    for _ in range(passes):
        img = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 0, img
        )
        img = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 1, img
        )
    img -= img.min()
    span = img.max() or 1.0
    return _to_u8(255.0 * img / span)


def standard_image_suite(
    count: int = 25, size: int = 64, seed: int = 2019
) -> List[np.ndarray]:
    """Deterministic pool of ``count`` synthetic 8-bit test images."""
    if count <= 0 or size <= 0:
        raise ValueError("count and size must be positive")
    rng = np.random.default_rng(seed)
    makers = [
        lambda: gradient_image(size, angle=rng.uniform(0, np.pi)),
        lambda: blob_image(size, rng, blobs=int(rng.integers(3, 8))),
        lambda: checker_image(size, cell=int(rng.integers(4, 12))),
        lambda: smooth_noise_image(size, rng),
    ]
    return [makers[k % len(makers)]() for k in range(count)]
