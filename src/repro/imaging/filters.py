"""Exact and approximate Gaussian image filtering (paper Fig. 5).

The filter is the paper's "standard Gaussian filter implementation in
which 3 x 3 pixels are multiplied by nine constants": the integer kernel
coefficients (summing to a power of two below 256) multiply the window
pixels, the products are accumulated exactly, and the sum is shifted back
down.  An *approximate* filter routes every coefficient-pixel product
through an 8-bit approximate multiplier LUT — the very multipliers
evolved in Case Study 1 — while the accumulation stays exact, matching
the paper's hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..circuits.netlist import Netlist
from ..errors.distributions import Distribution, empirical
from ..errors.truth_tables import table_as_matrix
from ..tech.library import TechLibrary, default_library
from ..tech.power import circuit_power
from ..errors.truth_tables import vector_weights

__all__ = [
    "gaussian_kernel_3x3",
    "kernel_shift",
    "filter_image",
    "filter_image_lut",
    "kernel_coefficient_distribution",
    "estimate_filter_power",
]


def gaussian_kernel_3x3(scale: int = 1) -> np.ndarray:
    """The binomial 3x3 Gaussian kernel ``[[1,2,1],[2,4,2],[1,2,1]]``.

    ``scale`` multiplies every coefficient (the sum must stay below 256,
    the paper's constraint on filter constants); larger scales exercise
    bigger coefficient magnitudes on the multiplier's x operand.
    """
    base = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.int64)
    kernel = base * int(scale)
    if kernel.sum() >= 256:
        raise ValueError("kernel coefficient sum must be below 256")
    return kernel


def kernel_shift(kernel: np.ndarray) -> int:
    """Right-shift normalizing the kernel (its sum must be a power of 2)."""
    total = int(np.asarray(kernel).sum())
    if total <= 0 or total & (total - 1):
        raise ValueError(f"kernel sum {total} is not a positive power of two")
    return total.bit_length() - 1


def _windows(image: np.ndarray, k: int) -> np.ndarray:
    """Sliding ``k x k`` windows as an array (H-k+1, W-k+1, k*k)."""
    h, w = image.shape
    out_h, out_w = h - k + 1, w - k + 1
    stacked = np.empty((out_h, out_w, k * k), dtype=np.int64)
    idx = 0
    for dy in range(k):
        for dx in range(k):
            stacked[:, :, idx] = image[dy : dy + out_h, dx : dx + out_w]
            idx += 1
    return stacked


def filter_image(
    image: np.ndarray,
    kernel: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact integer Gaussian filtering (valid region only)."""
    kernel = gaussian_kernel_3x3() if kernel is None else np.asarray(kernel)
    shift = kernel_shift(kernel)
    k = kernel.shape[0]
    windows = _windows(np.asarray(image, dtype=np.int64), k)
    acc = windows @ kernel.ravel()
    return np.clip(acc >> shift, 0, 255).astype(np.uint8)


def filter_image_lut(
    image: np.ndarray,
    lut: np.ndarray,
    kernel: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gaussian filtering with products taken from a multiplier LUT.

    Args:
        image: 8-bit grayscale image.
        lut: ``lut[x, y]`` = approximate product of coefficient ``x`` and
            pixel ``y`` (see :func:`repro.errors.truth_tables.table_as_matrix`).
        kernel: Integer kernel; the binomial 3x3 one by default.

    Returns:
        Filtered valid-region image (clipped to 8 bits).
    """
    kernel = gaussian_kernel_3x3() if kernel is None else np.asarray(kernel)
    shift = kernel_shift(kernel)
    k = kernel.shape[0]
    lut = np.asarray(lut)
    windows = _windows(np.asarray(image, dtype=np.int64), k)
    coeffs = kernel.ravel()
    acc = np.zeros(windows.shape[:2], dtype=np.int64)
    for idx, coeff in enumerate(coeffs):
        acc += lut[int(coeff), windows[:, :, idx]]
    return np.clip(acc >> shift, 0, 255).astype(np.uint8)


def kernel_coefficient_distribution(
    kernel: Optional[np.ndarray] = None, width: int = 8
) -> Distribution:
    """Empirical distribution of the kernel coefficients.

    This is the paper's intuition made concrete: a Gaussian kernel has
    many small coefficients, so its coefficient distribution looks like
    D2 — and multipliers evolved for D2 should serve the filter best.
    """
    kernel = gaussian_kernel_3x3() if kernel is None else np.asarray(kernel)
    return empirical(
        kernel.ravel(), width=width, signed=False, name="gaussian-kernel"
    )


def estimate_filter_power(
    multiplier: Netlist,
    kernel: Optional[np.ndarray] = None,
    library: Optional[TechLibrary] = None,
    adder_power_uw: float = 30.0,
) -> float:
    """Power estimate (uW) of the complete 3x3 filter datapath.

    Nine multiplier instances are charged with activity measured under
    their actual operating condition — coefficient operand following the
    kernel's coefficient distribution, pixel operand uniform — plus a
    fixed allowance per accumulation adder (eight adders), mirroring how
    the paper reports power "for the complete image filter
    implementation".
    """
    kernel = gaussian_kernel_3x3() if kernel is None else np.asarray(kernel)
    lib = library or default_library()
    width = multiplier.num_inputs // 2
    dist = kernel_coefficient_distribution(kernel, width=width)
    weights = vector_weights(dist, width)
    mult_power = circuit_power(multiplier, lib, weights=weights).total
    num_mults = kernel.size
    num_adders = kernel.size - 1
    return num_mults * mult_power + num_adders * adder_power_uw
