"""Noise injection for the denoising experiment."""

from __future__ import annotations

import numpy as np

__all__ = ["add_gaussian_noise", "add_salt_pepper_noise"]


def add_gaussian_noise(
    image: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive white Gaussian noise, clipped to the 8-bit range."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    noisy = image.astype(np.float64) + rng.normal(0.0, sigma, size=image.shape)
    return np.clip(np.rint(noisy), 0, 255).astype(np.uint8)


def add_salt_pepper_noise(
    image: np.ndarray, amount: float, rng: np.random.Generator
) -> np.ndarray:
    """Salt-and-pepper impulse noise with the given pixel fraction."""
    if not 0 <= amount <= 1:
        raise ValueError("amount must be in [0, 1]")
    noisy = image.copy()
    mask = rng.random(image.shape) < amount
    salt = rng.random(image.shape) < 0.5
    noisy[mask & salt] = 255
    noisy[mask & ~salt] = 0
    return noisy
