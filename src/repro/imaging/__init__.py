"""Image-filter substrate: synthetic images, noise, Gaussian filter, PSNR."""

from .filters import (
    estimate_filter_power,
    filter_image,
    filter_image_lut,
    gaussian_kernel_3x3,
    kernel_coefficient_distribution,
    kernel_shift,
)
from .images import (
    blob_image,
    checker_image,
    gradient_image,
    smooth_noise_image,
    standard_image_suite,
)
from .noise import add_gaussian_noise, add_salt_pepper_noise
from .psnr import average_psnr, mse, psnr

__all__ = [
    "estimate_filter_power",
    "filter_image",
    "filter_image_lut",
    "gaussian_kernel_3x3",
    "kernel_coefficient_distribution",
    "kernel_shift",
    "blob_image",
    "checker_image",
    "gradient_image",
    "smooth_noise_image",
    "standard_image_suite",
    "add_gaussian_noise",
    "add_salt_pepper_noise",
    "average_psnr",
    "mse",
    "psnr",
]
