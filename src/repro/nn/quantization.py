"""Fixed-point quantization (the Ristretto substitute).

The paper runs Ristretto's automated trimming analysis and settles on
8-bit fixed-point signed values for both networks.  This module provides
the equivalent: symmetric linear quantization of weights and activations
to ``bits``-bit signed integers, with scales calibrated on sample data.

The quantized computation model matches the paper's MAC hardware: an
8-bit signed multiplier (the component being approximated) feeding a
wide exact accumulator, with per-layer scale factors applied once per
accumulated dot product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors.distributions import Distribution, empirical
from .network import Sequential

__all__ = ["LayerQuantization", "quantize_array", "calibrate", "weight_distribution"]


def quantize_array(
    values: np.ndarray, scale: float, bits: int = 8
) -> np.ndarray:
    """Symmetric quantization: ``round(values / scale)`` clipped to range.

    Args:
        values: Float array.
        scale: Quantization step (positive).
        bits: Total signed width; 8 gives the range [-128, 127].

    Returns:
        ``int64`` array of quantized codes.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return np.clip(np.rint(values / scale), lo, hi).astype(np.int64)


def _symmetric_scale(max_abs: float, bits: int) -> float:
    hi = (1 << (bits - 1)) - 1
    if max_abs <= 0:
        return 1.0 / hi
    return max_abs / hi


@dataclass
class LayerQuantization:
    """Quantization state of one weighted layer.

    Attributes:
        layer_index: Position in the host :class:`Sequential`.
        bits: Signed integer width (8 throughout the paper).
        w_scale: Weight quantization step.
        a_scale: Input-activation quantization step (from calibration).
        weights_q: Quantized weight codes, same shape as the float ``W``.
        bias: Float bias applied after the scaled accumulation.
    """

    layer_index: int
    bits: int
    w_scale: float
    a_scale: float
    weights_q: np.ndarray
    bias: np.ndarray

    @property
    def product_scale(self) -> float:
        """Scale of an integer product: ``w_scale * a_scale``."""
        return self.w_scale * self.a_scale

    def requantize(self, weights: np.ndarray, bias: np.ndarray) -> None:
        """Refresh codes from updated float parameters (fine-tuning)."""
        self.w_scale = _symmetric_scale(float(np.abs(weights).max()), self.bits)
        self.weights_q = quantize_array(weights, self.w_scale, self.bits)
        self.bias = np.asarray(bias, dtype=np.float64).copy()


def calibrate(
    network: Sequential,
    calibration_x: np.ndarray,
    bits: int = 8,
) -> List[LayerQuantization]:
    """Derive per-layer quantization from a float network + sample data.

    Weight scales come from each layer's max |W|; activation scales from
    the max |input| observed while running the calibration batch through
    the float network (the Ristretto-style range analysis).

    Args:
        network: Trained float network.
        calibration_x: Representative inputs (a few hundred suffice).
        bits: Signed fixed-point width.

    Returns:
        One :class:`LayerQuantization` per weighted layer, in layer order.
    """
    if calibration_x.shape[0] == 0:
        raise ValueError("calibration set is empty")
    quants: List[LayerQuantization] = []
    x = calibration_x
    for idx, layer in enumerate(network.layers):
        if layer.has_weights:
            weights = layer.params["W"]
            bias = layer.params["b"]
            a_scale = _symmetric_scale(float(np.abs(x).max()), bits)
            w_scale = _symmetric_scale(float(np.abs(weights).max()), bits)
            quants.append(
                LayerQuantization(
                    layer_index=idx,
                    bits=bits,
                    w_scale=w_scale,
                    a_scale=a_scale,
                    weights_q=quantize_array(weights, w_scale, bits),
                    bias=np.asarray(bias, dtype=np.float64).copy(),
                )
            )
        x, _ = layer.forward(x)
    return quants


def weight_distribution(
    quants: List[LayerQuantization],
    bits: int = 8,
    name: str = "nn-weights",
    smoothing: float = 0.0,
) -> Distribution:
    """Empirical distribution of quantized weights across all layers.

    This is the paper's Fig. 6 (top) object and the source of the WMED
    weights for Case Study 2.
    """
    if not quants:
        raise ValueError("no quantized layers")
    samples = np.concatenate([q.weights_q.ravel() for q in quants])
    return empirical(
        samples, width=bits, signed=True, name=name, smoothing=smoothing
    )
