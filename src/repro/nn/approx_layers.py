"""Quantized inference with (approximate) multiplier LUTs.

:class:`QuantizedModel` executes a trained float network in the paper's
MAC hardware model: activations and weights are 8-bit signed codes, every
weight-activation product goes through the multiplier — exact, or an
approximate one supplied as a 256x256 product LUT — and products are
accumulated exactly in a wide register, then rescaled.

The LUT convention follows :func:`repro.errors.truth_tables.table_as_matrix`:
``lut[x_code & mask, y_code & mask]`` where the **x operand is the
weight** (the operand whose distribution drives WMED) and the y operand
is the activation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .layers import Conv2D, Dense, im2col
from .network import Sequential
from .quantization import LayerQuantization, calibrate

__all__ = ["lut_matmul", "QuantizedModel"]

#: Keep LUT-gather intermediates below roughly this many elements.
_GATHER_CHUNK_ELEMENTS = 24_000_000


def lut_matmul(
    activations_q: np.ndarray,
    weights_q: np.ndarray,
    lut: np.ndarray,
) -> np.ndarray:
    """``activations_q @ weights_q`` with products taken from a LUT.

    Args:
        activations_q: ``(M, K)`` integer activation codes.
        weights_q: ``(K, O)`` integer weight codes.
        lut: ``(2**w, 2**w)`` product table indexed by raw bit patterns
            ``lut[weight_code, activation_code]``.

    Returns:
        ``(M, O)`` int64 accumulator values.
    """
    m, k = activations_q.shape
    k2, o = weights_q.shape
    if k != k2:
        raise ValueError("inner dimensions differ")
    size = lut.shape[0]
    if lut.shape != (size, size) or size & (size - 1):
        raise ValueError("lut must be square with power-of-two size")
    mask = size - 1
    a_idx = (activations_q & mask).astype(np.intp)
    w_idx = (weights_q & mask).astype(np.intp).T  # (O, K)
    out = np.empty((m, o), dtype=np.int64)
    rows_per_chunk = max(1, _GATHER_CHUNK_ELEMENTS // max(1, o * k))
    lut = np.ascontiguousarray(lut, dtype=np.int64)
    for start in range(0, m, rows_per_chunk):
        stop = min(m, start + rows_per_chunk)
        gathered = lut[w_idx[None, :, :], a_idx[start:stop, None, :]]
        out[start:stop] = gathered.sum(axis=2)
    return out


class QuantizedModel:
    """A float network lowered to the 8-bit approximate-MAC datapath.

    Args:
        network: Trained float network (not copied; fine-tuning updates
            its parameters in place).
        calibration_x: Data used to fix activation scales.
        bits: Fixed-point width (8 in the paper).

    The model keeps per-layer quantization state; :meth:`forward` runs
    inference with an optional product LUT, :meth:`requantize` refreshes
    weight codes after the float weights change (fine-tuning loop).
    """

    def __init__(
        self,
        network: Sequential,
        calibration_x: np.ndarray,
        bits: int = 8,
    ) -> None:
        self.network = network
        self.bits = bits
        self.quants: List[LayerQuantization] = calibrate(
            network, calibration_x, bits=bits
        )
        self._by_layer: Dict[int, LayerQuantization] = {
            q.layer_index: q for q in self.quants
        }

    # ------------------------------------------------------------------
    def requantize(self) -> None:
        """Refresh quantized weights from the float network parameters."""
        for q in self.quants:
            layer = self.network.layers[q.layer_index]
            q.requantize(layer.params["W"], layer.params["b"])

    def _weighted_forward(
        self,
        layer,
        q: LayerQuantization,
        x: np.ndarray,
        lut: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, dict]:
        """One Dense/Conv layer through the quantized MAC datapath.

        Returns the float output and a cache usable by the float layer's
        ``backward`` (the straight-through-estimator path).
        """
        lo, hi = -(1 << (self.bits - 1)), (1 << (self.bits - 1)) - 1
        x_q = np.clip(np.rint(x / q.a_scale), lo, hi).astype(np.int64)
        if isinstance(layer, Dense):
            flat_q = x_q
            cache = {"x": x_q * q.a_scale}
        elif isinstance(layer, Conv2D):
            cols_q = im2col(x_q, layer.ksize)
            n, oh, ow, k = cols_q.shape
            flat_q = cols_q.reshape(-1, k)
            cache = {
                "cols": cols_q.reshape(n, oh, ow, k) * q.a_scale,
                "x_shape": np.array(x.shape),
            }
        else:  # pragma: no cover - guarded by caller
            raise TypeError(f"unsupported weighted layer {type(layer)}")

        if lut is None:
            acc = flat_q @ q.weights_q
        else:
            acc = lut_matmul(flat_q, q.weights_q, lut)

        y = acc * q.product_scale + q.bias
        if isinstance(layer, Conv2D):
            n, oh, ow, _ = cache["cols"].shape
            y = y.reshape(n, oh, ow, layer.out_channels)
        return y, cache

    def forward(
        self,
        x: np.ndarray,
        lut: Optional[np.ndarray] = None,
        collect_caches: bool = False,
    ) -> Tuple[np.ndarray, Optional[List[dict]]]:
        """Quantized forward pass.

        Args:
            x: Float inputs (batch axis first).
            lut: Optional approximate-product LUT; ``None`` multiplies
                exactly (the quantized reference model).
            collect_caches: Also return per-layer caches suitable for the
                float ``backward`` (used by fine-tuning's STE).

        Returns:
            ``(logits, caches)``; ``caches`` is ``None`` unless requested.
        """
        caches: List[dict] = []
        for idx, layer in enumerate(self.network.layers):
            q = self._by_layer.get(idx)
            if q is None:
                x, cache = layer.forward(x)
            else:
                x, cache = self._weighted_forward(layer, q, x, lut)
            if collect_caches:
                caches.append(cache)
        return x, (caches if collect_caches else None)

    def predict(
        self,
        x: np.ndarray,
        lut: Optional[np.ndarray] = None,
        batch_size: int = 256,
    ) -> np.ndarray:
        """Logits over a dataset, evaluated in batches."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits, _ = self.forward(x[start : start + batch_size], lut=lut)
            outputs.append(logits)
        return np.concatenate(outputs, axis=0)

    def accuracy(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        lut: Optional[np.ndarray] = None,
        batch_size: int = 256,
    ) -> float:
        """Top-1 accuracy of the quantized (optionally approximate) model."""
        logits = self.predict(x, lut=lut, batch_size=batch_size)
        return float((logits.argmax(axis=1) == labels).mean())
