"""Fine-tuning a network around its approximate multipliers (Table I).

The paper reports that re-training "the network learns how to classify
images with approximate multipliers", recovering most of the accuracy
lost to deep approximation (e.g. SVHN at 10 % WMED: -62.99 % before,
-5.04 % after fine-tuning).

The implementation is the standard straight-through estimator: the
forward pass runs the *quantized approximate* datapath (so the loss sees
exactly what the hardware would compute), while the backward pass treats
quantization and approximation as identity and updates the float master
weights, which are re-quantized after every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .approx_layers import QuantizedModel
from .training import SGDMomentum, cross_entropy_loss

__all__ = ["FinetuneReport", "finetune"]


@dataclass
class FinetuneReport:
    """Loss trajectory of a fine-tuning run."""

    step_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.step_losses[-1] if self.step_losses else float("nan")


def finetune(
    model: QuantizedModel,
    x: np.ndarray,
    labels: np.ndarray,
    lut: Optional[np.ndarray],
    steps: int = 100,
    batch_size: int = 32,
    lr: float = 0.01,
    momentum: float = 0.9,
    rng: Optional[np.random.Generator] = None,
) -> FinetuneReport:
    """Fine-tune the model's float weights under the approximate datapath.

    Args:
        model: Quantized model (its underlying float network is updated
            in place and re-quantized after each step).
        x: Training inputs.
        labels: Integer labels.
        lut: Approximate-product LUT the hardware will use (``None``
            fine-tunes against the exact quantized datapath).
        steps: Number of mini-batch update steps (the paper's "10
            iterations" are epochs of its training set; steps give finer
            control at our scale).
        batch_size: Mini-batch size.
        lr: Learning rate.
        momentum: Momentum coefficient.
        rng: Batch-sampling source.

    Returns:
        :class:`FinetuneReport` with per-step losses.
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    rng = rng or np.random.default_rng()
    optimizer = SGDMomentum(lr=lr, momentum=momentum)
    report = FinetuneReport()
    n = x.shape[0]
    network = model.network
    for _step in range(steps):
        batch = rng.integers(0, n, size=min(batch_size, n))
        logits, caches = model.forward(
            x[batch], lut=lut, collect_caches=True
        )
        loss, dlogits = cross_entropy_loss(logits, labels[batch])
        grads = network.backward(dlogits, caches)
        optimizer.step(network, grads)
        model.requantize()
        report.step_losses.append(loss)
    return report
