"""Neural-network substrate: layers, training, quantization, approx MACs."""

from .approx_layers import QuantizedModel, lut_matmul
from .datasets import DIGIT_GLYPHS, mnist_like, render_digit, svhn_like
from .finetune import FinetuneReport, finetune
from .layers import AvgPool2D, Conv2D, Dense, Flatten, Layer, ReLU, im2col
from .network import Sequential, build_lenet5, build_mlp
from .quantization import (
    LayerQuantization,
    calibrate,
    quantize_array,
    weight_distribution,
)
from .training import (
    SGDMomentum,
    TrainReport,
    accuracy,
    cross_entropy_loss,
    softmax,
    train,
)

__all__ = [
    "QuantizedModel",
    "lut_matmul",
    "DIGIT_GLYPHS",
    "mnist_like",
    "render_digit",
    "svhn_like",
    "FinetuneReport",
    "finetune",
    "AvgPool2D",
    "Conv2D",
    "Dense",
    "Flatten",
    "Layer",
    "ReLU",
    "im2col",
    "Sequential",
    "build_lenet5",
    "build_mlp",
    "LayerQuantization",
    "calibrate",
    "quantize_array",
    "weight_distribution",
    "SGDMomentum",
    "TrainReport",
    "accuracy",
    "cross_entropy_loss",
    "softmax",
    "train",
]
