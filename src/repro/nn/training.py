"""Training: softmax cross-entropy loss, SGD with momentum, accuracy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .network import Sequential

__all__ = [
    "softmax",
    "cross_entropy_loss",
    "SGDMomentum",
    "train",
    "accuracy",
    "TrainReport",
]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits."""
    n = logits.shape[0]
    probs = softmax(logits)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    dlogits = probs
    dlogits[np.arange(n), labels] -= 1.0
    return loss, dlogits / n


class SGDMomentum:
    """Classical SGD with momentum over a Sequential's parameters."""

    def __init__(self, lr: float = 0.05, momentum: float = 0.9) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def step(self, network: Sequential, grads: List[dict]) -> None:
        """Apply one update given per-layer gradient dicts."""
        for idx, layer in enumerate(network.layers):
            for name, grad in grads[idx].items():
                key = (idx, name)
                vel = self._velocity.get(key)
                if vel is None:
                    vel = np.zeros_like(grad)
                vel = self.momentum * vel - self.lr * grad
                self._velocity[key] = vel
                layer.params[name] += vel


@dataclass
class TrainReport:
    """Loss/accuracy trajectory of one training run."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_train_accuracy: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def accuracy(network: Sequential, x: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    logits = network.predict(x)
    return float((logits.argmax(axis=1) == labels).mean())


def train(
    network: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    epochs: int = 3,
    batch_size: int = 64,
    lr: float = 0.05,
    momentum: float = 0.9,
    rng: Optional[np.random.Generator] = None,
    lr_decay: float = 1.0,
) -> TrainReport:
    """Mini-batch SGD training loop.

    Args:
        network: Model to train in place.
        x: Training inputs (batch axis first).
        labels: Integer class labels.
        epochs: Full passes over the data.
        batch_size: Mini-batch size.
        lr: Initial learning rate.
        momentum: Momentum coefficient.
        rng: Shuffling source.
        lr_decay: Multiplicative per-epoch learning-rate decay.

    Returns:
        :class:`TrainReport` with per-epoch mean loss and train accuracy.
    """
    rng = rng or np.random.default_rng()
    optimizer = SGDMomentum(lr=lr, momentum=momentum)
    report = TrainReport()
    n = x.shape[0]
    for _epoch in range(epochs):
        order = rng.permutation(n)
        losses = []
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            logits, caches = network.forward(x[batch])
            loss, dlogits = cross_entropy_loss(logits, labels[batch])
            grads = network.backward(dlogits, caches)
            optimizer.step(network, grads)
            losses.append(loss)
        optimizer.lr *= lr_decay
        report.epoch_losses.append(float(np.mean(losses)))
        report.epoch_train_accuracy.append(accuracy(network, x, labels))
    return report
