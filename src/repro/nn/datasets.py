"""Synthetic digit-classification datasets.

Offline stand-ins for MNIST and SVHN (see DESIGN.md, "Substitutions"):

* :func:`mnist_like` — 28x28 grayscale, clean bright digit on a dark
  background with mild jitter and noise (MNIST's regime);
* :func:`svhn_like` — 32x32 grayscale, digit over cluttered backgrounds
  with distractor digit fragments, varying contrast/polarity and heavier
  noise (SVHN's street-number regime, minus color).

Both render a 5x7 bitmap glyph font with random scale, position, stroke
intensity and noise, deterministically from the given generator.  What
the paper's experiments need from the data — a trainable 10-class image
task producing zero-peaked trained-weight distributions — is preserved.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["DIGIT_GLYPHS", "render_digit", "mnist_like", "svhn_like"]

_GLYPH_ROWS: Dict[int, Tuple[str, ...]] = {
    0: (" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "),
    1: ("  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "),
    2: (" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"),
    3: (" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "),
    4: ("   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "),
    5: ("#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "),
    6: (" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "),
    7: ("#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "),
    8: (" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "),
    9: (" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "),
}

#: Digit -> 7x5 float bitmap in {0, 1}.
DIGIT_GLYPHS: Dict[int, np.ndarray] = {
    digit: np.array(
        [[1.0 if ch == "#" else 0.0 for ch in row] for row in rows]
    )
    for digit, rows in _GLYPH_ROWS.items()
}


def render_digit(
    digit: int,
    size: int,
    rng: np.random.Generator,
    scale_range: Tuple[int, int] = (2, 3),
    intensity_range: Tuple[float, float] = (0.7, 1.0),
) -> np.ndarray:
    """Render one digit glyph onto a ``size x size`` black canvas.

    The glyph is nearest-neighbor upscaled by a random integer factor and
    placed at a random position; stroke intensity is randomized.

    Returns:
        Float image in [0, 1] of shape ``(size, size)``.
    """
    if digit not in DIGIT_GLYPHS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    glyph = DIGIT_GLYPHS[digit]
    factor = int(rng.integers(scale_range[0], scale_range[1] + 1))
    sprite = np.kron(glyph, np.ones((factor, factor)))
    gh, gw = sprite.shape
    if gh > size or gw > size:
        raise ValueError(f"glyph {gh}x{gw} does not fit canvas {size}")
    canvas = np.zeros((size, size))
    top = int(rng.integers(0, size - gh + 1))
    left = int(rng.integers(0, size - gw + 1))
    intensity = rng.uniform(*intensity_range)
    canvas[top : top + gh, left : left + gw] = sprite * intensity
    return canvas


def mnist_like(
    count: int,
    rng: np.random.Generator,
    size: int = 28,
    noise: float = 0.05,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate an MNIST-like set.

    Returns:
        ``(images, labels)``: float images ``(count, size, size, 1)`` in
        [0, 1] and int labels ``(count,)``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    labels = rng.integers(0, 10, size=count)
    images = np.empty((count, size, size, 1))
    for k in range(count):
        img = render_digit(int(labels[k]), size, rng)
        img = img + rng.normal(0.0, noise, size=img.shape)
        images[k, :, :, 0] = np.clip(img, 0.0, 1.0)
    return images, labels.astype(np.int64)


def _clutter_background(size: int, rng: np.random.Generator) -> np.ndarray:
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64) / size
    angle = rng.uniform(0, 2 * np.pi)
    ramp = np.cos(angle) * xs + np.sin(angle) * ys
    base = rng.uniform(0.25, 0.6)
    bg = base + 0.25 * (ramp - ramp.mean())
    # A few soft blobs of clutter.
    for _ in range(int(rng.integers(1, 4))):
        cx, cy = rng.uniform(0, size, size=2)
        sigma = rng.uniform(size / 8, size / 3)
        amp = rng.uniform(-0.2, 0.2)
        bg += amp * np.exp(
            -(((xs * size - cx) ** 2 + (ys * size - cy) ** 2) / (2 * sigma**2))
        )
    return bg


def svhn_like(
    count: int,
    rng: np.random.Generator,
    size: int = 32,
    noise: float = 0.08,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate an SVHN-like set: digits over cluttered backgrounds.

    The central digit determines the label; partial distractor digits may
    intrude from the left/right edges, and digit/background polarity is
    random — the properties that make SVHN harder than MNIST.

    Returns:
        ``(images, labels)`` with images ``(count, size, size, 1)``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    labels = rng.integers(0, 10, size=count)
    images = np.empty((count, size, size, 1))
    for k in range(count):
        bg = _clutter_background(size, rng)
        contrast = rng.uniform(0.35, 0.6) * (1 if rng.random() < 0.5 else -1)

        digit_img = np.zeros((size, size))
        glyph = DIGIT_GLYPHS[int(labels[k])]
        factor = int(rng.integers(2, 4))
        sprite = np.kron(glyph, np.ones((factor, factor)))
        gh, gw = sprite.shape
        top = int(rng.integers(2, size - gh - 1))
        left = int(rng.integers((size - gw) // 4, size - gw - (size - gw) // 4 + 1))
        digit_img[top : top + gh, left : left + gw] = sprite

        # Distractor fragments sliding in from the sides.
        for side in (-1, 1):
            if rng.random() < 0.6:
                d = int(rng.integers(0, 10))
                frag = np.kron(DIGIT_GLYPHS[d], np.ones((factor, factor)))
                fh, fw = frag.shape
                ftop = int(rng.integers(0, size - fh + 1))
                if side < 0:
                    vis = int(rng.integers(1, fw // 2 + 1))
                    digit_img[ftop : ftop + fh, :vis] = np.maximum(
                        digit_img[ftop : ftop + fh, :vis], frag[:, fw - vis :]
                    )
                else:
                    vis = int(rng.integers(1, fw // 2 + 1))
                    digit_img[ftop : ftop + fh, size - vis :] = np.maximum(
                        digit_img[ftop : ftop + fh, size - vis :], frag[:, :vis]
                    )

        img = bg + contrast * digit_img
        img = img + rng.normal(0.0, noise, size=img.shape)
        images[k, :, :, 0] = np.clip(img, 0.0, 1.0)
    return images, labels.astype(np.int64)
