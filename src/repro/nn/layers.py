"""Neural-network layers with explicit forward/backward passes.

A tiny but complete numpy deep-learning substrate: enough to train the
paper's two reference networks (MLP-300 and a LeNet-5 variant) from
scratch and to re-run their inference through quantized approximate MAC
units.

Conventions:

* activations are ``float64`` arrays; images are NHWC
  ``(batch, height, width, channels)``; dense activations are
  ``(batch, features)``;
* ``forward`` returns ``(output, cache)``; ``backward`` consumes the
  upstream gradient plus that cache and returns ``(dx, grads)`` where
  ``grads`` maps parameter names to gradient arrays;
* parameters live in the ``params`` dict so optimizers and the
  quantization engine can enumerate them uniformly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["Layer", "Dense", "Conv2D", "AvgPool2D", "ReLU", "Flatten", "im2col"]

Cache = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


class Layer:
    """Base class; parameter-free layers inherit the defaults."""

    #: Parameter name -> array; empty for stateless layers.
    params: Dict[str, np.ndarray]

    def __init__(self) -> None:
        self.params = {}

    @property
    def has_weights(self) -> bool:
        return "W" in self.params

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        raise NotImplementedError

    def backward(self, dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, Grads]:
        raise NotImplementedError


def _kaiming(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    ``W`` has shape ``(in_features, out_features)``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": _kaiming(rng, in_features, (in_features, out_features)),
            "b": np.zeros(out_features),
        }

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expects (N, {self.in_features}), got {x.shape}"
            )
        y = x @ self.params["W"] + self.params["b"]
        return y, {"x": x}

    def backward(self, dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, Grads]:
        x = cache["x"]
        grads = {"W": x.T @ dy, "b": dy.sum(axis=0)}
        dx = dy @ self.params["W"].T
        return dx, grads


def im2col(x: np.ndarray, ksize: int) -> np.ndarray:
    """Extract valid ``ksize x ksize`` patches.

    Args:
        x: Input of shape ``(N, H, W, C)``.
        ksize: Square kernel size.

    Returns:
        Array ``(N, OH, OW, ksize * ksize * C)`` where the last axis is
        laid out ``(dy, dx, channel)`` — matching the Conv2D weight
        layout.
    """
    n, h, w, c = x.shape
    oh, ow = h - ksize + 1, w - ksize + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"kernel {ksize} too large for input {x.shape}")
    cols = np.empty((n, oh, ow, ksize * ksize * c), dtype=x.dtype)
    idx = 0
    for dy in range(ksize):
        for dx in range(ksize):
            cols[:, :, :, idx : idx + c] = x[:, dy : dy + oh, dx : dx + ow, :]
            idx += c
    return cols


class Conv2D(Layer):
    """Valid (no padding, stride 1) 2-D convolution via im2col.

    ``W`` has shape ``(ksize * ksize * in_channels, out_channels)`` so the
    forward pass is a single matmul over patches — and, in the quantized
    engine, a single LUT-gather MAC sweep.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        ksize: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.ksize = ksize
        fan_in = ksize * ksize * in_channels
        self.params = {
            "W": _kaiming(rng, fan_in, (fan_in, out_channels)),
            "b": np.zeros(out_channels),
        }

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ValueError(
                f"Conv2D expects (N, H, W, {self.in_channels}), got {x.shape}"
            )
        cols = im2col(x, self.ksize)
        y = cols @ self.params["W"] + self.params["b"]
        return y, {"cols": cols, "x_shape": np.array(x.shape)}

    def backward(self, dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, Grads]:
        cols = cache["cols"]
        n, oh, ow, k2c = cols.shape
        f = self.out_channels
        cols2 = cols.reshape(-1, k2c)
        dy2 = dy.reshape(-1, f)
        grads = {"W": cols2.T @ dy2, "b": dy2.sum(axis=0)}

        dcols = (dy2 @ self.params["W"].T).reshape(n, oh, ow, k2c)
        x_shape = tuple(int(v) for v in cache["x_shape"])
        dx = np.zeros(x_shape)
        c = self.in_channels
        idx = 0
        for ddy in range(self.ksize):
            for ddx in range(self.ksize):
                dx[:, ddy : ddy + oh, ddx : ddx + ow, :] += dcols[
                    :, :, :, idx : idx + c
                ]
                idx += c
        return dx, grads


class AvgPool2D(Layer):
    """Non-overlapping average pooling with a square window."""

    def __init__(self, size: int = 2) -> None:
        super().__init__()
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.size = size

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        n, h, w, c = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {x.shape} not divisible by pool {s}")
        y = x.reshape(n, h // s, s, w // s, s, c).mean(axis=(2, 4))
        return y, {"x_shape": np.array(x.shape)}

    def backward(self, dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, Grads]:
        n, h, w, c = (int(v) for v in cache["x_shape"])
        s = self.size
        dx = (
            np.repeat(np.repeat(dy, s, axis=1), s, axis=2) / (s * s)
        )
        return dx.reshape(n, h, w, c), {}


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        mask = x > 0
        return x * mask, {"mask": mask}

    def backward(self, dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, Grads]:
        return dy * cache["mask"], {}


class Flatten(Layer):
    """Collapse all non-batch axes."""

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        return x.reshape(x.shape[0], -1), {"x_shape": np.array(x.shape)}

    def backward(self, dy: np.ndarray, cache: Cache) -> Tuple[np.ndarray, Grads]:
        return dy.reshape(tuple(int(v) for v in cache["x_shape"])), {}
