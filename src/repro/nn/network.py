"""Sequential network container and the paper's two reference topologies.

* :func:`build_mlp` — the 784-300-10 multi-layer perceptron used on the
  MNIST-like task (Section V-A),
* :func:`build_lenet5` — the modified LeNet-5 for 32x32 inputs: three
  convolution layers, two pooling layers and one fully connected layer
  whose "120 neurons output 10 values", as described in the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .layers import AvgPool2D, Conv2D, Dense, Flatten, Layer, ReLU

__all__ = ["Sequential", "build_mlp", "build_lenet5"]


class Sequential:
    """A simple feed-forward stack of layers."""

    def __init__(self, layers: Sequence[Layer], name: str = "") -> None:
        self.layers: List[Layer] = list(layers)
        self.name = name

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[dict]]:
        """Full forward pass; returns output and per-layer caches."""
        caches: List[dict] = []
        for layer in self.layers:
            x, cache = layer.forward(x)
            caches.append(cache)
        return x, caches

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Logits for a (possibly large) input, evaluated in batches."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            out, _ = self.forward(x[start : start + batch_size])
            outputs.append(out)
        return np.concatenate(outputs, axis=0)

    def backward(
        self, dloss: np.ndarray, caches: List[dict]
    ) -> List[dict]:
        """Backward pass; returns per-layer gradient dicts (same order)."""
        grads: List[dict] = [{} for _ in self.layers]
        dy = dloss
        for idx in range(len(self.layers) - 1, -1, -1):
            dy, layer_grads = self.layers[idx].backward(dy, caches[idx])
            grads[idx] = layer_grads
        return grads

    # ------------------------------------------------------------------
    def weighted_layers(self) -> List[Tuple[int, Layer]]:
        """(index, layer) for every layer carrying weights."""
        return [
            (idx, layer)
            for idx, layer in enumerate(self.layers)
            if layer.has_weights
        ]

    def num_parameters(self) -> int:
        return sum(
            param.size
            for layer in self.layers
            for param in layer.params.values()
        )

    def all_weights(self) -> np.ndarray:
        """Every multiplicative weight in the network, flattened.

        This is the signal whose distribution defines the WMED weights in
        Case Study 2 ("the distribution of weights across all layers").
        """
        chunks = [
            layer.params["W"].ravel() for _, layer in self.weighted_layers()
        ]
        if not chunks:
            return np.zeros(0)
        return np.concatenate(chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Sequential{label}: {len(self.layers)} layers, "
            f"{self.num_parameters()} parameters>"
        )


def build_mlp(
    input_size: int = 784,
    hidden: int = 300,
    classes: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """The paper's MLP: ``input -> 300 hidden (ReLU) -> 10 outputs``."""
    rng = rng or np.random.default_rng()
    return Sequential(
        [
            Dense(input_size, hidden, rng=rng),
            ReLU(),
            Dense(hidden, classes, rng=rng),
        ],
        name="mlp-300",
    )


def build_lenet5(
    input_hw: int = 32,
    channels: int = 1,
    classes: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Modified LeNet-5 for ``input_hw x input_hw`` images.

    conv(6, 5x5) -> pool -> conv(16, 5x5) -> pool -> conv(120, 5x5)
    -> dense(120 -> 10); with 32x32 inputs the final convolution sees a
    5x5 map, so its output is 1x1x120, i.e. the 120 neurons of the fully
    connected stage.
    """
    if input_hw != 32:
        raise ValueError("the LeNet-5 variant is sized for 32x32 inputs")
    rng = rng or np.random.default_rng()
    return Sequential(
        [
            Conv2D(channels, 6, 5, rng=rng),
            ReLU(),
            AvgPool2D(2),
            Conv2D(6, 16, 5, rng=rng),
            ReLU(),
            AvgPool2D(2),
            Conv2D(16, 120, 5, rng=rng),
            ReLU(),
            Flatten(),
            Dense(120, classes, rng=rng),
        ],
        name="lenet5",
    )
