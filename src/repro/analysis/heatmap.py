"""Error heat maps over the input space (paper Fig. 4).

The paper visualizes ``|i * j - M~(i, j)|`` over all operand pairs to show
that the error mass settles where the driving distribution puts little
probability.  Here the map is computed as a matrix (and optionally
rendered as ASCII art for terminal reports) plus summary statistics that
the tests and benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors.distributions import Distribution
from ..errors.truth_tables import (
    exact_product_table,
    max_product_magnitude,
    table_as_matrix,
)

__all__ = ["error_heatmap", "downsample", "render_ascii", "error_mass_correlation"]

_ASCII_LEVELS = " .:-=+*#%@"


def error_heatmap(
    table: np.ndarray, width: int, signed: bool, relative: bool = True
) -> np.ndarray:
    """Absolute error as an ``[x_idx, y_idx]`` matrix.

    Args:
        table: Candidate truth table in vector order.
        width: Operand width.
        signed: Product semantics.
        relative: Normalize by the max exact product magnitude (the
            percent scale of Fig. 4).
    """
    exact = exact_product_table(width, signed)
    err = np.abs(np.asarray(table, dtype=np.int64) - exact)
    matrix = table_as_matrix(err, width).astype(np.float64)
    if relative:
        matrix /= max_product_magnitude(width, signed)
    return matrix


def downsample(matrix: np.ndarray, bins: int) -> np.ndarray:
    """Mean-pool a square matrix down to ``bins x bins``."""
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    if n % bins:
        raise ValueError(f"bins {bins} must divide size {n}")
    s = n // bins
    return matrix.reshape(bins, s, bins, s).mean(axis=(1, 3))


def render_ascii(matrix: np.ndarray, bins: int = 32) -> str:
    """Coarse ASCII rendering of a heat map (dark = low error)."""
    small = downsample(matrix, bins)
    top = small.max()
    if top <= 0:
        return "\n".join(" " * bins for _ in range(bins))
    levels = len(_ASCII_LEVELS) - 1
    scaled = np.clip(
        np.rint(small / top * levels), 0, levels
    ).astype(int)
    return "\n".join(
        "".join(_ASCII_LEVELS[v] for v in row) for row in scaled
    )


def error_mass_correlation(
    table: np.ndarray,
    width: int,
    dist: Distribution,
) -> float:
    """Pearson correlation between per-``x`` error mass and ``D(x)``.

    A multiplier evolved under WMED_D should place its error where D is
    small, so this correlation is expected to be *negative* — the
    quantitative counterpart of the Fig. 4 visual argument.
    """
    matrix = error_heatmap(table, width, dist.signed, relative=True)
    per_x_error = matrix.mean(axis=1)
    pmf = dist.pmf
    if per_x_error.std() == 0 or pmf.std() == 0:
        return 0.0
    return float(np.corrcoef(per_x_error, pmf)[0, 1])
