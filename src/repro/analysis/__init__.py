"""Experiment orchestration and reporting helpers."""

from .heatmap import (
    downsample,
    error_heatmap,
    error_mass_correlation,
    render_ascii,
)
from .reporting import banner, format_pmf_sparkline, format_series, format_table
from ..core.pareto import dominates, hypervolume_2d, pareto_indices, pareto_points
from .sweep import (
    PAPER_WMED_LEVELS,
    DesignPoint,
    characterize_design,
    characterize_design_sampled,
    characterize_multiplier,
    evolve_front,
    grid_front,
    make_evaluator,
    make_objective,
    mac_summary,
    parallel_front,
)

__all__ = [
    "downsample",
    "error_heatmap",
    "error_mass_correlation",
    "render_ascii",
    "banner",
    "format_pmf_sparkline",
    "format_series",
    "format_table",
    "PAPER_WMED_LEVELS",
    "DesignPoint",
    "characterize_design",
    "characterize_design_sampled",
    "characterize_multiplier",
    "evolve_front",
    "grid_front",
    "parallel_front",
    "make_evaluator",
    "make_objective",
    "mac_summary",
    "dominates",
    "hypervolume_2d",
    "pareto_indices",
    "pareto_points",
]
