"""Experiment orchestration: error-target sweeps producing trade-off fronts.

This is the flow behind Fig. 3 and Fig. 6, generalized over the
objective layer: for every target error level ``E_i``, run the
(1 + lambda) CGP search seeded with an exact component (multiplier,
adder, MAC, ...), keep the evolved circuit, and characterize it
electrically and under every error metric of interest.

Three sweep strategies are provided:

* :func:`evolve_front` — sequential, optionally chaining each target's
  run from the previous survivor (the paper's Pareto-sweep style);
* :func:`parallel_front` — one independent run per target, fanned out
  over a ``concurrent.futures`` executor.  Every run gets its own
  :class:`numpy.random.SeedSequence`-derived generator, so results are
  bit-reproducible for a given ``seed`` regardless of worker count,
  scheduling order, or executor kind (``parallel_front(...,
  max_workers=1)`` returns exactly what the pooled version does);
* :func:`grid_front` — the full ``component x metric x threshold``
  grid through the same reproducible fan-out machinery.

All route candidate evaluation through the compiled engine
(:mod:`repro.engine`) by default; pass ``engine="off"`` for the
interpreted objective (results are bit-identical either way).  Inside
every run, each generation's brood is evaluated through the engine's
batched path (``CompiledObjective.evaluate_batch``: phenotype dedupe,
cache lookup, then one ``cgp_eval_batch`` dispatch per brood).  Two
levels of parallelism therefore exist and compose: the sweep fans runs
out over *processes/threads* here (one evaluator per worker — arenas
are single-owner), while ``REPRO_OMP`` controls the *intra-brood*
OpenMP team inside one native dispatch.  When fanning out sweeps,
leave ``REPRO_OMP`` at/below 1 so the levels don't oversubscribe cores.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulator import truth_table
from ..core.chromosome import Chromosome
from ..core.components import get_component
from ..core.evolution import EvolutionConfig, EvolutionResult, evolve
from ..core.objective import CircuitObjective, SampleSpec
from ..core.seeding import netlist_to_chromosome, params_for_netlist
from ..errors.distributions import Distribution
from ..errors.metrics import get_metric, mean_error_distance
from ..errors.truth_tables import operand_weights
from ..obs.trace import span
from ..tech.library import TechLibrary, default_library
from ..tech.timing import TimingPowerSummary, characterize

__all__ = [
    "DesignPoint",
    "canonical_combos",
    "characterize_design",
    "characterize_design_sampled",
    "characterize_multiplier",
    "evolve_front",
    "parallel_front",
    "grid_front",
    "make_objective",
    "make_evaluator",
    "mac_summary",
    "PAPER_WMED_LEVELS",
]


def canonical_combos(
    components: Sequence[str], metrics: Sequence[str]
) -> List[Tuple[str, str]]:
    """Canonicalized, de-duplicated (component, metric) grid cells.

    Aliases like ``mre`` and ``mred`` must not silently run (then
    overwrite) the same cell twice.  Shared by :func:`grid_front` and
    the library builder's resume accounting, which must agree on the
    cell set exactly.
    """
    combos: List[Tuple[str, str]] = []
    for c in components:
        for m in metrics:
            combo = (get_component(c).name, get_metric(m).name)
            if combo not in combos:
                combos.append(combo)
    return combos

#: The WMED levels of Table I (percent).
PAPER_WMED_LEVELS = (0.0, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0)


@dataclass
class DesignPoint:
    """One evolved design: circuit, truth table and measured figures.

    ``wmed_by_dist`` maps distribution names to normalized weighted-MED
    values against the component's reference — the cross-evaluation the
    paper performs in Fig. 3 (each design is "also evaluated using the
    remaining WMEDs that were not considered during the design").
    ``component`` / ``metric`` record which objective produced it.
    """

    name: str
    source: str
    threshold_percent: float
    netlist: Netlist
    table: np.ndarray
    summary: TimingPowerSummary
    wmed_by_dist: Dict[str, float]
    evolution: Optional[EvolutionResult] = None
    component: str = "multiplier"
    metric: str = "wmed"
    #: Wall-clock seconds the producing sweep task took (evolve +
    #: characterize); excluded from equality because timing is not part
    #: of what the design *is*.
    wall_s: float = field(default=0.0, compare=False)

    @property
    def power_mw(self) -> float:
        return self.summary.power_mw

    @property
    def area(self) -> float:
        return self.summary.area

    @property
    def pdp(self) -> float:
        return self.summary.pdp

    def wmed_percent(self, dist_name: str) -> float:
        return 100.0 * self.wmed_by_dist[dist_name]


def characterize_design(
    netlist: Netlist,
    width: int,
    dists: Sequence[Distribution],
    component: str = "multiplier",
    metric: str = "wmed",
    name: str = "",
    source: str = "",
    threshold_percent: float = float("nan"),
    library: Optional[TechLibrary] = None,
    activity_dist: Optional[Distribution] = None,
    evolution: Optional[EvolutionResult] = None,
) -> DesignPoint:
    """Measure a component netlist under all metrics and cost models.

    Args:
        netlist: Circuit with the component's standard interface.
        width: Operand width.
        dists: Distributions to cross-evaluate the weighted error under
            (all must share the signedness of the design).
        component: Registered component name (selects the reference).
        metric: Metric tag recorded on the point.
        name: Design label.
        source: Family/source tag (e.g. ``"proposed (D2)"``).
        threshold_percent: Error target this design was evolved for.
        library: Technology library.
        activity_dist: Distribution shaping the power model's switching
            activity; defaults to the first entry of ``dists``.
        evolution: Optional provenance (the CGP run that produced it).
    """
    if not dists:
        raise ValueError("at least one distribution required")
    comp = get_component(component)
    _check_component_signedness(comp, dists[0])
    signed = dists[0].signed
    if any(d.signed != signed for d in dists):
        raise ValueError("distributions disagree on signedness")
    act = activity_dist or dists[0]
    for d in (*dists, act):
        if d.width != width:
            raise ValueError(
                f"distribution width {d.width} != component width {width}"
            )
    table = truth_table(netlist, signed=signed)
    reference = comp.reference(width, signed)
    normalizer = float(np.abs(reference).max()) or 1.0
    ni = netlist.num_inputs
    weights = operand_weights(act, ni)
    summary = characterize(netlist, library, weights=weights / weights.sum())
    return DesignPoint(
        name=name or netlist.name,
        source=source,
        threshold_percent=threshold_percent,
        netlist=netlist,
        table=table,
        summary=summary,
        wmed_by_dist={
            d.name: mean_error_distance(
                reference, table, operand_weights(d, ni)
            )
            / normalizer
            for d in dists
        },
        evolution=evolution,
        component=comp.name,
        metric=get_metric(metric).name,
    )


def characterize_design_sampled(
    netlist: Netlist,
    width: int,
    dists: Sequence[Distribution],
    sample: SampleSpec,
    component: str = "multiplier",
    metric: str = "wmed",
    name: str = "",
    source: str = "",
    threshold_percent: float = float("nan"),
    library: Optional[TechLibrary] = None,
    activity_dist: Optional[Distribution] = None,
    evolution: Optional[EvolutionResult] = None,
) -> DesignPoint:
    """Sampled sibling of :func:`characterize_design` for wide operands.

    Nothing here enumerates the ``2**ni`` vector space: error figures
    are WMED *estimates* from each distribution's reproducible sample
    (same stream discipline as the evolving objective), the power
    model's switching activity comes from the activity distribution's
    sampled stimulus (the :func:`mac_summary` approach), and
    ``DesignPoint.table`` holds the design's outputs *at the activity
    sample's vectors* — not a truth table indexed by vector.
    """
    from ..core.components import sampled_component_objective
    from ..tech.area import circuit_area
    from ..tech.power import circuit_power
    from ..tech.timing import critical_path_delay

    if not dists:
        raise ValueError("at least one distribution required")
    comp = get_component(component)
    _check_component_signedness(comp, dists[0])
    signed = dists[0].signed
    if any(d.signed != signed for d in dists):
        raise ValueError("distributions disagree on signedness")
    act = activity_dist or dists[0]
    for d in (*dists, act):
        if d.width != width:
            raise ValueError(
                f"distribution width {d.width} != component width {width}"
            )
    chromosome = netlist_to_chromosome(netlist)
    wmed_by_dist: Dict[str, float] = {}
    table: Optional[np.ndarray] = None
    act_stimulus: Optional[np.ndarray] = None
    act_vectors = 0
    for d in (*dists, act):
        if d.name in wmed_by_dist and act_stimulus is not None:
            continue
        objective = sampled_component_objective(
            comp.name, width, d, sample, metric="wmed", library=library
        )
        if d.name not in wmed_by_dist:
            wmed_by_dist[d.name] = objective.estimate(chromosome).value
        if act_stimulus is None and d.name == act.name:
            table = objective.truth_table(chromosome)
            act_stimulus = objective.stimulus
            act_vectors = objective.num_vectors
    lib = library or default_library()
    summary = TimingPowerSummary(
        area=circuit_area(netlist, lib),
        power=circuit_power(
            netlist, lib, input_words=act_stimulus, num_vectors=act_vectors
        ),
        delay=critical_path_delay(netlist, lib),
    )
    return DesignPoint(
        name=name or netlist.name,
        source=source,
        threshold_percent=threshold_percent,
        netlist=netlist,
        table=table,
        summary=summary,
        wmed_by_dist=wmed_by_dist,
        evolution=evolution,
        component=comp.name,
        metric=get_metric(metric).name,
    )


def characterize_multiplier(
    netlist: Netlist,
    width: int,
    dists: Sequence[Distribution],
    name: str = "",
    source: str = "",
    threshold_percent: float = float("nan"),
    library: Optional[TechLibrary] = None,
    activity_dist: Optional[Distribution] = None,
    evolution: Optional[EvolutionResult] = None,
) -> DesignPoint:
    """Multiplier instance of :func:`characterize_design` (legacy name)."""
    return characterize_design(
        netlist,
        width,
        dists,
        component="multiplier",
        name=name,
        source=source,
        threshold_percent=threshold_percent,
        library=library,
        activity_dist=activity_dist,
        evolution=evolution,
    )


def mac_summary(
    multiplier: Netlist,
    width: int,
    dist: Distribution,
    max_terms: int = 512,
    samples: int = 8192,
    rng: Optional[np.random.Generator] = None,
    library: Optional[TechLibrary] = None,
) -> TimingPowerSummary:
    """Area / power / delay / PDP of a MAC built around ``multiplier``.

    This is what Table I reports ("the design parameters are reported for
    the MAC units").  The MAC's input space is too wide for exhaustive
    activity extraction, so switching probabilities are sampled: the
    multiplier's x operand follows ``dist`` (the application's data
    distribution), the y operand and the accumulator are uniform.

    Args:
        multiplier: Multiplier core with the standard interface.
        width: Operand width ``w``.
        dist: Distribution of the x operand (e.g. NN weights).
        max_terms: Accumulation depth ``d`` sizing the accumulator.
        samples: Number of random stimulus vectors for the power model.
        rng: Sampling source.
        library: Technology library.
    """
    from ..circuits.generators.mac import accumulator_width, build_mac
    from ..circuits.simulator import pack_input_vectors

    rng = rng or np.random.default_rng(0)
    acc_width = accumulator_width(width, max_terms)
    mac = build_mac(width, acc_width, multiplier=multiplier, signed=dist.signed)

    x_idx = rng.choice(dist.size, size=samples, p=dist.pmf).astype(np.uint64)
    y_idx = rng.integers(0, 1 << width, size=samples, dtype=np.uint64)
    acc = rng.integers(0, 1 << acc_width, size=samples, dtype=np.uint64)
    vectors = (
        x_idx
        | (y_idx << np.uint64(width))
        | (acc << np.uint64(2 * width))
    )
    stimulus = pack_input_vectors(vectors, mac.num_inputs)
    lib = library or default_library()
    from ..tech.area import circuit_area
    from ..tech.power import circuit_power
    from ..tech.timing import critical_path_delay

    return TimingPowerSummary(
        area=circuit_area(mac, lib),
        power=circuit_power(mac, lib, input_words=stimulus, num_vectors=samples),
        delay=critical_path_delay(mac, lib),
    )


def make_objective(
    width: int,
    design_dist: Distribution,
    library: Optional[TechLibrary] = None,
    engine: str = "auto",
    component: str = "multiplier",
    metric: str = "wmed",
    sample: Optional[SampleSpec] = None,
) -> CircuitObjective:
    """Build the candidate objective the sweeps run on.

    ``engine`` selects the evaluation path: ``"auto"`` (compiled engine,
    native backend when buildable), ``"native"`` / ``"numpy"`` (compiled
    engine, forced backend) or ``"off"`` (the interpreted
    :class:`~repro.core.objective.CircuitObjective`).  All produce
    bit-identical results; the engine is just faster.

    ``sample`` switches to Monte-Carlo evaluation: the objective scores
    candidates on a reproducible operand sample (see
    :func:`~repro.core.components.sampled_component_objective`) instead
    of the exhaustive vector space, returning estimates with confidence
    intervals — the only mode available past each component's exhaustive
    ``max_width``.
    """
    from ..core.components import component_objective, get_component

    comp = get_component(component)
    if sample is not None:
        from ..core.components import sampled_component_objective

        objective = sampled_component_objective(
            comp.name, width, design_dist, sample,
            metric=metric, library=library,
        )
        if engine == "off":
            return objective
        if engine not in ("auto", "native", "numpy"):
            raise ValueError(f"unknown engine mode {engine!r}")
        from ..engine import CompiledSampledObjective

        return CompiledSampledObjective(objective, backend=engine)
    if engine == "off":
        return component_objective(
            comp.name, width, design_dist, metric=metric, library=library
        )
    if engine not in ("auto", "native", "numpy"):
        raise ValueError(f"unknown engine mode {engine!r}")
    from ..engine import CompiledMultiplierFitness, CompiledObjective

    if comp.name == "multiplier":
        # Keep the legacy class identity (isinstance checks, `.exact`)
        # that pre-objective-layer callers of make_evaluator rely on.
        return CompiledMultiplierFitness(
            width, design_dist, library=library, backend=engine,
            metric=metric,
        )
    return CompiledObjective(
        component_objective(
            comp.name, width, design_dist, metric=metric, library=library
        ),
        backend=engine,
    )


def make_evaluator(
    width: int,
    design_dist: Distribution,
    library: Optional[TechLibrary] = None,
    engine: str = "auto",
) -> CircuitObjective:
    """Deprecated alias: the multiplier/WMED case of :func:`make_objective`."""
    return make_objective(width, design_dist, library=library, engine=engine)


def _check_component_signedness(comp, dist: Distribution) -> None:
    """Fail fast when a signed distribution meets an unsigned component.

    Silently clamping would weight unsigned bit patterns by a signed
    PMF (pattern ``0b1000`` carrying the mass of value -8 while the
    tables treat it as +8) — plausible-looking but wrong numbers.
    """
    if dist.signed and not comp.supports_signed:
        raise ValueError(
            f"the {comp.name} component is unsigned; pass unsigned "
            f"distributions"
        )


def _resolve_seed_netlist(
    seed_netlist: Optional[Netlist],
    component: str,
    design_dist: Distribution,
    width: int,
    sample: Optional[SampleSpec] = None,
) -> Netlist:
    """Resolve + validate one sweep cell's seed before any work runs.

    Both guards fail fast in the caller: raising only inside a pool
    worker would discard every other cell's completed work.  Sampled
    sweeps are width-checked against the sampled bound (no exhaustive
    table is ever built), exhaustive sweeps against ``max_width``.
    """
    comp = get_component(component)
    _check_component_signedness(comp, design_dist)
    if sample is not None:
        comp.check_sampled_width(width)
    else:
        comp.check_width(width)
    if seed_netlist is not None:
        return seed_netlist
    return comp.build_seed(width, design_dist.signed)


def evolve_front(
    seed_netlist: Optional[Netlist],
    width: int,
    design_dist: Distribution,
    thresholds_percent: Sequence[float],
    eval_dists: Sequence[Distribution],
    config: Optional[EvolutionConfig] = None,
    rng: Optional[np.random.Generator] = None,
    library: Optional[TechLibrary] = None,
    extra_columns: int = 0,
    chain_targets: bool = True,
    engine: str = "auto",
    component: str = "multiplier",
    metric: str = "wmed",
    sample: Optional[SampleSpec] = None,
) -> List[DesignPoint]:
    """Sweep error targets, evolving one design per target.

    Args:
        seed_netlist: Exact circuit seeding the first run; ``None``
            builds the component's standard exact seed.
        width: Operand width.
        design_dist: Distribution used in the weighted fitness (the
            "driving" distribution of the proposed method).
        thresholds_percent: Target error levels in percent, ascending.
        eval_dists: Distributions to cross-evaluate each result under.
        config: Evolution budget per target.
        rng: Random source.
        library: Technology library for area/power.
        extra_columns: Spare CGP columns beyond the seed's gate count.
        chain_targets: Seed each target's run with the previous target's
            survivor (cheaper and mirrors how Pareto sweeps are run in
            practice); the first run always starts from the exact seed.
        engine: Evaluation path, see :func:`make_objective`.
        component: Registered component name (``multiplier``, ``adder``,
            ``mac``, ``divider``, ``subtractor``, ``barrel-shifter``).
        metric: Error metric driving Eq. (1).
        sample: When given, evaluate candidates (and characterize the
            survivors) on this reproducible operand sample instead of
            the exhaustive vector space — the wide-operand mode.

    Returns:
        One :class:`DesignPoint` per threshold, in sweep order.
    """
    rng = rng or np.random.default_rng()
    seed_netlist = _resolve_seed_netlist(
        seed_netlist, component, design_dist, width, sample
    )
    params = params_for_netlist(
        seed_netlist, extra_columns=extra_columns
    )
    seed = netlist_to_chromosome(seed_netlist, params)
    evaluator = make_objective(
        width, design_dist, library, engine, component, metric, sample
    )
    points: List[DesignPoint] = []
    parent: Chromosome = seed
    for level in thresholds_percent:
        result = evolve(
            parent, evaluator, threshold=level / 100.0, config=config, rng=rng
        )
        points.append(
            _characterize_evolved(
                result, width, design_dist, eval_dists, level, library,
                component, metric, sample,
            )
        )
        if chain_targets:
            parent = result.best
    return points


def _characterize_evolved(
    result: EvolutionResult,
    width: int,
    design_dist: Distribution,
    eval_dists: Sequence[Distribution],
    level: float,
    library: Optional[TechLibrary],
    component: str = "multiplier",
    metric: str = "wmed",
    sample: Optional[SampleSpec] = None,
) -> DesignPoint:
    """Name + characterize one evolved survivor (shared by all sweeps)."""
    comp = get_component(component)
    prefix = {
        "multiplier": "mul",
        "subtractor": "sub",
        "divider": "div",
        "barrel-shifter": "shl",
    }.get(comp.name, comp.name)
    netlist = result.best.to_netlist(
        name=f"{prefix}{width}_{design_dist.name}_{metric}{level:g}"
    )
    if sample is not None:
        return characterize_design_sampled(
            netlist,
            width,
            eval_dists,
            sample,
            component=component,
            metric=metric,
            name=netlist.name,
            source=f"proposed ({design_dist.name})",
            threshold_percent=level,
            library=library,
            activity_dist=design_dist,
            evolution=result,
        )
    return characterize_design(
        netlist,
        width,
        eval_dists,
        component=component,
        metric=metric,
        name=netlist.name,
        source=f"proposed ({design_dist.name})",
        threshold_percent=level,
        library=library,
        activity_dist=design_dist,
        evolution=result,
    )


def _front_task(
    args: Tuple,
) -> DesignPoint:
    """Evolve + characterize one error target (parallel-sweep worker).

    Module-level (picklable) so it runs under both thread and process
    executors.  Each task builds its own objective: engine arenas are
    single-owner (``BufferArena.assert_owner``), and process workers
    cannot share them anyway.  The objective's batched brood dispatch
    (and its ``REPRO_OMP`` team, if enabled) lives entirely inside this
    worker, so per-task results never depend on worker count.
    """
    (
        seed_netlist, width, design_dist, level, eval_dists,
        config, seed_seq, library, extra_columns, engine,
        component, metric, sample,
    ) = args
    t0 = perf_counter()
    with span(
        "build.cell",
        component=component, metric=metric, width=width, level=level,
    ) as sp:
        params = params_for_netlist(seed_netlist, extra_columns=extra_columns)
        seed = netlist_to_chromosome(seed_netlist, params)
        evaluator = make_objective(
            width, design_dist, library, engine, component, metric, sample
        )
        result = evolve(
            seed,
            evaluator,
            threshold=level / 100.0,
            config=config,
            rng=np.random.default_rng(seed_seq),
        )
        point = _characterize_evolved(
            result, width, design_dist, eval_dists, level, library,
            component, metric, sample,
        )
        sp.tag(evaluations=result.evaluations)
    point.wall_s = perf_counter() - t0
    return point


def _pool_class(executor: str):
    if executor == "process":
        return concurrent.futures.ProcessPoolExecutor
    if executor == "thread":
        return concurrent.futures.ThreadPoolExecutor
    raise ValueError(f"unknown executor {executor!r}")


def _run_tasks(
    tasks: List[Tuple],
    executor: str,
    max_workers: Optional[int],
    on_result: Optional[Callable[[int, DesignPoint], None]] = None,
) -> List[DesignPoint]:
    """Run sweep tasks, optionally reporting each completion as it lands.

    ``on_result(index, point)`` fires in the caller's process the moment
    task ``index`` finishes (completion order, not input order) — the
    hook the design-library builder uses to checkpoint each grid cell
    before the rest of the sweep is done.  Results are still returned in
    input order.
    """
    # Resolve (and thereby validate) the executor even when the pool is
    # never built (max_workers <= 1), so a typo doesn't surface only
    # once the sweep is scaled up.
    pool_cls = _pool_class(executor)
    if max_workers is not None and max_workers <= 1:
        points = []
        for i, t in enumerate(tasks):
            point = _front_task(t)
            if on_result is not None:
                on_result(i, point)
            points.append(point)
        return points
    with pool_cls(max_workers=max_workers) as pool:
        if on_result is None:
            return list(pool.map(_front_task, tasks))
        futures = {
            pool.submit(_front_task, t): i for i, t in enumerate(tasks)
        }
        results: List[Optional[DesignPoint]] = [None] * len(tasks)
        for future in concurrent.futures.as_completed(futures):
            i = futures[future]
            point = future.result()
            on_result(i, point)
            results[i] = point
        return results  # type: ignore[return-value]


def parallel_front(
    seed_netlist: Optional[Netlist],
    width: int,
    design_dist: Distribution,
    thresholds_percent: Sequence[float],
    eval_dists: Sequence[Distribution],
    config: Optional[EvolutionConfig] = None,
    seed: int = 0,
    max_workers: Optional[int] = None,
    executor: str = "process",
    library: Optional[TechLibrary] = None,
    extra_columns: int = 0,
    engine: str = "auto",
    component: str = "multiplier",
    metric: str = "wmed",
    sample: Optional[SampleSpec] = None,
) -> List[DesignPoint]:
    """Evolve one design per error target, targets in parallel.

    Unlike :func:`evolve_front` the runs are independent (each seeded
    from the exact circuit — ``chain_targets=False`` semantics), which is
    what makes them embarrassingly parallel.  Reproducibility: run ``i``
    draws its generator from ``SeedSequence(seed).spawn()[i]``, so the
    returned front depends only on ``seed`` and the arguments — never on
    worker count, executor kind, or completion order.

    Args:
        seed: Root entropy for the per-run generators.
        max_workers: Pool size; ``None`` lets the executor choose, values
            ``<= 1`` run serially in-process (no pool, same results).
        executor: ``"process"`` (default; true parallelism, arguments
            must be picklable) or ``"thread"`` (lighter; the native
            engine backend releases the GIL during simulation).
        (Other arguments as in :func:`evolve_front`.)

    Returns:
        One :class:`DesignPoint` per threshold, in input order.
    """
    seed_netlist = _resolve_seed_netlist(
        seed_netlist, component, design_dist, width, sample
    )
    levels = list(thresholds_percent)
    children = np.random.SeedSequence(seed).spawn(len(levels))
    tasks = [
        (
            seed_netlist, width, design_dist, level, tuple(eval_dists),
            config, child, library, extra_columns, engine,
            component, metric, sample,
        )
        for level, child in zip(levels, children)
    ]
    return _run_tasks(tasks, executor, max_workers)


def grid_front(
    width: int,
    design_dist: Distribution,
    thresholds_percent: Sequence[float],
    eval_dists: Sequence[Distribution],
    components: Sequence[str] = ("multiplier",),
    metrics: Sequence[str] = ("wmed",),
    config: Optional[EvolutionConfig] = None,
    seed: Union[int, np.random.SeedSequence] = 0,
    max_workers: Optional[int] = None,
    executor: str = "process",
    library: Optional[TechLibrary] = None,
    extra_columns: int = 0,
    engine: str = "auto",
    skip_cell: Optional[Callable[[str, str, float], bool]] = None,
    on_point: Optional[Callable[[str, str, float, DesignPoint], None]] = None,
    sample: Optional[SampleSpec] = None,
) -> Dict[Tuple[str, str], List[Optional[DesignPoint]]]:
    """Sweep the full ``component x metric x threshold`` grid.

    Every cell of the grid is an independent run fanned out over one
    executor pool, with the same :class:`~numpy.random.SeedSequence`
    reproducibility contract as :func:`parallel_front`: the result
    depends only on ``seed`` and the arguments.

    ``skip_cell(component, metric, level)`` (when given) excludes a cell
    from the sweep without disturbing the others' generators: per-cell
    seed children are allocated for the *full* grid before filtering, so
    a cell evolves identically whether its neighbours run or are skipped.
    Skipped cells come back as ``None``.  ``on_point(component, metric,
    level, point)`` fires in the caller's process as each cell completes
    (completion order) — together these two hooks are the checkpoint /
    resume surface the design-library builder
    (:mod:`repro.library.builder`) drives.

    Returns:
        ``{(component, metric): [DesignPoint per threshold]}`` with
        thresholds in input order (``None`` where ``skip_cell`` hit).
    """
    combos = canonical_combos(components, metrics)
    # Fail fast, before any cell runs: a signed distribution with an
    # unsigned component in the grid would otherwise only raise in a
    # worker after the other cells' work is done — and discard it all.
    for component, _ in combos:
        _check_component_signedness(get_component(component), design_dist)
    levels = list(thresholds_percent)
    if not levels:
        return {combo: [] for combo in combos}
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    children = seed_seq.spawn(len(combos) * len(levels))
    tasks = []
    cell_of_task: List[Tuple[int, int]] = []
    for i, (component, metric) in enumerate(combos):
        if skip_cell is not None and all(
            skip_cell(component, metric, level) for level in levels
        ):
            continue  # the seed netlist build is not free; skip it too
        seed_net = _resolve_seed_netlist(
            None, component, design_dist, width, sample
        )
        for j, level in enumerate(levels):
            if skip_cell is not None and skip_cell(component, metric, level):
                continue
            tasks.append(
                (
                    seed_net, width, design_dist, level, tuple(eval_dists),
                    config, children[i * len(levels) + j], library,
                    extra_columns, engine, component, metric, sample,
                )
            )
            cell_of_task.append((i, j))
    on_result = None
    if on_point is not None:
        def on_result(task_index: int, point: DesignPoint) -> None:
            i, j = cell_of_task[task_index]
            on_point(combos[i][0], combos[i][1], levels[j], point)
    points = _run_tasks(tasks, executor, max_workers, on_result=on_result)
    grid: Dict[Tuple[str, str], List[Optional[DesignPoint]]] = {
        combo: [None] * len(levels) for combo in combos
    }
    for (i, j), point in zip(cell_of_task, points):
        grid[combos[i]][j] = point
    return grid
