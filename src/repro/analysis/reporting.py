"""Plain-text reporting used by the benchmark harness.

Every benchmark regenerates its paper table/figure as aligned text — the
series and rows the paper plots, printed so the shape of the result
(orderings, crossovers, reduction percentages) can be read directly from
the pytest output and is archived in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_pmf_sparkline", "format_series", "banner"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Floats are shown with four significant digits; everything else via
    ``str``.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(widths[k]) for k, c in enumerate(row)))
    return "\n".join(lines)


def format_pmf_sparkline(pmf: Sequence[float], bins: int = 64) -> str:
    """One-line bar rendering of a PMF (used for Fig. 2 / Fig. 6 top)."""
    marks = " _.,:;|+*#@"
    values = list(pmf)
    n = len(values)
    if n == 0:
        return ""
    per_bin = max(1, n // bins)
    pooled = [
        sum(values[k : k + per_bin]) for k in range(0, n, per_bin)
    ]
    top = max(pooled) or 1.0
    levels = len(marks) - 1
    return "".join(
        marks[min(levels, int(round(v / top * levels)))] for v in pooled
    )


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Compact ``name: (x, y) ...`` rendering of one plotted series."""
    pairs = "  ".join(f"({x:.4g}, {y:.4g})" for x, y in zip(xs, ys))
    return f"{name} [{x_label} vs {y_label}]: {pairs}"


def banner(text: str) -> str:
    """Section banner used between benchmark stages."""
    bar = "=" * max(8, len(text) + 4)
    return f"\n{bar}\n  {text}\n{bar}"
