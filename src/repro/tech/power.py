"""Switching-activity power estimation.

Dynamic power of a gate is modeled as

``P_dyn(g) = f_clk * act(g) * (E_switch(g) + Vdd^2 * sum(C_in of fanout))``

where ``act(g) = 2 * p * (1 - p)`` is the per-cycle toggle probability of
the gate's output under the temporal-independence assumption, and ``p`` is
the signal's 1-probability measured by simulation.  Crucially, ``p`` can
be measured under a *weighted* stimulus — e.g. the operand distribution D
used for WMED — so the power estimate reflects the application's data
statistics just like the error metric does.

Static (leakage) power is the sum of active-cell leakages.  Units work out
to uW when combining fJ, fF, GHz and nW as characterized in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..circuits.gates import gate_function
from ..circuits.netlist import Netlist
from ..circuits.simulator import exhaustive_inputs, simulate_signals, unpack_bits
from .library import TechLibrary, default_library

__all__ = ["PowerReport", "signal_probabilities", "circuit_power"]


@dataclass(frozen=True)
class PowerReport:
    """Decomposed power estimate in uW."""

    dynamic: float
    leakage: float

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage


def signal_probabilities(
    netlist: Netlist,
    input_words: Optional[np.ndarray] = None,
    weights: Optional[np.ndarray] = None,
    num_vectors: Optional[int] = None,
) -> Dict[int, float]:
    """Per-signal 1-probability over the stimulus, for active signals.

    Args:
        netlist: Circuit to analyze.
        input_words: Packed stimulus; defaults to exhaustive enumeration.
        weights: Optional per-vector probability weights (e.g. the WMED
            vector weights); defaults to uniform.
        num_vectors: Number of valid test vectors in the stimulus.
            Defaults to ``2**num_inputs`` for the implicit exhaustive
            stimulus, to ``len(weights)`` when weights are given, and to
            the full packed capacity otherwise.

    Returns:
        Mapping from signal address to ``Pr[signal = 1]``.
    """
    if input_words is None:
        input_words = exhaustive_inputs(netlist.num_inputs)
        if num_vectors is None:
            num_vectors = 1 << netlist.num_inputs
    if num_vectors is None:
        num_vectors = int(input_words.shape[1]) * 64
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        num_vectors = weights.shape[0]
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must have positive mass")
        weights = weights / total

    values = simulate_signals(netlist, input_words)
    probs: Dict[int, float] = {}
    for sig, words in enumerate(values):
        if words is None:
            continue
        bits = unpack_bits(words, num_vectors).astype(np.float64)
        if weights is None:
            probs[sig] = float(bits.mean())
        else:
            probs[sig] = float(np.dot(weights, bits))
    return probs


def circuit_power(
    netlist: Netlist,
    library: Optional[TechLibrary] = None,
    input_words: Optional[np.ndarray] = None,
    weights: Optional[np.ndarray] = None,
    num_vectors: Optional[int] = None,
) -> PowerReport:
    """Estimate circuit power in uW under the given stimulus statistics.

    Args:
        netlist: Circuit to measure.
        library: Technology library (defaults to the 45 nm-class one).
        input_words: Packed stimulus; defaults to exhaustive enumeration.
        weights: Optional per-vector weights making the activity (and thus
            the power figure) data-distribution-aware.
        num_vectors: Valid vector count in an explicit stimulus (see
            :func:`signal_probabilities`).
    """
    lib = library or default_library()
    probs = signal_probabilities(netlist, input_words, weights, num_vectors)
    fanout_cap: Dict[int, float] = {}
    active = netlist.active_gate_indices()
    for k in active:
        gate = netlist.gates[k]
        spec = gate_function(gate.fn)
        cell = lib.cell(gate.fn)
        for src in gate.inputs[: spec.arity]:
            fanout_cap[src] = fanout_cap.get(src, 0.0) + cell.input_cap

    dynamic = 0.0
    leakage = 0.0
    for k in active:
        gate = netlist.gates[k]
        cell = lib.cell(gate.fn)
        sig = netlist.gate_signal(k)
        p = probs.get(sig, 0.0)
        activity = 2.0 * p * (1.0 - p)
        load = fanout_cap.get(sig, 0.0)
        # fJ * GHz = uW; fF * V^2 = fJ, so the load term folds in directly.
        dynamic += lib.clock_ghz * activity * (
            cell.switch_energy + lib.vdd * lib.vdd * load
        )
        leakage += cell.leakage * 1e-3
    return PowerReport(dynamic=dynamic, leakage=leakage)
