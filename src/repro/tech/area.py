"""Area estimation.

Area is the cost signal inside the CGP fitness function (the paper picks
it because it is quick to compute from the technology library and highly
correlated with power).  It is simply the sum of active-cell areas.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.netlist import Netlist
from .library import TechLibrary, default_library

__all__ = ["circuit_area", "area_of_counts"]


def area_of_counts(counts, library: Optional[TechLibrary] = None) -> float:
    """Area in um^2 of a ``{cell name: count}`` histogram."""
    lib = library or default_library()
    return float(sum(lib.cell(fn).area * n for fn, n in counts.items()))


def circuit_area(
    netlist: Netlist,
    library: Optional[TechLibrary] = None,
    active_only: bool = True,
) -> float:
    """Total cell area of a netlist in um^2.

    Args:
        netlist: Circuit to measure.
        library: Technology library (defaults to the 45 nm-class one).
        active_only: Count only gates in the output cone — inactive CGP
            nodes do not exist in the synthesized circuit.
    """
    return area_of_counts(netlist.cell_counts(active_only=active_only), library)
