"""Technology-level cost models: area, power, timing, PDP."""

from .area import area_of_counts, circuit_area
from .library import NANGATE45, Cell, TechLibrary, default_library
from .power import PowerReport, circuit_power, signal_probabilities
from .timing import (
    TimingPowerSummary,
    characterize,
    critical_path,
    critical_path_delay,
    pdp,
)

__all__ = [
    "area_of_counts",
    "circuit_area",
    "NANGATE45",
    "Cell",
    "TechLibrary",
    "default_library",
    "PowerReport",
    "circuit_power",
    "signal_probabilities",
    "TimingPowerSummary",
    "characterize",
    "critical_path",
    "critical_path_delay",
    "pdp",
]
