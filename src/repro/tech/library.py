"""Analytic standard-cell library.

This stands in for the Synopsys Design Compiler + 45 nm PDK flow the paper
uses for final reporting.  The numbers below are modeled on a generic
45 nm educational library (NanGate-class): relative areas, delays and
switching energies between cell types are realistic, which is all the
experiments need — the CGP loop only consumes *relative* cost, and every
paper figure reports reductions relative to the exact circuit.

See DESIGN.md ("Substitutions") for why this preserves the paper's
conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

__all__ = ["Cell", "TechLibrary", "NANGATE45", "default_library"]


@dataclass(frozen=True)
class Cell:
    """Electrical characterization of one standard cell.

    Attributes:
        name: Cell/function name (matches the gate registry).
        area: Cell area in um^2.
        delay: Pin-to-pin propagation delay in ps (load-averaged).
        input_cap: Input pin capacitance in fF.
        switch_energy: Internal energy per output transition in fJ.
        leakage: Static leakage power in nW.
    """

    name: str
    area: float
    delay: float
    input_cap: float
    switch_energy: float
    leakage: float


@dataclass(frozen=True)
class TechLibrary:
    """A named collection of cells plus operating-point constants."""

    name: str
    cells: Mapping[str, Cell]
    vdd: float = 1.0
    clock_ghz: float = 1.0

    def cell(self, fn: str) -> Cell:
        """Cell for a gate function name.

        Raises:
            KeyError: if the library has no cell for ``fn``.
        """
        try:
            return self.cells[fn]
        except KeyError:
            raise KeyError(
                f"library {self.name!r} has no cell for {fn!r}; "
                f"known: {sorted(self.cells)}"
            ) from None


def _nangate45() -> TechLibrary:
    # area um^2 / delay ps / input cap fF / switch energy fJ / leakage nW.
    rows = [
        #      name     area   delay  cap   energy leakage
        Cell("CONST0", 0.000, 0.0, 0.00, 0.000, 0.0),
        Cell("CONST1", 0.000, 0.0, 0.00, 0.000, 0.0),
        Cell("BUF", 0.798, 29.0, 0.95, 0.540, 15.0),
        Cell("NOT", 0.532, 12.0, 1.04, 0.310, 10.5),
        Cell("NAND", 0.798, 14.5, 1.10, 0.430, 12.1),
        Cell("NOR", 0.798, 21.0, 1.09, 0.460, 11.8),
        Cell("AND", 1.064, 32.0, 1.00, 0.660, 19.4),
        Cell("OR", 1.064, 34.0, 0.99, 0.690, 18.9),
        Cell("XOR", 1.596, 49.0, 1.62, 1.120, 27.7),
        Cell("XNOR", 1.596, 47.0, 1.60, 1.080, 27.3),
        Cell("ANDN", 1.064, 33.0, 1.05, 0.680, 19.0),
        Cell("ORN", 1.064, 35.0, 1.04, 0.700, 18.6),
    ]
    return TechLibrary(name="nangate45-like", cells={c.name: c for c in rows})


#: Default 45 nm-class library used by all experiments.
NANGATE45: TechLibrary = _nangate45()


def default_library() -> TechLibrary:
    """The library every experiment uses unless told otherwise."""
    return NANGATE45
