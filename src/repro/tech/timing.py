"""Static timing analysis (critical path) and power-delay product.

Arrival time of a gate output is the maximum arrival over its read inputs
plus the cell's pin-to-pin delay; primary inputs arrive at t = 0.  The
circuit delay is the maximum arrival over the primary outputs.  This is a
load-independent STA, adequate for the relative PDP comparisons in the
paper's Fig. 6 and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..circuits.gates import gate_function
from ..circuits.netlist import Netlist
from .library import TechLibrary, default_library
from .power import PowerReport, circuit_power

__all__ = ["critical_path_delay", "critical_path", "pdp", "TimingPowerSummary", "characterize"]


def _arrival_times(netlist: Netlist, lib: TechLibrary) -> Dict[int, float]:
    arrival: Dict[int, float] = {k: 0.0 for k in range(netlist.num_inputs)}
    for k in netlist.active_gate_indices():
        gate = netlist.gates[k]
        spec = gate_function(gate.fn)
        cell = lib.cell(gate.fn)
        start = max(
            (arrival[src] for src in gate.inputs[: spec.arity]),
            default=0.0,
        )
        arrival[netlist.gate_signal(k)] = start + cell.delay
    return arrival


def critical_path_delay(
    netlist: Netlist, library: Optional[TechLibrary] = None
) -> float:
    """Longest input-to-output combinational delay in ps."""
    lib = library or default_library()
    arrival = _arrival_times(netlist, lib)
    return max((arrival.get(out, 0.0) for out in netlist.outputs), default=0.0)


def critical_path(
    netlist: Netlist, library: Optional[TechLibrary] = None
) -> List[int]:
    """Signal addresses along one critical path, input end first."""
    lib = library or default_library()
    arrival = _arrival_times(netlist, lib)
    if not netlist.outputs:
        return []
    end = max(netlist.outputs, key=lambda out: arrival.get(out, 0.0))
    path = [end]
    while path[-1] >= netlist.num_inputs:
        gate = netlist.gates[path[-1] - netlist.num_inputs]
        spec = gate_function(gate.fn)
        srcs = gate.inputs[: spec.arity]
        if not srcs:
            break
        path.append(max(srcs, key=lambda src: arrival.get(src, 0.0)))
    return list(reversed(path))


def pdp(power_uw: float, delay_ps: float) -> float:
    """Power-delay product in fJ (uW * ps = 1e-18 J = aJ; scaled to fJ)."""
    return power_uw * delay_ps * 1e-3


@dataclass(frozen=True)
class TimingPowerSummary:
    """Area / power / delay / PDP of one circuit, as reported in Table I."""

    area: float
    power: PowerReport
    delay: float

    @property
    def pdp(self) -> float:
        return pdp(self.power.total, self.delay)

    @property
    def power_mw(self) -> float:
        """Total power in mW (``power.total`` is uW)."""
        return self.power.total / 1000.0


def characterize(
    netlist: Netlist,
    library: Optional[TechLibrary] = None,
    input_words=None,
    weights=None,
) -> TimingPowerSummary:
    """One-stop electrical characterization of a circuit."""
    from .area import circuit_area

    lib = library or default_library()
    return TimingPowerSummary(
        area=circuit_area(netlist, lib),
        power=circuit_power(netlist, lib, input_words=input_words, weights=weights),
        delay=critical_path_delay(netlist, lib),
    )
