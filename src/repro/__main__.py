"""``python -m repro`` — the CLI without an installed entry point.

Long-running subcommands (``repro serve``) are typically launched as a
subprocess; this module makes that possible from a plain checkout
(``PYTHONPATH=src python -m repro serve ...``) with no packaging step.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
