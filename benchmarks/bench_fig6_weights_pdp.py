"""Fig. 6 — NN weight distributions (top) and PDP vs WMED target (bottom).

Top: prints the distribution of 8-bit quantized weights across all layers
of the trained MLP and LeNet-5, with the paper's two observations
asserted: the SVHN/LeNet distribution is near-normal around zero, and the
MNIST/MLP distribution concentrates most of its mass in a narrow band
around zero.

Bottom: for each WMED target, several independent CGP runs evolve a
multiplier under the network's weight distribution; the relative
power-delay product of the resulting MAC units is reported (the paper's
box plots — repeated-run spread at each level).
"""

import numpy as np
import pytest

from repro.analysis import format_pmf_sparkline, format_table, mac_summary
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.core import (
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
)

PDP_LEVELS = (0.1, 0.5, 2.0)


def _weight_stats(setup):
    dist = setup.weight_dist
    values = dist.values
    band = dist.pmf[np.abs(values) <= 10].sum()  # ~(-0.08, 0.08) scaled
    return band


def test_fig6_weight_distributions(mnist_setup, svhn_setup, report, benchmark):
    from repro.nn import weight_distribution

    benchmark(weight_distribution, mnist_setup.model.quants)
    text = ["Fig. 6 (top) — quantized weight distributions "
            "(axis -128 ... 0 ... +127)"]
    rows = []
    for setup in (svhn_setup, mnist_setup):
        dist = setup.weight_dist
        rolled = np.roll(dist.pmf, dist.size // 2)
        text.append(f"  {setup.name:18s} |{format_pmf_sparkline(rolled, 64)}|")
        rows.append(
            [
                setup.name,
                100 * setup.float_accuracy,
                100 * setup.quant_accuracy,
                100 * _weight_stats(setup),
            ]
        )
    text.append(
        format_table(
            ["network", "float acc %", "int8 acc %", "mass in |w|<=10 %"],
            rows,
            title="Quantization sanity (paper: <=0.1 % accuracy drop)",
        )
    )
    report("fig6_top", "\n".join(text))

    for setup in (mnist_setup, svhn_setup):
        # Zero-peaked shape: the +-10 code band beats its uniform share
        # (21/256 = 8 %) by a wide margin.
        assert _weight_stats(setup) > 0.2
        # Quantization is nearly free, as the paper reports.
        assert setup.quant_accuracy >= setup.float_accuracy - 0.03


def test_fig6_pdp_boxplot(bench_config, mnist_setup, svhn_setup, report, benchmark):
    seed_net = build_baugh_wooley_multiplier(8)
    params = params_for_netlist(seed_net, extra_columns=20)
    seed = netlist_to_chromosome(seed_net, params)
    benchmark(
        MultiplierFitness(8, mnist_setup.weight_dist).evaluate, seed, 0.001
    )

    rows = []
    reduction_at_deepest = {}
    for setup in (svhn_setup, mnist_setup):
        evaluator = MultiplierFitness(8, setup.weight_dist)
        exact_pdp = mac_summary(
            seed_net, 8, setup.weight_dist, rng=np.random.default_rng(0)
        ).pdp
        for level in PDP_LEVELS:
            rel_pdps = []
            for run in range(bench_config.runs_per_level):
                result = evolve(
                    seed,
                    evaluator,
                    threshold=level / 100.0,
                    config=bench_config.evolution_config,
                    rng=np.random.default_rng(hash((setup.name, level, run)) % 2**32),
                )
                summary = mac_summary(
                    result.best.to_netlist(),
                    8,
                    setup.weight_dist,
                    rng=np.random.default_rng(0),
                )
                rel_pdps.append(100.0 * summary.pdp / exact_pdp)
            rows.append(
                [
                    setup.name,
                    level,
                    min(rel_pdps),
                    float(np.median(rel_pdps)),
                    max(rel_pdps),
                ]
            )
            reduction_at_deepest[setup.name] = min(rel_pdps)
    report(
        "fig6_bottom",
        format_table(
            ["network", "WMED target %", "rel PDP min %", "median %", "max %"],
            rows,
            title=(
                "Fig. 6 (bottom) — relative MAC PDP of evolved multipliers\n"
                f"({bench_config.runs_per_level} runs x "
                f"{bench_config.generations} generations per level; "
                "100 % = exact multiplier MAC)"
            ),
        ),
    )
    # Shape: PDP decreases as the WMED budget loosens, and the deepest
    # level achieves a substantial reduction.
    for setup_name, best in reduction_at_deepest.items():
        assert best < 95.0, f"{setup_name}: no PDP reduction at 2 %"


def test_fig6_mac_summary_kernel(benchmark, mnist_setup):
    """Benchmark one MAC characterization (the per-candidate cost)."""
    net = build_baugh_wooley_multiplier(8)
    summary = benchmark(
        mac_summary, net, 8, mnist_setup.weight_dist,
    )
    assert summary.pdp > 0
