#!/usr/bin/env python
"""Benchmark the observability subsystem: overhead gates + exactness.

Two questions, each answered by measurement and enforced by an exit
code:

* **How much does instrumentation cost?**  The same two workloads —
  evolve throughput (``evaluate_batch`` hot loop) and served request
  latency (hot cached ``GET /v1/best``) — run in subprocesses under
  three environments: metrics disabled (``REPRO_OBS=0``), metrics
  enabled (the default), and metrics + span tracing
  (``REPRO_TRACE=<file>``).  One subprocess performs one repetition,
  and the variants are *interleaved* round-robin (off, on, trace, off,
  on, ...) so slow machine-state drift hits every variant equally; the
  best repetition per variant is compared best-vs-best.  The
  metrics-enabled overhead is gated: ``--max-overhead-pct`` (default
  3 %) in full runs, ``--smoke-max-overhead-pct`` (default 10 %, the
  short smoke budget is noisier) under ``--smoke``.  The tracing
  variant is recorded for information — tracing is opt-in and writes a
  line per span, so it is not held to the 3 % bar.

* **Are fleet-wide counters exact?**  A ``--procs N`` server is put
  under load; afterwards ``GET /metrics`` (scraped from whichever
  worker the kernel picks) must report ``repro_http_requests_total``
  summing to *exactly* the client-side completed-request count, and
  every worker pid must appear in the per-worker gauge.  This gate is
  hard in both smoke and full runs — approximate observability across
  workers is the failure mode the shared slab exists to prevent.

Results go to ``BENCH_obs.json`` at the repo root (``--out``
overrides).

Usage::

    python benchmarks/bench_obs.py            # full
    python benchmarks/bench_obs.py --smoke    # CI: short budget
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, _SRC)

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_obs.json"
)

HOT_URL = "/v1/best?width=3&max_error_percent=5&minimize=area"


# ----------------------------------------------------------------------
# Worker mode: one (workload, environment) measurement per subprocess,
# because REPRO_OBS / REPRO_TRACE bind the registry at import time.
# ----------------------------------------------------------------------
def _worker_evolve(generations: int) -> dict:
    import numpy as np

    from repro.analysis.sweep import make_objective
    from repro.core import EvolutionConfig, evolve, get_component
    from repro.core.seeding import netlist_to_chromosome, params_for_netlist
    from repro.errors.distributions import distribution_from_spec

    width = 3
    dist = distribution_from_spec("uniform", width, False)
    seed_net = get_component("multiplier").build_seed(width, False)
    seed = netlist_to_chromosome(
        seed_net, params_for_netlist(seed_net, extra_columns=20)
    )
    config = EvolutionConfig(generations=generations)
    evaluator = make_objective(width, dist)
    # Warm the JIT-ish costs (kernel load, first compile) out of band.
    evolve(seed, evaluator, threshold=0.0,
           config=EvolutionConfig(generations=20),
           rng=np.random.default_rng(99))
    t0 = time.perf_counter()
    result = evolve(
        seed, evaluator, threshold=0.0, config=config,
        rng=np.random.default_rng(0),
    )
    elapsed = time.perf_counter() - t0
    return {
        "evals_per_s": result.evaluations / elapsed,
        "backend": evaluator.backend,
    }


def _worker_serve(requests: int) -> dict:
    from repro.library import BuildSpec, DesignStore, build_library
    from repro.serve import create_server

    with tempfile.TemporaryDirectory() as td:
        db = os.path.join(td, "lib.sqlite")
        build_library(
            DesignStore(db),
            BuildSpec(widths=(3,), thresholds_percent=(2.0, 5.0),
                      generations=40, seed=3),
            max_workers=1, executor="thread",
        )
        server = create_server(db, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            for _ in range(20):  # warm caches + wire path
                urllib.request.urlopen(base + HOT_URL).read()
            lat = []
            for _ in range(requests):
                t0 = time.perf_counter()
                urllib.request.urlopen(base + HOT_URL).read()
                lat.append(time.perf_counter() - t0)
            return {"p50_us": statistics.median(lat) * 1e6}
        finally:
            server.shutdown()
            server.server_close()


def _spawn_worker(workload: str, env_overrides: dict, args) -> dict:
    env = dict(os.environ)
    env.pop("REPRO_OBS", None)
    env.pop("REPRO_TRACE", None)
    env.update(env_overrides)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, os.path.abspath(__file__), "--worker", workload,
        "--generations", str(args.generations),
        "--requests", str(args.requests),
    ]
    out = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if out.returncode != 0:
        raise RuntimeError(
            f"worker {workload} {env_overrides} failed:\n{out.stderr}"
        )
    return json.loads(out.stdout)


def _overhead_pct(off: float, on: float, higher_is_better: bool) -> float:
    if higher_is_better:
        return 100.0 * (off - on) / off
    return 100.0 * (on - off) / off


def bench_overhead(args) -> dict:
    """Run both workloads under off / on / trace environments.

    Variants are interleaved (off, on, trace, off, on, ...) so machine
    drift is shared; one subprocess = one repetition, best kept.
    """
    variants = {
        "off": {"REPRO_OBS": "0"},
        "on": {},
    }
    trace_file = None
    if not args.no_trace_variant:
        trace_file = tempfile.NamedTemporaryFile(
            suffix=".jsonl", delete=False
        )
        trace_file.close()
        variants["trace"] = {"REPRO_TRACE": trace_file.name}

    def better(workload, a, b):
        if b is None:
            return a
        if workload == "evolve":
            return a if a["evals_per_s"] >= b["evals_per_s"] else b
        return a if a["p50_us"] <= b["p50_us"] else b

    results = {"evolve": {}, "serve": {}}
    for workload in results:
        for rep in range(args.reps):
            for name, env in variants.items():
                run = _spawn_worker(workload, env, args)
                print(f"  {workload}/{name} rep {rep}: {run}")
                results[workload][name] = better(
                    workload, run, results[workload].get(name)
                )
    if trace_file is not None:
        spans = sum(1 for _ in open(trace_file.name))
        results["trace_spans_written"] = spans
        os.unlink(trace_file.name)
    results["overhead_pct"] = {
        "evolve_on": _overhead_pct(
            results["evolve"]["off"]["evals_per_s"],
            results["evolve"]["on"]["evals_per_s"], True),
        "serve_on": _overhead_pct(
            results["serve"]["off"]["p50_us"],
            results["serve"]["on"]["p50_us"], False),
    }
    if "trace" in variants:
        results["overhead_pct"]["evolve_trace"] = _overhead_pct(
            results["evolve"]["off"]["evals_per_s"],
            results["evolve"]["trace"]["evals_per_s"], True)
        results["overhead_pct"]["serve_trace"] = _overhead_pct(
            results["serve"]["off"]["p50_us"],
            results["serve"]["trace"]["p50_us"], False)
    return results


def bench_exactness(args) -> dict:
    """The hard gate: fleet counters equal client-side request counts."""
    from repro.library import BuildSpec, DesignStore, build_library
    from repro.serve import MultiProcessServer

    with tempfile.TemporaryDirectory() as td:
        db = os.path.join(td, "lib.sqlite")
        build_library(
            DesignStore(db),
            BuildSpec(widths=(3,), thresholds_percent=(2.0, 5.0),
                      generations=40, seed=3),
            max_workers=1, executor="thread",
        )
        paths = ("/healthz", HOT_URL, "/v1/stats", "/v1/front?width=3")
        with MultiProcessServer(
            db, port=0, procs=args.procs, quiet=True
        ) as mps:
            base = f"http://127.0.0.1:{mps.port}"
            completed = 0
            for i in range(args.load_requests):
                with urllib.request.urlopen(base + paths[i % len(paths)]) as r:
                    assert r.status == 200
                    r.read()
                completed += 1
            exact = False
            total = -1
            for attempt in range(40):
                with urllib.request.urlopen(base + "/metrics") as r:
                    text = r.read().decode("utf-8")
                total = sum(
                    int(float(line.rsplit(" ", 1)[1]))
                    for line in text.splitlines()
                    if line.startswith("repro_http_requests_total{")
                )
                expected = completed + attempt  # earlier scrapes count
                if total == expected:
                    exact = True
                    break
                time.sleep(0.05)
            worker_pids = sorted(
                int(float(line.rsplit(" ", 1)[1]))
                for line in text.splitlines()
                if line.startswith("repro_worker_pid{")
            )
            return {
                "procs": args.procs,
                "client_completed": expected,
                "metrics_total": total,
                "exact": exact,
                "worker_pids_visible": worker_pids == sorted(mps.pids),
            }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=DEFAULT_OUT)
    ap.add_argument("--smoke", action="store_true",
                    help="short budget for CI (looser overhead gate)")
    ap.add_argument("--worker", choices=("evolve", "serve"),
                    help="internal: run one workload and print JSON")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--generations", type=int, default=None)
    ap.add_argument("--requests", type=int, default=None)
    ap.add_argument("--procs", type=int, default=None,
                    help="worker count for the exactness gate")
    ap.add_argument("--load-requests", type=int, default=None)
    ap.add_argument("--max-overhead-pct", type=float, default=3.0)
    ap.add_argument("--smoke-max-overhead-pct", type=float, default=10.0)
    ap.add_argument("--no-trace-variant", action="store_true")
    args = ap.parse_args(argv)

    if args.worker:
        if args.worker == "evolve":
            print(json.dumps(_worker_evolve(args.generations or 300)))
        else:
            print(json.dumps(_worker_serve(args.requests or 400)))
        return 0

    if args.smoke:
        args.reps = args.reps or 3
        args.generations = args.generations or 150
        args.requests = args.requests or 150
        args.procs = args.procs or 2
        args.load_requests = args.load_requests or 60
        gate = args.smoke_max_overhead_pct
    else:
        args.reps = args.reps or 5
        args.generations = args.generations or 1000
        args.requests = args.requests or 800
        args.procs = args.procs or 4
        args.load_requests = args.load_requests or 400
        gate = args.max_overhead_pct

    print("== instrumentation overhead (subprocess variants) ==")
    overhead = bench_overhead(args)
    print("== fleet exactness under --procs", args.procs, "==")
    exactness = bench_exactness(args)
    print(f"  {exactness}")

    record = {
        "bench": "obs",
        "smoke": args.smoke,
        "gate_max_overhead_pct": gate,
        "overhead": overhead,
        "exactness": exactness,
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    failures = []
    for key in ("evolve_on", "serve_on"):
        pct = overhead["overhead_pct"][key]
        print(f"  {key} overhead: {pct:+.2f}% (gate < {gate}%)")
        if pct > gate:
            failures.append(f"{key} overhead {pct:.2f}% exceeds {gate}%")
    if not exactness["exact"]:
        failures.append(
            f"fleet counter {exactness['metrics_total']} != "
            f"client-completed {exactness['client_completed']}"
        )
    if not exactness["worker_pids_visible"]:
        failures.append("not every worker pid visible in one scrape")
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
