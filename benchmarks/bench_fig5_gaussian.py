"""Fig. 5 — PSNR vs power of approximate Gaussian image filters.

Takes the multipliers evolved in the Fig. 3 flow (no filter-specific
re-design, exactly as the paper stresses), drops each into the 3x3
integer Gaussian filter, and measures average PSNR over 25 noisy
synthetic images against the power of the complete filter datapath.

Shape to verify: D2-evolved multipliers give the best PSNR/power
trade-off — the Gaussian kernel's coefficients are small values, which is
where D2 demands accuracy.
"""

import numpy as np
import pytest

from repro.analysis import format_table, pareto_points
from repro.errors import table_as_matrix
from repro.imaging import (
    add_gaussian_noise,
    average_psnr,
    estimate_filter_power,
    filter_image,
    filter_image_lut,
    standard_image_suite,
)

NOISE_SIGMA = 12.0


@pytest.fixture(scope="module")
def image_set():
    images = standard_image_suite(25, size=64)
    rng = np.random.default_rng(55)
    noisy = [add_gaussian_noise(im, NOISE_SIGMA, rng) for im in images]
    reference = [filter_image(im) for im in noisy]
    return noisy, reference


def test_fig5_psnr_vs_power(cs1_fronts, image_set, report, benchmark):
    noisy, reference = image_set
    benchmark(average_psnr, reference[:5], [n[1:-1, 1:-1] for n in noisy[:5]])
    rows = []
    series = {}
    for name, front in cs1_fronts.items():
        for point in front:
            lut = table_as_matrix(point.table, 8)
            filtered = [filter_image_lut(im, lut) for im in noisy]
            quality = average_psnr(reference, filtered)
            power = estimate_filter_power(point.netlist) / 1000.0
            rows.append([point.source, point.threshold_percent, power, quality])
            series.setdefault(name, []).append((power, quality))

    text = format_table(
        ["series", "WMED target %", "filter power mW", "avg PSNR dB"],
        rows,
        title="Fig. 5 — approximate Gaussian filters "
        "(PSNR vs exact-filter output, 25 images)",
    )

    # Shape check: at the deepest approximation level, the D2-evolved
    # filter must beat the D1- and Du-evolved ones on PSNR (it protects
    # the small coefficient values the kernel actually uses).
    last = {name: series[name][-1] for name in series}
    verdict = format_table(
        ["series", "power mW", "PSNR dB"],
        [[name, p, q] for name, (p, q) in last.items()],
        title="Deepest-target comparison (D2 expected on top for PSNR)",
    )
    report("fig5", text + "\n\n" + verdict)

    assert last["D2"][1] >= last["D1"][1] - 0.5, (
        "D2-evolved filter should not trail D1's at the deep target"
    )


def test_fig5_filter_kernel(benchmark, cs1_fronts, image_set):
    """Benchmark one LUT-backed filtering pass over a 64x64 image."""
    noisy, _ = image_set
    lut = table_as_matrix(cs1_fronts["D2"][0].table, 8)
    out = benchmark(filter_image_lut, noisy[0], lut)
    assert out.shape == (62, 62)
