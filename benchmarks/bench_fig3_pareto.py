"""Fig. 3 — power vs WMED trade-offs of evolved vs conventional multipliers.

For each of the three panels (WMED under D1, D2, Du) the benchmark prints
every multiplier's (WMED %, power mW) pair: the three proposed sweeps
(evolved under D1 / D2 / Du, cross-evaluated under the panel's metric)
against the truncated and broken-array baselines.

Shape to verify against the paper: in the D1 panel the D1-evolved series
dominates (lowest power at equal WMED); same for D2; in the Du panel the
Du-evolved series wins; the baselines trail everywhere.
"""

import numpy as np
import pytest

from repro.analysis import characterize_multiplier, format_table, pareto_points
from repro.baselines import (
    build_broken_array_multiplier,
    build_truncated_multiplier,
)
from repro.core import MultiplierFitness, netlist_to_chromosome
from repro.errors import paper_d1, paper_d2, uniform


@pytest.fixture(scope="module")
def baseline_points():
    d1, d2 = paper_d1(8), paper_d2(8)
    du = uniform(8, name="Du")
    dists = [d1, d2, du]
    points = []
    for k in range(0, 9, 2):
        net = build_truncated_multiplier(8, k, signed=False)
        points.append(
            characterize_multiplier(net, 8, dists, source="truncated")
        )
    for vbl in (4, 6, 8, 10):
        net = build_broken_array_multiplier(8, vbl, vbl // 4, signed=False)
        points.append(
            characterize_multiplier(net, 8, dists, source="broken-array")
        )
    return points


def _panel_text(panel: str, fronts, baseline_points) -> str:
    rows = []
    series = {}
    for source_points in list(fronts.values()) + [baseline_points]:
        for p in source_points:
            series.setdefault(p.source, []).append(
                (p.wmed_percent(panel), p.power_mw)
            )
    for source, pts in series.items():
        for wm, power in sorted(pts):
            rows.append([source, wm, power])
    return format_table(
        ["series", f"WMED_{panel} %", "power mW"],
        rows,
        title=f"Fig. 3 panel WMED_{panel}",
    )


def test_fig3_pareto_fronts(cs1_fronts, baseline_points, report, benchmark):
    # Benchmark the front-assembly kernel (the cheap part; the sweeps
    # themselves ran once in the session fixture).
    all_pts = [
        (p.wmed_percent("Du"), p.power_mw)
        for pts in cs1_fronts.values()
        for p in pts
    ]
    benchmark(pareto_points, all_pts)

    text = []
    for panel in ("D1", "D2", "Du"):
        text.append(_panel_text(panel, cs1_fronts, baseline_points))

    # Shape assertions: within each panel, the series evolved *for* that
    # panel's distribution must contribute to the combined Pareto front
    # at least as strongly as any other series.
    verdict_rows = []
    for panel in ("D1", "D2", "Du"):
        own = [
            (p.wmed_percent(panel), p.power_mw) for p in cs1_fronts[panel]
        ]
        others = [
            (p.wmed_percent(panel), p.power_mw)
            for name, pts in cs1_fronts.items()
            if name != panel
            for p in pts
        ] + [(p.wmed_percent(panel), p.power_mw) for p in baseline_points]
        combined_front = pareto_points(own + others)
        own_on_front = sum(1 for p in own if p in combined_front)
        verdict_rows.append([panel, own_on_front, len(combined_front)])
    text.append(
        format_table(
            ["panel", "own-series points on combined front", "front size"],
            verdict_rows,
            title="Dominance check (the panel's own series should place "
            "points on the front)",
        )
    )
    report("fig3", "\n\n".join(text))

    for panel, own_on_front, _ in verdict_rows:
        assert own_on_front >= 1, f"no {panel}-evolved point on {panel} front"


def test_fig3_wmed_evaluation_kernel(benchmark, cs1_fronts):
    """Benchmark the inner-loop cost: one exhaustive WMED evaluation."""
    from repro.circuits.generators import build_array_multiplier

    evaluator = MultiplierFitness(8, paper_d2(8))
    chromosome = netlist_to_chromosome(build_array_multiplier(8))
    result = benchmark(evaluator.evaluate, chromosome, 0.01)
    assert result.wmed == 0.0
