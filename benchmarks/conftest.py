"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Expensive
artifacts — trained networks, evolved multiplier fronts — are produced
once per pytest session and shared, mirroring how the paper reuses "the
multipliers presented in Fig. 3" in later experiments.

Budget knobs (environment variables):

* ``REPRO_BENCH_GENS``   — CGP generations per WMED target (default 2500).
* ``REPRO_BENCH_RUNS``   — repeated CGP runs per box-plot level (default 2).
* ``REPRO_BENCH_TRAIN``  — training-set size per network (default 4000).
* ``REPRO_BENCH_TEST``   — test-set size per network (default 800).

The paper used 1-hour / 10^6-iteration runs repeated 10-25 times; these
defaults reproduce the qualitative shape in minutes.  EXPERIMENTS.md
records the budget used for the archived results.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis import DesignPoint, evolve_front
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.core import EvolutionConfig
from repro.errors import Distribution, uniform
from repro.nn import (
    QuantizedModel,
    accuracy,
    build_lenet5,
    build_mlp,
    mnist_like,
    svhn_like,
    train,
    weight_distribution,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass(frozen=True)
class BenchConfig:
    generations: int
    runs_per_level: int
    train_size: int
    test_size: int

    @property
    def evolution_config(self) -> EvolutionConfig:
        return EvolutionConfig(generations=self.generations)


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    return BenchConfig(
        generations=_env_int("REPRO_BENCH_GENS", 2500),
        runs_per_level=_env_int("REPRO_BENCH_RUNS", 2),
        train_size=_env_int("REPRO_BENCH_TRAIN", 4000),
        test_size=_env_int("REPRO_BENCH_TEST", 800),
    )


@pytest.fixture(scope="session")
def report():
    """Write a report block to the real stdout and archive it to a file.

    pytest captures normal prints; benchmark tables must reach the
    console (and ``bench_output.txt``) regardless, so this writes through
    ``sys.__stdout__`` and mirrors everything under
    ``benchmarks/results/``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    written = set()

    def _report(name: str, text: str) -> None:
        block = f"\n{text}\n"
        sys.__stdout__.write(block)
        sys.__stdout__.flush()
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        mode = "a" if name in written else "w"
        written.add(name)
        with open(path, mode) as fh:
            fh.write(block)

    return _report


# ----------------------------------------------------------------------
# Trained networks (Case Study 2 substrate)
# ----------------------------------------------------------------------
@dataclass
class NetworkSetup:
    """One trained + quantized classifier and its data."""

    name: str
    model: QuantizedModel
    weight_dist: Distribution
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    float_accuracy: float
    quant_accuracy: float


@pytest.fixture(scope="session")
def mnist_setup(bench_config) -> NetworkSetup:
    """The paper's MLP-300 on the MNIST-like task."""
    rng = np.random.default_rng(2019)
    n_train, n_test = bench_config.train_size, bench_config.test_size
    x, y = mnist_like(n_train + n_test, rng)
    x = x.reshape(len(x), -1)
    train_x, train_y = x[:n_train], y[:n_train]
    test_x, test_y = x[n_train:], y[n_train:]
    network = build_mlp(rng=np.random.default_rng(1))
    train(network, train_x, train_y, epochs=8, lr=0.1, lr_decay=0.9, rng=rng)
    model = QuantizedModel(network, train_x[:256])
    return NetworkSetup(
        name="MLP/MNIST-like",
        model=model,
        weight_dist=weight_distribution(model.quants, name="Dmlp"),
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        float_accuracy=accuracy(network, test_x, test_y),
        quant_accuracy=model.accuracy(test_x, test_y),
    )


@pytest.fixture(scope="session")
def svhn_setup(bench_config) -> NetworkSetup:
    """The paper's LeNet-5 variant on the SVHN-like task."""
    rng = np.random.default_rng(2020)
    n_train = bench_config.train_size
    n_test = max(200, bench_config.test_size // 2)
    x, y = svhn_like(n_train + n_test, rng)
    train_x, train_y = x[:n_train], y[:n_train]
    test_x, test_y = x[n_train:], y[n_train:]
    network = build_lenet5(rng=np.random.default_rng(2))
    train(
        network, train_x, train_y,
        epochs=8, lr=0.06, lr_decay=0.9, batch_size=64, rng=rng,
    )
    model = QuantizedModel(network, train_x[:256])
    return NetworkSetup(
        name="LeNet-5/SVHN-like",
        model=model,
        weight_dist=weight_distribution(model.quants, name="Dlenet"),
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        float_accuracy=accuracy(network, test_x, test_y),
        quant_accuracy=model.accuracy(test_x, test_y),
    )


# ----------------------------------------------------------------------
# Evolved multipliers (shared by Fig. 6 / Fig. 7 / Table I)
# ----------------------------------------------------------------------
#: WMED levels (percent) used for the NN case study at benchmark scale —
#: a subset of the paper's Table I grid spanning mild to destructive.
NN_WMED_LEVELS = (0.1, 0.5, 2.0, 10.0)


def _evolve_nn_front(
    dist: Distribution, config: BenchConfig, seed_value: int
) -> List[DesignPoint]:
    seed = build_baugh_wooley_multiplier(8)
    return evolve_front(
        seed,
        8,
        design_dist=dist,
        thresholds_percent=list(NN_WMED_LEVELS),
        eval_dists=[dist, uniform(8, signed=True)],
        config=config.evolution_config,
        rng=np.random.default_rng(seed_value),
    )


@pytest.fixture(scope="session")
def mnist_front(bench_config, mnist_setup) -> List[DesignPoint]:
    """Multipliers evolved for the MLP's weight distribution."""
    return _evolve_nn_front(mnist_setup.weight_dist, bench_config, 301)


@pytest.fixture(scope="session")
def svhn_front(bench_config, svhn_setup) -> List[DesignPoint]:
    """Multipliers evolved for the LeNet's weight distribution."""
    return _evolve_nn_front(svhn_setup.weight_dist, bench_config, 302)


# ----------------------------------------------------------------------
# Case Study 1 fronts (shared by Fig. 3 / Fig. 4 / Fig. 5)
# ----------------------------------------------------------------------
#: WMED targets (percent) for the synthetic-distribution sweeps — a
#: subset of the paper's 14 levels spanning four decades.
CS1_WMED_LEVELS = (0.01, 0.1, 0.5, 2.0)


@pytest.fixture(scope="session")
def cs1_fronts(bench_config) -> Dict[str, List[DesignPoint]]:
    """8-bit unsigned multipliers evolved under D1, D2 and Du.

    Returns a mapping ``{"D1": [...], "D2": [...], "Du": [...]}``; every
    design point is cross-evaluated under all three WMED metrics, exactly
    as in the paper's Fig. 3.
    """
    from repro.circuits.generators import build_array_multiplier
    from repro.errors import paper_d1, paper_d2

    d1, d2 = paper_d1(8), paper_d2(8)
    du = uniform(8, name="Du")
    dists = [d1, d2, du]
    seed = build_array_multiplier(8)
    fronts: Dict[str, List[DesignPoint]] = {}
    for idx, dist in enumerate(dists):
        fronts[dist.name] = evolve_front(
            seed,
            8,
            design_dist=dist,
            thresholds_percent=list(CS1_WMED_LEVELS),
            eval_dists=dists,
            config=bench_config.evolution_config,
            rng=np.random.default_rng(400 + idx),
        )
    return fronts
