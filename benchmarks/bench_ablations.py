"""Ablations of the design choices DESIGN.md calls out.

Small-scale (4-bit, seconds per run) so the whole module is cheap:

1. **Distribution weighting** (the paper's contribution itself): evolve
   under a concentrated D vs under Du and cross-evaluate — the
   D-driven circuit must be better *under D* at equal area budget.
2. **Seeding with an exact circuit** vs a random initial chromosome:
   seeding is what makes the constrained search productive.
3. **Error tie-breaking** (our refinement over literal Eq. 1): with
   tie-breaking off, plateau drift pushes WMED toward the budget without
   area gain; with it on, residual WMED at equal area is no worse.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.core import (
    EvolutionConfig,
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
    random_chromosome,
)
from repro.errors import discretized_half_normal, uniform

WIDTH = 4
GENS = 1500
THRESHOLD = 0.02


@pytest.fixture(scope="module")
def setup():
    net = build_baugh_wooley_multiplier(WIDTH)
    params = params_for_netlist(net, extra_columns=15)
    seed = netlist_to_chromosome(net, params)
    d = discretized_half_normal(WIDTH, sigma=2.5, signed=True, name="Dh")
    du = uniform(WIDTH, signed=True)
    return seed, params, d, du


def _run(seed, evaluator, config, rng_seed):
    return evolve(
        seed, evaluator, THRESHOLD, config=config,
        rng=np.random.default_rng(rng_seed),
    )


def test_ablation_distribution_weighting(setup, report, benchmark):
    seed, _params, d, du = setup
    fit_d = MultiplierFitness(WIDTH, d)
    fit_u = MultiplierFitness(WIDTH, du)
    benchmark.pedantic(
        _run, args=(seed, fit_d, EvolutionConfig(generations=50), 0),
        rounds=3, iterations=1,
    )
    cfg = EvolutionConfig(generations=GENS)
    rows = []
    areas = {}
    for name, fit in (("driven by Dh", fit_d), ("driven by Du", fit_u)):
        runs = [_run(seed, fit, cfg, 500 + k) for k in range(3)]
        best = min(runs, key=lambda r: r.best_eval.fitness)
        cross = MultiplierFitness(WIDTH, d).wmed(best.best)
        rows.append(
            [name, best.best_eval.area, 100 * best.best_eval.wmed, 100 * cross]
        )
        areas[name] = best.best_eval.area
    report(
        "ablation_distribution",
        format_table(
            ["search", "area um2", "own WMED %", "WMED_Dh %"],
            rows,
            title="Ablation 1 — distribution weighting "
            f"(threshold {100 * THRESHOLD:g} %, best of 3 runs)",
        ),
    )
    # The Dh-driven search must reach at most the Du-driven area: it has
    # strictly more freedom (it may overspend error on improbable inputs).
    assert areas["driven by Dh"] <= areas["driven by Du"] * 1.05


def test_ablation_seeding(setup, report, benchmark):
    seed, params, d, _du = setup
    fit = MultiplierFitness(WIDTH, d)
    cfg = EvolutionConfig(generations=GENS)
    benchmark.pedantic(
        _run, args=(seed, fit, EvolutionConfig(generations=50), 1),
        rounds=3, iterations=1,
    )
    seeded = _run(seed, fit, cfg, 7)
    random_init = _run(
        random_chromosome(params, np.random.default_rng(8)), fit, cfg, 9
    )
    report(
        "ablation_seeding",
        format_table(
            ["init", "feasible", "area um2", "WMED %"],
            [
                ["exact seed", seeded.feasible, seeded.best_eval.area,
                 100 * seeded.best_eval.wmed],
                ["random", random_init.feasible,
                 random_init.best_eval.area
                 if random_init.feasible else float("nan"),
                 100 * random_init.best_eval.wmed],
            ],
            title="Ablation 2 — seeding with an exact multiplier",
        ),
    )
    assert seeded.feasible
    if random_init.feasible:
        # Even if random init stumbles into feasibility, the seeded run
        # must be at least as good.
        assert seeded.best_eval.fitness <= random_init.best_eval.fitness


def test_ablation_error_tie_break(setup, report, benchmark):
    seed, _params, d, _du = setup
    fit = MultiplierFitness(WIDTH, d)
    benchmark.pedantic(
        _run, args=(seed, fit, EvolutionConfig(generations=50), 2),
        rounds=3, iterations=1,
    )
    with_tb = _run(seed, fit, EvolutionConfig(generations=GENS), 11)
    without = _run(
        seed, fit,
        EvolutionConfig(generations=GENS, tie_break_error=False), 11,
    )
    report(
        "ablation_tiebreak",
        format_table(
            ["acceptance", "area um2", "WMED %"],
            [
                ["area, then WMED", with_tb.best_eval.area,
                 100 * with_tb.best_eval.wmed],
                ["area only (Eq. 1 literal)", without.best_eval.area,
                 100 * without.best_eval.wmed],
            ],
            title="Ablation 3 — lexicographic error tie-breaking",
        ),
    )
    assert with_tb.feasible and without.feasible
    # Tie-breaking must not cost area at this budget.
    assert with_tb.best_eval.area <= without.best_eval.area * 1.10
