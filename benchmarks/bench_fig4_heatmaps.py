"""Fig. 4 — error heat maps of selected evolved multipliers.

Selects, from each Fig. 3 sweep, the design at the same WMED target and
renders its |i*j - M~(i,j)| map over all operand pairs.  The paper's
observation to reproduce: under D1 errors avoid mid-range x (where D1
concentrates), under D2 they avoid small x, and under Du they spread out.
The quantitative counterpart asserted here is the correlation between
per-x error mass and the driving PMF.
"""

import numpy as np

from repro.analysis import (
    error_heatmap,
    error_mass_correlation,
    format_table,
    render_ascii,
)
from repro.errors import paper_d1, paper_d2, uniform

#: Heat maps are drawn for the deepest common target of the sweeps.
_TARGET_INDEX = -1


def test_fig4_heatmaps(cs1_fronts, report, benchmark):
    dists = {"D1": paper_d1(8), "D2": paper_d2(8), "Du": uniform(8, name="Du")}
    benchmark(
        error_mass_correlation, cs1_fronts["D1"][_TARGET_INDEX].table, 8, dists["D1"]
    )
    text = ["Fig. 4 — error heat maps (rows = x operand, dark = low error)"]
    corr_rows = []
    for name, front in cs1_fronts.items():
        point = front[_TARGET_INDEX]
        corr = error_mass_correlation(point.table, 8, dists[name])
        corr_rows.append(
            [name, point.name, point.wmed_percent(name), corr]
        )
        heat = error_heatmap(point.table, 8, signed=False)
        text.append(f"\nMultiplier evolved for {name} "
                    f"(WMED_{name} = {point.wmed_percent(name):.3f} %):")
        text.append(render_ascii(heat, bins=32))
    text.append(
        format_table(
            ["driving dist", "multiplier", "WMED %", "corr(error, D)"],
            corr_rows,
            title="\nError-mass vs distribution correlation "
            "(negative = errors pushed to improbable operands)",
        )
    )
    report("fig4", "\n".join(text))

    # D1/D2-driven designs must not pile error where their D is large.
    for name, _mult, wm, corr in corr_rows:
        if name in ("D1", "D2") and wm > 0:
            assert corr < 0.3, f"{name}: error mass aligned with D (corr={corr})"


def test_fig4_heatmap_kernel(benchmark, cs1_fronts):
    """Benchmark one full-resolution heat-map computation."""
    point = cs1_fronts["D2"][_TARGET_INDEX]
    heat = benchmark(error_heatmap, point.table, 8, False)
    assert heat.shape == (256, 256)
