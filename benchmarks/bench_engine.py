#!/usr/bin/env python
"""Benchmark the compiled evaluation engine against the seed evaluator.

Measures, for one operand width:

* **single-candidate evaluation** — the interpreted
  ``MultiplierFitness`` path vs. the engine with caching disabled (every
  evaluation compiles + simulates + decodes from scratch) and vs. the
  engine's cache-hit path;
* **brood batch dispatch** — a realistic (1 + lambda) brood evaluated
  through ``evaluate_batch`` vs. one ``evaluate`` call per candidate,
  with the OpenMP team enabled and forced serial (``REPRO_OMP=0``),
  asserting all four paths return identical results;
* **end-to-end evolution** — ``evolve()`` wall time and evaluations/s
  under both evaluators with the same RNG seed, asserting the
  ``(wmed, area)`` trajectories are identical (the engine must change
  throughput, never results) and recording the phenotype-cache hit
  rate of the run;
* **sampled wide-operand evolution** — a width-16 multiplier evolved
  under the Monte-Carlo objective (``--eval sampled`` on the CLI): the
  exhaustive space would need 2**32 vectors, so this measures the
  sampled path's evals/s and gates on it completing within
  ``--sampled-max-s`` (the wide-width smoke tripwire).

Results are appended-free-written to ``BENCH_engine.json`` at the repo
root (override with ``--out``) so perf trajectories can be tracked
across commits.  Exits non-zero when trajectories diverge or when
``--min-speedup`` is not met — CI uses this as a loud perf regression
tripwire.

Usage::

    python benchmarks/bench_engine.py                  # full, width 8
    python benchmarks/bench_engine.py --smoke          # CI: width 6, short
    python benchmarks/bench_engine.py --min-speedup 5
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.circuits.generators import build_array_multiplier  # noqa: E402
from repro.core.evolution import EvolutionConfig, evolve  # noqa: E402
from repro.core.fitness import MultiplierFitness  # noqa: E402
from repro.core.seeding import (  # noqa: E402
    netlist_to_chromosome,
    params_for_netlist,
)
from repro.engine import (  # noqa: E402
    CompiledMultiplierFitness,
    native_available,
)
from repro.errors.distributions import uniform  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_engine.json"
)


def _time_ms(fn, reps: int, rounds: int) -> float:
    """Median over ``rounds`` of the mean ms across ``reps`` calls."""
    fn()  # warmup
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - t0) / reps * 1e3)
    return statistics.median(samples)


def bench_single_eval(width: int, reps: int, rounds: int) -> dict:
    net = build_array_multiplier(width)
    params = params_for_netlist(net)
    chrom = netlist_to_chromosome(net, params)
    dist = uniform(width, signed=False)
    threshold = 0.01

    baseline = MultiplierFitness(width, dist)
    engine_cold = CompiledMultiplierFitness(width, dist, cache_entries=0)
    engine_cached = CompiledMultiplierFitness(width, dist)

    def fresh():
        c = chrom.copy()
        c.invalidate_cache()
        return c

    baseline_ms = _time_ms(
        lambda: baseline.evaluate(fresh(), threshold), reps, rounds
    )
    engine_ms = _time_ms(
        lambda: engine_cold.evaluate(fresh(), threshold), reps, rounds
    )
    engine_cached.evaluate(chrom, threshold)  # populate the cache
    cached_ms = _time_ms(
        lambda: engine_cached.evaluate(fresh(), threshold), reps, rounds
    )

    # Equivalence spot check on the measured candidate.
    rb = baseline.evaluate(fresh(), threshold)
    re = engine_cold.evaluate(fresh(), threshold)
    return {
        "width": width,
        "active_gates": len(net.gates),
        "baseline_ms": round(baseline_ms, 4),
        "engine_ms": round(engine_ms, 4),
        "engine_cached_ms": round(cached_ms, 4),
        "speedup": round(baseline_ms / engine_ms, 2),
        "cached_speedup": round(baseline_ms / cached_ms, 2),
        "bit_identical": rb == re,
    }


def bench_brood(width: int, lam: int, reps: int, rounds: int) -> dict:
    """Batched vs per-candidate dispatch on one realistic brood.

    Builds ``lam`` mutants of the exact seed (a fixed RNG, so the brood
    is identical across runs/commits), then times: sequential
    ``evaluate`` per candidate, ``evaluate_batch`` with the OpenMP knob
    forced serial (``REPRO_OMP=0``), and ``evaluate_batch`` under the
    default knob.  Caching is disabled so the numbers measure raw
    dispatch, and all paths are checked for identical results.
    """
    from repro.core.mutation import mutate

    net = build_array_multiplier(width)
    params = params_for_netlist(net, extra_columns=8)
    seed_chrom = netlist_to_chromosome(net, params)
    dist = uniform(width, signed=False)
    threshold = 0.01
    rng = np.random.default_rng(5)
    brood = []
    parent = seed_chrom
    for _ in range(lam):
        parent, _ = mutate(parent, 5, rng)
        brood.append(parent)

    seq_obj = CompiledMultiplierFitness(width, dist, cache_entries=0)
    batch_obj = CompiledMultiplierFitness(width, dist, cache_entries=0)

    def run_seq():
        return [seq_obj.evaluate(c, threshold) for c in brood]

    def run_batch():
        return batch_obj.evaluate_batch(brood, threshold)

    omp_prev = os.environ.get("REPRO_OMP")

    def set_omp(value):
        if value is None:
            os.environ.pop("REPRO_OMP", None)
        else:
            os.environ["REPRO_OMP"] = value

    try:
        seq_ms = _time_ms(run_seq, reps, rounds)
        set_omp("0")
        serial_ms = _time_ms(run_batch, reps, rounds)
        serial_res = run_batch()
        set_omp(None)
        omp_ms = _time_ms(run_batch, reps, rounds)
        omp_res = run_batch()
    finally:
        set_omp(omp_prev)
    identical = run_seq() == serial_res == omp_res

    def evals_per_s(ms):
        return round(lam / (ms / 1e3), 1)

    return {
        "width": width,
        "lam": lam,
        "sequential_evals_per_s": evals_per_s(seq_ms),
        "batch_serial_evals_per_s": evals_per_s(serial_ms),
        "batch_omp_evals_per_s": evals_per_s(omp_ms),
        "batch_speedup_vs_sequential": round(seq_ms / serial_ms, 2),
        "bit_identical": identical,
    }


def bench_evolve(width: int, generations: int, seed: int = 7) -> dict:
    net = build_array_multiplier(width)
    params = params_for_netlist(net, extra_columns=8)
    seed_chrom = netlist_to_chromosome(net, params)
    dist = uniform(width, signed=False)
    cfg = EvolutionConfig(generations=generations, history_every=1)
    threshold = 0.01

    runs = {}
    for name, evaluator in (
        ("baseline", MultiplierFitness(width, dist)),
        ("engine", CompiledMultiplierFitness(width, dist)),
    ):
        t0 = time.perf_counter()
        result = evolve(
            seed_chrom, evaluator, threshold, config=cfg,
            rng=np.random.default_rng(seed),
        )
        elapsed = time.perf_counter() - t0
        runs[name] = (result, elapsed, evaluator)

    base_res, base_s, _ = runs["baseline"]
    eng_res, eng_s, eng_eval = runs["engine"]
    identical = (
        base_res.history == eng_res.history
        and base_res.best_eval == eng_res.best_eval
        and np.array_equal(base_res.best.genes, eng_res.best.genes)
    )
    cache = eng_eval.stats()["cache"]
    lookups = cache["hits"] + cache["misses"]
    # Thin the archived trajectory to <= 50 points.
    step = max(1, len(eng_res.history) // 50)
    return {
        "width": width,
        "generations": generations,
        "seed": seed,
        "threshold": threshold,
        "cache_hits": cache["hits"],
        "cache_hit_rate": round(cache["hits"] / lookups, 4) if lookups else 0.0,
        "baseline_s": round(base_s, 3),
        "engine_s": round(eng_s, 3),
        "speedup": round(base_s / eng_s, 2),
        "evaluations": eng_res.evaluations,
        "baseline_evals_per_s": round(base_res.evaluations / base_s, 1),
        "engine_evals_per_s": round(eng_res.evaluations / eng_s, 1),
        "trajectories_identical": identical,
        "final_wmed": eng_res.best_eval.wmed,
        "final_area": eng_res.best_eval.area,
        "engine_stats": eng_eval.stats(),
        "trajectory": [
            {"generation": g, "wmed": w, "area": a}
            for g, w, a in eng_res.history[::step]
        ],
    }


def bench_sampled_evolve(
    width: int, generations: int, samples: int, replicates: int,
    seed: int = 7,
) -> dict:
    """Width-``width`` sampled multiplier evolve: wall time + evals/s.

    Uses the same SeedSequence-derived stimulus for any run of this
    configuration, so the trajectory (and the reported estimate) is a
    deterministic function of the arguments.
    """
    from repro.core.components import COMPONENTS, sampled_component_objective
    from repro.core.objective import SampleSpec
    from repro.engine import CompiledSampledObjective
    from repro.errors.distributions import paper_d2

    dist = paper_d2(width)
    spec = SampleSpec(samples=samples, replicates=replicates, seed=0)
    objective = CompiledSampledObjective(
        sampled_component_objective("multiplier", width, dist, spec)
    )
    seed_chrom = netlist_to_chromosome(
        COMPONENTS["multiplier"].build_seed(width, False)
    )
    cfg = EvolutionConfig(generations=generations)
    threshold = 0.01
    t0 = time.perf_counter()
    result = evolve(
        seed_chrom, objective, threshold,
        config=cfg, rng=np.random.default_rng(seed),
    )
    elapsed = time.perf_counter() - t0
    best = result.best_eval
    return {
        "width": width,
        "generations": generations,
        "samples": samples,
        "replicates": replicates,
        "seed": seed,
        "threshold": threshold,
        "wall_s": round(elapsed, 3),
        "evaluations": result.evaluations,
        "evals_per_s": round(result.evaluations / elapsed, 1),
        "final_error": best.wmed,
        "final_ci": [best.ci_low, best.ci_high],
        "final_area": best.area,
        "feasible": best.wmed <= threshold,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--width", type=int, default=8)
    ap.add_argument("--generations", type=int, default=300)
    ap.add_argument(
        "--lam", type=int, default=4,
        help="brood size for the batch-dispatch section",
    )
    ap.add_argument("--reps", type=int, default=30)
    ap.add_argument("--rounds", type=int, default=5)
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI preset: width 6, 30 generations, reduced reps",
    )
    ap.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero if the single-eval speedup falls below this",
    )
    ap.add_argument(
        "--require-backend", choices=("native", "numpy"), default=None,
        help="exit non-zero unless this backend is actually in use "
        "(CI uses it so a silently broken C build cannot pass as native)",
    )
    ap.add_argument(
        "--sampled-generations", type=int, default=120,
        help="generations for the width-16 sampled-evolve section",
    )
    ap.add_argument("--sampled-samples", type=int, default=512)
    ap.add_argument("--sampled-replicates", type=int, default=4)
    ap.add_argument(
        "--sampled-max-s", type=float, default=300.0,
        help="exit non-zero if the sampled evolve takes longer than this "
        "(the wide-operand path must complete in minutes, not hours)",
    )
    ap.add_argument("--out", default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    if args.smoke:
        args.width = min(args.width, 6)
        args.generations = min(args.generations, 30)
        args.reps = min(args.reps, 10)
        args.rounds = min(args.rounds, 3)
        args.sampled_generations = min(args.sampled_generations, 30)
        args.sampled_max_s = min(args.sampled_max_s, 120.0)
        if args.min_speedup is None:
            args.min_speedup = 2.0

    backend = "native" if native_available() else "numpy"
    print(f"engine backend: {backend}")
    if args.require_backend and backend != args.require_backend:
        print(
            f"FAIL: engine backend is {backend}, "
            f"required {args.require_backend}"
        )
        return 1
    single = bench_single_eval(args.width, args.reps, args.rounds)
    print(
        f"single eval w={single['width']}: baseline {single['baseline_ms']} ms"
        f" | engine {single['engine_ms']} ms ({single['speedup']}x)"
        f" | cached {single['engine_cached_ms']} ms"
        f" ({single['cached_speedup']}x)"
    )
    brood = bench_brood(args.width, args.lam, args.reps, args.rounds)
    print(
        f"brood lam={brood['lam']}:"
        f" sequential {brood['sequential_evals_per_s']} evals/s"
        f" | batch serial {brood['batch_serial_evals_per_s']}"
        f" | batch omp {brood['batch_omp_evals_per_s']}"
        f" | identical: {brood['bit_identical']}"
    )
    evo = bench_evolve(args.width, args.generations)
    print(
        f"evolve {evo['generations']} gens: baseline {evo['baseline_s']} s"
        f" | engine {evo['engine_s']} s ({evo['speedup']}x)"
        f" | {evo['engine_evals_per_s']} evals/s"
        f" | cache hit rate {evo['cache_hit_rate']}"
        f" | trajectories identical: {evo['trajectories_identical']}"
    )

    sampled = bench_sampled_evolve(
        16, args.sampled_generations,
        args.sampled_samples, args.sampled_replicates,
    )
    print(
        f"sampled evolve w={sampled['width']}"
        f" ({sampled['samples']}x{sampled['replicates']} samples):"
        f" {sampled['wall_s']} s"
        f" | {sampled['evals_per_s']} evals/s"
        f" | error {100 * sampled['final_error']:.4f}%"
        f" ci95 [{100 * sampled['final_ci'][0]:.4f}%,"
        f" {100 * sampled['final_ci'][1]:.4f}%]"
    )

    record = {
        "benchmark": "engine",
        "config": {
            "width": args.width,
            "generations": args.generations,
            "lam": args.lam,
            "smoke": args.smoke,
            "repro_omp": os.environ.get("REPRO_OMP", ""),
        },
        "backend": backend,
        "single_eval": single,
        "brood_batch": brood,
        "evolve": evo,
        "sampled_evolve": sampled,
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
    print(f"wrote {out}")

    if (
        not single["bit_identical"]
        or not brood["bit_identical"]
        or not evo["trajectories_identical"]
    ):
        print("FAIL: engine results diverge from the reference evaluator")
        return 1
    if args.min_speedup is not None and single["speedup"] < args.min_speedup:
        print(
            f"FAIL: single-eval speedup {single['speedup']}x below "
            f"required {args.min_speedup}x"
        )
        return 1
    if sampled["wall_s"] > args.sampled_max_s:
        print(
            f"FAIL: sampled evolve took {sampled['wall_s']} s, "
            f"over the {args.sampled_max_s} s gate"
        )
        return 1
    if not args.smoke and evo["cache_hits"] == 0:
        # Regression tripwire for the eval-cache miss storm: at the
        # full benchmark configuration neutral drift must revisit at
        # least one phenotype (deterministic for a fixed seed).
        print("FAIL: evolve run produced zero phenotype-cache hits")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
