"""Table I — WMED level vs accuracy before/after fine-tuning + MAC costs.

For each WMED level the evolved multiplier is integrated into the
quantized network; the table reports initial accuracy, accuracy after
fine-tuning around the approximation, and the MAC unit's PDP / power /
area — everything relative to the exact-int8 reference, matching the
paper's Table I layout.

Shape to verify: accuracy is nearly unchanged for small WMED; it
collapses at the 10 % level; fine-tuning recovers most of the collapse;
PDP/power/area reductions grow monotonically with the WMED budget.
"""

import copy

import numpy as np
import pytest

from repro.analysis import format_table, mac_summary
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.errors import table_as_matrix
from repro.nn import finetune

FINETUNE_STEPS = {"mnist": 120, "svhn": 60}
FINETUNE_BATCH = {"mnist": 32, "svhn": 16}
# The convolutional model needs a gentler rate: a hot fine-tune overwrites
# the well-trained weights faster than the approximate-gradient signal can
# rebuild them.
FINETUNE_LR = {"mnist": 0.02, "svhn": 0.005}


def _table1_rows(setup, front, which):
    exact_mac = mac_summary(
        build_baugh_wooley_multiplier(8), 8, setup.weight_dist,
        rng=np.random.default_rng(0),
    )
    base_acc = setup.quant_accuracy
    rows = []
    for point in front:
        lut = table_as_matrix(point.table, 8)
        initial = setup.model.accuracy(setup.test_x, setup.test_y, lut=lut)

        tuned_model = copy.deepcopy(setup.model)
        finetune(
            tuned_model,
            setup.train_x,
            setup.train_y,
            lut=lut,
            steps=FINETUNE_STEPS[which],
            batch_size=FINETUNE_BATCH[which],
            lr=FINETUNE_LR[which],
            rng=np.random.default_rng(13),
        )
        tuned = tuned_model.accuracy(setup.test_x, setup.test_y, lut=lut)

        mac = mac_summary(
            point.netlist, 8, setup.weight_dist, rng=np.random.default_rng(0)
        )
        rows.append(
            [
                point.threshold_percent,
                100.0 * (initial - base_acc),
                100.0 * (tuned - base_acc),
                100.0 * (mac.pdp / exact_mac.pdp - 1.0),
                100.0 * (mac.power.total / exact_mac.power.total - 1.0),
                100.0 * (mac.area / exact_mac.area - 1.0),
            ]
        )
    return rows


@pytest.mark.parametrize("which", ["svhn", "mnist"])
def test_table1_finetuning(
    which, mnist_setup, svhn_setup, mnist_front, svhn_front, report, benchmark
):
    setup = mnist_setup if which == "mnist" else svhn_setup
    front = mnist_front if which == "mnist" else svhn_front
    benchmark.pedantic(
        mac_summary,
        args=(front[0].netlist, 8, setup.weight_dist),
        rounds=3,
        iterations=1,
    )
    rows = _table1_rows(setup, front, which)
    report(
        f"table1_{which}",
        format_table(
            [
                "WMED level %",
                "initial acc delta %",
                "finetuned acc delta %",
                "PDP %",
                "power %",
                "area %",
            ],
            rows,
            title=(
                f"Table I — {setup.name} "
                "(deltas vs exact-int8 reference; negative cost = reduction)"
            ),
        ),
    )

    # Shape assertions (the paper's qualitative claims):
    # 1. Costs shrink as the WMED budget grows.
    pdps = [r[3] for r in rows]
    assert pdps[-1] < pdps[0] + 1e-9
    assert pdps[-1] < -10.0, "deep approximation must cut MAC PDP"
    # 2. Mild approximation is nearly accuracy-neutral.
    assert rows[0][1] > -10.0
    # 3. Fine-tuning recovers accuracy where a gradient signal survives
    #    (rows with a real but non-destroyed drop).  At the 10 % level the
    #    multiplier output is nearly constant, so — unlike the paper's
    #    10-epoch/60k-image regime — a short fine-tune cannot resurrect
    #    it; we assert recovery on the intermediate rows instead.
    recoverable = [r for r in rows if -60.0 <= r[1] <= -3.0]
    if recoverable:
        assert any(r[2] > r[1] + 1.0 for r in recoverable), (
            "fine-tuning recovered no accuracy on any recoverable level"
        )
    # 4. Fine-tuning never catastrophically damages a mildly-approximate
    #    model.
    for r in rows:
        if r[1] > -10.0:
            assert r[2] > r[1] - 12.0


def test_table1_finetune_kernel(benchmark, mnist_setup, mnist_front):
    """Benchmark one fine-tuning step under the approximate datapath."""
    lut = table_as_matrix(mnist_front[1].table, 8)
    model = copy.deepcopy(mnist_setup.model)

    def one_step():
        finetune(
            model,
            mnist_setup.train_x,
            mnist_setup.train_y,
            lut=lut,
            steps=1,
            batch_size=32,
            rng=np.random.default_rng(0),
        )

    benchmark.pedantic(one_step, rounds=3, iterations=1)
