"""Fig. 2 — the synthetic probability mass functions D1 and D2.

Regenerates the two distributions (normal centered mid-range;
half-normal decaying from zero), prints their sparklines and key
statistics, and benchmarks PMF construction.
"""

import numpy as np

from repro.analysis import format_pmf_sparkline, format_table
from repro.errors import paper_d1, paper_d2, uniform


def _fig2_text() -> str:
    d1, d2, du = paper_d1(8), paper_d2(8), uniform(8, name="Du")
    lines = ["Fig. 2 — operand distributions over x in [0, 255]"]
    for d in (d1, d2, du):
        lines.append(f"  {d.name:3s} |{format_pmf_sparkline(d.pmf, bins=64)}|")
    rows = [
        [d.name, d.mean(), float(np.argmax(d.pmf)), d.entropy()]
        for d in (d1, d2, du)
    ]
    lines.append(
        format_table(
            ["dist", "mean", "mode", "entropy bits"], rows,
        )
    )
    lines.append(
        "Shape check: D1 peaks near 127 (normal), D2 peaks at 0 "
        "(half-normal), Du is flat."
    )
    return "\n".join(lines)


def test_fig2_distributions(benchmark, report):
    report("fig2", _fig2_text())
    d1 = benchmark(paper_d1, 8)
    assert abs(int(np.argmax(d1.pmf)) - 127) <= 1
    assert int(np.argmax(paper_d2(8).pmf)) == 0
