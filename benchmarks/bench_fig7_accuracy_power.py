"""Fig. 7 — classification accuracy vs relative power of MAC units.

Every multiplier — the proposed WMED-evolved set plus the conventional
shelf (truncated, broken-array, zero-guarded) — is integrated into the
quantized network as a product LUT; accuracy is measured on the test set
relative to the exact-int8 model and plotted against the MAC's relative
power.

Shape to verify against the paper: the proposed series dominates — at
comparable power it loses (much) less accuracy than the general-purpose
baselines.
"""

from typing import List

import numpy as np
import pytest

from repro.analysis import format_table, mac_summary, pareto_points
from repro.baselines import (
    build_broken_array_multiplier,
    build_truncated_multiplier,
    build_zero_guard_multiplier,
)
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.circuits.simulator import truth_table
from repro.errors import table_as_matrix


def _baseline_nets():
    nets = []
    for k in (2, 4, 6, 7):
        nets.append(("truncated", build_truncated_multiplier(8, k, signed=True)))
    for vbl, hbl in ((6, 2), (8, 2), (10, 4)):
        nets.append(
            ("broken-array",
             build_broken_array_multiplier(8, vbl, hbl, signed=True))
        )
    for k in (5, 6, 7):
        nets.append(("zero-guard", build_zero_guard_multiplier(8, k, signed=True)))
    return nets


def _evaluate_network(setup, front, rng) -> List[list]:
    exact_mac = mac_summary(
        build_baugh_wooley_multiplier(8), 8, setup.weight_dist,
        rng=np.random.default_rng(0),
    )
    base_acc = setup.quant_accuracy
    rows = []
    for point in front:
        lut = table_as_matrix(point.table, 8)
        acc = setup.model.accuracy(setup.test_x, setup.test_y, lut=lut)
        mac = mac_summary(
            point.netlist, 8, setup.weight_dist, rng=np.random.default_rng(0)
        )
        rows.append(
            ["proposed", point.name,
             100.0 * mac.power.total / exact_mac.power.total,
             100.0 * (acc - base_acc)]
        )
    for family, net in _baseline_nets():
        lut = table_as_matrix(truth_table(net, signed=True), 8)
        acc = setup.model.accuracy(setup.test_x, setup.test_y, lut=lut)
        mac = mac_summary(
            net, 8, setup.weight_dist, rng=np.random.default_rng(0)
        )
        rows.append(
            [family, net.name,
             100.0 * mac.power.total / exact_mac.power.total,
             100.0 * (acc - base_acc)]
        )
    return rows


def _dominance_check(rows) -> bool:
    """True when some proposed point beats every cheaper-or-equal baseline."""
    proposed = [(r[2], -r[3]) for r in rows if r[0] == "proposed"]
    baseline = [(r[2], -r[3]) for r in rows if r[0] != "proposed"]
    front = pareto_points(proposed + baseline)
    return any(p in front for p in proposed)


@pytest.mark.parametrize("which", ["mnist", "svhn"])
def test_fig7_accuracy_vs_power(
    which, mnist_setup, svhn_setup, mnist_front, svhn_front, report, benchmark
):
    setup = mnist_setup if which == "mnist" else svhn_setup
    front = mnist_front if which == "mnist" else svhn_front
    lut = table_as_matrix(front[0].table, 8)
    benchmark.pedantic(
        setup.model.accuracy,
        args=(setup.test_x[:16], setup.test_y[:16]),
        kwargs={"lut": lut},
        rounds=3,
        iterations=1,
    )
    rows = _evaluate_network(setup, front, np.random.default_rng(8))
    rows.sort(key=lambda r: r[2])
    report(
        f"fig7_{which}",
        format_table(
            ["series", "multiplier", "rel MAC power %", "accuracy delta %"],
            rows,
            title=(
                f"Fig. 7 — {setup.name}: accuracy vs relative MAC power\n"
                "(accuracy relative to the exact-int8 model; 0 = no loss)"
            ),
        ),
    )
    assert _dominance_check(rows), "no proposed point on the accuracy/power front"
    # The mildest proposed multiplier must be nearly accuracy-neutral.
    mild = [r for r in rows if r[0] == "proposed"]
    best_delta = max(r[3] for r in mild)
    assert best_delta > -10.0


def test_fig7_lut_inference_kernel(benchmark, mnist_setup, mnist_front):
    """Benchmark one LUT-backed forward pass (64 images, MLP)."""
    lut = table_as_matrix(mnist_front[0].table, 8)
    x = mnist_setup.test_x[:64]

    def run():
        return mnist_setup.model.predict(x, lut=lut)

    logits = benchmark(run)
    assert logits.shape == (64, 10)
