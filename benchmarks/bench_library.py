#!/usr/bin/env python
"""Benchmark the design-library subsystem: build throughput + query latency.

Measures, over a small multiplier+adder grid at width 4:

* **build throughput** — grid cells evolved/characterized/admitted per
  second through :func:`repro.library.build_library` (one process, the
  engine's default backend);
* **resume** — a second identical build must be a no-op (0 cells run);
* **query latency** — median microseconds per
  :func:`repro.library.query.best` call against the built store, the
  operation a serving layer issues per user request;
* **integrity** — the best design re-characterizes bit-for-bit from its
  stored chromosome text;
* **sharded build scaling** — the same grid built as 1, 2 and 4
  ``--shard i/n`` slices in parallel OS processes, each into its own
  store, then unioned with :func:`repro.library.merge_stores`.  The
  merged store must be **row-identical** to the single-process build
  (every column of every design row) — that equivalence is a hard gate,
  exactly like the resume no-op gate.  Merge throughput (rows offered
  per second) is recorded alongside the build speedups.

Results go to ``BENCH_library.json`` at the repo root (``--out``
overrides).  Exits non-zero when any integrity check fails or when
``--max-query-us`` is exceeded — CI smoke-runs this exactly like
``bench_engine.py``.

Usage::

    python benchmarks/bench_library.py            # full, 300 generations
    python benchmarks/bench_library.py --smoke    # CI: short budget
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core.serialization import chromosome_from_string  # noqa: E402
from repro.engine import native_available  # noqa: E402
from repro.errors.distributions import distribution_from_spec  # noqa: E402
from repro.library import (  # noqa: E402
    BuildSpec,
    DesignStore,
    best,
    build_library,
    characterize_record,
    front,
    merge_stores,
)

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_library.json"
)


def bench_build(spec: BuildSpec, db_path: str) -> dict:
    store = DesignStore(db_path)
    t0 = time.perf_counter()
    report = build_library(store, spec, max_workers=1, executor="thread")
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    resumed = build_library(store, spec, max_workers=1, executor="thread")
    resume_s = time.perf_counter() - t0
    return {
        "cells": report.cells_run,
        "designs_added": report.added,
        "build_s": round(build_s, 3),
        "cells_per_s": round(report.cells_run / build_s, 2),
        "designs_per_s": round(report.added / build_s, 2),
        "resume_cells_run": resumed.cells_run,
        "resume_s": round(resume_s, 4),
    }


def bench_query(db_path: str, width: int, reps: int, rounds: int) -> dict:
    store = DesignStore(db_path)

    def one_query():
        return best(
            store, "multiplier", width, "wmed",
            max_error_percent=5.0, minimize="area",
        )

    record = one_query()  # warmup + the smoke-gate witness
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            one_query()
        samples.append((time.perf_counter() - t0) / reps * 1e6)
    latency_us = statistics.median(samples)
    curve = front(store, "multiplier", width, "wmed")
    return {
        "queryable": record is not None,
        "best_error_percent": None if record is None else record.error_percent,
        "best_area": None if record is None else record.area,
        "front_points": len(curve),
        "query_us": round(latency_us, 1),
        "queries_per_s": round(1e6 / latency_us, 1),
    }


def _shard_worker(db_path: str, spec: BuildSpec, index: int, count: int) -> None:
    """Build shard ``index``/``count`` of the grid (runs in a fork)."""
    build_library(
        DesignStore(db_path), spec, max_workers=1, executor="thread",
        shard=(index, count),
    )
    os._exit(0)  # skip inherited atexit hooks in the fork


def bench_sharded(spec: BuildSpec, single_db: str, tmp: str) -> dict:
    """Build the grid as 1/2/4 parallel shards, merge, gate bit-identity.

    Returns per-shard-count wall times and speedups plus merge
    throughput, and ``merged_identical`` — whether every merged store
    is row-identical to the single-process build at ``single_db``.
    """
    single_rows = DesignStore(single_db).select()
    ctx = multiprocessing.get_context("fork")
    runs = []
    base_s = None
    for count in (1, 2, 4):
        shard_paths = [
            os.path.join(tmp, f"shard_{count}_{i}.sqlite")
            for i in range(count)
        ]
        t0 = time.perf_counter()
        procs = [
            ctx.Process(target=_shard_worker, args=(path, spec, i, count))
            for i, path in enumerate(shard_paths)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        build_s = time.perf_counter() - t0
        if any(p.exitcode != 0 for p in procs):
            raise RuntimeError(f"a {count}-way shard build failed")
        if base_s is None:
            base_s = build_s
        merged_path = os.path.join(tmp, f"merged_{count}.sqlite")
        t0 = time.perf_counter()
        report = merge_stores(merged_path, shard_paths)
        merge_s = time.perf_counter() - t0
        identical = DesignStore(merged_path).select() == single_rows
        runs.append({
            "shards": count,
            "build_s": round(build_s, 3),
            "speedup": round(base_s / build_s, 2),
            "merge_s": round(merge_s, 4),
            "merge_rows_offered": report.rows_offered,
            "merge_rows_per_s": round(report.rows_offered / merge_s, 1),
            "merged_identical": identical,
        })
    return {
        "runs": runs,
        "merged_identical": all(r["merged_identical"] for r in runs),
    }


def check_integrity(db_path: str, spec: BuildSpec, width: int) -> bool:
    """Stored record == fresh characterization of its chromosome text."""
    store = DesignStore(db_path)
    record = best(store, "multiplier", width, "wmed", minimize="area")
    if record is None:
        return False
    dist = distribution_from_spec(spec.dist_spec(), width, record.signed)
    again = characterize_record(
        chromosome_from_string(record.chromosome),
        record.component, record.width, dist, record.metric,
        threshold_percent=record.threshold_percent, name=record.name,
        seed_key=record.seed_key, generations=record.generations,
        evaluations=record.evaluations,
    )
    return again == record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--width", type=int, default=4)
    ap.add_argument("--generations", type=int, default=300)
    ap.add_argument("--reps", type=int, default=50)
    ap.add_argument("--rounds", type=int, default=5)
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI preset: short search budget, reduced reps",
    )
    ap.add_argument(
        "--max-query-us", type=float, default=None,
        help="exit non-zero if median best() latency exceeds this",
    )
    ap.add_argument("--out", default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    if args.smoke:
        args.generations = min(args.generations, 40)
        args.reps = min(args.reps, 20)
        args.rounds = min(args.rounds, 3)

    spec = BuildSpec(
        components=("multiplier", "adder"),
        metrics=("wmed",),
        widths=(args.width,),
        thresholds_percent=(0.5, 2.0, 5.0),
        dist="uniform",
        signed=False,
        generations=args.generations,
        seed=2024,
    )
    backend = "native" if native_available() else "numpy"
    print(f"engine backend: {backend}")
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "bench.sqlite")
        build = bench_build(spec, db_path)
        print(
            f"build w={args.width}: {build['cells']} cells in "
            f"{build['build_s']} s ({build['designs_per_s']} designs/s)"
            f" | resume ran {build['resume_cells_run']} cells"
        )
        query = bench_query(db_path, args.width, args.reps, args.rounds)
        print(
            f"query: {query['query_us']} us/best() "
            f"({query['queries_per_s']} queries/s), "
            f"front of {query['front_points']}"
        )
        intact = check_integrity(db_path, spec, args.width)
        print(f"stored record re-characterizes bit-for-bit: {intact}")
        sharded = bench_sharded(spec, db_path, tmp)
        for run in sharded["runs"]:
            print(
                f"sharded x{run['shards']}: build {run['build_s']} s "
                f"({run['speedup']}x), merge {run['merge_s']} s "
                f"({run['merge_rows_per_s']} rows/s), "
                f"row-identical: {run['merged_identical']}"
            )

    record = {
        "benchmark": "library",
        "config": {
            "width": args.width,
            "generations": args.generations,
            "smoke": args.smoke,
        },
        "backend": backend,
        "build": build,
        "query": query,
        "recharacterization_identical": intact,
        "sharded": sharded,
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
    print(f"wrote {out}")

    if not query["queryable"]:
        print("FAIL: built store is not queryable")
        return 1
    if build["resume_cells_run"] != 0:
        print("FAIL: identical re-build re-ran cells (resume is broken)")
        return 1
    if not intact:
        print("FAIL: stored record diverges from re-characterization")
        return 1
    if not sharded["merged_identical"]:
        print("FAIL: sharded+merged store diverges from single-process build")
        return 1
    if args.max_query_us is not None and query["query_us"] > args.max_query_us:
        print(
            f"FAIL: query latency {query['query_us']} us above "
            f"{args.max_query_us} us"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
