#!/usr/bin/env python
"""Benchmark the HTTP serving layer: latency, cache effect, scaling.

Builds a small design store, starts a real :class:`repro.serve.server.
DesignServer` on an ephemeral localhost port, and measures over actual
HTTP round trips:

* **cached vs uncached latency** — p50/p99 microseconds per
  ``GET /v1/best``: *uncached* forces a response-cache miss per request
  (a unique ``max_error_percent`` each time, so every request runs the
  full SQLite + JSON path), *cached* repeats one hot query;
* **throughput** — sequential hot requests per second, plus concurrent
  client scaling (1/4/8 clients hammering the hot query);
* **correctness gates** — ``/healthz`` is ok, the served best design
  matches :func:`repro.library.query.best` against the same store, and
  ``/openapi.json`` equals the spec generated from the route table.

Results go to ``BENCH_serve.json`` at the repo root (``--out``
overrides).  Exits non-zero when any gate fails or the cached p50
exceeds ``--max-cached-p50-ms`` (default 1.0 ms — the acceptance
floor); CI smoke-runs this like the other benchmarks.

Usage::

    python benchmarks/bench_serve.py            # full
    python benchmarks/bench_serve.py --smoke    # CI: short budget
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.library import BuildSpec, DesignStore, best, build_library  # noqa: E402
from repro.serve import create_server, record_to_json  # noqa: E402
from repro.serve.openapi import generate_openapi  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_serve.json"
)


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path) as resp:
        return resp.status, resp.read(), dict(resp.headers)


def _percentiles(samples_us):
    ordered = sorted(samples_us)
    return {
        "p50_us": round(statistics.median(ordered), 1),
        "p99_us": round(ordered[min(len(ordered) - 1,
                                    int(0.99 * len(ordered)))], 1),
        "mean_us": round(statistics.fmean(ordered), 1),
    }


def bench_latency(base: str, requests: int) -> dict:
    hot = "/v1/best?width=4&max_error_percent=5&minimize=area"
    _get(base, hot)  # warm the cache (and the connection machinery)

    cached = []
    for _ in range(requests):
        t0 = time.perf_counter()
        status, _, headers = _get(base, hot)
        cached.append((time.perf_counter() - t0) * 1e6)
        assert status == 200
    hot_headers = headers

    uncached = []
    for i in range(requests):
        # A unique budget each round: a distinct validated query = a
        # distinct cache key = a guaranteed miss through SQLite.
        path = f"/v1/best?width=4&max_error_percent={5 + (i + 1) * 1e-6:.7f}"
        t0 = time.perf_counter()
        status, _, headers = _get(base, path)
        uncached.append((time.perf_counter() - t0) * 1e6)
        assert status == 200 and headers.get("X-Cache") == "miss"

    c, u = _percentiles(cached), _percentiles(uncached)
    return {
        "requests": requests,
        "cached": c,
        "uncached": u,
        "cache_speedup_p50": round(u["p50_us"] / c["p50_us"], 2),
        "last_hot_x_cache": hot_headers.get("X-Cache"),
    }


def bench_scaling(base: str, requests: int, clients=(1, 4, 8)) -> dict:
    hot = "/v1/front?width=4"
    _get(base, hot)
    results = {}
    for n in clients:
        per_client = max(1, requests // n)
        errors = []

        def worker():
            try:
                for _ in range(per_client):
                    status, _, _ = _get(base, hot)
                    if status != 200:
                        errors.append(status)
            except Exception as exc:  # noqa: BLE001 - recorded, reraised below
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(n)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        if errors:
            raise RuntimeError(f"client errors at {n} clients: {errors[:3]}")
        results[str(n)] = {
            "requests": per_client * n,
            "requests_per_s": round(per_client * n / elapsed, 1),
        }
    return results


def check_correctness(base: str, db: str) -> dict:
    status, body, _ = _get(base, "/healthz")
    health_ok = status == 200 and json.loads(body)["status"] == "ok"

    status, body, _ = _get(base, "/v1/best?width=4&max_error_percent=5")
    served = json.loads(body)["design"] if status == 200 else None
    local = best(DesignStore(db), "multiplier", 4, "wmed",
                 max_error_percent=5.0, minimize="area")
    best_ok = served is not None and local is not None \
        and served == json.loads(json.dumps(record_to_json(local)))

    status, body, _ = _get(base, "/openapi.json")
    openapi_ok = status == 200 and json.loads(body) == generate_openapi()
    return {
        "health_ok": health_ok,
        "best_matches_query_api": best_ok,
        "openapi_matches_routes": openapi_ok,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--width", type=int, default=4)
    ap.add_argument("--generations", type=int, default=200)
    ap.add_argument("--requests", type=int, default=300)
    ap.add_argument("--workers", type=int, default=8)
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI preset: short search budget, fewer requests",
    )
    ap.add_argument(
        "--max-cached-p50-ms", type=float, default=1.0,
        help="exit non-zero if cached p50 latency exceeds this",
    )
    ap.add_argument("--out", default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    if args.smoke:
        args.generations = min(args.generations, 40)
        args.requests = min(args.requests, 100)

    spec = BuildSpec(
        components=("multiplier",),
        metrics=("wmed",),
        widths=(args.width,),
        thresholds_percent=(0.5, 2.0, 5.0),
        generations=args.generations,
        seed=2024,
    )
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "bench.sqlite")
        build_library(DesignStore(db), spec, max_workers=1, executor="thread")

        server = create_server(db, port=0, workers=args.workers, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            correctness = check_correctness(base, db)
            latency = bench_latency(base, args.requests)
            scaling = bench_scaling(base, args.requests)
        finally:
            server.shutdown()
            server.server_close()

    print(
        f"latency: cached p50 {latency['cached']['p50_us']} us "
        f"(p99 {latency['cached']['p99_us']} us) | uncached p50 "
        f"{latency['uncached']['p50_us']} us | cache speedup "
        f"{latency['cache_speedup_p50']}x"
    )
    for n, r in scaling.items():
        print(f"scaling {n} clients: {r['requests_per_s']} req/s")
    print(f"correctness: {correctness}")

    record = {
        "benchmark": "serve",
        "config": {
            "width": args.width,
            "generations": args.generations,
            "requests": args.requests,
            "workers": args.workers,
            "smoke": args.smoke,
        },
        "latency": latency,
        "scaling": scaling,
        "correctness": correctness,
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
    print(f"wrote {out}")

    failed = [k for k, ok in correctness.items() if not ok]
    if failed:
        print(f"FAIL: correctness gates failed: {failed}")
        return 1
    cached_p50_ms = latency["cached"]["p50_us"] / 1000.0
    if cached_p50_ms > args.max_cached_p50_ms:
        print(
            f"FAIL: cached p50 {cached_p50_ms:.3f} ms above "
            f"{args.max_cached_p50_ms} ms"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
