#!/usr/bin/env python
"""Benchmark the HTTP serving layer: latency, cache effect, scaling.

Builds a small design store, starts real servers on ephemeral
localhost ports, and measures over actual HTTP round trips:

* **cached vs uncached latency** — p50/p99 microseconds per
  ``GET /v1/best``: *uncached* forces a response-cache miss per request
  (a unique ``max_error_percent`` each time, so every request runs the
  full dispatch), *cached* repeats one hot query;
* **connection-per-request scaling** — 1/4/8 urllib clients against a
  single-process server, with exact request accounting: the requested
  total is distributed across clients to the request (no silent
  ``requests // n`` shortfall), every response is counted, and any
  error or missing response fails the bench;
* **multi-process throughput** — keep-alive pipelined clients against
  ``--procs 1`` and ``--procs 8`` servers (the production topology).
  The ``1`` client count of the connection-per-request section is the
  single-process baseline (the PR 4 measurement conditions); the
  ``procs=8`` pipelined figure is gated **>= 10x** that baseline in
  non-smoke runs.  A 304 revalidation rate (every request presents the
  current ``If-None-Match``) is recorded alongside;
* **correctness gates** — ``/healthz`` is ok, served bodies are
  byte-identical to responses rendered directly from
  :mod:`repro.library.query` over the same store (single- *and*
  multi-process), and ``/openapi.json`` equals the spec generated from
  the route table.

Results go to ``BENCH_serve.json`` at the repo root (``--out``
overrides).  Exits non-zero when any gate fails, when any request is
lost, when the cached p50 exceeds ``--max-cached-p50-ms`` (default
1.0 ms), or — non-smoke — when the multi-process speedup misses
``--min-multiproc-speedup`` (default 10x).

Usage::

    python benchmarks/bench_serve.py            # full
    python benchmarks/bench_serve.py --smoke    # CI: short budget
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import statistics
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.library import (  # noqa: E402
    BuildSpec,
    DesignStore,
    best,
    build_library,
    front,
)
from repro.serve import create_server, record_to_json  # noqa: E402
from repro.serve.api import json_response  # noqa: E402
from repro.serve.openapi import generate_openapi  # noqa: E402
from repro.serve.procs import MultiProcessServer  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_serve.json"
)

HOT_BEST = "/v1/best?width={w}&max_error_percent=5&minimize=area"
HOT_FRONT = "/v1/front?width={w}"


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path) as resp:
        return resp.status, resp.read(), dict(resp.headers)


def _percentiles(samples_us):
    ordered = sorted(samples_us)
    return {
        "p50_us": round(statistics.median(ordered), 1),
        "p99_us": round(ordered[min(len(ordered) - 1,
                                    int(0.99 * len(ordered)))], 1),
        "mean_us": round(statistics.fmean(ordered), 1),
    }


def _split_evenly(total: int, parts: int):
    """``total`` split across ``parts`` with no remainder dropped."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def bench_latency(base: str, requests: int, width: int) -> dict:
    hot = HOT_BEST.format(w=width)
    _get(base, hot)  # warm the cache (and the connection machinery)

    cached = []
    for _ in range(requests):
        t0 = time.perf_counter()
        status, _, headers = _get(base, hot)
        cached.append((time.perf_counter() - t0) * 1e6)
        assert status == 200
    hot_headers = headers

    uncached = []
    for i in range(requests):
        # A unique budget each round: a distinct validated query = a
        # distinct cache key = a guaranteed miss through the dispatch.
        path = (f"/v1/best?width={width}"
                f"&max_error_percent={5 + (i + 1) * 1e-6:.7f}")
        t0 = time.perf_counter()
        status, _, headers = _get(base, path)
        uncached.append((time.perf_counter() - t0) * 1e6)
        assert status == 200 and headers.get("X-Cache") == "miss"

    c, u = _percentiles(cached), _percentiles(uncached)
    return {
        "requests": requests,
        "cached": c,
        "uncached": u,
        "cache_speedup_p50": round(u["p50_us"] / c["p50_us"], 2),
        "last_hot_x_cache": hot_headers.get("X-Cache"),
        "hot_has_etag": bool(hot_headers.get("ETag")),
    }


def bench_scaling(
    base: str, requests: int, width: int, clients=(1, 4, 8)
) -> dict:
    """Connection-per-request clients, with exact request accounting.

    Every client gets an explicit share of the total (the remainder is
    distributed, not dropped — the seed bench's ``requests // n``
    silently issued 296 of 300 at 8 clients), every completed response
    is counted, and the caller fails the bench unless
    ``completed == requests`` with zero errors at every client count.
    """
    hot = HOT_FRONT.format(w=width)
    _get(base, hot)
    results = {}
    for n in clients:
        shares = _split_evenly(requests, n)
        completed = [0] * n
        errors = []

        def worker(index: int, share: int):
            try:
                for _ in range(share):
                    status, _, _ = _get(base, hot)
                    if status != 200:
                        errors.append(status)
                        continue
                    completed[index] += 1
            except Exception as exc:  # noqa: BLE001 - counted as loss
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(i, share))
            for i, share in enumerate(shares)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        done = sum(completed)
        results[str(n)] = {
            "requests": requests,
            "completed": done,
            "errors": len(errors),
            "lost": requests - done,
            "requests_per_s": round(done / elapsed, 1),
        }
        if errors:
            results[str(n)]["first_errors"] = [str(e) for e in errors[:3]]
    return results


# ----------------------------------------------------------------------
# Keep-alive pipelined clients (the multi-process section)
# ----------------------------------------------------------------------
def _read_response(rfile) -> int:
    """Read one HTTP/1.1 response off a keep-alive connection."""
    line = rfile.readline()
    if not line:
        raise EOFError("connection closed mid-stream")
    status = int(line.split()[1])
    length = 0
    while True:
        header = rfile.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        if header.lower().startswith(b"content-length"):
            length = int(header.split(b":", 1)[1])
    if length:
        rfile.read(length)
    return status


def _pipelined_client(
    port: int, request: bytes, share: int, expect: int,
    completed, errors, index: int, batch: int = 32,
) -> None:
    """One keep-alive connection issuing ``share`` requests in batches.

    Batched write-then-drain (not fire-everything-then-read) so the TCP
    send buffer can never deadlock against an unread response stream.
    """
    try:
        with socket.create_connection(
            ("127.0.0.1", port), timeout=30
        ) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            rfile = sock.makefile("rb")
            remaining = share
            while remaining:
                now = min(batch, remaining)
                sock.sendall(request * now)
                for _ in range(now):
                    status = _read_response(rfile)
                    if status != expect:
                        errors.append(status)
                        continue
                    completed[index] += 1
                remaining -= now
    except Exception as exc:  # noqa: BLE001 - counted as loss
        errors.append(repr(exc))


def _bench_pipelined(
    port: int, target: str, requests: int, clients: int,
    expect: int = 200, extra_headers: str = "",
) -> dict:
    request = (
        f"GET {target} HTTP/1.1\r\nHost: bench\r\n{extra_headers}\r\n"
    ).encode()
    shares = _split_evenly(requests, clients)
    completed = [0] * clients
    errors: list = []
    threads = [
        threading.Thread(
            target=_pipelined_client,
            args=(port, request, share, expect, completed, errors, i),
        )
        for i, share in enumerate(shares)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    done = sum(completed)
    result = {
        "requests": requests,
        "completed": done,
        "errors": len(errors),
        "lost": requests - done,
        "requests_per_s": round(done / elapsed, 1),
    }
    if errors:
        result["first_errors"] = [str(e) for e in errors[:3]]
    return result


def bench_multiprocess(
    db: str, requests: int, clients: int, width: int, procs=(1, 8)
) -> dict:
    """Pipelined keep-alive throughput against ``--procs N`` servers."""
    target = HOT_FRONT.format(w=width)
    results: dict = {"clients": clients, "target": target, "procs": {}}
    for n in procs:
        with MultiProcessServer(db, port=0, procs=n, quiet=True) as mps:
            # Warm every worker's caches: each pipelined connection
            # lands on one worker, so a couple of rounds of short
            # connections reach them all with high probability.
            for _ in range(4 * n):
                _get(f"http://127.0.0.1:{mps.port}", target)
            results["procs"][str(n)] = _bench_pipelined(
                mps.port, target, requests, clients
            )
            if n == max(procs):
                status, _, headers = _get(
                    f"http://127.0.0.1:{mps.port}", target
                )
                assert status == 200 and headers.get("ETag")
                results["revalidation_304"] = _bench_pipelined(
                    mps.port, target, requests, clients, expect=304,
                    extra_headers=(
                        f"If-None-Match: {headers['ETag']}\r\n"
                    ),
                )
    return results


# ----------------------------------------------------------------------
# Correctness
# ----------------------------------------------------------------------
def _expected_bodies(db: str, width: int) -> dict:
    """Render the hot responses straight from the query API.

    This is the byte-identity oracle: the serving layer (snapshot,
    response cache, wire fast path, any ``--procs N``) must emit these
    exact bodies, because it runs the same ``library.query`` functions
    over the same store.
    """
    store = DesignStore(db)
    best_record = best(store, "multiplier", width, "wmed",
                       max_error_percent=5.0, minimize="area")
    front_records = front(store, "multiplier", width, "wmed")
    return {
        HOT_BEST.format(w=width): json_response(
            200, {"design": record_to_json(best_record)}
        ).body,
        HOT_FRONT.format(w=width): json_response(
            200, {
                "count": len(front_records),
                "designs": [record_to_json(r) for r in front_records],
            }
        ).body,
    }


def check_correctness(base: str, db: str, width: int) -> dict:
    status, body, _ = _get(base, "/healthz")
    health_ok = status == 200 and json.loads(body)["status"] == "ok"

    bodies_ok = True
    for path, expected in _expected_bodies(db, width).items():
        status, body, _ = _get(base, path)
        if status != 200 or body != expected:
            bodies_ok = False

    status, body, _ = _get(base, "/openapi.json")
    openapi_ok = status == 200 and json.loads(body) == generate_openapi()
    return {
        "health_ok": health_ok,
        "bodies_match_query_api": bodies_ok,
        "openapi_matches_routes": openapi_ok,
    }


def check_multiprocess_bodies(db: str, width: int, procs: int = 2) -> bool:
    """Every worker process serves the exact query-API bytes."""
    expected = _expected_bodies(db, width)
    with MultiProcessServer(db, port=0, procs=procs, quiet=True) as mps:
        base = f"http://127.0.0.1:{mps.port}"
        for _ in range(4 * procs):  # many connections -> all workers
            for path, want in expected.items():
                status, body, _ = _get(base, path)
                if status != 200 or body != want:
                    return False
    return True


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--width", type=int, default=4)
    ap.add_argument("--generations", type=int, default=200)
    ap.add_argument("--requests", type=int, default=300)
    ap.add_argument(
        "--pipeline-requests", type=int, default=20000,
        help="total requests for the keep-alive multi-process section",
    )
    ap.add_argument("--workers", type=int, default=8)
    ap.add_argument(
        "--procs", type=int, default=8,
        help="worker processes for the multi-process section",
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI preset: short search budget, fewer requests, "
        "speedup gate informational only",
    )
    ap.add_argument(
        "--max-cached-p50-ms", type=float, default=1.0,
        help="exit non-zero if cached p50 latency exceeds this",
    )
    ap.add_argument(
        "--min-multiproc-speedup", type=float, default=10.0,
        help="exit non-zero (non-smoke) if procs=N pipelined req/s is "
        "below this multiple of the single-process "
        "connection-per-request baseline",
    )
    ap.add_argument("--out", default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    if args.smoke:
        args.generations = min(args.generations, 40)
        args.requests = min(args.requests, 100)
        args.pipeline_requests = min(args.pipeline_requests, 2000)

    spec = BuildSpec(
        components=("multiplier",),
        metrics=("wmed",),
        widths=(args.width,),
        thresholds_percent=(0.5, 2.0, 5.0),
        generations=args.generations,
        seed=2024,
    )
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "bench.sqlite")
        build_library(DesignStore(db), spec, max_workers=1, executor="thread")

        server = create_server(db, port=0, workers=args.workers, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            correctness = check_correctness(base, db, args.width)
            latency = bench_latency(base, args.requests, args.width)
            scaling = bench_scaling(base, args.requests, args.width)
        finally:
            server.shutdown()
            server.server_close()

        multiprocess = bench_multiprocess(
            db, args.pipeline_requests, clients=8, width=args.width,
            procs=(1, args.procs),
        )
        correctness["multiprocess_bodies_match_query_api"] = \
            check_multiprocess_bodies(db, args.width)

    # The PR 4 measurement conditions: one process, one client, a new
    # connection per request.  The multi-process gate is relative to
    # this, so it tracks the machine instead of a hardcoded number.
    baseline = scaling["1"]["requests_per_s"]
    top = multiprocess["procs"][str(args.procs)]["requests_per_s"]
    speedup = round(top / baseline, 1)
    multiprocess["baseline_req_s"] = baseline
    multiprocess["speedup_vs_baseline"] = speedup

    print(
        f"latency: cached p50 {latency['cached']['p50_us']} us "
        f"(p99 {latency['cached']['p99_us']} us) | uncached p50 "
        f"{latency['uncached']['p50_us']} us | cache speedup "
        f"{latency['cache_speedup_p50']}x"
    )
    for n, r in scaling.items():
        print(
            f"scaling {n} clients: {r['requests_per_s']} req/s "
            f"({r['completed']}/{r['requests']} completed)"
        )
    for n, r in multiprocess["procs"].items():
        print(
            f"pipelined procs={n}: {r['requests_per_s']} req/s "
            f"({r['completed']}/{r['requests']} completed)"
        )
    print(
        f"revalidation (304) procs={args.procs}: "
        f"{multiprocess['revalidation_304']['requests_per_s']} req/s"
    )
    print(
        f"multi-process speedup: {speedup}x over the {baseline} req/s "
        "single-process connection-per-request baseline"
    )
    print(f"correctness: {correctness}")

    record = {
        "benchmark": "serve",
        "config": {
            "width": args.width,
            "generations": args.generations,
            "requests": args.requests,
            "pipeline_requests": args.pipeline_requests,
            "workers": args.workers,
            "procs": args.procs,
            "smoke": args.smoke,
        },
        "latency": latency,
        "scaling": scaling,
        "multiprocess": multiprocess,
        "correctness": correctness,
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
    print(f"wrote {out}")

    failed = [k for k, ok in correctness.items() if not ok]
    if failed:
        print(f"FAIL: correctness gates failed: {failed}")
        return 1
    lossy = {
        f"scaling.{n}": r for n, r in scaling.items()
        if r["lost"] or r["errors"]
    }
    lossy.update({
        f"multiprocess.procs.{n}": r
        for n, r in multiprocess["procs"].items()
        if r["lost"] or r["errors"]
    })
    reval = multiprocess["revalidation_304"]
    if reval["lost"] or reval["errors"]:
        lossy["multiprocess.revalidation_304"] = reval
    if lossy:
        print(f"FAIL: dropped or failed requests: {sorted(lossy)}")
        return 1
    cached_p50_ms = latency["cached"]["p50_us"] / 1000.0
    if cached_p50_ms > args.max_cached_p50_ms:
        print(
            f"FAIL: cached p50 {cached_p50_ms:.3f} ms above "
            f"{args.max_cached_p50_ms} ms"
        )
        return 1
    if speedup < args.min_multiproc_speedup:
        message = (
            f"multi-process speedup {speedup}x below "
            f"{args.min_multiproc_speedup}x"
        )
        if args.smoke:
            # Smoke runs share CI cores with everything else; the gate
            # is enforced on full runs.
            print(f"note: {message} (informational in --smoke)")
        else:
            print(f"FAIL: {message}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
