from setuptools import find_packages, setup

setup(
    name="repro-wmed-cgp",
    version="1.1.0",
    description=(
        "Reproduction of data-distribution-driven automated circuit "
        "approximation (WMED-constrained CGP over gate-level multipliers), "
        "with a compiled evaluation engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest"]},
)
