"""Serving layer: dispatch, validation, caching, HTTP, OpenAPI."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.circuits.io import netlist_from_dict
from repro.circuits.simulator import truth_table
from repro.library import (
    BuildSpec,
    DesignRecord,
    DesignStore,
    best,
    build_library,
    front,
    record_netlist,
)
from repro.serve import (
    ROUTES,
    MultiProcessServer,
    ResponseCache,
    ServeContext,
    Snapshot,
    create_server,
    handle,
    record_to_json,
    reuseport_supported,
)
from repro.serve.openapi import generate_markdown, generate_openapi
from repro.serve.routes import Param, match_path

W = 3
SPEC = BuildSpec(
    components=("multiplier",),
    metrics=("wmed",),
    widths=(W,),
    thresholds_percent=(2.0, 5.0),
    generations=40,
    seed=3,
)

# CI matrix leg: REPRO_SERVE_TEST_PROCS=N runs every HTTP-level test in
# this file against an N-process `--procs` server instead of the
# in-process single server (the dispatch-level tests are unaffected).
_TEST_PROCS = int(os.environ.get("REPRO_SERVE_TEST_PROCS") or "0")

# CI matrix leg: REPRO_SERVE_TEST_FEDERATED=1 mounts the fixture store
# as a two-store federation (the built store + an empty sibling), so
# every HTTP and dispatch test in this file exercises the
# FederatedStore read surface.  The union with an empty store is
# exactly the single store's content, so every assertion comparing
# responses against direct queries on `store` holds unchanged.
_TEST_FEDERATED = os.environ.get("REPRO_SERVE_TEST_FEDERATED") == "1"

_FORK_OK = sys.platform != "win32"
multiproc = pytest.mark.skipif(
    not _FORK_OK, reason="multi-process serving requires fork()"
)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One built store + one live server shared by the read-only tests."""
    db = str(tmp_path_factory.mktemp("serve") / "lib.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    serve_db = db
    ctx_store = store
    if _TEST_FEDERATED:
        from repro.library import FederatedStore

        empty = str(tmp_path_factory.mktemp("serve-fed") / "empty.sqlite")
        DesignStore(empty)  # create a valid empty store file
        serve_db = [db, empty]
        ctx_store = FederatedStore(serve_db)
    if _TEST_PROCS > 1:
        if not _FORK_OK:  # pragma: no cover - matrix leg is Linux-only
            pytest.skip("REPRO_SERVE_TEST_PROCS needs fork()")
        mps = MultiProcessServer(
            serve_db, port=0, procs=_TEST_PROCS, quiet=True
        )
        mps.start()
        yield store, ServeContext(store=ctx_store), \
            f"http://127.0.0.1:{mps.port}"
        mps.stop()
        return
    server = create_server(serve_db, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield store, ServeContext(store=ctx_store), \
        f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


# ----------------------------------------------------------------------
# Routing + validation primitives
# ----------------------------------------------------------------------
def test_match_path_templates():
    route, params = match_path(ROUTES, "/v1/designs/abc123")
    assert route.name == "design" and params == {"design_id": "abc123"}
    assert match_path(ROUTES, "/v1/designs/a/b") == (None, {})
    assert match_path(ROUTES, "/v1/designs/") == (None, {})
    assert match_path(ROUTES, "/nope") == (None, {})


def test_param_coercion():
    assert Param("w", "integer").coerce("8") == 8
    assert Param("e", "number").coerce("1.5") == 1.5
    assert Param("s", "boolean").coerce("TRUE") is True
    assert Param("s", "boolean").coerce("0") is False
    for bad in [("w", "integer", "4.5"), ("e", "number", "nan"),
                ("e", "number", "inf"), ("s", "boolean", "maybe")]:
        with pytest.raises(ValueError, match=f"parameter '{bad[0]}'"):
            Param(bad[0], bad[1]).coerce(bad[2])
    with pytest.raises(ValueError, match="one of"):
        Param("m", "string", enum=("a", "b")).coerce("c")
    # Enum binds for non-string types too (checked on the wire value).
    assert Param("w", "integer", enum=("4", "8")).coerce("8") == 8
    with pytest.raises(ValueError, match="one of"):
        Param("w", "integer", enum=("4", "8")).coerce("16")
    with pytest.raises(ValueError, match="unknown type"):
        Param("x", "float")


# ----------------------------------------------------------------------
# Endpoints (through the HTTP-independent dispatcher)
# ----------------------------------------------------------------------
def test_healthz(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/healthz")
    assert r.status == 200
    body = r.json()
    assert body["status"] == "ok"
    assert body["designs"] == store.count() > 0
    # Per-process honesty: the pid identifies which worker answered,
    # and the cache/snapshot counters describe that process only.
    assert body["pid"] > 0
    assert set(body["cache"]) == {
        "pid", "entries", "maxsize", "hits", "misses",
    }
    assert body["cache"]["pid"] == body["pid"]
    assert set(body["snapshot"]) == {"state", "designs", "rebuilds"}
    assert body["snapshot"]["designs"] == store.count()


def test_best_round_trip(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/v1/best",
               f"width={W}&max_error_percent=5&minimize=area")
    assert r.status == 200
    design = r.json()["design"]
    record = best(store, "multiplier", W, "wmed",
                  max_error_percent=5.0, minimize="area")
    assert design == json.loads(json.dumps(record_to_json(record)))
    # Units-bearing derived fields are present and consistent.
    assert design["error_percent"] == pytest.approx(100 * design["error"])
    assert design["power_mw"] == pytest.approx(design["power_uw"] / 1000)


def test_best_no_match_is_404(served):
    _, ctx, _ = served
    r = handle(ctx, "GET", "/v1/best", f"width={W}&max_error_percent=-1")
    assert r.status == 404
    err = r.json()["error"]
    assert err["code"] == 404 and err["status"] == "Not Found"
    # A different width with no designs at all is also a 404, not a 500.
    assert handle(ctx, "GET", "/v1/best", "width=7").status == 404


def test_front_round_trip_and_empty(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/v1/front", f"width={W}")
    assert r.status == 200
    body = r.json()
    records = front(store, "multiplier", W, "wmed")
    assert body["count"] == len(records) >= 1
    errors = [d["error"] for d in body["designs"]]
    assert errors == sorted(errors)
    # Empty selection: 200 with an empty collection, not an error.
    r = handle(ctx, "GET", "/v1/front", "width=7")
    assert r.status == 200 and r.json() == {"count": 0, "designs": []}


def test_stats_endpoint(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/v1/stats")
    assert r.status == 200
    body = r.json()
    assert body["designs"] == store.count()
    assert {g["component"] for g in body["groups"]} == {"multiplier"}


def test_design_endpoint_formats(served):
    store, ctx, _ = served
    record = store.select()[0]
    prefix = record.design_id[:10]
    r = handle(ctx, "GET", f"/v1/designs/{prefix}")
    assert r.status == 200
    assert r.json()["designs"][0]["design_id"] == record.design_id

    r = handle(ctx, "GET", f"/v1/designs/{prefix}", "format=verilog")
    assert r.status == 200
    assert r.content_type.startswith("text/x-verilog")
    text = r.body.decode()
    assert text.startswith("module ") and text.rstrip().endswith("endmodule")

    r = handle(ctx, "GET", f"/v1/designs/{prefix}", "format=netlist")
    assert r.status == 200
    served_net = netlist_from_dict(r.json())
    assert (truth_table(served_net, signed=False)
            == truth_table(record_netlist(record), signed=False)).all()

    assert handle(ctx, "GET", "/v1/designs/zzzz").status == 404
    r = handle(ctx, "GET", f"/v1/designs/{prefix}", "format=vhdl")
    assert r.status == 422


def test_design_artifacts_reject_ambiguous_prefix(tmp_path):
    """Artifact formats must not pick one of several distinct designs."""
    db = str(tmp_path / "amb.sqlite")
    store = DesignStore(db)
    base = dict(
        component="multiplier", width=W, signed=False, metric="wmed",
        dist="Du", threshold_percent=1.0, delay_ps=1.0, wmed=0.1,
        med=0.1, mred=0.1, error_rate=0.5, worst_case=1, bias=0.0,
        gates=3, chromosome="{stub}",
    )
    store.add(DesignRecord(design_id="ab" + "0" * 30, error=0.01,
                           area=10.0, power_uw=5.0, pdp=2.0, **base))
    store.add(DesignRecord(design_id="ab" + "f" * 30, error=0.02,
                           area=5.0, power_uw=2.0, pdp=1.0, **base))
    ctx = ServeContext(store=store)
    # json lists both; artifacts refuse the ambiguity.
    assert handle(ctx, "GET", "/v1/designs/ab").json()["count"] == 2
    r = handle(ctx, "GET", "/v1/designs/ab", "format=verilog")
    assert r.status == 409
    assert "ambiguous" in r.json()["error"]["message"]
    # A full-length prefix is unambiguous again.
    r = handle(ctx, "GET", "/v1/designs/" + "ab" + "0" * 30,
               "format=netlist")
    assert r.status != 409


def test_validation_errors(served):
    _, ctx, _ = served
    cases = {
        "width=abc": "must be an integer",
        "width=3&max_error_percent=lots": "must be a number",
        "width=3&signed=perhaps": "must be a boolean",
        "width=3&minimize=delay": "must be one of area, power, pdp",
        "width=3&metric=psnr": "unknown error metric",
        "width=3&component=fma": "'component' must be one of",
        "width=3&bogus=1": "unknown parameter",
        "width=3&width=4": "more than once",
        "": "missing required parameter 'width'",
    }
    for query, fragment in cases.items():
        r = handle(ctx, "GET", "/v1/best", query)
        assert r.status == 422, query
        assert fragment in r.json()["error"]["message"], query


def test_component_param_is_registry_enum(served):
    """The component vocabulary is the live registry: every registered
    name validates (a store without such designs is a 404, not a 422),
    anything else fails fast at the parameter layer."""
    from repro.core.components import component_names

    _, ctx, _ = served
    spec = generate_openapi()
    params = {
        p["name"]: p
        for p in spec["paths"]["/v1/best"]["get"]["parameters"]
    }
    assert tuple(params["component"]["schema"]["enum"]) == component_names()
    for name in component_names():
        if name == "multiplier":
            continue  # the store actually holds multipliers
        r = handle(ctx, "GET", "/v1/best", f"component={name}&width={W}")
        assert r.status == 404, name


def test_unknown_path_and_method(served):
    _, ctx, _ = served
    assert handle(ctx, "GET", "/v2/best", "width=3").status == 404
    r = handle(ctx, "POST", "/v1/best", "width=3")
    assert r.status == 405 and ("Allow", "GET") in r.headers
    # HEAD is GET without a body — not a 405.
    assert handle(ctx, "HEAD", "/healthz").status == 200


def test_exotic_methods_keep_the_json_envelope(served):
    """OPTIONS and unknown verbs must not fall back to HTML errors."""
    import http.client

    _, _, base = served
    host = base.split("//", 1)[1]
    for method, expected in (("OPTIONS", 405), ("BREW", 501)):
        conn = http.client.HTTPConnection(host, timeout=10)
        try:
            conn.request(method, "/v1/best?width=3")
            resp = conn.getresponse()
            assert resp.status == expected, method
            assert resp.headers["Content-Type"] == "application/json"
            assert json.loads(resp.read())["error"]["code"] == expected
        finally:
            conn.close()


def test_falsy_param_defaults_are_applied():
    from repro.serve.api import validate_query
    from repro.serve.routes import Route

    route = Route(
        "GET", "/x", "x", "s", lambda *a: None,
        params=(Param("flag", "boolean", default=False),
                Param("n", "integer", default=0)),
    )
    assert validate_query(route, []) == {"flag": False, "n": 0}


def test_openapi_matches_route_table(served):
    _, ctx, _ = served
    r = handle(ctx, "GET", "/openapi.json")
    assert r.status == 200
    spec = r.json()
    assert spec == generate_openapi()
    assert set(spec["paths"]) == {route.path for route in ROUTES}
    for route in ROUTES:
        operation = spec["paths"][route.path][route.method.lower()]
        assert operation["operationId"] == route.name
        wire_names = {p["name"] for p in operation["parameters"]
                      if p["in"] == "query"}
        assert wire_names == {p.name for p in route.params}
    # The committed Markdown reference names every route too.
    markdown = generate_markdown()
    for route in ROUTES:
        assert f"`{route.method} {route.path}`" in markdown


def _dominating_record(dist: str) -> DesignRecord:
    """A fabricated record that dominates every real one in its group."""
    return DesignRecord(
        design_id="f" * 32, component="multiplier", width=W, signed=False,
        metric="wmed", dist=dist, threshold_percent=1.0,
        error=0.0, area=1.0, power_uw=1.0, delay_ps=1.0, pdp=0.001,
        wmed=0.0, med=0.0, mred=0.0, error_rate=0.0, worst_case=0,
        bias=0.0, gates=1, chromosome="{stub}",
    )


# ----------------------------------------------------------------------
# Snapshot layer
# ----------------------------------------------------------------------
def test_snapshot_read_surface_matches_store(served):
    """The snapshot duck-types DesignStore reads *exactly* — every
    filter combination must return the same records in the same order,
    because query.py byte-identity rests on it."""
    store, ctx, _ = served
    snap = ctx.snapshot()
    assert isinstance(snap, Snapshot)
    assert snap.count() == store.count()
    assert snap.groups() == store.groups()
    assert snap.completed_cells() == store.completed_cells()
    record = store.select()[0]
    for kwargs in (
        {},
        dict(component="multiplier", width=W),
        dict(metric="wmed", max_error=0.05),
        dict(max_error=0.0),
        dict(design_id=record.design_id),
        dict(design_id_prefix=record.design_id[:6]),
        dict(signed=False, dist=record.dist),
        dict(width=99),
    ):
        assert snap.select(**kwargs) == store.select(**kwargs), kwargs


def test_snapshot_invalidation_race(tmp_path):
    """A builder writing mid-stream: the next request must serve the
    new front, while an already-taken snapshot keeps its old image."""
    db = str(tmp_path / "snap.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    ctx = ServeContext(store=store)

    first = handle(ctx, "GET", "/v1/front", f"width={W}")
    old_snap = ctx.snapshot()
    rebuilds = ctx.snapshots.rebuilds
    dist = first.json()["designs"][0]["dist"]
    assert store.add(_dominating_record(dist)) == "added"

    # The held (old) snapshot is immutable: it still answers from the
    # pre-write image.
    assert old_snap.select(design_id="f" * 32) == []
    # The next request sees the write: token changed -> rebuild -> the
    # dominator leads the front.
    fresh = handle(ctx, "GET", "/v1/front", f"width={W}")
    assert fresh.json()["designs"][0]["design_id"] == "f" * 32
    assert ctx.snapshots.rebuilds == rebuilds + 1
    assert ctx.snapshot() is not old_snap
    # Stable store, stable snapshot: no rebuild churn.
    assert ctx.snapshot() is ctx.snapshot()


# ----------------------------------------------------------------------
# ETag revalidation
# ----------------------------------------------------------------------
def test_etag_roundtrip_and_store_write(tmp_path):
    """200-with-ETag -> If-None-Match -> 304 -> store write -> 200."""
    db = str(tmp_path / "etag.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    ctx = ServeContext(store=store)
    query = f"width={W}&max_error_percent=5"

    first = handle(ctx, "GET", "/v1/best", query)
    assert first.status == 200
    etag = dict(first.headers)["ETag"]
    assert etag.startswith('"') and etag.endswith('"')

    r = handle(ctx, "GET", "/v1/best", query,
               headers={"If-None-Match": etag})
    assert r.status == 304 and r.body == b""
    assert ("ETag", etag) in r.headers
    # RFC 9110 forms: weak prefix, tag lists, and * all revalidate.
    for header in (f'W/{etag}', f'"nope", {etag}', "*"):
        assert handle(ctx, "GET", "/v1/best", query,
                      headers={"If-None-Match": header}).status == 304
    # A non-matching tag is a full 200 with the same validator.
    miss = handle(ctx, "GET", "/v1/best", query,
                  headers={"If-None-Match": '"something-else"'})
    assert miss.status == 200 and dict(miss.headers)["ETag"] == etag
    assert miss.body == first.body

    # Any store write flips the token: the old tag stops matching and
    # the fresh 200 carries a new one.
    assert store.add(
        _dominating_record(first.json()["design"]["dist"])
    ) == "added"
    fresh = handle(ctx, "GET", "/v1/best", query,
                   headers={"If-None-Match": etag})
    assert fresh.status == 200
    assert dict(fresh.headers)["ETag"] != etag
    assert fresh.json()["design"]["design_id"] == "f" * 32


def test_http_etag_revalidation_and_head(served):
    """Over the wire: GET 200 -> 304, and HEAD revalidates too."""
    _, _, base = served
    url = base + f"/v1/best?width={W}"
    with urllib.request.urlopen(url) as resp:
        etag = resp.headers["ETag"]
        body = resp.read()
    assert etag and body

    request = urllib.request.Request(
        url, headers={"If-None-Match": etag}
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 304
    assert excinfo.value.headers["ETag"] == etag
    # A 304 has no representation: no body, no Content-Type/Length.
    assert excinfo.value.read() == b""
    assert excinfo.value.headers["Content-Length"] is None

    request = urllib.request.Request(
        url, method="HEAD", headers={"If-None-Match": etag}
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 304

    # HEAD without a validator: full headers (with ETag), empty body.
    request = urllib.request.Request(url, method="HEAD")
    with urllib.request.urlopen(request) as resp:
        assert resp.status == 200
        assert resp.headers["ETag"] == etag
        assert int(resp.headers["Content-Length"]) == len(body)
        assert resp.read() == b""


# ----------------------------------------------------------------------
# Wire-level fast path
# ----------------------------------------------------------------------
def _raw_http(port: int, request: bytes) -> bytes:
    """One connection, one raw request, read to EOF."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(request)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def _strip_date(raw: bytes) -> bytes:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = [line for line in head.split(b"\r\n")
             if not line.lower().startswith(b"date:")]
    return b"\r\n".join(lines) + b"\r\n\r\n" + body


def test_wire_fast_path_bytes_and_invalidation(tmp_path):
    """The memoized wire path must emit the same bytes as full dispatch
    (modulo Date), serve 304s, and drop its memo on any store write."""
    db = str(tmp_path / "wire.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    fast = create_server(db, port=0, quiet=True)
    slow = create_server(db, port=0, quiet=True)
    slow.wire_cache.maxsize = 0  # full dispatch every request
    threading.Thread(target=fast.serve_forever, daemon=True).start()
    threading.Thread(target=slow.serve_forever, daemon=True).start()
    target = f"/v1/best?width={W}&max_error_percent=5"
    request = (
        f"GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    ).encode()
    try:
        # Warm both servers (response-cache + wire memo fill) ...
        _raw_http(fast.server_port, request)
        _raw_http(slow.server_port, request)
        # ... then compare a memoized answer against full dispatch.
        from_fast = _raw_http(fast.server_port, request)
        from_slow = _raw_http(slow.server_port, request)
        assert b"X-Cache: hit" in from_fast
        assert _strip_date(from_fast) == _strip_date(from_slow)
        assert fast.wire_cache.stats()["hits"] >= 1

        etag = next(
            line.split(b":", 1)[1].strip()
            for line in from_fast.split(b"\r\n")
            if line.lower().startswith(b"etag:")
        )
        reval = (
            f"GET {target} HTTP/1.1\r\nHost: t\r\n"
            f"If-None-Match: {etag.decode()}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        from_fast_304 = _raw_http(fast.server_port, reval)
        from_slow_304 = _raw_http(slow.server_port, reval)
        assert from_fast_304.startswith(b"HTTP/1.1 304")
        assert _strip_date(from_fast_304) == _strip_date(from_slow_304)
        assert b"Content-Length" not in from_fast_304

        # Pipelining: two requests up front, two responses back.
        keep = (
            f"GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"
            f"GET {target} HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        assert _raw_http(fast.server_port, keep).count(b"HTTP/1.1 200") == 2

        # A store write drops the memo: next response reflects it.
        body = json.loads(from_fast.partition(b"\r\n\r\n")[2])
        assert store.add(
            _dominating_record(body["design"]["dist"])
        ) == "added"
        after = _raw_http(fast.server_port, request)
        assert json.loads(
            after.partition(b"\r\n\r\n")[2]
        )["design"]["design_id"] == "f" * 32
    finally:
        for server in (fast, slow):
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_response_cache_lru_and_disable():
    cache = ResponseCache(maxsize=2)
    cache.put("a", 1), cache.put("b", 2)
    assert cache.get("a") == 1
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.get("b") is None and cache.get("a") == 1
    assert cache.stats()["entries"] == 2
    off = ResponseCache(maxsize=0)
    off.put("a", 1)
    assert off.get("a") is None and len(off) == 0
    with pytest.raises(ValueError, match=">= 0"):
        ResponseCache(maxsize=-1)


def test_cache_hit_and_invalidation_on_write(tmp_path):
    db = str(tmp_path / "lib.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    ctx = ServeContext(store=store)

    query = f"width={W}&max_error_percent=5"
    first = handle(ctx, "GET", "/v1/best", query)
    again = handle(ctx, "GET", "/v1/best", query)
    assert ("X-Cache", "miss") in first.headers
    assert ("X-Cache", "hit") in again.headers
    assert again.body == first.body

    # A store write (here: a fabricated record that dominates the whole
    # group) must invalidate without any notification to the server.
    baseline = json.loads(first.body.decode())["design"]
    dominator = DesignRecord(
        design_id="f" * 32, component="multiplier", width=W, signed=False,
        metric="wmed", dist=baseline["dist"], threshold_percent=1.0,
        error=0.0, area=1.0, power_uw=1.0, delay_ps=1.0, pdp=0.001,
        wmed=0.0, med=0.0, mred=0.0, error_rate=0.0, worst_case=0,
        bias=0.0, gates=1, chromosome="{stub}",
    )
    assert store.add(dominator) == "added"
    fresh = handle(ctx, "GET", "/v1/best", query)
    assert ("X-Cache", "miss") in fresh.headers
    assert fresh.json()["design"]["design_id"] == "f" * 32


def test_uncached_routes_have_no_cache_header(served):
    _, ctx, _ = served
    assert not any(h == "X-Cache"
                   for h, _ in handle(ctx, "GET", "/healthz").headers)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
def test_http_round_trip(served):
    store, _, base = served
    status, body, headers = _get(base, f"/v1/best?width={W}")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert body["design"]["component"] == "multiplier"
    status, body, _ = _get(base, f"/v1/best?width={W}&metric=nope")
    assert status == 422 and body["error"]["code"] == 422
    status, body, _ = _get(base, "/no/such/path")
    assert status == 404


def test_http_head_has_no_body(served):
    _, _, base = served
    request = urllib.request.Request(base + "/healthz", method="HEAD")
    with urllib.request.urlopen(request) as resp:
        assert resp.status == 200
        assert int(resp.headers["Content-Length"]) > 0
        assert resp.read() == b""


def test_concurrent_reads_race_a_writer(tmp_path):
    """GETs must stay clean while `library build` writes the same store."""
    db = str(tmp_path / "race.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    server = create_server(db, port=0, quiet=True)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_port}"
    failures = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            for path in (f"/v1/front?width={W}", "/v1/stats", "/healthz"):
                status, body, _ = _get(base, path)
                if status != 200:
                    failures.append((path, status, body))

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    try:
        # New cells (extra thresholds) force real writes into the store
        # the readers are hammering.
        more = BuildSpec(
            components=("multiplier",), metrics=("wmed",), widths=(W,),
            thresholds_percent=(2.0, 5.0, 1.0, 3.0), generations=40, seed=3,
        )
        report = build_library(store, more, max_workers=1, executor="thread")
        assert report.cells_run == 2
        # Post-build queries reflect the new store state (the cache
        # invalidated itself off the file mtime).
        status, body, _ = _get(base, "/v1/stats")
        assert status == 200 and body["cells_completed"] == 4
    finally:
        stop.set()
        for t in threads:
            t.join()
        server.shutdown()
        server.server_close()
    assert failures == []


def test_post_body_does_not_corrupt_keepalive_connection(served):
    """An unread request body must not be parsed as the next request."""
    import http.client

    _, _, base = served
    host = base.split("//", 1)[1]
    conn = http.client.HTTPConnection(host, timeout=10)
    try:
        conn.request("POST", "/v1/best?width=3", body=b'{"x": 1}',
                     headers={"Content-Type": "application/json"})
        first = conn.getresponse()
        assert first.status == 405
        first.read()
        # Same (kept-alive) connection: the next request must parse
        # cleanly and return canonical JSON, not an HTML 400.
        conn.request("GET", "/healthz")
        second = conn.getresponse()
        assert second.status == 200
        assert json.loads(second.read())["status"] == "ok"
    finally:
        conn.close()


def test_create_server_rejects_bad_workers(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        create_server(str(tmp_path / "x.sqlite"), port=0, workers=0)
    # The failed construction must not leave a bound socket behind:
    # the same ephemeral-port request pattern keeps working.
    server = create_server(str(tmp_path / "x.sqlite"), port=0, workers=1)
    server.server_close()


def test_cli_serve_requires_existing_store(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="no design store"):
        main(["serve", "--db", str(tmp_path / "missing.sqlite"),
              "--port", "0"])


def test_cli_serve_bind_failure_is_one_line(served, tmp_path):
    """A port conflict is an operator error: SystemExit, no traceback."""
    from repro.cli import main

    _, _, base = served
    taken = int(base.rsplit(":", 1)[1])
    db = str(tmp_path / "bind.sqlite")
    DesignStore(db)
    with pytest.raises(SystemExit, match="cannot serve on"):
        main(["serve", "--db", db, "--port", str(taken)])


def test_designserver_bind_modes(served):
    """The two multi-process bind modes, exercised in-process."""
    store, _, _ = served
    if reuseport_supported():
        first = create_server(store.path, port=0, quiet=True,
                              reuse_port=True)
        # A second SO_REUSEPORT bind of the *same* port must succeed —
        # that is the whole mechanism.
        second = create_server(store.path, port=first.server_port,
                               quiet=True, reuse_port=True)
        assert second.server_port == first.server_port
        second.server_close()
        first.server_close()

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]
    adopted = create_server(store.path, quiet=True,
                            listen_socket=listener)
    assert adopted.server_port == port
    threading.Thread(target=adopted.serve_forever, daemon=True).start()
    try:
        status, body, _ = _get(f"http://127.0.0.1:{port}", "/healthz")
        assert status == 200 and body["status"] == "ok"
    finally:
        adopted.shutdown()
        adopted.server_close()


# ----------------------------------------------------------------------
# Multi-process serving
# ----------------------------------------------------------------------
@multiproc
def test_multiprocess_smoke_identical_responses(served):
    """N=2 procs: every worker answers, bodies identical to 1-proc."""
    store, _, base = served
    with MultiProcessServer(
        store.path, port=0, procs=2, quiet=True
    ) as mps:
        assert len(mps.pids) == 2
        multi = f"http://127.0.0.1:{mps.port}"
        for path in (f"/v1/best?width={W}", f"/v1/front?width={W}",
                     "/v1/stats", f"/v1/best?width={W}&minimize=pdp"):
            s_status, s_body, _ = _get(base, path)
            m_status, m_body, headers = _get(multi, path)
            assert (m_status, m_body) == (s_status, s_body), path
            assert headers.get("ETag"), path
        # /healthz names the worker that answered — one of ours.
        status, body, _ = _get(multi, "/healthz")
        assert status == 200 and body["pid"] in mps.pids


@multiproc
def test_multiprocess_fd_passing_fallback(served):
    """The prefork send_fds mode serves the same API (forced, so the
    fallback is exercised even where SO_REUSEPORT exists)."""
    store, _, base = served
    with MultiProcessServer(
        store.path, port=0, procs=2, quiet=True, use_reuseport=False,
    ) as mps:
        assert mps.use_reuseport is False
        multi = f"http://127.0.0.1:{mps.port}"
        path = f"/v1/best?width={W}"
        s_status, s_body, _ = _get(base, path)
        m_status, m_body, _ = _get(multi, path)
        assert (m_status, m_body) == (s_status, s_body)
        status, body, _ = _get(multi, "/healthz")
        assert status == 200 and body["pid"] in mps.pids


@multiproc
@pytest.mark.skipif(
    not reuseport_supported(), reason="SO_REUSEPORT unsupported"
)
def test_multiprocess_respawns_dead_worker(served):
    store, _, _ = served
    with MultiProcessServer(
        store.path, port=0, procs=2, quiet=True
    ) as mps:
        victim = mps.pids[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        new_pids = []
        while not new_pids and time.monotonic() < deadline:
            new_pids = mps.respawn_dead()
            if not new_pids:
                time.sleep(0.05)
        assert new_pids and new_pids[0] != victim
        assert len(mps.pids) == 2 and victim not in mps.pids
        status, body, _ = _get(
            f"http://127.0.0.1:{mps.port}", "/healthz"
        )
        assert status == 200 and body["pid"] in mps.pids


def _pid_gone(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:  # pragma: no cover - exists, not ours
        return False
    return False


@multiproc
def test_cli_procs_sigterm_leaves_no_orphans(served):
    """`repro serve --procs 2` + SIGTERM: parent and both workers die."""
    store, _, _ = served
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__import__("repro").__file__)
    )))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", store.path,
         "--port", "0", "--procs", "2", "--quiet"],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        port = None
        pids = []
        for _ in range(20):
            line = proc.stderr.readline()
            if not line:
                break
            if line.startswith("serving "):
                port = int(line.split("http://", 1)[1]
                           .split()[0].rsplit(":", 1)[1])
            if line.startswith("workers: "):
                pids = [int(p) for p in line.split()[1:]]
                break
        assert port and len(pids) == 2, "startup lines not seen"
        status, body, _ = _get(f"http://127.0.0.1:{port}", "/healthz")
        assert status == 200 and body["pid"] in pids

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if all(_pid_gone(pid) for pid in pids):
                break
            time.sleep(0.05)
        orphans = [pid for pid in pids if not _pid_gone(pid)]
        assert orphans == [], f"workers survived SIGTERM: {orphans}"
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
        proc.stderr.close()
        proc.wait(timeout=10)
