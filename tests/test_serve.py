"""Serving layer: dispatch, validation, caching, HTTP, OpenAPI."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.circuits.io import netlist_from_dict
from repro.circuits.simulator import truth_table
from repro.library import (
    BuildSpec,
    DesignRecord,
    DesignStore,
    best,
    build_library,
    front,
    record_netlist,
)
from repro.serve import (
    ROUTES,
    ResponseCache,
    ServeContext,
    create_server,
    handle,
    record_to_json,
)
from repro.serve.openapi import generate_markdown, generate_openapi
from repro.serve.routes import Param, match_path

W = 3
SPEC = BuildSpec(
    components=("multiplier",),
    metrics=("wmed",),
    widths=(W,),
    thresholds_percent=(2.0, 5.0),
    generations=40,
    seed=3,
)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One built store + one live server shared by the read-only tests."""
    db = str(tmp_path_factory.mktemp("serve") / "lib.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    server = create_server(db, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield store, ServeContext(store=store), \
        f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


# ----------------------------------------------------------------------
# Routing + validation primitives
# ----------------------------------------------------------------------
def test_match_path_templates():
    route, params = match_path(ROUTES, "/v1/designs/abc123")
    assert route.name == "design" and params == {"design_id": "abc123"}
    assert match_path(ROUTES, "/v1/designs/a/b") == (None, {})
    assert match_path(ROUTES, "/v1/designs/") == (None, {})
    assert match_path(ROUTES, "/nope") == (None, {})


def test_param_coercion():
    assert Param("w", "integer").coerce("8") == 8
    assert Param("e", "number").coerce("1.5") == 1.5
    assert Param("s", "boolean").coerce("TRUE") is True
    assert Param("s", "boolean").coerce("0") is False
    for bad in [("w", "integer", "4.5"), ("e", "number", "nan"),
                ("e", "number", "inf"), ("s", "boolean", "maybe")]:
        with pytest.raises(ValueError, match=f"parameter '{bad[0]}'"):
            Param(bad[0], bad[1]).coerce(bad[2])
    with pytest.raises(ValueError, match="one of"):
        Param("m", "string", enum=("a", "b")).coerce("c")
    # Enum binds for non-string types too (checked on the wire value).
    assert Param("w", "integer", enum=("4", "8")).coerce("8") == 8
    with pytest.raises(ValueError, match="one of"):
        Param("w", "integer", enum=("4", "8")).coerce("16")
    with pytest.raises(ValueError, match="unknown type"):
        Param("x", "float")


# ----------------------------------------------------------------------
# Endpoints (through the HTTP-independent dispatcher)
# ----------------------------------------------------------------------
def test_healthz(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/healthz")
    assert r.status == 200
    body = r.json()
    assert body["status"] == "ok"
    assert body["designs"] == store.count() > 0
    assert set(body["cache"]) == {"entries", "maxsize", "hits", "misses"}


def test_best_round_trip(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/v1/best",
               f"width={W}&max_error_percent=5&minimize=area")
    assert r.status == 200
    design = r.json()["design"]
    record = best(store, "multiplier", W, "wmed",
                  max_error_percent=5.0, minimize="area")
    assert design == json.loads(json.dumps(record_to_json(record)))
    # Units-bearing derived fields are present and consistent.
    assert design["error_percent"] == pytest.approx(100 * design["error"])
    assert design["power_mw"] == pytest.approx(design["power_uw"] / 1000)


def test_best_no_match_is_404(served):
    _, ctx, _ = served
    r = handle(ctx, "GET", "/v1/best", f"width={W}&max_error_percent=-1")
    assert r.status == 404
    err = r.json()["error"]
    assert err["code"] == 404 and err["status"] == "Not Found"
    # A different width with no designs at all is also a 404, not a 500.
    assert handle(ctx, "GET", "/v1/best", "width=7").status == 404


def test_front_round_trip_and_empty(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/v1/front", f"width={W}")
    assert r.status == 200
    body = r.json()
    records = front(store, "multiplier", W, "wmed")
    assert body["count"] == len(records) >= 1
    errors = [d["error"] for d in body["designs"]]
    assert errors == sorted(errors)
    # Empty selection: 200 with an empty collection, not an error.
    r = handle(ctx, "GET", "/v1/front", "width=7")
    assert r.status == 200 and r.json() == {"count": 0, "designs": []}


def test_stats_endpoint(served):
    store, ctx, _ = served
    r = handle(ctx, "GET", "/v1/stats")
    assert r.status == 200
    body = r.json()
    assert body["designs"] == store.count()
    assert {g["component"] for g in body["groups"]} == {"multiplier"}


def test_design_endpoint_formats(served):
    store, ctx, _ = served
    record = store.select()[0]
    prefix = record.design_id[:10]
    r = handle(ctx, "GET", f"/v1/designs/{prefix}")
    assert r.status == 200
    assert r.json()["designs"][0]["design_id"] == record.design_id

    r = handle(ctx, "GET", f"/v1/designs/{prefix}", "format=verilog")
    assert r.status == 200
    assert r.content_type.startswith("text/x-verilog")
    text = r.body.decode()
    assert text.startswith("module ") and text.rstrip().endswith("endmodule")

    r = handle(ctx, "GET", f"/v1/designs/{prefix}", "format=netlist")
    assert r.status == 200
    served_net = netlist_from_dict(r.json())
    assert (truth_table(served_net, signed=False)
            == truth_table(record_netlist(record), signed=False)).all()

    assert handle(ctx, "GET", "/v1/designs/zzzz").status == 404
    r = handle(ctx, "GET", f"/v1/designs/{prefix}", "format=vhdl")
    assert r.status == 422


def test_design_artifacts_reject_ambiguous_prefix(tmp_path):
    """Artifact formats must not pick one of several distinct designs."""
    db = str(tmp_path / "amb.sqlite")
    store = DesignStore(db)
    base = dict(
        component="multiplier", width=W, signed=False, metric="wmed",
        dist="Du", threshold_percent=1.0, delay_ps=1.0, wmed=0.1,
        med=0.1, mred=0.1, error_rate=0.5, worst_case=1, bias=0.0,
        gates=3, chromosome="{stub}",
    )
    store.add(DesignRecord(design_id="ab" + "0" * 30, error=0.01,
                           area=10.0, power_uw=5.0, pdp=2.0, **base))
    store.add(DesignRecord(design_id="ab" + "f" * 30, error=0.02,
                           area=5.0, power_uw=2.0, pdp=1.0, **base))
    ctx = ServeContext(store=store)
    # json lists both; artifacts refuse the ambiguity.
    assert handle(ctx, "GET", "/v1/designs/ab").json()["count"] == 2
    r = handle(ctx, "GET", "/v1/designs/ab", "format=verilog")
    assert r.status == 409
    assert "ambiguous" in r.json()["error"]["message"]
    # A full-length prefix is unambiguous again.
    r = handle(ctx, "GET", "/v1/designs/" + "ab" + "0" * 30,
               "format=netlist")
    assert r.status != 409


def test_validation_errors(served):
    _, ctx, _ = served
    cases = {
        "width=abc": "must be an integer",
        "width=3&max_error_percent=lots": "must be a number",
        "width=3&signed=perhaps": "must be a boolean",
        "width=3&minimize=delay": "must be one of area, power, pdp",
        "width=3&metric=psnr": "unknown error metric",
        "width=3&component=fma": "'component' must be one of",
        "width=3&bogus=1": "unknown parameter",
        "width=3&width=4": "more than once",
        "": "missing required parameter 'width'",
    }
    for query, fragment in cases.items():
        r = handle(ctx, "GET", "/v1/best", query)
        assert r.status == 422, query
        assert fragment in r.json()["error"]["message"], query


def test_component_param_is_registry_enum(served):
    """The component vocabulary is the live registry: every registered
    name validates (a store without such designs is a 404, not a 422),
    anything else fails fast at the parameter layer."""
    from repro.core.components import component_names

    _, ctx, _ = served
    spec = generate_openapi()
    params = {
        p["name"]: p
        for p in spec["paths"]["/v1/best"]["get"]["parameters"]
    }
    assert tuple(params["component"]["schema"]["enum"]) == component_names()
    for name in component_names():
        if name == "multiplier":
            continue  # the store actually holds multipliers
        r = handle(ctx, "GET", "/v1/best", f"component={name}&width={W}")
        assert r.status == 404, name


def test_unknown_path_and_method(served):
    _, ctx, _ = served
    assert handle(ctx, "GET", "/v2/best", "width=3").status == 404
    r = handle(ctx, "POST", "/v1/best", "width=3")
    assert r.status == 405 and ("Allow", "GET") in r.headers
    # HEAD is GET without a body — not a 405.
    assert handle(ctx, "HEAD", "/healthz").status == 200


def test_exotic_methods_keep_the_json_envelope(served):
    """OPTIONS and unknown verbs must not fall back to HTML errors."""
    import http.client

    _, _, base = served
    host = base.split("//", 1)[1]
    for method, expected in (("OPTIONS", 405), ("BREW", 501)):
        conn = http.client.HTTPConnection(host, timeout=10)
        try:
            conn.request(method, "/v1/best?width=3")
            resp = conn.getresponse()
            assert resp.status == expected, method
            assert resp.headers["Content-Type"] == "application/json"
            assert json.loads(resp.read())["error"]["code"] == expected
        finally:
            conn.close()


def test_falsy_param_defaults_are_applied():
    from repro.serve.api import validate_query
    from repro.serve.routes import Route

    route = Route(
        "GET", "/x", "x", "s", lambda *a: None,
        params=(Param("flag", "boolean", default=False),
                Param("n", "integer", default=0)),
    )
    assert validate_query(route, []) == {"flag": False, "n": 0}


def test_openapi_matches_route_table(served):
    _, ctx, _ = served
    r = handle(ctx, "GET", "/openapi.json")
    assert r.status == 200
    spec = r.json()
    assert spec == generate_openapi()
    assert set(spec["paths"]) == {route.path for route in ROUTES}
    for route in ROUTES:
        operation = spec["paths"][route.path][route.method.lower()]
        assert operation["operationId"] == route.name
        wire_names = {p["name"] for p in operation["parameters"]
                      if p["in"] == "query"}
        assert wire_names == {p.name for p in route.params}
    # The committed Markdown reference names every route too.
    markdown = generate_markdown()
    for route in ROUTES:
        assert f"`{route.method} {route.path}`" in markdown


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_response_cache_lru_and_disable():
    cache = ResponseCache(maxsize=2)
    cache.put("a", 1), cache.put("b", 2)
    assert cache.get("a") == 1
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.get("b") is None and cache.get("a") == 1
    assert cache.stats()["entries"] == 2
    off = ResponseCache(maxsize=0)
    off.put("a", 1)
    assert off.get("a") is None and len(off) == 0
    with pytest.raises(ValueError, match=">= 0"):
        ResponseCache(maxsize=-1)


def test_cache_hit_and_invalidation_on_write(tmp_path):
    db = str(tmp_path / "lib.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    ctx = ServeContext(store=store)

    query = f"width={W}&max_error_percent=5"
    first = handle(ctx, "GET", "/v1/best", query)
    again = handle(ctx, "GET", "/v1/best", query)
    assert ("X-Cache", "miss") in first.headers
    assert ("X-Cache", "hit") in again.headers
    assert again.body == first.body

    # A store write (here: a fabricated record that dominates the whole
    # group) must invalidate without any notification to the server.
    baseline = json.loads(first.body.decode())["design"]
    dominator = DesignRecord(
        design_id="f" * 32, component="multiplier", width=W, signed=False,
        metric="wmed", dist=baseline["dist"], threshold_percent=1.0,
        error=0.0, area=1.0, power_uw=1.0, delay_ps=1.0, pdp=0.001,
        wmed=0.0, med=0.0, mred=0.0, error_rate=0.0, worst_case=0,
        bias=0.0, gates=1, chromosome="{stub}",
    )
    assert store.add(dominator) == "added"
    fresh = handle(ctx, "GET", "/v1/best", query)
    assert ("X-Cache", "miss") in fresh.headers
    assert fresh.json()["design"]["design_id"] == "f" * 32


def test_uncached_routes_have_no_cache_header(served):
    _, ctx, _ = served
    assert not any(h == "X-Cache"
                   for h, _ in handle(ctx, "GET", "/healthz").headers)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
def test_http_round_trip(served):
    store, _, base = served
    status, body, headers = _get(base, f"/v1/best?width={W}")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert body["design"]["component"] == "multiplier"
    status, body, _ = _get(base, f"/v1/best?width={W}&metric=nope")
    assert status == 422 and body["error"]["code"] == 422
    status, body, _ = _get(base, "/no/such/path")
    assert status == 404


def test_http_head_has_no_body(served):
    _, _, base = served
    request = urllib.request.Request(base + "/healthz", method="HEAD")
    with urllib.request.urlopen(request) as resp:
        assert resp.status == 200
        assert int(resp.headers["Content-Length"]) > 0
        assert resp.read() == b""


def test_concurrent_reads_race_a_writer(tmp_path):
    """GETs must stay clean while `library build` writes the same store."""
    db = str(tmp_path / "race.sqlite")
    store = DesignStore(db)
    build_library(store, SPEC, max_workers=1, executor="thread")
    server = create_server(db, port=0, quiet=True)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_port}"
    failures = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            for path in (f"/v1/front?width={W}", "/v1/stats", "/healthz"):
                status, body, _ = _get(base, path)
                if status != 200:
                    failures.append((path, status, body))

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    try:
        # New cells (extra thresholds) force real writes into the store
        # the readers are hammering.
        more = BuildSpec(
            components=("multiplier",), metrics=("wmed",), widths=(W,),
            thresholds_percent=(2.0, 5.0, 1.0, 3.0), generations=40, seed=3,
        )
        report = build_library(store, more, max_workers=1, executor="thread")
        assert report.cells_run == 2
        # Post-build queries reflect the new store state (the cache
        # invalidated itself off the file mtime).
        status, body, _ = _get(base, "/v1/stats")
        assert status == 200 and body["cells_completed"] == 4
    finally:
        stop.set()
        for t in threads:
            t.join()
        server.shutdown()
        server.server_close()
    assert failures == []


def test_post_body_does_not_corrupt_keepalive_connection(served):
    """An unread request body must not be parsed as the next request."""
    import http.client

    _, _, base = served
    host = base.split("//", 1)[1]
    conn = http.client.HTTPConnection(host, timeout=10)
    try:
        conn.request("POST", "/v1/best?width=3", body=b'{"x": 1}',
                     headers={"Content-Type": "application/json"})
        first = conn.getresponse()
        assert first.status == 405
        first.read()
        # Same (kept-alive) connection: the next request must parse
        # cleanly and return canonical JSON, not an HTML 400.
        conn.request("GET", "/healthz")
        second = conn.getresponse()
        assert second.status == 200
        assert json.loads(second.read())["status"] == "ok"
    finally:
        conn.close()


def test_create_server_rejects_bad_workers(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        create_server(str(tmp_path / "x.sqlite"), port=0, workers=0)
    # The failed construction must not leave a bound socket behind:
    # the same ephemeral-port request pattern keeps working.
    server = create_server(str(tmp_path / "x.sqlite"), port=0, workers=1)
    server.server_close()


def test_cli_serve_requires_existing_store(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="no design store"):
        main(["serve", "--db", str(tmp_path / "missing.sqlite"),
              "--port", "0"])


def test_cli_serve_bind_failure_is_one_line(served, tmp_path):
    """A port conflict is an operator error: SystemExit, no traceback."""
    from repro.cli import main

    _, _, base = served
    taken = int(base.rsplit(":", 1)[1])
    db = str(tmp_path / "bind.sqlite")
    DesignStore(db)
    with pytest.raises(SystemExit, match="cannot serve on"):
        main(["serve", "--db", db, "--port", str(taken)])
