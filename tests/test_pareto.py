"""Pareto-front bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    dominates,
    hypervolume_2d,
    pareto_indices,
    pareto_points,
)


def test_dominates_basic():
    assert dominates((1, 1), (2, 2))
    assert dominates((1, 2), (1, 3))
    assert not dominates((1, 1), (1, 1))
    assert not dominates((1, 3), (2, 2))


def test_pareto_indices_simple():
    errors = [0.0, 0.1, 0.2, 0.15]
    costs = [10.0, 6.0, 3.0, 8.0]
    front = pareto_indices(errors, costs)
    assert front == [0, 1, 2]


def test_pareto_indices_removes_duplicates():
    front = pareto_indices([0.1, 0.1], [5.0, 5.0])
    assert len(front) == 1


def test_pareto_indices_length_guard():
    with pytest.raises(ValueError):
        pareto_indices([1.0], [1.0, 2.0])


def test_pareto_points_sorted_by_error():
    points = [(0.3, 1.0), (0.1, 5.0), (0.2, 2.0)]
    front = pareto_points(points)
    assert front == [(0.1, 5.0), (0.2, 2.0), (0.3, 1.0)]


point_lists = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


@given(point_lists)
@settings(max_examples=60, deadline=None)
def test_pareto_front_is_mutually_nondominated(points):
    front = pareto_points(points)
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b)


@given(point_lists)
@settings(max_examples=60, deadline=None)
def test_every_point_dominated_or_on_front(points):
    front = pareto_points(points)
    for p in points:
        assert p in front or any(
            dominates(f, p) or f == p for f in front
        )


def test_hypervolume_single_point():
    assert hypervolume_2d([(1.0, 1.0)], reference=(2.0, 2.0)) == pytest.approx(1.0)


def test_hypervolume_two_points():
    hv = hypervolume_2d([(0.0, 2.0), (1.0, 1.0)], reference=(2.0, 3.0))
    # (2-1)*(3-1) + (1-0)*(3-2) = 2 + 1 = 3
    assert hv == pytest.approx(3.0)


def test_hypervolume_ignores_points_beyond_reference():
    assert hypervolume_2d([(5.0, 5.0)], reference=(1.0, 1.0)) == 0.0


def test_hypervolume_monotone_in_front_quality():
    base = [(0.5, 5.0)]
    better = [(0.5, 5.0), (0.2, 7.0)]
    ref = (1.0, 10.0)
    assert hypervolume_2d(better, ref) >= hypervolume_2d(base, ref)
