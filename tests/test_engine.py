"""Tests for the compiled evaluation engine (:mod:`repro.engine`).

The engine's contract is *bit-identical semantics* to the interpreted
path at much higher throughput, so almost everything here is an
equivalence property: compiled kernels vs. the scalar reference
simulator, engine evaluators vs. ``MultiplierFitness``, cached vs.
fresh results, parallel vs. serial sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import parallel_front
from repro.circuits.gates import FULL_FUNCTION_SET
from repro.circuits.generators import (
    build_array_multiplier,
    build_baugh_wooley_multiplier,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import (
    exhaustive_inputs,
    simulate_reference,
    truth_table,
)
from repro.core.chromosome import CGPParams
from repro.core.evolution import EvolutionConfig, evolve
from repro.core.fitness import MultiplierFitness
from repro.core.mutation import mutate
from repro.core.seeding import (
    netlist_to_chromosome,
    params_for_netlist,
    random_chromosome,
)
from repro.engine import (
    BufferArena,
    CompiledMultiplierFitness,
    EvalCache,
    compile_netlist,
    compile_phenotype,
    native_available,
)
from repro.engine import kernels
from repro.errors.distributions import uniform

BACKENDS = ["numpy"] + (["native"] if native_available() else [])


def random_netlist(rng: np.random.Generator, ni: int, n_gates: int) -> Netlist:
    net = Netlist(num_inputs=ni)
    for _ in range(n_gates):
        fn = FULL_FUNCTION_SET[int(rng.integers(0, len(FULL_FUNCTION_SET)))]
        a = int(rng.integers(0, net.num_signals))
        b = int(rng.integers(0, net.num_signals))
        net.add_gate(fn, a, b)
    outs = rng.integers(0, net.num_signals, size=int(rng.integers(1, 5)))
    net.set_outputs([int(o) for o in outs])
    return net


def run_compiled(net: Netlist) -> np.ndarray:
    """Execute a netlist's compiled program on the numpy backend."""
    cp = compile_netlist(net)
    stim = exhaustive_inputs(net.num_inputs)
    arena = BufferArena(
        net.num_inputs,
        max(len(net.gates), 1),
        net.num_outputs,
        stim,
        1 << net.num_inputs,
    )
    n = cp.n_ops
    arena.ops[:n] = cp.ops
    arena.src_a[:n] = cp.src_a
    arena.src_b[:n] = cp.src_b
    arena.dst[:n] = cp.dst
    arena.out_slots[:] = cp.out_slots
    kernels.run_program(arena, n)
    return kernels.decode_values(arena, net.num_outputs, signed=False).copy()


# ----------------------------------------------------------------------
# Compiler + kernels vs. the scalar reference simulator
# ----------------------------------------------------------------------
def test_compiled_netlist_matches_reference_on_random_netlists(rng):
    """Property: compiled program == scalar reference, random netlists."""
    for _ in range(25):
        ni = int(rng.integers(2, 6))
        net = random_netlist(rng, ni, int(rng.integers(1, 20)))
        got = run_compiled(net)
        for v in range(1 << ni):
            assert got[v] == simulate_reference(net, v)


def test_compiled_netlist_matches_packed_truth_table(rng):
    for _ in range(10):
        net = random_netlist(rng, 5, 25)
        assert np.array_equal(run_compiled(net), truth_table(net))


def test_netlist_and_seeded_chromosome_compile_identically():
    net = build_array_multiplier(5)
    chrom = netlist_to_chromosome(net, params_for_netlist(net))
    assert compile_netlist(net).signature() == compile_phenotype(chrom).signature()


def test_compiled_phenotype_is_canonical_under_neutral_mutation(rng):
    """Mutations outside the active cone keep the compiled program."""
    net = build_array_multiplier(4)
    params = params_for_netlist(net, extra_columns=12)
    chrom = netlist_to_chromosome(net, params)
    sig = compile_phenotype(chrom).signature()
    active = set(int(x) for x in chrom.active_gene_positions())
    hits = 0
    for _ in range(200):
        child, changed = mutate(chrom, 3, rng)
        if changed and not any(pos in active for pos in changed):
            hits += 1
            assert compile_phenotype(child).signature() == sig
    assert hits > 0  # the property was actually exercised


def test_liveness_allocation_reuses_slots():
    net = build_array_multiplier(8)
    cp = compile_netlist(net)
    # Without reuse the program would need ni + n_ops slots.
    assert cp.num_slots < net.num_inputs + cp.n_ops
    # Destinations never alias their operands (in-place kernel safety).
    for a, b, d in zip(cp.src_a, cp.src_b, cp.dst):
        assert d != a and d != b


# ----------------------------------------------------------------------
# Evaluator vs. MultiplierFitness (bit-exact)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "signed,width,builder",
    [
        (False, 4, build_array_multiplier),
        (True, 4, build_baugh_wooley_multiplier),
        (False, 6, build_array_multiplier),
    ],
)
def test_engine_evaluator_bit_identical(rng, backend, signed, width, builder):
    net = builder(width)
    params = params_for_netlist(net, extra_columns=8)
    chrom = netlist_to_chromosome(net, params)
    dist = uniform(width, signed=signed)
    base = MultiplierFitness(width, dist)
    eng = CompiledMultiplierFitness(width, dist, backend=backend)
    assert eng.backend == backend
    c = chrom
    for _ in range(30):
        c, _ = mutate(c, 5, rng)
        assert np.array_equal(eng.truth_table(c), base.truth_table(c))
        rb = base.evaluate(c, 0.05)
        re = eng.evaluate(c, 0.05)
        assert rb.wmed == re.wmed  # bit-exact, not approx
        assert rb.area == re.area
        assert rb.fitness == re.fitness


@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_on_random_chromosomes(rng, backend):
    params = CGPParams(num_inputs=8, num_outputs=8, columns=30)
    dist = uniform(4, signed=False)
    base = MultiplierFitness(4, dist)
    eng = CompiledMultiplierFitness(4, dist, backend=backend)
    for _ in range(20):
        c = random_chromosome(params, rng)
        assert np.array_equal(eng.truth_table(c), base.truth_table(c))
        assert eng.wmed(c) == base.wmed(c)


def test_engine_rejects_mismatched_width():
    net = build_array_multiplier(4)
    chrom = netlist_to_chromosome(net, params_for_netlist(net))
    eng = CompiledMultiplierFitness(6, uniform(6, signed=False))
    with pytest.raises(ValueError):
        eng.evaluate(chrom, 0.1)


# ----------------------------------------------------------------------
# Phenotype cache
# ----------------------------------------------------------------------
def test_cache_hits_return_fresh_equal_results(rng):
    """Cache-hit results equal a fresh MultiplierFitness evaluation."""
    net = build_baugh_wooley_multiplier(4)  # signed path
    params = params_for_netlist(net, extra_columns=10)
    chrom = netlist_to_chromosome(net, params)
    dist = uniform(4, signed=True)
    eng = CompiledMultiplierFitness(4, dist)
    c = chrom
    candidates = []
    for _ in range(15):
        c, _ = mutate(c, 4, rng)
        candidates.append(c)
        eng.evaluate(c, 0.02)
    assert eng.cache.stats()["entries"] > 0
    fresh = MultiplierFitness(4, dist)
    before = eng.cache.hits
    for c in candidates:
        re = eng.evaluate(c, 0.02)  # all should hit now
        rf = fresh.evaluate(c, 0.02)
        assert (re.wmed, re.area, re.fitness) == (rf.wmed, rf.area, rf.fitness)
    assert eng.cache.hits >= before + len(candidates)


def test_cache_hit_on_neutral_genotype_change(rng):
    net = build_array_multiplier(4)
    params = params_for_netlist(net, extra_columns=12)
    chrom = netlist_to_chromosome(net, params)
    eng = CompiledMultiplierFitness(4, uniform(4, signed=False))
    eng.evaluate(chrom, 0.1)
    active = set(int(x) for x in chrom.active_gene_positions())
    neutral = None
    for _ in range(300):
        child, changed = mutate(chrom, 2, rng)
        if changed and not any(p in active for p in changed):
            neutral = child
            break
    assert neutral is not None
    misses = eng.cache.misses
    eng.evaluate(neutral, 0.1)
    assert eng.cache.misses == misses  # identical phenotype -> hit


def test_cache_lru_eviction_and_disable():
    cache = EvalCache(max_entries=2)
    cache.put(b"a", 1.0, 2.0)
    cache.put(b"b", 3.0, 4.0)
    assert cache.get(b"a") == (1.0, 2.0)  # refreshes a
    cache.put(b"c", 5.0, 6.0)  # evicts b (LRU)
    assert cache.get(b"b") is None
    assert cache.get(b"a") == (1.0, 2.0)
    disabled = EvalCache(max_entries=0)
    disabled.put(b"x", 1.0, 1.0)
    assert disabled.get(b"x") is None
    assert len(disabled) == 0


# ----------------------------------------------------------------------
# Search integration: identical trajectories, batched evaluation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_evolve_trajectory_identical_with_engine(backend):
    net = build_array_multiplier(4)
    params = params_for_netlist(net, extra_columns=6)
    seed = netlist_to_chromosome(net, params)
    dist = uniform(4, signed=False)
    cfg = EvolutionConfig(generations=120, history_every=1)
    runs = {}
    for name, ev in (
        ("base", MultiplierFitness(4, dist)),
        ("engine", CompiledMultiplierFitness(4, dist, backend=backend)),
    ):
        runs[name] = evolve(
            seed, ev, threshold=0.02, config=cfg,
            rng=np.random.default_rng(1234),
        )
    assert runs["base"].history == runs["engine"].history
    assert runs["base"].best_eval == runs["engine"].best_eval
    assert np.array_equal(runs["base"].best.genes, runs["engine"].best.genes)


def test_parallel_front_reproducible_and_matches_serial():
    net = build_array_multiplier(4)
    dist = uniform(4, signed=False)
    kwargs = dict(
        width=4,
        design_dist=dist,
        thresholds_percent=[0.5, 2.0],
        eval_dists=[dist],
        config=EvolutionConfig(generations=40),
        seed=7,
    )
    serial = parallel_front(net, max_workers=1, **kwargs)
    threaded = parallel_front(net, max_workers=2, executor="thread", **kwargs)
    again = parallel_front(net, max_workers=2, executor="thread", **kwargs)

    def key(front):
        return [
            (p.name, p.area, p.threshold_percent, sorted(p.wmed_by_dist.items()))
            for p in front
        ]

    assert key(serial) == key(threaded) == key(again)
    for a, b in zip(serial, threaded):
        assert np.array_equal(a.table, b.table)


def test_parallel_front_rejects_unknown_executor():
    net = build_array_multiplier(4)
    dist = uniform(4, signed=False)
    for workers in (None, 1):  # validated even on the serial path
        with pytest.raises(ValueError):
            parallel_front(
                net, 4, dist, [1.0], [dist],
                config=EvolutionConfig(generations=1),
                executor="carrier-pigeon",
                max_workers=workers,
            )
