"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main, parse_distribution


def test_parse_distribution_variants():
    assert parse_distribution("uniform", 8, False).name == "Du"
    assert parse_distribution("d1", 8, False).name == "D1"
    assert parse_distribution("d2", 8, False).name == "D2"
    hn = parse_distribution("half-normal:30", 8, True)
    assert int(np.argmax(hn.pmf)) == 0
    nm = parse_distribution("normal:100:20", 8, False)
    assert abs(int(np.argmax(nm.pmf)) - 100) <= 1


def test_parse_distribution_rejects_unknown():
    with pytest.raises(ValueError):
        parse_distribution("zipf", 8, False)
    with pytest.raises(ValueError):
        parse_distribution("normal:1", 8, False)


def test_cli_evolve_and_characterize(tmp_path, capsys):
    out = tmp_path / "mult.cgp"
    code = main(
        [
            "evolve",
            "--width", "3",
            "--dist", "uniform",
            "--wmed-percent", "4",
            "--generations", "150",
            "--output", str(out),
        ]
    )
    assert code == 0
    text = out.read_text()
    assert text.startswith("{6,6,")

    code = main(["characterize", str(out), "--dist", "uniform"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "area:" in captured
    assert "WMED=" in captured


def test_cli_export_verilog(tmp_path, capsys):
    out = tmp_path / "mult.cgp"
    main(
        [
            "evolve", "--width", "2", "--dist", "uniform",
            "--wmed-percent", "0", "--generations", "5",
            "--output", str(out),
        ]
    )
    vfile = tmp_path / "mult.v"
    code = main(
        ["export-verilog", str(out), "--module", "m2", "--output", str(vfile)]
    )
    assert code == 0
    text = vfile.read_text()
    assert text.startswith("module m2 (")
    assert text.rstrip().endswith("endmodule")


def test_cli_evolve_stdout(capsys):
    code = main(
        ["evolve", "--width", "2", "--dist", "d2",
         "--wmed-percent", "5", "--generations", "20", "--unsigned"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("{4,4,")
