"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main, parse_distribution


def test_parse_distribution_variants():
    assert parse_distribution("uniform", 8, False).name == "Du"
    assert parse_distribution("d1", 8, False).name == "D1"
    assert parse_distribution("d2", 8, False).name == "D2"
    hn = parse_distribution("half-normal:30", 8, True)
    assert int(np.argmax(hn.pmf)) == 0
    nm = parse_distribution("normal:100:20", 8, False)
    assert abs(int(np.argmax(nm.pmf)) - 100) <= 1


def test_parse_distribution_rejects_unknown():
    with pytest.raises(ValueError):
        parse_distribution("zipf", 8, False)
    with pytest.raises(ValueError):
        parse_distribution("normal:1", 8, False)


def test_cli_evolve_and_characterize(tmp_path, capsys):
    out = tmp_path / "mult.cgp"
    code = main(
        [
            "evolve",
            "--width", "3",
            "--dist", "uniform",
            "--wmed-percent", "4",
            "--generations", "150",
            "--output", str(out),
        ]
    )
    assert code == 0
    text = out.read_text()
    assert text.startswith("{6,6,")

    code = main(["characterize", str(out), "--dist", "uniform"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "area:" in captured
    assert "WMED=" in captured


def test_cli_export_verilog(tmp_path, capsys):
    out = tmp_path / "mult.cgp"
    main(
        [
            "evolve", "--width", "2", "--dist", "uniform",
            "--wmed-percent", "0", "--generations", "5",
            "--output", str(out),
        ]
    )
    vfile = tmp_path / "mult.v"
    code = main(
        ["export-verilog", str(out), "--module", "m2", "--output", str(vfile)]
    )
    assert code == 0
    text = vfile.read_text()
    assert text.startswith("module m2 (")
    assert text.rstrip().endswith("endmodule")


def test_cli_evolve_stdout(capsys):
    code = main(
        ["evolve", "--width", "2", "--dist", "d2",
         "--wmed-percent", "5", "--generations", "20", "--unsigned"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("{4,4,")


def test_cli_evolve_and_characterize_adder(tmp_path, capsys):
    out = tmp_path / "add.cgp"
    code = main(
        [
            "evolve",
            "--component", "adder",
            "--metric", "med",
            "--width", "4",
            "--wmed-percent", "2",
            "--generations", "120",
            "--output", str(out),
        ]
    )
    assert code == 0
    # Adder interface: 8 inputs -> 5 outputs (the old multiplier-only
    # characterize assumed no == ni and produced garbage here).
    assert out.read_text().startswith("{8,5,")
    # The 2w -> w+1 shape is shared with the subtractor, so auto
    # inference must refuse; the explicit component characterizes fine.
    code = main(["characterize", str(out), "--component", "adder"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "component: adder (width 4, unsigned)" in captured
    assert "WMED=" in captured


def test_cli_characterize_rejects_ambiguous_interface(tmp_path):
    """Regression: the adder/subtractor shape collision must not let
    inference silently pick one — the error names both candidates."""
    out = tmp_path / "add.cgp"
    main(
        ["evolve", "--component", "adder", "--width", "3",
         "--wmed-percent", "0", "--generations", "5", "--output", str(out)]
    )
    with pytest.raises(SystemExit) as err:
        main(["characterize", str(out)])
    message = str(err.value)
    assert "ambiguous" in message
    assert "2 components" in message
    assert "adder" in message and "subtractor" in message
    assert "--component" in message


def test_cli_characterize_rejects_ambiguous_divider_shifter(tmp_path):
    """The divider and barrel shifter share 2w -> w the same way."""
    out = tmp_path / "div.cgp"
    main(
        ["evolve", "--component", "divider", "--width", "2",
         "--wmed-percent", "0", "--generations", "5", "--output", str(out)]
    )
    assert out.read_text().startswith("{4,2,")
    with pytest.raises(SystemExit) as err:
        main(["characterize", str(out)])
    message = str(err.value)
    assert "2 components" in message
    assert "divider" in message and "barrel-shifter" in message


def test_cli_evolve_and_characterize_mac(tmp_path, capsys):
    out = tmp_path / "mac.cgp"
    code = main(
        [
            "evolve",
            "--component", "mac",
            "--width", "2",
            "--wmed-percent", "3",
            "--generations", "60",
            "--output", str(out),
        ]
    )
    assert code == 0
    assert out.read_text().startswith("{9,5,")  # 2w + (2w+1) -> 2w+1
    code = main(["characterize", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "component: mac (width 2, signed)" in captured


def test_cli_characterize_component_mismatch(tmp_path):
    out = tmp_path / "add.cgp"
    main(
        ["evolve", "--component", "adder", "--width", "3",
         "--wmed-percent", "0", "--generations", "5", "--output", str(out)]
    )
    with pytest.raises(SystemExit):
        main(["characterize", str(out), "--component", "multiplier"])


def test_cli_rejects_oversized_mac():
    with pytest.raises(SystemExit, match="width must be <= 5"):
        main(["evolve", "--component", "mac", "--width", "8",
              "--generations", "1"])


@pytest.mark.parametrize("component,interface", [
    ("divider", "{6,3,"),
    ("subtractor", "{6,4,"),
    ("barrel-shifter", "{6,3,"),
])
def test_cli_evolve_and_characterize_new_components(
    tmp_path, capsys, component, interface
):
    out = tmp_path / "c.cgp"
    code = main(
        [
            "evolve",
            "--component", component,
            "--width", "3",
            "--wmed-percent", "4",
            "--generations", "80",
            "--output", str(out),
        ]
    )
    assert code == 0
    assert out.read_text().startswith(interface)
    code = main(["characterize", str(out), "--component", component])
    assert code == 0
    captured = capsys.readouterr().out
    assert f"component: {component} (width 3, unsigned)" in captured
    assert "WMED=" in captured
