"""Fitness evaluation (Eq. 1) and the (1 + lambda) search."""

import numpy as np
import pytest

from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.circuits.simulator import truth_table
from repro.core import (
    EvolutionConfig,
    MultiplierFitness,
    evolve,
    netlist_to_chromosome,
    params_for_netlist,
)
from repro.errors import (
    discretized_half_normal,
    exact_product_table,
    uniform,
    wmed,
)
from repro.tech import circuit_area


@pytest.fixture(scope="module")
def seed3():
    net = build_baugh_wooley_multiplier(3)
    return net, netlist_to_chromosome(net, params_for_netlist(net, extra_columns=10))


@pytest.fixture(scope="module")
def fit3():
    return MultiplierFitness(3, uniform(3, signed=True))


def test_fitness_width_guard():
    with pytest.raises(ValueError):
        MultiplierFitness(4, uniform(3, signed=True))


def test_exact_seed_has_zero_wmed(seed3, fit3):
    _, ch = seed3
    assert fit3.wmed(ch) == 0.0


def test_fitness_area_matches_netlist_area(seed3, fit3):
    net, ch = seed3
    assert fit3.area(ch) == pytest.approx(circuit_area(net))


def test_fitness_matches_metrics_wmed(seed3, fit3):
    """Evaluator WMED must equal the reference metric on the phenotype."""
    _, ch = seed3
    mutated = ch.copy()
    mutated.genes[2] = (mutated.genes[2] + 1) % len(ch.params.functions)
    mutated.invalidate_cache()
    table = truth_table(mutated.to_netlist(), signed=True)
    expected = wmed(
        exact_product_table(3, True), table, uniform(3, signed=True)
    )
    assert fit3.wmed(mutated) == pytest.approx(expected)


def test_fitness_threshold_gate(seed3, fit3):
    _, ch = seed3
    res = fit3.evaluate(ch, threshold=0.0)
    assert np.isfinite(res.fitness)
    assert res.feasible()
    # Corrupt an output to violate any tight threshold.
    bad = ch.copy()
    bad.genes[-1] = 0
    bad.invalidate_cache()
    res_bad = fit3.evaluate(bad, threshold=0.0)
    if res_bad.wmed > 0:
        assert res_bad.fitness == float("inf")
        assert not res_bad.feasible()


def test_evolve_rejects_negative_threshold(seed3, fit3):
    _, ch = seed3
    with pytest.raises(ValueError):
        evolve(ch, fit3, threshold=-0.1)


def test_evolution_reduces_area(seed3, fit3, rng):
    _, ch = seed3
    base_area = fit3.area(ch)
    res = evolve(
        ch,
        fit3,
        threshold=0.05,
        config=EvolutionConfig(generations=800),
        rng=rng,
    )
    assert res.feasible
    assert res.best_eval.wmed <= 0.05 + 1e-12
    assert res.best_eval.area < base_area


def test_evolution_respects_threshold_strictly(seed3, fit3, rng):
    _, ch = seed3
    for threshold in (0.0, 0.01):
        res = evolve(
            ch,
            fit3,
            threshold=threshold,
            config=EvolutionConfig(generations=150),
            rng=rng,
        )
        assert res.best_eval.wmed <= threshold + 1e-12


def test_evolution_parent_fitness_monotone(seed3, fit3, rng):
    """With history enabled, recorded fitness (area) never increases."""
    _, ch = seed3
    res = evolve(
        ch,
        fit3,
        threshold=0.05,
        config=EvolutionConfig(generations=300, history_every=10),
        rng=rng,
    )
    areas = [area for _, _, area in res.history]
    assert all(a >= b - 1e-9 for a, b in zip(areas, areas[1:]))


def test_evolution_counts_evaluations(seed3, fit3, rng):
    _, ch = seed3
    cfg = EvolutionConfig(generations=50, skip_neutral_evaluations=False)
    res = evolve(ch, fit3, threshold=0.02, config=cfg, rng=rng)
    assert res.evaluations == 1 + 50 * cfg.lam


def test_neutral_skip_reduces_evaluations(seed3, fit3):
    _, ch = seed3
    rng_a = np.random.default_rng(9)
    rng_b = np.random.default_rng(9)
    with_skip = evolve(
        ch,
        fit3,
        threshold=0.02,
        config=EvolutionConfig(generations=50, skip_neutral_evaluations=True),
        rng=rng_a,
    )
    without = evolve(
        ch,
        fit3,
        threshold=0.02,
        config=EvolutionConfig(generations=50, skip_neutral_evaluations=False),
        rng=rng_b,
    )
    assert with_skip.evaluations <= without.evaluations
    # Same RNG stream -> same search trajectory -> same result.
    assert with_skip.best_eval.fitness == pytest.approx(without.best_eval.fitness)


def test_evolution_deterministic_given_seed(seed3, fit3):
    _, ch = seed3
    res1 = evolve(
        ch, fit3, threshold=0.03,
        config=EvolutionConfig(generations=120),
        rng=np.random.default_rng(77),
    )
    res2 = evolve(
        ch, fit3, threshold=0.03,
        config=EvolutionConfig(generations=120),
        rng=np.random.default_rng(77),
    )
    assert np.array_equal(res1.best.genes, res2.best.genes)
    assert res1.best_eval.fitness == res2.best_eval.fitness


def test_time_limit_stops_early(seed3, fit3, rng):
    _, ch = seed3
    res = evolve(
        ch,
        fit3,
        threshold=0.02,
        config=EvolutionConfig(generations=10_000, time_limit_s=0.05),
        rng=rng,
    )
    assert res.generations < 10_000


def test_distribution_weighted_fitness_prefers_weighted_inputs(rng):
    """Evolving under a half-normal D must not hurt low-x accuracy.

    The evolved circuit's WMED under its own design distribution must be
    within threshold even when its uniform WMED exceeds it — evidence the
    search exploited the distribution.
    """
    net = build_baugh_wooley_multiplier(4)
    ch = netlist_to_chromosome(net, params_for_netlist(net, extra_columns=10))
    d = discretized_half_normal(4, sigma=2.0, signed=True, name="half")
    fit = MultiplierFitness(4, d)
    res = evolve(
        ch, fit, threshold=0.02,
        config=EvolutionConfig(generations=600), rng=rng,
    )
    assert res.best_eval.wmed <= 0.02 + 1e-12
    table = truth_table(res.best.to_netlist(), signed=True)
    exact = exact_product_table(4, True)
    wmed_own = wmed(exact, table, d)
    assert wmed_own <= 0.02 + 1e-12
