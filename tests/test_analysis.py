"""Analysis helpers: sweeps, heat maps, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_WMED_LEVELS,
    banner,
    characterize_multiplier,
    downsample,
    error_heatmap,
    error_mass_correlation,
    evolve_front,
    format_pmf_sparkline,
    format_series,
    format_table,
    render_ascii,
)
from repro.baselines import build_truncated_multiplier
from repro.circuits.generators import build_baugh_wooley_multiplier
from repro.circuits.simulator import truth_table
from repro.core import EvolutionConfig
from repro.errors import from_pmf, uniform


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.34567], [10, 3.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "2.346" in text  # 4 significant digits


def test_format_table_row_guard():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_format_table_title():
    assert format_table(["a"], [[1]], title="T").splitlines()[0] == "T"


def test_sparkline_shape():
    line = format_pmf_sparkline(np.ones(256) / 256, bins=64)
    assert len(line) == 64
    assert len(set(line)) == 1  # uniform -> flat


def test_sparkline_peak_position():
    pmf = np.zeros(64)
    pmf[0] = 1.0
    line = format_pmf_sparkline(pmf, bins=64)
    assert line[0] == "@"


def test_sparkline_empty():
    assert format_pmf_sparkline([]) == ""


def test_format_series():
    s = format_series("t", [1.0], [2.0], "x", "y")
    assert s.startswith("t [x vs y]")
    assert "(1, 2)" in s


def test_banner():
    assert "hello" in banner("hello")


# ----------------------------------------------------------------------
# Heat maps
# ----------------------------------------------------------------------
def test_error_heatmap_exact_is_zero(exact4s):
    m = error_heatmap(exact4s, 4, signed=True)
    assert m.shape == (16, 16)
    assert m.max() == 0.0


def test_error_heatmap_truncated_low_columns(exact8u):
    net = build_truncated_multiplier(8, 6, signed=False)
    m = error_heatmap(truth_table(net), 8, signed=False, relative=False)
    # Row x=0: products are all 0 and truncation keeps them 0.
    assert m[0].max() == 0.0
    assert m.max() > 0


def test_downsample_mean_pooling():
    m = np.arange(16.0).reshape(4, 4)
    small = downsample(m, 2)
    assert small.shape == (2, 2)
    assert small[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)


def test_downsample_guards():
    with pytest.raises(ValueError):
        downsample(np.zeros((4, 5)), 2)
    with pytest.raises(ValueError):
        downsample(np.zeros((4, 4)), 3)


def test_render_ascii_size():
    m = np.random.default_rng(0).random((64, 64))
    art = render_ascii(m, bins=16)
    lines = art.splitlines()
    assert len(lines) == 16 and all(len(l) == 16 for l in lines)


def test_render_ascii_all_zero():
    art = render_ascii(np.zeros((32, 32)), bins=8)
    assert set(art.replace("\n", "")) == {" "}


def test_error_mass_correlation_negative_for_protected_rows(exact4u):
    """Error placed only on low-probability rows -> negative correlation."""
    pmf = np.ones(16)
    pmf[12:] = 0.01  # high x patterns are unlikely
    d = from_pmf(pmf, width=4, name="skew")
    table = exact4u.copy()
    x_idx = np.arange(256) % 16
    table[x_idx >= 12] += 20  # error mass exactly on unlikely rows
    corr = error_mass_correlation(table, 4, d)
    assert corr < 0


def test_error_mass_correlation_zero_for_exact(exact4u):
    assert error_mass_correlation(exact4u, 4, uniform(4)) == 0.0


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------
def test_paper_levels_cover_table1():
    assert PAPER_WMED_LEVELS[0] == 0.0
    assert PAPER_WMED_LEVELS[-1] == 10.0


def test_characterize_multiplier_cross_evaluates(bw4):
    du = uniform(4, signed=True)
    pmf = np.zeros(16)
    pmf[1] = 1.0
    point = from_pmf(pmf, width=4, signed=True, name="point")
    dp = characterize_multiplier(bw4, 4, [du, point], name="exact4")
    assert dp.wmed_by_dist["Du"] == 0.0
    assert dp.wmed_by_dist["point"] == 0.0
    assert dp.power_mw > 0
    assert dp.area > 0


def test_characterize_multiplier_guards(bw4):
    with pytest.raises(ValueError):
        characterize_multiplier(bw4, 4, [])
    with pytest.raises(ValueError):
        characterize_multiplier(
            bw4, 4, [uniform(4, signed=True), uniform(4, signed=False)]
        )


def test_evolve_front_produces_monotone_usable_points(rng):
    seed = build_baugh_wooley_multiplier(3)
    du = uniform(3, signed=True)
    points = evolve_front(
        seed,
        3,
        design_dist=du,
        thresholds_percent=[1.0, 5.0],
        eval_dists=[du],
        config=EvolutionConfig(generations=150),
        rng=rng,
    )
    assert len(points) == 2
    for p, level in zip(points, [1.0, 5.0]):
        assert p.wmed_percent("Du") <= level + 1e-9
        assert p.threshold_percent == level
    # The looser target can only be cheaper or equal.
    assert points[1].area <= points[0].area + 1e-9
