"""Packed-bit simulator: packing, stimulus, decoding, reference cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.netlist import Netlist
from repro.circuits.simulator import (
    exhaustive_inputs,
    output_values,
    pack_bits,
    pack_input_vectors,
    popcount,
    simulate,
    simulate_reference,
    simulate_signals,
    truth_table,
    unpack_bits,
    words_for,
    words_to_values,
)


def test_words_for():
    assert words_for(0) == 0
    assert words_for(1) == 1
    assert words_for(64) == 1
    assert words_for(65) == 2
    with pytest.raises(ValueError):
        words_for(-1)


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=300))
def test_pack_unpack_roundtrip(bits):
    packed = pack_bits(np.array(bits))
    assert np.array_equal(unpack_bits(packed, len(bits)), np.array(bits))


def test_pack_bits_little_endian_order():
    packed = pack_bits(np.array([1, 0, 0, 0, 0, 0, 0, 0, 1]))
    assert int(packed[0]) == 0b1_0000_0001


def test_popcount():
    bits = np.zeros(130, dtype=np.uint8)
    bits[[0, 64, 129]] = 1
    assert popcount(pack_bits(bits), 130) == 3


def test_exhaustive_inputs_patterns():
    stim = exhaustive_inputs(3)
    assert stim.shape == (3, 1)
    for k in range(3):
        bits = unpack_bits(stim[k], 8)
        expected = [(v >> k) & 1 for v in range(8)]
        assert list(bits) == expected


def test_exhaustive_inputs_rejects_bad_sizes():
    with pytest.raises(ValueError):
        exhaustive_inputs(0)
    with pytest.raises(ValueError):
        exhaustive_inputs(30)


def test_pack_input_vectors_matches_exhaustive():
    vectors = np.arange(16)
    assert np.array_equal(pack_input_vectors(vectors, 4), exhaustive_inputs(4))


def test_pack_input_vectors_custom():
    stim = pack_input_vectors(np.array([0b10, 0b01]), 2)
    assert list(unpack_bits(stim[0], 2)) == [0, 1]
    assert list(unpack_bits(stim[1], 2)) == [1, 0]


def _mux_netlist():
    """2:1 mux: inputs [a, b, sel]; out = sel ? b : a."""
    net = Netlist(num_inputs=3)
    nsel = net.add_gate("NOT", 2)
    t1 = net.add_gate("AND", 0, nsel)
    t2 = net.add_gate("AND", 1, 2)
    net.set_outputs([net.add_gate("OR", t1, t2)])
    return net


def test_mux_truth_table():
    tt = truth_table(_mux_netlist())
    for v in range(8):
        a, b, sel = v & 1, (v >> 1) & 1, (v >> 2) & 1
        assert tt[v] == (b if sel else a)


def test_simulate_stimulus_shape_mismatch():
    net = _mux_netlist()
    with pytest.raises(ValueError):
        simulate(net, exhaustive_inputs(2))


def test_simulate_matches_reference_on_random_netlists(rng):
    """Property: packed simulation == scalar reference simulation."""
    from repro.circuits.gates import FULL_FUNCTION_SET

    for _ in range(20):
        ni = int(rng.integers(2, 6))
        net = Netlist(num_inputs=ni)
        for _g in range(int(rng.integers(1, 15))):
            fn = FULL_FUNCTION_SET[int(rng.integers(0, len(FULL_FUNCTION_SET)))]
            a = int(rng.integers(0, net.num_signals))
            b = int(rng.integers(0, net.num_signals))
            net.add_gate(fn, a, b)
        outs = rng.integers(0, net.num_signals, size=int(rng.integers(1, 4)))
        net.set_outputs([int(o) for o in outs])
        tt = truth_table(net)
        for v in range(1 << ni):
            assert tt[v] == simulate_reference(net, v)


def test_words_to_values_unsigned():
    words = [pack_bits(np.array([1, 0])), pack_bits(np.array([1, 1]))]
    vals = words_to_values(words, 2)
    assert list(vals) == [3, 2]


def test_words_to_values_signed():
    # Two outputs: bit1 is the sign bit of a 2-bit two's complement value.
    words = [pack_bits(np.array([1, 0])), pack_bits(np.array([1, 0]))]
    vals = words_to_values(words, 2, signed=True)
    assert list(vals) == [-1, 0]


def test_output_values_on_identity():
    net = Netlist(num_inputs=2)
    net.set_outputs([0, 1])
    vals = output_values(net, exhaustive_inputs(2), 4)
    assert list(vals) == [0, 1, 2, 3]


def test_simulate_signals_covers_active_cone():
    net = _mux_netlist()
    values = simulate_signals(net, exhaustive_inputs(3))
    assert all(values[s] is not None for s in net.active_signals())


def test_simulate_signals_skips_dead_gates():
    net = Netlist(num_inputs=2)
    live = net.add_gate("XOR", 0, 1)
    dead = net.add_gate("AND", 0, 1)
    net.set_outputs([live])
    values = simulate_signals(net, exhaustive_inputs(2))
    assert values[dead] is None


def test_active_only_flag_still_computes_outputs():
    net = _mux_netlist()
    full = simulate(net, exhaustive_inputs(3), active_only=False)
    lazy = simulate(net, exhaustive_inputs(3), active_only=True)
    for a, b in zip(full, lazy):
        assert np.array_equal(a, b)
