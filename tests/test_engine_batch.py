"""Tests for the engine's batched evaluation ABI (PR 6).

The batch path's contract is the same as the engine's overall: *bit
identical* to evaluating sequentially — same compiled programs, same
integer kernels, same reductions — whatever the component, metric,
backend, or brood composition (duplicates, cache hits).  On top of
that sit the batch-specific behaviors: within-batch phenotype dedupe,
the eval-cache lookup that prevents recompiled cache-miss storms, the
single-owner arena guard, the ``REPRO_OMP`` knob, and the native
exact-integer reduction fast path.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.components import component_objective, component_names, get_component
from repro.core.evolution import EvolutionConfig, evolve
from repro.core.mutation import mutate
from repro.core.seeding import netlist_to_chromosome, params_for_netlist
from repro.engine import (
    CompiledMultiplierFitness,
    CompiledObjective,
    native_available,
)
from repro.engine.native import omp_threads
from repro.errors.distributions import discretized_half_normal, uniform

BACKENDS = ["numpy"] + (["native"] if native_available() else [])
METRICS = ("wmed", "med", "mred", "error-rate", "worst-case")


def _seed_chromosome(component: str, width: int, extra: int = 8):
    comp = get_component(component)
    net = comp.build_seed(width, comp.resolve_signed(False))
    return netlist_to_chromosome(
        net, params_for_netlist(net, extra_columns=extra)
    )


def _objective(component, width, metric, backend, **kw):
    return CompiledObjective(
        component_objective(component, width, uniform(width), metric=metric),
        backend=backend,
        **kw,
    )


def _brood(component, width, n, seed=11):
    rng = np.random.default_rng(seed)
    c = _seed_chromosome(component, width)
    brood = []
    for _ in range(n):
        c, _ = mutate(c, 6, rng)
        brood.append(c)
    return brood


# ----------------------------------------------------------------------
# Bit-identity: batch vs sequential, across the whole catalog
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("component", component_names())
def test_batch_bit_identical_to_sequential(component, metric, backend):
    width = 3 if component == "mac" else 4
    brood = _brood(component, width, 8)
    brood.append(brood[0])  # in-batch duplicate phenotype
    batch_obj = _objective(component, width, metric, backend)
    seq_obj = _objective(component, width, metric, backend)
    batched = batch_obj.evaluate_batch(brood, 0.05)
    sequential = [seq_obj.evaluate(c, 0.05) for c in brood]
    assert batched == sequential
    # Second pass is fully cache-served and still identical.
    assert batch_obj.evaluate_batch(brood, 0.05) == sequential
    assert batch_obj.cache.stats()["hits"] >= len(brood)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_identical_across_backends(backend):
    # Cross-backend spot check on the paper's main configuration.
    brood = _brood("multiplier", 4, 6, seed=3)
    ref = _objective("multiplier", 4, "wmed", "numpy")
    obj = _objective("multiplier", 4, "wmed", backend)
    assert obj.evaluate_batch(brood, 0.01) == ref.evaluate_batch(brood, 0.01)


def test_empty_and_singleton_batches():
    obj = _objective("adder", 4, "wmed", "auto")
    assert obj.evaluate_batch([], 0.01) == []
    ch = _seed_chromosome("adder", 4)
    assert obj.evaluate_batch([ch], 0.01) == [obj.evaluate(ch, 0.01)]


# ----------------------------------------------------------------------
# Within-batch dedupe + cache lookup (the miss-storm fix)
# ----------------------------------------------------------------------
def test_batch_dedupes_identical_phenotypes():
    obj = _objective("multiplier", 4, "wmed", "auto")
    ch = _seed_chromosome("multiplier", 4)
    brood = [ch, ch.copy(), ch.copy(), ch.copy()]
    results = obj.evaluate_batch(brood, 0.01)
    assert len(set(results)) == 1
    st = obj.stats()["batch"]
    # One phenotype executed; the other three were deduped in-batch.
    assert st["evals"] == 1
    assert st["dedup"] == 3


def test_batch_serves_cache_before_dispatch():
    obj = _objective("multiplier", 4, "wmed", "auto")
    brood = _brood("multiplier", 4, 5)
    obj.evaluate_batch(brood, 0.01)
    evals_before = obj.stats()["batch"]["evals"]
    obj.evaluate_batch(brood, 0.01)  # all phenotypes already cached
    st = obj.stats()
    assert st["batch"]["evals"] == evals_before
    assert st["cache"]["hits"] >= len(brood)


def test_seeded_evolve_run_has_cache_hits():
    # Regression for the eval-cache miss storm: a short seeded run must
    # produce a nonzero hit rate (neutral drift revisits phenotypes).
    eng = CompiledMultiplierFitness(3, uniform(3))
    seed = _seed_chromosome("multiplier", 3)
    evolve(
        seed, eng, 0.01, EvolutionConfig(generations=400),
        rng=np.random.default_rng(2024),
    )
    stats = eng.stats()["cache"]
    assert stats["hits"] > 0


# ----------------------------------------------------------------------
# Single-owner guard
# ----------------------------------------------------------------------
def test_arena_rejects_cross_thread_use():
    obj = _objective("adder", 4, "wmed", "auto")
    ch = _seed_chromosome("adder", 4)
    obj.evaluate(ch, 0.01)  # builds the runtime on this thread
    caught = []

    def use_from_other_thread():
        try:
            obj.evaluate_batch([ch], 0.01)
        except RuntimeError as exc:
            caught.append(exc)

    t = threading.Thread(target=use_from_other_thread)
    t.start()
    t.join()
    assert len(caught) == 1 and "single-owner" in str(caught[0])
    # The owning thread keeps working.
    assert obj.evaluate(ch, 0.01) == obj.evaluate(ch, 0.01)


# ----------------------------------------------------------------------
# REPRO_OMP knob
# ----------------------------------------------------------------------
def test_repro_omp_off_forces_serial_and_identical_results(monkeypatch):
    brood = _brood("multiplier", 4, 6, seed=9)
    default = _objective("multiplier", 4, "wmed", "auto")
    expected = default.evaluate_batch(brood, 0.01)
    monkeypatch.setenv("REPRO_OMP", "0")
    assert omp_threads() == 1
    serial = _objective("multiplier", 4, "wmed", "auto")
    assert serial.evaluate_batch(brood, 0.01) == expected


def test_omp_threads_always_concrete(monkeypatch):
    for raw, expect_one in (("0", True), ("off", True), ("no", True),
                            ("false", True), ("1", True)):
        monkeypatch.setenv("REPRO_OMP", raw)
        n = omp_threads()
        assert n >= 1
        if expect_one:
            assert n == 1
    monkeypatch.delenv("REPRO_OMP")
    assert omp_threads() >= 1  # auto resolves to a concrete count


# ----------------------------------------------------------------------
# Exact-integer reduction fast path
# ----------------------------------------------------------------------
def test_fast_reduce_eligibility():
    # Uniform weights are one power of two: wmed/med/error-rate/worst-case
    # reduce exactly; mred never does; non-pow2 weights disable the
    # weight-dependent metrics but not med/worst-case.
    for metric, kind in (("wmed", "wmed"), ("med", "med"),
                         ("error-rate", "error-rate"),
                         ("worst-case", "worst-case"), ("mred", None)):
        obj = _objective("multiplier", 4, metric, "auto")
        assert obj.stats()["fast_reduce"] == kind
    skewed = discretized_half_normal(4, sigma=4.0, name="Dh")
    for metric, kind in (("wmed", None), ("error-rate", None),
                         ("med", "med"), ("worst-case", "worst-case")):
        obj = CompiledObjective(
            component_objective("multiplier", 4, skewed, metric=metric)
        )
        assert obj.stats()["fast_reduce"] == kind


@pytest.mark.skipif(not native_available(), reason="native backend required")
def test_reduce_stats_match_materialized_distances():
    # The C integer triple must equal what the float64 distance row
    # implies — exactly, not approximately.
    obj = _objective("multiplier", 4, "wmed", "native", cache_entries=0)
    rt = obj._runtime(_seed_chromosome("multiplier", 4).params)
    for ch in _brood("multiplier", 4, 12, seed=21):
        n_ops = rt.compile(ch.genes)
        rt.execute(n_ops)
        s, nz, mx = rt.reduce_stats(obj.signed)
        err = rt.error(obj.signed, obj._exact32).copy()
        assert s == int(err.sum())
        assert nz == int(np.count_nonzero(err))
        assert mx == int(err.max())
        # And the fast formula reproduces the reference metric exactly.
        assert obj._reduce_error(s, nz, mx) == obj.metric.from_distances(
            err, obj.weights, obj.normalizer, obj.reference
        )
