"""Conventional approximate multiplier baselines."""

import numpy as np
import pytest

from repro.baselines import (
    build_broken_array_multiplier,
    build_truncated_multiplier,
    build_zero_guard_multiplier,
    conventional_multiplier_library,
    wrap_zero_guard,
)
from repro.circuits.netlist import Netlist
from repro.circuits.simulator import truth_table
from repro.circuits.verify import verify_multiplier
from repro.errors import exact_product_table, uniform, wmed
from repro.tech import circuit_area


# ----------------------------------------------------------------------
# Truncated
# ----------------------------------------------------------------------
@pytest.mark.parametrize("signed", [False, True])
def test_truncation_zero_is_exact(signed):
    verify_multiplier(
        build_truncated_multiplier(6, 0, signed=signed), 6, signed=signed
    )


def test_truncation_bounds_checked():
    with pytest.raises(ValueError):
        build_truncated_multiplier(4, -1)
    with pytest.raises(ValueError):
        build_truncated_multiplier(4, 9)


def test_full_truncation_outputs_zero():
    net = build_truncated_multiplier(4, 8, signed=False)
    assert np.all(truth_table(net) == 0)


def test_truncated_low_bits_are_zero():
    k = 3
    net = build_truncated_multiplier(4, k, signed=False)
    tt = truth_table(net)
    assert np.all(tt % (1 << k) == 0)


def test_truncation_error_bounded(exact8u):
    """Dropping k columns can cost at most the dropped column mass."""
    for k in (2, 4, 6):
        net = build_truncated_multiplier(8, k, signed=False)
        tt = truth_table(net)
        err = np.abs(exact8u - tt)
        # Worst case: every dropped partial product was 1 and carries are
        # lost; a loose but sound bound is 2**(k+3).
        assert err.max() <= 1 << (k + 3)


def test_truncation_area_monotone():
    areas = [
        circuit_area(build_truncated_multiplier(8, k, signed=True))
        for k in range(0, 9, 2)
    ]
    assert all(a >= b for a, b in zip(areas, areas[1:]))


def test_truncation_wmed_monotone(exact8s, trunc8s_tables, du8s):
    vals = [wmed(exact8s, trunc8s_tables[k], du8s) for k in range(9)]
    assert all(a <= b + 1e-15 for a, b in zip(vals, vals[1:]))


# ----------------------------------------------------------------------
# Broken array
# ----------------------------------------------------------------------
def test_bam_no_breaks_is_exact():
    verify_multiplier(
        build_broken_array_multiplier(5, 0, 0, signed=False), 5, signed=False
    )
    verify_multiplier(
        build_broken_array_multiplier(5, 0, 0, signed=True), 5, signed=True
    )


def test_bam_bounds_checked():
    with pytest.raises(ValueError):
        build_broken_array_multiplier(4, vbl=9)
    with pytest.raises(ValueError):
        build_broken_array_multiplier(4, hbl=5)


def test_bam_vbl_equals_truncation():
    """With hbl=0 the BAM reduces to plain column truncation."""
    for k in (2, 4):
        bam = build_broken_array_multiplier(6, vbl=k, hbl=0, signed=False)
        trunc = build_truncated_multiplier(6, k, signed=False)
        assert np.array_equal(truth_table(bam), truth_table(trunc))


def test_bam_hbl_reduces_area_further():
    a0 = circuit_area(build_broken_array_multiplier(8, 4, 0, signed=True))
    a2 = circuit_area(build_broken_array_multiplier(8, 4, 3, signed=True))
    assert a2 < a0


def test_bam_error_grows_with_breaks(exact8s, du8s):
    errs = []
    for vbl in (2, 4, 6, 8):
        net = build_broken_array_multiplier(8, vbl, vbl // 2, signed=True)
        errs.append(wmed(exact8s, truth_table(net, signed=True), du8s))
    assert all(a <= b + 1e-15 for a, b in zip(errs, errs[1:]))


# ----------------------------------------------------------------------
# Zero guard
# ----------------------------------------------------------------------
@pytest.mark.parametrize("signed", [False, True])
def test_zero_guard_guarantee(signed):
    net = build_zero_guard_multiplier(6, truncation=5, signed=signed)
    tt = truth_table(net, signed=signed)
    n = 1 << 6
    x = np.tile(np.arange(n), n)
    y = np.repeat(np.arange(n), n)
    zero = (x == 0) | (y == 0)
    assert np.all(tt[zero] == 0)


def test_zero_guard_preserves_core_elsewhere():
    core = build_truncated_multiplier(4, 3, signed=False)
    net = wrap_zero_guard(core, 4)
    tt_core = truth_table(core)
    tt = truth_table(net)
    n = 16
    x = np.tile(np.arange(n), n)
    y = np.repeat(np.arange(n), n)
    nonzero = (x != 0) & (y != 0)
    assert np.array_equal(tt[nonzero], tt_core[nonzero])


def test_zero_guard_interface_check():
    bad = Netlist(num_inputs=6)
    bad.set_outputs([0])
    with pytest.raises(ValueError):
        wrap_zero_guard(bad, 4)


def test_zero_guard_reduces_wmed_under_zero_heavy_distribution(exact8s):
    """With a zero-peaked D, the zero guard pays off (the Mrazek'16 insight)."""
    from repro.errors import from_pmf

    pmf = np.full(256, 0.2 / 255)
    pmf[0] = 0.8  # 80 % zeros, like sparse NN weights
    d = from_pmf(pmf, width=8, signed=True, name="sparse")
    plain = build_truncated_multiplier(8, 7, signed=True)
    guarded = build_zero_guard_multiplier(8, 7, signed=True)
    w_plain = wmed(exact8s, truth_table(plain, signed=True), d)
    w_guard = wmed(exact8s, truth_table(guarded, signed=True), d)
    assert w_guard <= w_plain


# ----------------------------------------------------------------------
# Library
# ----------------------------------------------------------------------
def test_library_families_and_count():
    lib = conventional_multiplier_library(8, signed=True)
    families = {e.family for e in lib}
    assert families == {"truncated", "broken-array", "zero-guard"}
    assert len(lib) >= 20


def test_library_family_filter():
    lib = conventional_multiplier_library(8, signed=True, families=["truncated"])
    assert all(e.family == "truncated" for e in lib)
    with pytest.raises(ValueError):
        conventional_multiplier_library(8, families=["booth"])


def test_library_tables_match_netlists():
    lib = conventional_multiplier_library(4, signed=False, families=["truncated"])
    for entry in lib[:3]:
        assert np.array_equal(
            entry.table, truth_table(entry.netlist, signed=False)
        )


def test_library_contains_exact_reference():
    lib = conventional_multiplier_library(4, signed=True, families=["truncated"])
    exact = exact_product_table(4, True)
    assert any(np.array_equal(e.table, exact) for e in lib)
