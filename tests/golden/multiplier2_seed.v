module multiplier2_seed (
    input  wire in_0, in_1, in_2, in_3,
    output wire out_0, out_1, out_2, out_3
);
    wire w4 = in_0 & in_2;
    wire w5 = in_1 & in_2;
    wire w6 = in_0 & in_3;
    wire w7 = in_1 & in_3;
    wire w8 = 1'b0;
    wire w9 = w5 ^ w6;
    wire w10 = w5 & w6;
    wire w11 = w8 ^ w7;
    wire w12 = w11 ^ w10;
    wire w13 = w8 & w7;
    wire w14 = w11 & w10;
    wire w15 = w13 | w14;
    assign out_0 = w4;
    assign out_1 = w9;
    assign out_2 = w12;
    assign out_3 = w15;
endmodule
