module barrel_shifter2_seed (
    input  wire in_0, in_1, in_2, in_3,
    output wire out_0, out_1
);
    wire w4 = ~in_2;
    wire w5 = in_0 & w4;
    wire w6 = in_0 & in_2;
    wire w7 = in_1 & w4;
    wire w8 = w6 | w7;
    assign out_0 = w5;
    assign out_1 = w8;
endmodule
