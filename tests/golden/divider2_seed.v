module divider2_seed (
    input  wire in_0, in_1, in_2, in_3,
    output wire out_0, out_1
);
    wire w4 = 1'b0;
    wire w5 = in_1 ^ in_2;
    wire w6 = ~in_1;
    wire w7 = w6 & in_2;
    wire w8 = w4 ^ in_3;
    wire w9 = w8 ^ w7;
    wire w10 = ~w4;
    wire w11 = w10 & in_3;
    wire w12 = ~w8;
    wire w13 = w12 & w7;
    wire w14 = w11 | w13;
    wire w15 = w4 ^ w4;
    wire w17 = ~w4;
    wire w18 = w17 & w4;
    wire w19 = ~w15;
    wire w20 = w19 & w14;
    wire w21 = w18 | w20;
    wire w22 = ~w21;
    wire w23 = in_1 & w21;
    wire w24 = w5 & w22;
    wire w25 = w23 | w24;
    wire w26 = w4 & w21;
    wire w27 = w9 & w22;
    wire w28 = w26 | w27;
    wire w30 = ~in_0;
    wire w31 = w30 & in_2;
    wire w32 = w25 ^ in_3;
    wire w34 = ~w25;
    wire w35 = w34 & in_3;
    wire w36 = ~w32;
    wire w37 = w36 & w31;
    wire w38 = w35 | w37;
    wire w39 = w28 ^ w4;
    wire w41 = ~w28;
    wire w42 = w41 & w4;
    wire w43 = ~w39;
    wire w44 = w43 & w38;
    wire w45 = w42 | w44;
    wire w46 = ~w45;
    assign out_0 = w46;
    assign out_1 = w22;
endmodule
