module subtractor2_seed (
    input  wire in_0, in_1, in_2, in_3,
    output wire out_0, out_1, out_2
);
    wire w4 = in_0 ^ in_2;
    wire w5 = ~in_0;
    wire w6 = w5 & in_2;
    wire w7 = in_1 ^ in_3;
    wire w8 = w7 ^ w6;
    wire w9 = ~in_1;
    wire w10 = w9 & in_3;
    wire w11 = ~w7;
    wire w12 = w11 & w6;
    wire w13 = w10 | w12;
    assign out_0 = w4;
    assign out_1 = w8;
    assign out_2 = w13;
endmodule
