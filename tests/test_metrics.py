"""Error metrics: WMED and friends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    error_bias,
    error_distances,
    error_rate,
    evaluate_errors,
    exact_product_table,
    from_pmf,
    mean_error_distance,
    mean_relative_error,
    max_product_magnitude,
    normalized_med,
    uniform,
    vector_weights,
    wmed,
    wmed_paper,
    worst_case_error,
)


def test_error_distances_basic():
    assert list(error_distances([1, 2, 3], [1, 0, 6])) == [0, 2, 3]


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        mean_error_distance([1, 2], [1])


def test_empty_rejected():
    with pytest.raises(ValueError):
        mean_error_distance([], [])


def test_med_unweighted():
    assert mean_error_distance([0, 0, 0, 0], [1, 1, 1, 5]) == pytest.approx(2.0)


def test_med_weighted():
    med = mean_error_distance([0, 0], [10, 0], weights=[1.0, 3.0])
    assert med == pytest.approx(2.5)


def test_med_weights_must_be_positive_mass():
    with pytest.raises(ValueError):
        mean_error_distance([0], [1], weights=[0.0])


def test_exact_circuit_has_zero_everything(exact4s, du8s):
    d = uniform(4, signed=True)
    rep = evaluate_errors(exact4s, exact4s, d)
    assert rep.med == 0
    assert rep.wmed == 0
    assert rep.error_rate == 0
    assert rep.worst_case == 0
    assert rep.bias == 0


def test_wmed_uniform_equals_normalized_med(exact4u):
    approx = exact4u.copy()
    approx[::3] += 5
    d = uniform(4)
    assert wmed(exact4u, approx, d) == pytest.approx(
        normalized_med(exact4u, approx, 4, False)
    )


def test_wmed_respects_distribution():
    """Errors on zero-probability operands do not count."""
    exact = exact_product_table(3, signed=False)
    approx = exact.copy()
    # Corrupt all vectors where x == 7.
    x_idx = np.arange(64) % 8
    approx[x_idx == 7] += 40
    pmf = np.ones(8)
    pmf[7] = 0.0
    d = from_pmf(pmf, width=3, name="no7")
    assert wmed(exact, approx, d) == 0.0
    assert wmed(exact, approx, uniform(3)) > 0.0


def test_wmed_point_mass_selects_row():
    exact = exact_product_table(3, signed=False)
    approx = exact + 1  # uniform error of 1 everywhere
    pmf = np.zeros(8)
    pmf[4] = 1.0
    d = from_pmf(pmf, width=3)
    assert wmed(exact, approx, d) == pytest.approx(1.0 / 49)


def test_wmed_paper_relation(exact4u):
    """Literal Eq. (WMED) = normalized wmed * max|product| * 2^w / 2^(2w)."""
    approx = exact4u + 3
    d = uniform(4)
    lhs = wmed_paper(exact4u, approx, d)
    rhs = (
        wmed(exact4u, approx, d)
        * max_product_magnitude(4, False)
        * (1 << 4)
        / (1 << 8)
    )
    assert lhs == pytest.approx(rhs)


def test_wmed_bounded_by_one(exact4u):
    worst = np.zeros_like(exact4u)  # all-zero output
    val = wmed(exact4u, worst, uniform(4))
    assert 0 <= val <= 1


def test_mre_epsilon_guards_zero():
    val = mean_relative_error([0, 4], [1, 2], epsilon=1.0)
    assert val == pytest.approx((1 / 1 + 2 / 4) / 2)


def test_error_rate():
    assert error_rate([1, 2, 3, 4], [1, 0, 3, 0]) == pytest.approx(0.5)


def test_error_rate_weighted():
    r = error_rate([1, 2], [0, 2], weights=[3.0, 1.0])
    assert r == pytest.approx(0.75)


def test_worst_case_error():
    assert worst_case_error([0, 0], [5, -7]) == 7


def test_error_bias_sign():
    assert error_bias([0, 0], [2, 4]) == pytest.approx(3.0)
    assert error_bias([0, 0], [-2, -4]) == pytest.approx(-3.0)


def test_evaluate_errors_consistency(exact8s, trunc8s_tables, du8s):
    rep = evaluate_errors(exact8s, trunc8s_tables[4], du8s)
    assert rep.wmed_percent == pytest.approx(100 * rep.wmed)
    assert rep.worst_case > 0
    assert rep.med > 0
    # Truncation only ever reduces magnitude -> negative bias for
    # non-negative products dominates; just check it is nonzero.
    assert rep.bias != 0


def test_truncation_error_monotone_in_k(exact8s, trunc8s_tables, du8s):
    """More truncation -> more WMED (the Fig. 3 baseline curve)."""
    wmeds = [
        wmed(exact8s, trunc8s_tables[k], du8s) for k in range(9)
    ]
    assert wmeds[0] == 0.0
    assert all(a <= b + 1e-15 for a, b in zip(wmeds, wmeds[1:]))


@given(
    offset=st.integers(min_value=-50, max_value=50),
)
@settings(max_examples=20, deadline=None)
def test_constant_offset_med_property(offset, exact4u):
    """MED of a constant offset equals |offset|."""
    approx = exact4u + offset
    assert mean_error_distance(exact4u, approx) == pytest.approx(abs(offset))


def test_vector_weights_layout():
    pmf = np.zeros(4)
    pmf[2] = 1.0
    d = from_pmf(pmf, width=2)
    w = vector_weights(d, 2)
    # weight 1 exactly where x pattern == 2 (vector index % 4 == 2)
    assert np.array_equal(np.nonzero(w)[0] % 4, np.full(4, 2))


def test_vector_weights_width_guard():
    with pytest.raises(ValueError):
        vector_weights(uniform(4), 3)
