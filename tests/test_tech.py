"""Technology cost models: area, power, timing, PDP."""

import numpy as np
import pytest

from repro.circuits.gates import GATE_REGISTRY
from repro.circuits.netlist import Netlist
from repro.circuits.generators import (
    build_array_multiplier,
    build_baugh_wooley_multiplier,
    build_ripple_carry_adder,
)
from repro.errors import uniform, vector_weights
from repro.tech import (
    NANGATE45,
    characterize,
    circuit_area,
    circuit_power,
    critical_path,
    critical_path_delay,
    default_library,
    pdp,
    signal_probabilities,
)
from repro.baselines import build_truncated_multiplier


def test_library_covers_all_gate_functions():
    for fn in GATE_REGISTRY:
        assert NANGATE45.cell(fn).name == fn


def test_library_unknown_cell():
    with pytest.raises(KeyError):
        NANGATE45.cell("MAJ3")


def test_constants_are_free():
    assert NANGATE45.cell("CONST0").area == 0.0
    assert NANGATE45.cell("CONST1").delay == 0.0


def test_xor_costs_more_than_nand():
    assert NANGATE45.cell("XOR").area > NANGATE45.cell("NAND").area
    assert NANGATE45.cell("XOR").delay > NANGATE45.cell("NAND").delay


def test_area_counts_active_only():
    net = Netlist(num_inputs=2)
    live = net.add_gate("AND", 0, 1)
    net.add_gate("XOR", 0, 1)  # dead
    net.set_outputs([live])
    assert circuit_area(net) == pytest.approx(NANGATE45.cell("AND").area)
    assert circuit_area(net, active_only=False) == pytest.approx(
        NANGATE45.cell("AND").area + NANGATE45.cell("XOR").area
    )


def test_truncation_reduces_all_costs():
    exact = build_truncated_multiplier(8, 0, signed=True)
    trunc = build_truncated_multiplier(8, 6, signed=True)
    s_exact = characterize(exact)
    s_trunc = characterize(trunc)
    assert s_trunc.area < s_exact.area
    assert s_trunc.power.total < s_exact.power.total
    assert s_trunc.pdp < s_exact.pdp


def test_signal_probabilities_inputs_half():
    net = build_ripple_carry_adder(2)
    probs = signal_probabilities(net)
    for k in range(net.num_inputs):
        assert probs[k] == pytest.approx(0.5)


def test_signal_probabilities_and_gate():
    net = Netlist(num_inputs=2)
    net.set_outputs([net.add_gate("AND", 0, 1)])
    probs = signal_probabilities(net)
    assert probs[2] == pytest.approx(0.25)


def test_signal_probabilities_weighted():
    net = Netlist(num_inputs=2)
    net.set_outputs([net.add_gate("AND", 0, 1)])
    # Put all probability on vector 3 (both inputs 1).
    weights = np.array([0.0, 0.0, 0.0, 1.0])
    probs = signal_probabilities(net, weights=weights)
    assert probs[2] == pytest.approx(1.0)


def test_weighted_power_differs_from_uniform():
    net = build_baugh_wooley_multiplier(4)
    d = uniform(4, signed=True)
    w = vector_weights(d, 4)
    uniform_power = circuit_power(net).total
    # Concentrate activity on x == 0: far fewer toggles.
    pmf = np.zeros(16)
    pmf[0] = 1.0
    from repro.errors import from_pmf

    zero_w = vector_weights(from_pmf(pmf, 4, signed=True), 4)
    zero_power = circuit_power(net, weights=zero_w / zero_w.sum()).total
    assert zero_power < uniform_power


def test_power_positive_and_dynamic_dominates():
    rep = circuit_power(build_array_multiplier(4))
    assert rep.dynamic > 0
    assert rep.leakage > 0
    assert rep.total == pytest.approx(rep.dynamic + rep.leakage)


def test_delay_single_gate():
    net = Netlist(num_inputs=2)
    net.set_outputs([net.add_gate("XOR", 0, 1)])
    assert critical_path_delay(net) == pytest.approx(NANGATE45.cell("XOR").delay)


def test_delay_chain_adds():
    net = Netlist(num_inputs=1)
    a = net.add_gate("NOT", 0)
    b = net.add_gate("NOT", a)
    net.set_outputs([b])
    assert critical_path_delay(net) == pytest.approx(
        2 * NANGATE45.cell("NOT").delay
    )


def test_delay_output_on_input_is_zero():
    net = Netlist(num_inputs=2)
    net.set_outputs([0])
    assert critical_path_delay(net) == 0.0


def test_critical_path_endpoints():
    net = Netlist(num_inputs=2)
    a = net.add_gate("AND", 0, 1)
    b = net.add_gate("XOR", a, 1)
    net.set_outputs([b])
    path = critical_path(net)
    assert path[-1] == b
    assert path[0] in (0, 1)


def test_adder_delay_grows_with_width():
    d4 = critical_path_delay(build_ripple_carry_adder(4))
    d8 = critical_path_delay(build_ripple_carry_adder(8))
    assert d8 > d4


def test_pdp_units():
    assert pdp(1000.0, 1000.0) == pytest.approx(1000.0)  # 1 mW * 1 ns = 1 pJ = 1000 fJ


def test_characterize_bundle():
    s = characterize(build_array_multiplier(4))
    assert s.area > 0 and s.delay > 0 and s.pdp > 0


def test_exact_8bit_multiplier_in_plausible_range(bw8):
    """Sanity anchor: the paper's exact 8-bit multiplier is ~0.39 mW."""
    s = characterize(bw8)
    assert 0.1 < s.power.total / 1000.0 < 1.0  # mW
    assert 200 < s.area < 800  # um^2
    assert 500 < s.delay < 3000  # ps
